// retask_serve — long-lived admission-control daemon.
//
//   retask_serve --model table5 --capacity 400                # stdin pipe
//   retask_serve --socket /tmp/retask.sock --model xscale     # local socket
//   retask_serve --encode < session.txt | retask_serve | retask_serve --decode
//
// The daemon answers a stream of admit / remove / reprice requests over the
// length-prefixed frame protocol (serve/protocol.hpp), re-solving the
// resident task set exactly after every mutation through the incremental
// DeltaSolver — one relaxation row per admission instead of a full DP
// refill, with verdicts bit-identical to cold solves (enforced by
// retask_fuzz --delta-diff).
//
// --encode / --decode translate between newline-delimited text and the
// frame protocol so shell pipelines (and the CI golden-transcript smoke)
// can drive the binary framing end to end.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/common/parallel.hpp"
#include "retask/io/cli_options.hpp"
#include "retask/serve/protocol.hpp"
#include "retask/serve/server.hpp"

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <ext/stdio_filebuf.h>
#endif

namespace {

using namespace retask;

struct ServeCliOptions {
  std::string model = "xscale";
  IdleDiscipline idle = IdleDiscipline::kDormantEnable;
  double frame = 1.0;
  double capacity = 1000.0;  ///< cycles one processor fits at smax
  SleepParams sleep{};
  int stride = 16;
  int reply_precision = 17;
  std::size_t max_batch = 64;
  bool sync_replies = false;
  bool print_stats = false;
  int jobs = 0;
  std::string socket_path;
  bool encode = false;
  bool decode = false;
  bool help = false;
};

const char* kUsage =
    R"(retask_serve — admission-control daemon over the frame protocol

usage: retask_serve [options]

platform (fixed per session; every admitted task solves against it):
  --model NAME        xscale | cubic | table5 (default xscale)
  --idle MODE         enable (default, can sleep) | disable (always leaks)
  --frame D           scheduling window length (default 1)
  --capacity C        cycles one processor fits at top speed (default 1000)
  --esw E / --tsw T   dormant-mode switch overheads (default 0)

serving:
  --stride K          tasks between retained DP checkpoints (default 16)
  --reply-precision P significant digits of float reply fields, 1..17
                      (default 17 = exact round-trip)
  --max-batch B       frames solved back-to-back per wakeup (default 64)
  --sync              write replies inline instead of on the writer thread
  --stats             print pump statistics to stderr on session end
  --jobs J            worker threads for the solver's parallel paths
  --socket PATH       serve one client at a time on a unix socket instead
                      of stdin/stdout (unix only)

framing helpers (exclusive; translate text <-> frames for pipelines):
  --encode            read lines from stdin, write one frame per line
  --decode            read frames from stdin, write one line per frame

requests (one per frame): admit <id> <cycles> <penalty> | remove <id> |
reprice <id> <penalty> | query | stats | ping | bye
)";

double parse_double_flag(const std::string& flag, const std::string& value, double lo, double hi) {
  double parsed = 0.0;
  try {
    std::size_t used = 0;
    parsed = std::stod(value, &used);
    require(used == value.size(), "trailing junk");
  } catch (const std::exception&) {
    throw Error(flag + " expects a number, got '" + value + "'");
  }
  require(parsed >= lo && parsed <= hi, flag + " out of range: '" + value + "'");
  return parsed;
}

std::int64_t parse_int_flag(const std::string& flag, const std::string& value, std::int64_t lo,
                            std::int64_t hi) {
  std::int64_t parsed = 0;
  try {
    std::size_t used = 0;
    parsed = std::stoll(value, &used);
    require(used == value.size(), "trailing junk");
  } catch (const std::exception&) {
    throw Error(flag + " expects an integer, got '" + value + "'");
  }
  require(parsed >= lo && parsed <= hi, flag + " out of range: '" + value + "'");
  return parsed;
}

ServeCliOptions parse_args(int argc, char** argv) {
  ServeCliOptions options;
  const auto value_of = [&](int& i, const std::string& flag) -> std::string {
    require(i + 1 < argc, flag + " expects a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--model") {
      options.model = value_of(i, arg);
    } else if (arg == "--idle") {
      const std::string value = value_of(i, arg);
      if (value == "enable") options.idle = IdleDiscipline::kDormantEnable;
      else if (value == "disable") options.idle = IdleDiscipline::kDormantDisable;
      else throw Error("--idle expects 'enable' or 'disable', got '" + value + "'");
    } else if (arg == "--frame") {
      options.frame = parse_double_flag(arg, value_of(i, arg), 1e-9, 1e9);
    } else if (arg == "--capacity") {
      options.capacity = parse_double_flag(arg, value_of(i, arg), 1.0, 1e8);
    } else if (arg == "--esw") {
      options.sleep.switch_energy = parse_double_flag(arg, value_of(i, arg), 0.0, 1e9);
    } else if (arg == "--tsw") {
      options.sleep.switch_time = parse_double_flag(arg, value_of(i, arg), 0.0, 1e9);
    } else if (arg == "--stride") {
      options.stride = static_cast<int>(parse_int_flag(arg, value_of(i, arg), 1, 1 << 20));
    } else if (arg == "--reply-precision") {
      options.reply_precision = static_cast<int>(parse_int_flag(arg, value_of(i, arg), 1, 17));
    } else if (arg == "--max-batch") {
      options.max_batch =
          static_cast<std::size_t>(parse_int_flag(arg, value_of(i, arg), 1, 1 << 16));
    } else if (arg == "--sync") {
      options.sync_replies = true;
    } else if (arg == "--stats") {
      options.print_stats = true;
    } else if (arg == "--jobs") {
      options.jobs = static_cast<int>(parse_int_flag(arg, value_of(i, arg), 0, 4096));
    } else if (arg == "--socket") {
      options.socket_path = value_of(i, arg);
    } else if (arg == "--encode") {
      options.encode = true;
    } else if (arg == "--decode") {
      options.decode = true;
    } else if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else {
      throw Error("unknown flag '" + arg + "'");
    }
  }
  require(!(options.encode && options.decode), "--encode and --decode are exclusive");
  return options;
}

int run_encode() {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    write_frame(std::cout, line);
  }
  std::cout.flush();
  return 0;
}

int run_decode() {
  std::string payload;
  while (read_frame(std::cin, payload)) {
    std::cout << payload << '\n';
  }
  std::cout.flush();
  return 0;
}

ServeSession make_session(const ServeCliOptions& options) {
  const auto model = make_model_by_name(options.model);
  EnergyCurve curve(*model, options.frame, options.idle, options.sleep);
  const double work_per_cycle = model->max_speed() * options.frame / options.capacity;
  ServeOptions serve_options;
  serve_options.reply_precision = options.reply_precision;
  serve_options.solver.checkpoint_stride = options.stride;
  return ServeSession(std::move(curve), work_per_cycle, serve_options);
}

void print_stats(const ServeLoopStats& stats) {
  std::cerr << "serve: requests=" << stats.requests << " batches=" << stats.batches
            << " max_batch=" << stats.max_batch_frames
            << " p50_ns<=" << stats.latency_percentile_ns(0.50)
            << " p99_ns<=" << stats.latency_percentile_ns(0.99) << "\n";
}

int run_pipe(const ServeCliOptions& options) {
  ServeSession session = make_session(options);
  ServeLoopOptions loop;
  loop.max_batch = options.max_batch;
  loop.async_replies = !options.sync_replies;
  const ServeLoopStats stats = run_serve_loop(std::cin, std::cout, session, loop);
  if (options.print_stats) print_stats(stats);
  return 0;
}

#ifdef __unix__
int run_socket(const ServeCliOptions& options) {
  sockaddr_un addr{};
  require(options.socket_path.size() < sizeof(addr.sun_path),
          "--socket path too long for sockaddr_un");
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(listener >= 0, "socket() failed");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.socket_path.c_str(), options.socket_path.size() + 1);
  ::unlink(options.socket_path.c_str());
  require(::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
          "bind() failed on '" + options.socket_path + "'");
  require(::listen(listener, 1) == 0, "listen() failed");
  std::cerr << "serve: listening on " << options.socket_path << "\n";

  // One client at a time; each connection is a fresh session (its own
  // resident set). The session ends on client EOF or `bye`; `bye` also
  // shuts the daemon down so scripted drivers can terminate it cleanly.
  while (true) {
    const int client = ::accept(listener, nullptr, nullptr);
    require(client >= 0, "accept() failed");
    __gnu_cxx::stdio_filebuf<char> inbuf(client, std::ios::in | std::ios::binary);
    __gnu_cxx::stdio_filebuf<char> outbuf(::dup(client), std::ios::out | std::ios::binary);
    std::istream in(&inbuf);
    std::ostream out(&outbuf);
    ServeSession session = make_session(options);
    ServeLoopOptions loop;
    loop.max_batch = options.max_batch;
    loop.async_replies = false;  // socket replies flush inline per batch
    const ServeLoopStats stats = run_serve_loop(in, out, session, loop);
    if (options.print_stats) print_stats(stats);
    if (session.closed()) break;
  }
  ::close(listener);
  ::unlink(options.socket_path.c_str());
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  try {
    const ServeCliOptions options = parse_args(argc, argv);
    if (options.help) {
      std::cout << kUsage;
      return 0;
    }
    if (options.encode) return run_encode();
    if (options.decode) return run_decode();
    if (options.jobs > 0) set_default_jobs(options.jobs);
    if (!options.socket_path.empty()) {
#ifdef __unix__
      return run_socket(options);
#else
      throw Error("--socket requires a unix platform");
#endif
    }
    return run_pipe(options);
  } catch (const retask::Error& error) {
    std::cerr << "retask_serve: " << error.what() << "\n" << kUsage;
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "retask_serve: " << error.what() << "\n";
    return 2;
  }
}
