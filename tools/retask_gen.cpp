// retask_gen — emit synthetic task-set files for retask_cli and scripts.
//
//   retask_gen --mode frame --tasks 12 --load 1.5 --seed 7 > tasks.csv
//   retask_gen --mode periodic --tasks 10 --rate 1.3 --seed 3 > periodic.csv
//
// Uses the same generators as the benchmark suite, so files written here
// reproduce the evaluation's instance families exactly.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/io/task_io.hpp"
#include "retask/task/generator.hpp"

namespace {

using namespace retask;

struct GenOptions {
  bool periodic = false;
  int tasks = 10;
  double load = 1.2;    // frame: W / capacity; periodic: total rate
  double scale = 1.0;   // penalty scale
  double resolution = 1000.0;
  PenaltyModel penalty_model = PenaltyModel::kUniform;
  std::uint64_t seed = 1;
  bool help = false;
};

const char* kUsage =
    R"(retask_gen — synthetic task-set generator

usage: retask_gen [options] > tasks.csv

  --mode MODE        frame (default) | periodic
  --tasks N          task count (default 10)
  --load L           frame: total work / one processor capacity (default 1.2)
                     periodic: total demanded rate (smax = 1)
  --penalty-scale S  penalty magnitude scale (default 1.0)
  --penalty-model M  uniform (default) | proportional | inverse
  --resolution R     frame: cycles representing load 1 (default 1000)
  --seed K           RNG seed (default 1)
  --help             this text
)";

GenOptions parse(const std::vector<std::string>& args) {
  GenOptions options;
  const auto value = [&](std::size_t& i, const std::string& flag) -> const std::string& {
    require(i + 1 < args.size(), flag + " expects a value");
    return args[++i];
  };
  const auto to_double = [](const std::string& flag, const std::string& text) {
    char* end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    require(end != nullptr && *end == '\0' && !text.empty() && parsed > 0.0,
            flag + " expects a positive number");
    return parsed;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--mode") {
      const std::string& mode = value(i, arg);
      require(mode == "frame" || mode == "periodic", "--mode expects frame or periodic");
      options.periodic = mode == "periodic";
    } else if (arg == "--tasks") {
      options.tasks = static_cast<int>(to_double(arg, value(i, arg)));
    } else if (arg == "--load") {
      options.load = to_double(arg, value(i, arg));
    } else if (arg == "--penalty-scale") {
      options.scale = to_double(arg, value(i, arg));
    } else if (arg == "--penalty-model") {
      const std::string& model = value(i, arg);
      if (model == "uniform") options.penalty_model = PenaltyModel::kUniform;
      else if (model == "proportional") options.penalty_model = PenaltyModel::kProportionalCycles;
      else if (model == "inverse") options.penalty_model = PenaltyModel::kInverseCycles;
      else throw Error("--penalty-model expects uniform, proportional or inverse");
    } else if (arg == "--resolution") {
      options.resolution = to_double(arg, value(i, arg));
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(to_double(arg, value(i, arg)));
    } else {
      throw Error("unknown option '" + arg + "'");
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const GenOptions options = parse({argv + 1, argv + argc});
    if (options.help) {
      std::cout << kUsage;
      return 0;
    }
    Rng rng(options.seed);
    if (options.periodic) {
      PeriodicWorkloadConfig config;
      config.task_count = options.tasks;
      config.total_rate = options.load;
      config.penalty_model = options.penalty_model;
      config.penalty_scale = options.scale;
      write_periodic_tasks(std::cout, generate_periodic_tasks(config, rng));
    } else {
      FrameWorkloadConfig config;
      config.task_count = options.tasks;
      config.target_load = options.load;
      config.resolution = options.resolution;
      config.penalty_model = options.penalty_model;
      config.penalty_scale = options.scale;
      write_frame_tasks(std::cout, generate_frame_tasks(config, rng));
    }
    return 0;
  } catch (const retask::Error& error) {
    std::cerr << "error: " << error.what() << "\n\n" << kUsage;
    return 2;
  }
}
