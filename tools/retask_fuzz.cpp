// retask_fuzz — differential fuzzing of the whole solver lineup.
//
//   retask_fuzz --rounds 200 --max-n 12 --seed 1        # sweep, exit 1 on bug
//   retask_fuzz --replay retask_cex_17.csv              # re-run a dump
//   retask_fuzz --inject-broken --rounds 50             # prove the harness bites
//
// Every round draws a random scenario (model, idle discipline, dormant
// overheads, processors, load, penalty shape), generates a task set, runs
// every registered solver and checks the verification properties
// (feasibility, objective recomputation, FPTAS bound, exact-solver
// agreement, oracle no-regression). Failing instances are minimized by
// drop-one-task descent and dumped as replayable counterexample files.
#include <cstdint>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/common/parallel.hpp"
#include "retask/verify/differential.hpp"
#include "retask/verify/properties.hpp"

namespace {

using namespace retask;

struct FuzzCliOptions {
  FuzzOptions fuzz;
  std::string replay_path;      ///< when set, replay instead of sweeping
  std::string out_prefix = "retask_cex";
  bool inject_broken = false;   ///< add the off-by-one capacity solver
  bool help = false;
};

const char* kUsage =
    R"(retask_fuzz — differential verification fuzzer for the solver lineup

usage: retask_fuzz [options]

  --rounds R         random instances to check (default 200)
  --max-n N          largest task count, >= 2 (default 12; multiprocessor
                     rounds are clamped further to keep the exhaustive
                     oracle bounded)
  --seed S           base seed; round r uses seed S + r (default 1)
  --jobs J           worker threads (default: RETASK_JOBS, else hardware)
  --out PREFIX       counterexample file prefix (default retask_cex ->
                     retask_cex_<round>.csv)
  --no-shrink        skip drop-one-task minimization of failures
  --sweep-cache      also check the cached sweep paths (solve_sweep,
                     solve_budgeted_dp_sweep) stay bit-identical to the
                     per-point cold solves on every instance
  --simd-diff        also solve every instance under the forced-scalar
                     kernels and under every vector backend the host can
                     execute, requiring bit-identical solutions
  --lockstep-diff    also solve a same-shape fleet around every instance
                     through the lockstep batch solver (lanes 4 and 8, every
                     backend), requiring bit-identical per-lane solutions
  --fused-sweep-diff also expand a same-shape fleet around every instance
                     into capacity sweeps and solve the whole grid through
                     the fused cross-instance sweep (lanes 4 and 8, every
                     backend, including ragged lane tails), requiring
                     bit-identity with each instance's warm solve_sweep and
                     with cold per-point solves
  --delta-diff       also replay every instance as a serve-mode admit /
                     remove / reprice walk through the incremental
                     DeltaSolver, requiring bit-identical solutions to a
                     cold solve after every mutation
  --stochastic-diff  also draw seeded early-completion trajectories and
                     cross-check ladder-quantized vs continuous reclamation
                     policies: zero deadline misses on both backends, the
                     continuous clairvoyant lower bound, and bit-identity of
                     the engine's continuous paths with sched/reclaim;
                     counterexample dumps embed the trajectory seed and
                     distribution for exact replay
  --mp-diff          also check the multiprocessor scale path: the O(n log m)
                     heap/tournament partitioners against the linear-scan
                     reference, mp-scale bit-invariance across jobs /
                     lockstep lanes / SIMD backends, the rounds=0 composition
                     identity with mp-ltf-dp, and Lagrangian lower-bound
                     soundness
  --replay FILE      re-run one dumped counterexample and report
  --inject-broken    add a deliberately wrong solver (exact DP against an
                     off-by-one capacity); the sweep must catch it
  --help             this text

exit status: 0 clean, 1 property violations found, 2 usage error.
)";

std::int64_t parse_int(const std::string& flag, const std::string& value, std::int64_t lo,
                       std::int64_t hi) {
  std::int64_t parsed = 0;
  try {
    std::size_t used = 0;
    parsed = std::stoll(value, &used);
    require(used == value.size(), "trailing junk");
  } catch (const std::exception&) {
    throw Error(flag + " expects an integer, got '" + value + "'");
  }
  require(parsed >= lo && parsed <= hi,
          flag + " expects a value in [" + std::to_string(lo) + ", " + std::to_string(hi) +
              "], got '" + value + "'");
  return parsed;
}

FuzzCliOptions parse(const std::vector<std::string>& args) {
  FuzzCliOptions options;
  const auto value = [&](std::size_t& i, const std::string& flag) -> const std::string& {
    require(i + 1 < args.size(), flag + " expects a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--rounds") {
      options.fuzz.rounds = static_cast<int>(parse_int(arg, value(i, arg), 0, 1000000));
    } else if (arg == "--max-n") {
      options.fuzz.max_n = static_cast<int>(parse_int(arg, value(i, arg), 2, 24));
    } else if (arg == "--seed") {
      options.fuzz.seed = static_cast<std::uint64_t>(
          parse_int(arg, value(i, arg), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (arg == "--jobs") {
      options.fuzz.jobs = static_cast<int>(parse_int(arg, value(i, arg), 1, 4096));
    } else if (arg == "--out") {
      options.out_prefix = value(i, arg);
    } else if (arg == "--no-shrink") {
      options.fuzz.shrink = false;
    } else if (arg == "--sweep-cache") {
      options.fuzz.sweep_cache = true;
    } else if (arg == "--simd-diff") {
      options.fuzz.simd_diff = true;
    } else if (arg == "--lockstep-diff") {
      options.fuzz.lockstep_diff = true;
    } else if (arg == "--fused-sweep-diff") {
      options.fuzz.fused_sweep_diff = true;
    } else if (arg == "--delta-diff") {
      options.fuzz.delta_diff = true;
    } else if (arg == "--stochastic-diff") {
      options.fuzz.stochastic_diff = true;
    } else if (arg == "--mp-diff") {
      options.fuzz.mp_diff = true;
    } else if (arg == "--replay") {
      options.replay_path = value(i, arg);
    } else if (arg == "--inject-broken") {
      options.inject_broken = true;
    } else {
      throw Error("unknown option '" + arg + "' (see --help)");
    }
  }
  return options;
}

SuiteFactory make_suite_factory(bool inject_broken) {
  if (!inject_broken) return {};
  return [](int processor_count) {
    std::vector<SolverUnderTest> suite = default_suite(processor_count);
    // The broken solver is single-processor; multiprocessor rounds keep the
    // stock suite.
    if (processor_count == 1) suite.push_back(broken_capacity_solver());
    return suite;
  };
}

int run_replay(const FuzzCliOptions& options) {
  const ReplayCase replay = from_counterexample_file(read_counterexample_file(options.replay_path));
  const std::vector<PropertyViolation> violations =
      check_replay(replay, make_suite_factory(options.inject_broken));
  std::cout << "replay " << options.replay_path << ": " << replay.tasks.size() << " tasks, "
            << replay.spec.processor_count << " processor(s), model " << replay.spec.model
            << "\n";
  for (const PropertyViolation& violation : violations) {
    std::cout << "  VIOLATION " << to_string(violation) << "\n";
  }
  if (violations.empty()) {
    std::cout << "  clean: every property holds\n";
    return 0;
  }
  return 1;
}

int run_sweep(const FuzzCliOptions& options) {
  const FuzzReport report =
      run_differential_fuzz(options.fuzz, make_suite_factory(options.inject_broken));
  std::cout << "fuzz: " << report.rounds << " rounds, " << report.solver_runs
            << " solver runs, " << report.counterexamples.size() << " counterexample(s)\n";
  for (const FuzzCounterexample& counterexample : report.counterexamples) {
    std::ostringstream path;
    path << options.out_prefix << "_" << counterexample.round << ".csv";
    write_counterexample_file(path.str(), to_counterexample_file(counterexample));
    std::cout << "round " << counterexample.round << ": " << counterexample.tasks.size()
              << "-task counterexample -> " << path.str() << " (replay: retask_fuzz --replay "
              << path.str() << ")\n";
    for (const PropertyViolation& violation : counterexample.violations) {
      std::cout << "  VIOLATION " << to_string(violation) << "\n";
    }
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const FuzzCliOptions options = parse({argv + 1, argv + argc});
    if (options.help) {
      std::cout << kUsage;
      return 0;
    }
    if (options.fuzz.jobs > 0) set_default_jobs(options.fuzz.jobs);
    if (!options.replay_path.empty()) return run_replay(options);
    return run_sweep(options);
  } catch (const retask::Error& error) {
    std::cerr << "error: " << error.what() << "\n\n" << kUsage;
    return 2;
  }
}
