// retask_bench — pinned-workload benchmark runner with regression gating.
//
//   retask_bench --out bench/reports/BENCH_PR5.json     # run + compare
//   retask_bench --write-baseline                       # refresh the baseline
//   retask_bench --filter greedy --repeats 9            # focus a subset
//   retask_bench --trace-out trace.json                 # chrome://tracing dump
//
// Runs a fixed suite of solver/simulator workloads (each exercising one hot
// path the ROADMAP's runtime story cares about), records median-of-k wall
// times plus the deterministic solver metrics of one run, writes the report
// as JSON (obs/bench_compare.hpp schema), and compares it against the
// checked-in baseline: exit 1 when any workload's median exceeds
// --threshold x its baseline median. A missing baseline is a bootstrap, not
// a failure. Wall times on shared CI machines are noisy — the default
// threshold is deliberately generous; the metrics columns are the
// noise-free signal for "did the algorithm start doing more work".
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "retask/batch/lockstep.hpp"
#include "retask/batch/wavefront.hpp"
#include "retask/cache/sweep.hpp"
#include "retask/common/error.hpp"
#include "retask/common/parallel.hpp"
#include "retask/core/budgeted.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/exhaustive.hpp"
#include "retask/core/fptas.hpp"
#include "retask/core/greedy.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/core/mp_scale.hpp"
#include "retask/core/multiproc.hpp"
#include "retask/exp/harness.hpp"
#include "retask/exp/stochastic_sweep.hpp"
#include "retask/exp/workload.hpp"
#include "retask/io/cli_options.hpp"
#include "retask/obs/bench_compare.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/obs/trace.hpp"
#include "retask/sched/edf_sim.hpp"
#include "retask/serve/delta_solver.hpp"
#include "retask/serve/server.hpp"
#include "retask/simd/backend.hpp"
#include "retask/simd/kernels.hpp"
#include "retask/task/generator.hpp"

#ifndef RETASK_BENCH_BASELINE_DEFAULT
#define RETASK_BENCH_BASELINE_DEFAULT ""
#endif
#ifndef RETASK_BENCH_REPORT_DIR_DEFAULT
#define RETASK_BENCH_REPORT_DIR_DEFAULT ""
#endif

namespace {

using namespace retask;

std::string default_out_path() {
  const std::string dir = RETASK_BENCH_REPORT_DIR_DEFAULT;
  return dir.empty() ? "BENCH_PR10.json" : dir + "/BENCH_PR10.json";
}

struct BenchCliOptions {
  std::string out = default_out_path();
  std::string baseline = RETASK_BENCH_BASELINE_DEFAULT;
  std::string filter;
  std::string trace_out;
  double threshold = 2.5;
  int repeats = 5;
  int jobs = 1;
  bool write_baseline = false;
  bool force = false;
  bool list = false;
  bool help = false;
};

const char* kUsage =
    R"(retask_bench — pinned-workload benchmark runner with regression gating

usage: retask_bench [options]

  --out FILE         report JSON path (default bench/reports/BENCH_PR10.json
                     next to the sources; the directory is created)
  --baseline FILE    baseline JSON to compare against (default: the
                     checked-in bench/baseline/BENCH_BASELINE.json)
  --threshold X      fail when median > X * baseline median (default 2.5)
  --repeats K        measured runs per workload, median-of-K (default 5)
  --filter SUBSTR    only run workloads whose name contains SUBSTR
  --jobs J           worker threads for the harness workload (default 1)
  --write-baseline   write this run's report to the baseline path and skip
                     the comparison (baseline refresh). Refuses to replace
                     a baseline recorded under a different SIMD backend or
                     --jobs count — such wall times are not comparable and
                     the swap would poison every later comparison.
  --force            override the --write-baseline backend/jobs guard
  --trace-out FILE   enable tracing and dump a chrome://tracing JSON
  --list             print workload names and exit
  --help             this text

exit status: 0 ok (or bootstrap: no baseline yet), 1 regression or missing
workload vs baseline, 2 usage error.
)";

std::int64_t parse_int(const std::string& flag, const std::string& value, std::int64_t lo,
                       std::int64_t hi) {
  std::int64_t parsed = 0;
  try {
    std::size_t used = 0;
    parsed = std::stoll(value, &used);
    require(used == value.size(), "trailing junk");
  } catch (const std::exception&) {
    throw Error(flag + " expects an integer, got '" + value + "'");
  }
  require(parsed >= lo && parsed <= hi,
          flag + " expects a value in [" + std::to_string(lo) + ", " + std::to_string(hi) +
              "], got '" + value + "'");
  return parsed;
}

double parse_double(const std::string& flag, const std::string& value, double lo) {
  double parsed = 0.0;
  try {
    std::size_t used = 0;
    parsed = std::stod(value, &used);
    require(used == value.size(), "trailing junk");
  } catch (const std::exception&) {
    throw Error(flag + " expects a number, got '" + value + "'");
  }
  require(parsed > lo, flag + " expects a value > " + std::to_string(lo));
  return parsed;
}

BenchCliOptions parse(const std::vector<std::string>& args) {
  BenchCliOptions options;
  const auto value = [&](std::size_t& i, const std::string& flag) -> const std::string& {
    require(i + 1 < args.size(), flag + " expects a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--out") {
      options.out = value(i, arg);
    } else if (arg == "--baseline") {
      options.baseline = value(i, arg);
    } else if (arg == "--threshold") {
      options.threshold = parse_double(arg, value(i, arg), 0.0);
    } else if (arg == "--repeats") {
      options.repeats = static_cast<int>(parse_int(arg, value(i, arg), 1, 1000));
    } else if (arg == "--filter") {
      options.filter = value(i, arg);
    } else if (arg == "--jobs") {
      options.jobs = static_cast<int>(parse_int(arg, value(i, arg), 1, 4096));
    } else if (arg == "--write-baseline") {
      options.write_baseline = true;
    } else if (arg == "--force") {
      options.force = true;
    } else if (arg == "--trace-out") {
      options.trace_out = value(i, arg);
    } else if (arg == "--list") {
      options.list = true;
    } else {
      throw Error("unknown option '" + arg + "' (see --help)");
    }
  }
  return options;
}

/// One pinned workload. The body runs the measured work; on the metrics
/// pass it also fills `metrics` with the deterministic counters of that
/// run (most bodies just wrap themselves in an ActiveScope).
struct Workload {
  std::string name;
  std::function<void(obs::Registry& metrics)> body;
};

RejectionProblem scenario(int task_count, double load, double resolution, std::uint64_t seed) {
  const std::unique_ptr<PowerModel> model = make_model_by_name("xscale");
  ScenarioConfig config;
  config.task_count = task_count;
  config.load = load;
  config.resolution = resolution;
  config.seed = seed;
  return make_scenario(config, *model);
}

std::vector<Workload> build_workloads(int jobs) {
  std::vector<Workload> workloads;
  // Instances are built once, outside the timed region, and shared across
  // runs; every solver is const and instance-independent, so repeated solves
  // are pure re-execution.
  const auto solver_workload = [&](std::string name, std::shared_ptr<RejectionProblem> problem,
                                   std::shared_ptr<const RejectionSolver> solver) {
    workloads.push_back({std::move(name), [problem, solver](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           solver->solve(*problem);
                         }});
  };

  solver_workload("greedy_density_n2048",
                  std::make_shared<RejectionProblem>(scenario(2048, 1.3, 4000.0, 11)),
                  std::make_shared<DensityGreedySolver>());
  solver_workload("greedy_local_search_n128",
                  std::make_shared<RejectionProblem>(scenario(128, 1.2, 2000.0, 12)),
                  std::make_shared<MarginalGreedySolver>());
  solver_workload("exact_dp_n24_cap16k",
                  std::make_shared<RejectionProblem>(scenario(24, 1.25, 16000.0, 13)),
                  std::make_shared<ExactDpSolver>());
  solver_workload("fptas_eps0.05_n48",
                  std::make_shared<RejectionProblem>(scenario(48, 1.2, 3000.0, 14)),
                  std::make_shared<FptasSolver>(0.05));
  solver_workload("exhaustive_n14",
                  std::make_shared<RejectionProblem>(scenario(14, 1.3, 800.0, 15)),
                  std::make_shared<ExhaustiveSolver>());

  {
    const auto problem = std::make_shared<RejectionProblem>(scenario(2048, 1.4, 4000.0, 16));
    workloads.push_back({"lower_bound_n2048", [problem](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           fractional_lower_bound(*problem);
                         }});
  }

  {
    // Many-core scale-up pair: one m=64 / n=10^4 instance (per-PE load
    // 0.75) solved by the toy-scale global greedy and by the partitioned
    // scale solver. The greedy probes all 64 processors per task across its
    // placement and improvement passes; mp-scale places in O(n log m) and
    // runs the per-PE exact DPs in lockstep lanes. The _greedy/_scale
    // speedup line is the headline number of the many-core story.
    const std::unique_ptr<PowerModel> model = make_model_by_name("xscale");
    ScenarioConfig config;
    config.task_count = 10000;
    config.load = 0.75 * 64;
    config.resolution = 10000.0;  // generator floor: >= 1 cycle per task
    config.processor_count = 64;
    config.seed = 19;
    const auto problem = std::make_shared<RejectionProblem>(make_scenario(config, *model));
    solver_workload("mp_scale_m64_greedy", problem, std::make_shared<MultiProcGreedySolver>());
    solver_workload("mp_scale_m64_scale", problem, std::make_shared<MultiProcScaleSolver>());
  }

  // A miniature R1-style comparison sweep: the full point x instance x
  // algorithm grid through the parallel harness. Metrics come from the
  // merged AlgoStats registries (deterministic at any --jobs), not from a
  // main-thread scope, because the cells run on pool threads.
  workloads.push_back({"harness_r1_mini", [jobs](obs::Registry& metrics) {
                         const ProblemFactory factory = [](std::uint64_t seed) {
                           return scenario(12, 1.2, 1500.0, seed);
                         };
                         std::vector<std::unique_ptr<RejectionSolver>> lineup;
                         lineup.push_back(std::make_unique<DensityGreedySolver>());
                         lineup.push_back(std::make_unique<MarginalGreedySolver>());
                         lineup.push_back(std::make_unique<FptasSolver>(0.1));
                         const std::vector<AlgoStats> stats = run_comparison(
                             factory, lineup,
                             [](const RejectionProblem& p) { return fractional_lower_bound(p); },
                             /*instances=*/8, /*seed0=*/1, jobs);
                         for (const AlgoStats& s : stats) metrics.merge(s.metrics);
                       }});

  // Sweep-throughput pairs: the same grid of sweep points solved cold
  // (per-point, no reuse) and warm (through the sweep-aware caching layer).
  // The _cold/_warm medians are the before/after evidence for the solve
  // reuse; the warm runs' dp.warm_starts / cache.energy_* metrics prove the
  // reuse is actually happening rather than the workload being trivial.
  {
    // Capacity sweep: one task set solved by the exact DP at 16 capacities.
    // Warm fills the knapsack table once at the largest capacity. The small
    // penalty scale makes rejection cheap, so the optimum sits at a small
    // accepted load and the select sweep's energy early-exit fires quickly —
    // the energy evaluations (identical work in warm and cold) then stay
    // small next to the table fill this pair measures.
    const auto base = [] {
      const std::unique_ptr<PowerModel> model = make_model_by_name("xscale");
      ScenarioConfig config;
      config.task_count = 256;
      config.load = 1.3;
      config.resolution = 12000.0;
      config.penalty_scale = 0.01;
      config.seed = 21;
      return std::make_shared<RejectionProblem>(make_scenario(config, *model));
    }();
    std::vector<double> factors;
    for (int f = 0; f < 16; ++f) factors.push_back(0.4 + 0.04 * f);
    const auto points =
        std::make_shared<std::vector<RejectionProblem>>(make_capacity_sweep(*base, factors));
    workloads.push_back({"sweep_dp_cap16_cold", [points](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           const ExactDpSolver solver;
                           for (const RejectionProblem& point : *points) solver.solve(point);
                         }});
    workloads.push_back({"sweep_dp_cap16_warm", [points](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           std::vector<const RejectionProblem*> group;
                           group.reserve(points->size());
                           for (const RejectionProblem& point : *points) group.push_back(&point);
                           ExactDpSolver().solve_sweep(group);
                         }});
  }
  {
    // Budget sweep: one budgeted instance solved at 16 budgets. Warm fills
    // the table once and shares one energy memo across the per-budget
    // binary searches.
    const auto base = std::make_shared<RejectionProblem>(scenario(160, 1.3, 10000.0, 22));
    const auto problem = std::make_shared<BudgetedProblem>(
        BudgetedProblem{base->tasks(), base->curve(), base->work_per_cycle(), 1.0});
    const auto budgets = std::make_shared<std::vector<double>>();
    const Cycles cap = std::min(base->cycle_capacity(), base->tasks().total_cycles());
    for (int b = 0; b < 16; ++b) {
      const double fill = 0.25 + 0.05 * b;
      budgets->push_back(
          base->energy_of_cycles(static_cast<Cycles>(static_cast<double>(cap) * fill)));
    }
    workloads.push_back({"sweep_budgeted_b16_cold", [problem, budgets](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           BudgetedProblem local = *problem;
                           for (const double budget : *budgets) {
                             local.energy_budget = budget;
                             solve_budgeted_dp(local);
                           }
                         }});
    workloads.push_back({"sweep_budgeted_b16_warm", [problem, budgets](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           solve_budgeted_dp_sweep(*problem, *budgets);
                         }});
  }
  {
    // Harness-level capacity sweep: every instance group carries one task
    // set across 8 capacity points, so the warm run routes through
    // solve_sweep and per-cell energy memos; the cold run disables both.
    const auto harness_sweep = [jobs](const BatchOptions& batch, obs::Registry& metrics) {
      std::vector<ProblemFactory> factories;
      for (int f = 0; f < 8; ++f) {
        const double factor = 0.65 + 0.05 * f;
        factories.push_back([factor](std::uint64_t seed) {
          const RejectionProblem base = scenario(24, 1.25, 4000.0, seed);
          const std::vector<RejectionProblem> point = make_capacity_sweep(base, {factor});
          return point.front();
        });
      }
      std::vector<std::unique_ptr<RejectionSolver>> lineup;
      lineup.push_back(std::make_unique<ExactDpSolver>());
      lineup.push_back(std::make_unique<MarginalGreedySolver>());
      const auto stats = run_comparison_batch(
          factories, lineup,
          [](const RejectionProblem& p) { return fractional_lower_bound(p); },
          /*instances=*/4, /*seed0=*/1, jobs, batch);
      for (const auto& point : stats) {
        for (const AlgoStats& s : point) metrics.merge(s.metrics);
      }
    };
    workloads.push_back({"harness_cap_sweep_cold", [harness_sweep](obs::Registry& metrics) {
                           BatchOptions batch;
                           batch.sweep_reuse = false;
                           batch.cell_energy_memo = false;
                           harness_sweep(batch, metrics);
                         }});
    workloads.push_back({"harness_cap_sweep_warm", [harness_sweep](obs::Registry& metrics) {
                           harness_sweep(BatchOptions{}, metrics);
                         }});
  }

  {
    // Lockstep batch solving: one same-shape fleet of 8 instances through
    // the exact DP, per instance vs. 8 lanes at once. n=24 makes the subset
    // sums dense, so each lane's select sweep evaluates energies on most
    // rows — exactly the work the lockstep chunk shares across lanes (one
    // fused batch eval over the union of needed rows instead of 8 solo
    // sweeps over largely the same rows).
    const auto fleet = std::make_shared<std::vector<RejectionProblem>>();
    const std::unique_ptr<PowerModel> model = make_model_by_name("table5");
    for (std::uint64_t seed = 41; seed <= 48; ++seed) {
      ScenarioConfig config;
      config.task_count = 24;
      config.load = 1.3;
      config.resolution = 4000.0;
      config.penalty_scale = 2.0;
      config.seed = seed;
      fleet->push_back(make_scenario(config, *model));
    }
    workloads.push_back({"batch_lockstep_single", [fleet](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           const ExactDpSolver solver;
                           for (const RejectionProblem& problem : *fleet) solver.solve(problem);
                         }});
    workloads.push_back({"batch_lockstep_lanes", [fleet](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           const ExactDpSolver base;
                           const BatchRejectionSolver batched(base, BatchConfig{8});
                           std::vector<const RejectionProblem*> group;
                           group.reserve(fleet->size());
                           for (const RejectionProblem& problem : *fleet) group.push_back(&problem);
                           batched.solve_batch(group);
                         }});
  }
  {
    // Fused cross-instance sweep: the same table5 fleet shape as the
    // batch_lockstep pair (dense selects, so the shared energy batching
    // matters), but every instance now carries 8 capacity points. Four
    // variants of the identical (instance x point) grid isolate each layer:
    //   _cold      per-point solves, nothing shared
    //   _lockstep  per-point solve_batch — cross-instance sharing only
    //   _warm      per-instance solve_sweep — warm-started fills only
    //   _fused     solve_sweep_batch — both at once (the tentpole path)
    // _warm/_fused is the headline speedup; _cold/_warm and
    // _lockstep/_fused show what each axis contributes on its own.
    const auto grid = std::make_shared<std::vector<std::vector<RejectionProblem>>>();
    {
      const std::unique_ptr<PowerModel> model = make_model_by_name("table5");
      std::vector<double> factors;
      for (int p = 0; p < 8; ++p) factors.push_back(0.6 + 0.05 * p);
      for (std::uint64_t seed = 41; seed <= 48; ++seed) {
        ScenarioConfig config;
        config.task_count = 24;
        config.load = 1.3;
        config.resolution = 4000.0;
        config.penalty_scale = 2.0;
        config.seed = seed;
        grid->push_back(make_capacity_sweep(make_scenario(config, *model), factors));
      }
    }
    workloads.push_back({"fused_sweep_cold", [grid](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           const ExactDpSolver solver;
                           for (const std::vector<RejectionProblem>& row : *grid) {
                             for (const RejectionProblem& point : row) solver.solve(point);
                           }
                         }});
    workloads.push_back({"fused_sweep_lockstep", [grid](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           const ExactDpSolver base;
                           const BatchRejectionSolver batched(base, BatchConfig{8});
                           for (std::size_t p = 0; p < grid->front().size(); ++p) {
                             std::vector<const RejectionProblem*> point;
                             point.reserve(grid->size());
                             for (const auto& row : *grid) point.push_back(&row[p]);
                             batched.solve_batch(point);
                           }
                         }});
    workloads.push_back({"fused_sweep_warm", [grid](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           const ExactDpSolver solver;
                           for (const std::vector<RejectionProblem>& row : *grid) {
                             std::vector<const RejectionProblem*> group;
                             group.reserve(row.size());
                             for (const RejectionProblem& point : row) group.push_back(&point);
                             solver.solve_sweep(group);
                           }
                         }});
    workloads.push_back({"fused_sweep_fused", [grid](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           // The bench must measure the fused path even under
                           // a RETASK_FUSED_SWEEP=off environment leg.
                           const bool knob = fused_sweep_enabled();
                           set_fused_sweep_enabled(true);
                           const ExactDpSolver base;
                           const BatchRejectionSolver batched(base, BatchConfig{8});
                           std::vector<std::vector<const RejectionProblem*>> grids;
                           grids.reserve(grid->size());
                           for (const auto& row : *grid) {
                             std::vector<const RejectionProblem*> group;
                             group.reserve(row.size());
                             for (const RejectionProblem& point : row) group.push_back(&point);
                             grids.push_back(std::move(group));
                           }
                           batched.solve_sweep_batch(grids);
                           set_fused_sweep_enabled(knob);
                         }});
  }
  {
    // Wavefront DP tiling: one wide exact-DP table (n=96, ~300k cells per
    // row), filled serially vs. tiled across the pool at 8 jobs. The tiny
    // penalty scale keeps the select sweep's energy early-exit quick, so the
    // pair measures the table fill the wavefront parallelizes.
    const auto problem = [] {
      const std::unique_ptr<PowerModel> model = make_model_by_name("xscale");
      ScenarioConfig config;
      config.task_count = 96;
      config.load = 1.3;
      config.resolution = 300000.0;
      config.penalty_scale = 0.01;
      config.seed = 51;
      return std::make_shared<RejectionProblem>(make_scenario(config, *model));
    }();
    const auto with_mode = [problem](WavefrontMode mode, int fill_jobs) {
      const WavefrontMode before_mode = wavefront_mode();
      const int before_jobs = default_jobs();
      set_wavefront_mode(mode);
      set_default_jobs(fill_jobs);
      ExactDpSolver().solve(*problem);
      set_default_jobs(before_jobs);
      set_wavefront_mode(before_mode);
    };
    workloads.push_back({"big_dp_wavefront_serial", [with_mode](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           with_mode(WavefrontMode::kOff, 1);
                         }});
    workloads.push_back({"big_dp_wavefront_tiled", [with_mode](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           with_mode(WavefrontMode::kForce, 8);
                         }});
  }

  {
    // Serve-mode admission stream: one pinned op sequence (~70% admit, ~30%
    // remove; membership decided by the rng alone, never by verdicts, so
    // both runs replay the identical stream) against the incremental
    // DeltaSolver (warm) and against a full cold exact-DP solve of the
    // resident set per request (cold). The warm run also records
    // admissions/sec and a p99 per-request latency from a log2 histogram.
    struct ServeOp {
      bool admit = true;
      int id = 0;
      Cycles cycles = 0;
      double penalty = 0.0;
    };
    const auto ops = std::make_shared<std::vector<ServeOp>>();
    {
      Rng rng(61);
      std::vector<int> resident;
      int next_id = 1;
      for (int i = 0; i < 400; ++i) {
        if (resident.empty() || rng.uniform() < 0.7) {
          const int id = next_id++;
          resident.push_back(id);
          ops->push_back({true, id, rng.uniform_int(50, 1500), rng.uniform(0.05, 3.0)});
        } else {
          const auto at = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(resident.size()) - 1));
          ops->push_back({false, resident[at], 0, 0.0});
          resident.erase(resident.begin() + static_cast<std::ptrdiff_t>(at));
        }
      }
    }
    const auto serve_curve = std::make_shared<EnergyCurve>(
        *make_model_by_name("xscale"), 1.0, IdleDiscipline::kDormantEnable);
    const double serve_wpc = serve_curve->model().max_speed() / 2000.0;
    workloads.push_back({"serve_admissions_cold", [ops, serve_curve,
                                                   serve_wpc](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           std::vector<FrameTask> resident;
                           const ExactDpSolver solver;
                           for (const ServeOp& op : *ops) {
                             if (op.admit) {
                               resident.push_back({op.id, op.cycles, op.penalty});
                             } else {
                               for (std::size_t i = 0; i < resident.size(); ++i) {
                                 if (resident[i].id == op.id) {
                                   resident.erase(resident.begin() +
                                                  static_cast<std::ptrdiff_t>(i));
                                   break;
                                 }
                               }
                             }
                             solver.solve(RejectionProblem(FrameTaskSet(resident), *serve_curve,
                                                           serve_wpc, 1));
                           }
                         }});
    workloads.push_back({"serve_admissions_warm", [ops, serve_curve,
                                                   serve_wpc](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           DeltaSolver delta(*serve_curve, serve_wpc);
                           ServeLoopStats latency;
                           const auto begin = std::chrono::steady_clock::now();
                           for (const ServeOp& op : *ops) {
                             const auto start = std::chrono::steady_clock::now();
                             if (op.admit) {
                               delta.admit({op.id, op.cycles, op.penalty});
                             } else {
                               delta.remove(op.id);
                             }
                             latency.record_latency(static_cast<std::uint64_t>(
                                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - start)
                                     .count()));
                           }
                           const double elapsed =
                               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                             begin)
                                   .count();
                           RETASK_RECORD("serve.admissions_per_sec",
                                         static_cast<std::int64_t>(
                                             static_cast<double>(ops->size()) / elapsed));
                           RETASK_RECORD("serve.request_p99_ns",
                                         static_cast<std::int64_t>(
                                             latency.latency_percentile_ns(0.99)));
                         }});
  }

  // Scalar-vs-dispatched pairs: the same body once under the forced-scalar
  // kernel table and once under the backend runtime dispatch would pick.
  // ScopedBackend is a thread-local override, so these bodies must run
  // entirely on the calling thread (never through the harness pool).
  const simd::Backend dispatched = simd::detect_backend();
  const auto simd_pair = [&](const std::string& stem,
                             std::function<void(obs::Registry&)> body) {
    workloads.push_back({stem + "_scalar", [body](obs::Registry& metrics) {
                           simd::ScopedBackend forced(simd::Backend::kScalar);
                           body(metrics);
                         }});
    workloads.push_back({stem + "_simd", [body, dispatched](obs::Registry& metrics) {
                           simd::ScopedBackend forced(dispatched);
                           body(metrics);
                         }});
  };

  // Kernel microbenchmarks: the hot loops in isolation, big enough rows that
  // the dispatch overhead vanishes.
  simd_pair("kernel_relax_f64", [](obs::Registry&) {
    constexpr std::size_t kWidth = 1 << 15;
    std::vector<double> row(kWidth, -std::numeric_limits<double>::infinity());
    row[0] = 0.0;
    std::vector<std::uint64_t> take((kWidth + 63) / 64, 0);
    const simd::KernelTable& table = simd::kernels();
    for (std::size_t t = 0; t < 64; ++t) {
      const std::size_t shift = 97 * t + 31;
      table.relax_desc_f64(row.data(), take.data(), shift, shift, kWidth - 1,
                           1.0 + static_cast<double>(t));
    }
  });
  simd_pair("kernel_relax_i64", [](obs::Registry&) {
    constexpr std::size_t kWidth = 1 << 15;
    std::vector<std::int64_t> rej(kWidth, -1);
    rej[0] = 0;
    std::vector<double> payload(kWidth, 0.0);
    std::vector<std::uint64_t> take((kWidth + 63) / 64, 0);
    const simd::KernelTable& table = simd::kernels();
    for (std::size_t t = 0; t < 64; ++t) {
      const std::size_t shift = 89 * t + 29;
      table.relax_desc_i64(rej.data(), payload.data(), take.data(), shift, shift, kWidth - 1,
                           static_cast<std::int64_t>(t) + 3, 0.5 + static_cast<double>(t));
    }
  });
  {
    // Fused cycles->energy over a discrete (hull) model.
    const std::unique_ptr<PowerModel> model = make_model_by_name("table5");
    const auto curve = std::make_shared<EnergyCurve>(*model, 1.0,
                                                     IdleDiscipline::kDormantEnable);
    const double wpc = 1.0 / 4000.0;
    const auto cap = static_cast<Cycles>(curve->max_workload() / wpc * (1.0 - 1e-9));
    const auto cycles = std::make_shared<std::vector<Cycles>>();
    Rng rng(23);
    for (int i = 0; i < 16384; ++i) cycles->push_back(rng.uniform_int(0, cap));
    simd_pair("kernel_energy_hull", [curve, cycles, wpc](obs::Registry&) {
      std::vector<double> out(cycles->size());
      curve->energy_cycles_batch(wpc, cycles->data(), out.data(), cycles->size());
    });
  }

  // End-to-end scalar-vs-dispatched sweeps mirroring the R1 (load), R2
  // (penalty) and R14 (budgeted) evaluation grids. Instances are prebuilt so
  // the pair measures solving, not generation.
  {
    const auto r1 = std::make_shared<std::vector<RejectionProblem>>();
    for (const double load : {0.8, 1.2, 1.6, 2.0}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        r1->push_back(scenario(48, load, 3000.0, seed));
      }
    }
    simd_pair("r1_load_sweep", [r1](obs::Registry& metrics) {
      obs::ActiveScope scope(metrics);
      const DensityGreedySolver greedy;
      const FptasSolver fptas(0.1);
      for (const RejectionProblem& problem : *r1) {
        greedy.solve(problem);
        fptas.solve(problem);
      }
    });
  }
  {
    const auto r2 = std::make_shared<std::vector<RejectionProblem>>();
    const std::unique_ptr<PowerModel> model = make_model_by_name("xscale");
    for (const double penalty_scale : {0.1, 0.3, 1.0, 3.0}) {
      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        ScenarioConfig config;
        config.task_count = 64;
        config.load = 1.4;
        config.resolution = 2500.0;
        config.penalty_scale = penalty_scale;
        config.seed = seed;
        r2->push_back(make_scenario(config, *model));
      }
    }
    simd_pair("r2_penalty_sweep", [r2](obs::Registry& metrics) {
      obs::ActiveScope scope(metrics);
      const MarginalGreedySolver greedy;
      const FptasSolver fptas(0.1);
      for (const RejectionProblem& problem : *r2) {
        greedy.solve(problem);
        fptas.solve(problem);
      }
    });
  }
  {
    // R14 on the discrete model so the budget sweep also drives the fused
    // hull-energy kernel end to end.
    const std::unique_ptr<PowerModel> model = make_model_by_name("table5");
    ScenarioConfig config;
    config.task_count = 96;
    config.load = 1.3;
    config.resolution = 8000.0;
    config.seed = 31;
    const auto base = std::make_shared<RejectionProblem>(make_scenario(config, *model));
    const auto problem = std::make_shared<BudgetedProblem>(
        BudgetedProblem{base->tasks(), base->curve(), base->work_per_cycle(), 1.0});
    const auto budgets = std::make_shared<std::vector<double>>();
    const Cycles cap = std::min(base->cycle_capacity(), base->tasks().total_cycles());
    for (int b = 0; b < 12; ++b) {
      const double fill = 0.3 + 0.055 * b;
      budgets->push_back(
          base->energy_of_cycles(static_cast<Cycles>(static_cast<double>(cap) * fill)));
    }
    simd_pair("r14_budget_sweep", [problem, budgets](obs::Registry& metrics) {
      obs::ActiveScope scope(metrics);
      BudgetedProblem local = *problem;
      for (const double budget : *budgets) {
        local.energy_budget = budget;
        solve_budgeted_dp(local);
      }
    });
  }

  {
    // Stochastic reclamation sweep: one R18-style point — greedy admission,
    // then matched seeded trajectories through the full six-policy lineup on
    // the continuous backend and a 5-level ladder. Covers the whole
    // stochastic engine (draws, deferral policies, two-speed emulation) in
    // one deterministic workload.
    workloads.push_back({"stochastic_sweep_r18", [jobs](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           const std::unique_ptr<PowerModel> model = make_model_by_name("xscale");
                           StochasticSweepConfig config;
                           config.scenario.task_count = 16;
                           config.scenario.load = 1.2;
                           config.scenario.resolution = 2000.0;
                           config.solver = "greedy";
                           config.instances = 10;
                           config.trajectories = 16;
                           config.seed0 = 71;
                           config.trajectory_seed = 72;
                           config.distribution.kind = CycleDistribution::kUniform;
                           config.distribution.ratio_lo = 0.3;
                           config.distribution.ratio_hi = 0.9;
                           for (const int ladder_levels : {0, 5}) {
                             config.ladder_levels = ladder_levels;
                             run_stochastic_sweep(config, *model, jobs);
                           }
                         }});
  }

  {
    PeriodicWorkloadConfig config;
    config.task_count = 32;
    config.total_rate = 0.6;
    Rng rng(17);
    const auto tasks = std::make_shared<PeriodicTaskSet>(generate_periodic_tasks(config, rng));
    const std::unique_ptr<PowerModel> model = make_model_by_name("xscale");
    const auto curve = std::make_shared<EnergyCurve>(*model, 1.0, IdleDiscipline::kDormantEnable,
                                                     SleepParams{});
    const double speed = model->max_speed();
    workloads.push_back({"edf_sim_n32", [tasks, curve, speed](obs::Registry& metrics) {
                           obs::ActiveScope scope(metrics);
                           EdfSimConfig config_sim;
                           config_sim.speed = speed;
                           config_sim.procrastinate = true;
                           simulate_edf(*tasks, {}, config_sim, *curve);
                         }});
  }
  return workloads;
}

obs::BenchWorkloadResult run_workload(const Workload& workload, int repeats) {
  obs::BenchWorkloadResult result;
  result.name = workload.name;

  // Warmup doubles as the metrics pass: deterministic counters are
  // identical on every run, so collecting them outside the timed loop keeps
  // the measured runs free of registry churn.
  obs::Registry metrics;
  workload.body(metrics);
  for (const obs::MetricRow& row : obs::report_rows(metrics, /*include_timers=*/false)) {
    result.metrics.emplace_back(row.name, row.numeric);
  }

  // Kernel attribution, stdout only (timers never enter the gated report):
  // the share of the lockstep / fused-sweep batch time the select
  // prediction+replay scans account for.
  {
    double select_ns = 0.0;
    double batch_ns = 0.0;
    for (const obs::MetricRow& row : obs::report_rows(metrics, /*include_timers=*/true)) {
      if (row.name == "batch.select_scan_ns.sum") select_ns = row.numeric;
      if (row.name == "batch.lockstep_ns.sum" || row.name == "batch.fused_sweep_ns.sum") {
        batch_ns += row.numeric;
      }
    }
    if (select_ns > 0.0 && batch_ns > 0.0) {
      std::cout << workload.name << ": select scans " << 100.0 * select_ns / batch_ns
                << "% of batch solve time\n";
    }
  }

  obs::Registry scratch;
  for (int r = 0; r < repeats; ++r) {
    scratch.clear();
    const auto start = std::chrono::steady_clock::now();
    workload.body(scratch);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    result.runs_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }
  std::vector<std::uint64_t> sorted = result.runs_ns;
  std::sort(sorted.begin(), sorted.end());
  result.median_ns = sorted[sorted.size() / 2];
  return result;
}

int run(const BenchCliOptions& options) {
  std::vector<Workload> workloads = build_workloads(options.jobs);
  if (!options.filter.empty()) {
    std::erase_if(workloads, [&](const Workload& w) {
      return w.name.find(options.filter) == std::string::npos;
    });
    require(!workloads.empty(), "--filter '" + options.filter + "' matches no workload");
  }
  if (options.list) {
    for (const Workload& w : workloads) std::cout << w.name << "\n";
    return 0;
  }

  if (!options.trace_out.empty()) obs::set_trace_enabled(true);

  obs::BenchReport report;
  report.jobs = options.jobs;
  report.repeats = options.repeats;
  report.backend = std::string(simd::to_string(simd::active_backend()));
  std::cout << "simd backend: " << report.backend << "\n";
  for (const Workload& workload : workloads) {
    obs::BenchWorkloadResult result = run_workload(workload, options.repeats);
    std::cout << result.name << ": median " << result.median_ns / 1000 << " us over "
              << options.repeats << " runs\n";
    report.workloads.push_back(std::move(result));
  }

  // Before/after pairs: _cold/_warm measures the sweep-caching layer,
  // _scalar/_simd the vector kernels, _warm/_fused the cross-instance
  // fused sweep. Report the speedup of each pair.
  const auto print_speedups = [&report](const std::string& before, const std::string& after) {
    for (const obs::BenchWorkloadResult& slow : report.workloads) {
      if (slow.name.size() <= before.size() ||
          slow.name.compare(slow.name.size() - before.size(), before.size(), before) != 0) {
        continue;
      }
      const std::string stem = slow.name.substr(0, slow.name.size() - before.size());
      const obs::BenchWorkloadResult* fast = report.find(stem + after);
      if (fast == nullptr || fast->median_ns == 0) continue;
      std::cout << "speedup " << stem << ": " << after.substr(1) << " "
                << static_cast<double>(slow.median_ns) / static_cast<double>(fast->median_ns)
                << "x faster than " << before.substr(1) << " (" << slow.median_ns / 1000
                << " us -> " << fast->median_ns / 1000 << " us)\n";
    }
  };
  print_speedups("_cold", "_warm");
  print_speedups("_scalar", "_simd");
  print_speedups("_single", "_lanes");
  print_speedups("_serial", "_tiled");
  print_speedups("_greedy", "_scale");
  print_speedups("_warm", "_fused");
  print_speedups("_lockstep", "_fused");

  if (!options.trace_out.empty()) {
    obs::write_chrome_trace_file(options.trace_out);
    std::cout << "trace: " << obs::trace_event_count() << " event(s) -> " << options.trace_out
              << " (open in chrome://tracing or https://ui.perfetto.dev)\n";
  }

  if (options.write_baseline) {
    require(!options.baseline.empty(), "--write-baseline: no baseline path configured");
    if (std::filesystem::exists(options.baseline)) {
      const obs::BenchReport previous = obs::read_bench_report_file(options.baseline);
      if (!options.force) {
        // Refuse to swap the recorded config out from under future
        // comparisons: wall times measured under a different kernel backend
        // or thread count are not comparable, so silently replacing the
        // baseline would make every later regression check meaningless.
        require(previous.backend == report.backend,
                "--write-baseline: existing baseline was recorded with backend '" +
                    previous.backend + "' but this run used '" + report.backend +
                    "'; pass --force to replace it anyway");
        require(previous.jobs == report.jobs,
                "--write-baseline: existing baseline was recorded with --jobs " +
                    std::to_string(previous.jobs) + " but this run used --jobs " +
                    std::to_string(report.jobs) + "; pass --force to replace it anyway");
      }
      // A refresh must not silently shrink coverage: a workload present in
      // the old baseline but absent from this run (a --filter run, or a
      // renamed workload) would vanish from every later regression check.
      std::size_t dropped = 0;
      for (const obs::BenchWorkloadResult& old : previous.workloads) {
        if (report.find(old.name) == nullptr) {
          std::cout << "DROPPED " << old.name << ": in the old baseline but not in this run\n";
          ++dropped;
        }
      }
      require(dropped == 0 || options.force,
              "--write-baseline: this run is missing " + std::to_string(dropped) +
                  " workload(s) present in the baseline (listed above); rerun without "
                  "--filter, or pass --force to drop them from the baseline");
      // Show what the refresh actually rewrites, so a "routine" refresh that
      // hides a real slowdown is visible in the log.
      for (const obs::BenchWorkloadResult& current : report.workloads) {
        const obs::BenchWorkloadResult* old = previous.find(current.name);
        if (old == nullptr) {
          std::cout << "baseline add " << current.name << ": " << current.median_ns / 1000
                    << " us (new workload)\n";
          continue;
        }
        if (old->median_ns == 0) continue;
        const double ratio =
            static_cast<double>(current.median_ns) / static_cast<double>(old->median_ns);
        if (ratio < 0.95 || ratio > 1.05) {
          std::cout << "baseline change " << current.name << ": " << old->median_ns / 1000
                    << " us -> " << current.median_ns / 1000 << " us (" << ratio << "x)\n";
        }
      }
    }
    obs::write_bench_report_file(options.baseline, report);
    std::cout << "baseline written: " << options.baseline << "\n";
    return 0;
  }

  obs::write_bench_report_file(options.out, report);
  std::cout << "report written: " << options.out << "\n";

  if (options.baseline.empty() || !std::filesystem::exists(options.baseline)) {
    std::cout << "no baseline at '" << options.baseline
              << "' — bootstrap run, nothing to compare (record one with --write-baseline)\n";
    return 0;
  }

  obs::BenchReport baseline = obs::read_bench_report_file(options.baseline);
  if (!options.filter.empty()) {
    // A filtered run only measured a subset; keep the comparison to the
    // same subset so the unmeasured workloads don't read as "missing".
    std::erase_if(baseline.workloads, [&](const obs::BenchWorkloadResult& w) {
      return w.name.find(options.filter) == std::string::npos;
    });
  }
  const obs::BenchComparison comparison =
      obs::compare_bench_reports(report, baseline, options.threshold);
  for (const obs::BenchRegression& regression : comparison.regressions) {
    std::cout << "REGRESSION " << regression.name << ": " << regression.current_ns / 1000
              << " us vs baseline " << regression.baseline_ns / 1000 << " us ("
              << regression.ratio << "x > " << options.threshold << "x)\n";
  }
  for (const std::string& name : comparison.missing) {
    std::cout << "MISSING " << name << ": in baseline but not in this run\n";
  }
  for (const obs::BenchRegression& improvement : comparison.improvements) {
    std::cout << "IMPROVEMENT " << improvement.name << ": " << improvement.current_ns / 1000
              << " us vs baseline " << improvement.baseline_ns / 1000 << " us ("
              << 1.0 / improvement.ratio << "x faster)\n";
  }
  if (!comparison.improvements.empty()) {
    std::cout << "note: " << comparison.improvements.size()
              << " workload(s) ran significantly faster than the recorded baseline —\n"
                 "      the baseline is stale and masks regressions up to the same size;\n"
                 "      consider refreshing it with --write-baseline\n";
  }
  for (const std::string& name : comparison.added) {
    std::cout << "note: new workload " << name << " (not in baseline)\n";
  }
  for (const obs::BenchMetricDrift& drift : comparison.metric_drift) {
    std::cout << "note: metric drift " << drift.workload << "/" << drift.metric << ": "
              << drift.baseline << " -> " << drift.current << "\n";
  }
  if (!comparison.ok()) return 1;
  std::cout << "ok: " << report.workloads.size() << " workload(s) within " << options.threshold
            << "x of baseline\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const BenchCliOptions options = parse({argv + 1, argv + argc});
    if (options.help) {
      std::cout << kUsage;
      return 0;
    }
    set_default_jobs(options.jobs);
    return run(options);
  } catch (const retask::Error& error) {
    std::cerr << "error: " << error.what() << "\n\n" << kUsage;
    return 2;
  }
}
