// retask_cli — solve task-rejection instances from task-set files.
//
//   retask_cli --input tasks.csv --solver opt-dp --capacity 100
//   retask_cli --input periodic.csv --mode periodic --solver fptas:0.05
//
// The tool reads the task set, builds the requested scheduling instance,
// solves it, prints the decision report, and (periodic mode) re-executes the
// accepted set in the EDF simulator to certify schedulability.
#include <iomanip>
#include <iostream>

#include "retask/io/cli_options.hpp"
#include "retask/io/task_io.hpp"
#include "retask/retask.hpp"

namespace {

using namespace retask;

// --stochastic: replay the accepted set under every stochastic policy with
// matched seeded actual-cycle trajectories and print the per-policy
// mean-energy table. The same trajectories feed every policy, so the rows
// are matched-pair comparable, and the seed makes the table replayable.
void print_stochastic_replay(const RejectionProblem& problem, const RejectionSolution& solution,
                             const CliOptions& options) {
  const TrajectoryDistribution dist = parse_distribution(options.stochastic);
  std::vector<FrameTask> accepted;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    if (solution.accepted[i]) accepted.push_back(problem.tasks()[i]);
  }
  std::cout << "\n# stochastic replay: " << accepted.size() << " accepted task(s), "
            << options.trajectories << " trajectories of " << options.stochastic
            << " (mean ACET/WCET " << dist.mean_ratio() << "), "
            << (options.ladder > 0 ? std::to_string(options.ladder) + "-level ladder"
                                   : std::string("continuous speeds"))
            << ", seed " << options.trajectory_seed << "\n";
  if (accepted.empty()) {
    std::cout << "nothing accepted, nothing to execute\n";
    return;
  }

  Rng rng(options.trajectory_seed);
  std::vector<std::vector<Cycles>> trajectories;
  trajectories.reserve(static_cast<std::size_t>(options.trajectories));
  for (int t = 0; t < options.trajectories; ++t) {
    trajectories.push_back(draw_trajectory(accepted, dist, rng));
  }

  std::unique_ptr<FreqLadder> ladder;
  if (options.ladder > 0) {
    ladder = std::make_unique<FreqLadder>(
        FreqLadder::from_model(problem.curve().model(), options.ladder));
  }

  std::cout << std::left << std::setw(18) << "policy" << std::right << std::setw(14)
            << "mean energy" << std::setw(18) << "mean completion" << std::setw(10) << "misses"
            << "\n";
  for (const StochasticPolicy policy : all_stochastic_policies()) {
    StochasticFrameConfig config;
    config.policy = policy;
    config.ladder = ladder.get();
    config.expected_ratio = dist.mean_ratio();
    OnlineStats energy;
    OnlineStats completion;
    std::int64_t misses = 0;
    for (const std::vector<Cycles>& actual : trajectories) {
      const StochasticFrameResult run = simulate_frame_stochastic(
          accepted, actual, problem.work_per_cycle(), problem.curve(), config);
      energy.add(run.energy);
      completion.add(run.completion);
      if (!run.deadline_met) ++misses;
    }
    std::cout << std::left << std::setw(18) << to_string(policy) << std::right
              << std::setw(14) << std::setprecision(6) << energy.mean() << std::setw(18)
              << completion.mean() << std::setw(10) << misses << "\n";
  }
}

int run(const CliOptions& options) {
  if (options.jobs > 0) set_default_jobs(options.jobs);
  const std::unique_ptr<PowerModel> model = make_model_by_name(options.model);
  const std::unique_ptr<RejectionSolver> solver = make_solver(options.solver);

  if (options.mode == CliOptions::Mode::kFrame) {
    const FrameTaskSet tasks = read_frame_tasks_file(options.input_path);
    EnergyCurve curve(*model, options.frame, options.idle, options.sleep);
    const double work_per_cycle = model->max_speed() * options.frame / options.capacity;
    const RejectionProblem problem(tasks, std::move(curve), work_per_cycle,
                                   options.processors);
    const RejectionSolution solution = solver->solve(problem);
    check_solution(problem, solution);

    std::cout << "# retask frame instance: " << tasks.size() << " tasks, "
              << options.processors << " processor(s), model " << model->name() << "\n";
    std::cout << "# solver " << solver->name() << "\n";
    std::cout << "objective " << solution.objective() << " = energy " << solution.energy
              << " + penalty " << solution.penalty << "\n";
    std::cout << "accepted " << solution.accepted_count() << "/" << tasks.size() << " (ratio "
              << solution.acceptance_ratio() << ")\n";
    if (options.csv) {
      write_solution_csv(std::cout, problem, solution);
    } else {
      for (std::size_t i = 0; i < problem.size(); ++i) {
        const FrameTask& task = problem.tasks()[i];
        std::cout << "  task " << task.id << " (" << task.cycles << " cycles, penalty "
                  << task.penalty << "): "
                  << (solution.accepted[i]
                          ? "accept on processor " + std::to_string(solution.processor_of[i])
                          : "reject")
                  << "\n";
      }
    }
    if (!options.stochastic.empty()) print_stochastic_replay(problem, solution, options);
    return 0;
  }

  const PeriodicTaskSet tasks = read_periodic_tasks_file(options.input_path);
  const PeriodicRejectionAdapter adapter(tasks, *model, options.idle, options.processors);
  const RejectionSolution solution = solver->solve(adapter.frame_problem());
  check_solution(adapter.frame_problem(), solution);

  std::cout << "# retask periodic instance: " << tasks.size() << " tasks, hyper-period "
            << adapter.hyper_period() << ", " << options.processors << " processor(s), model "
            << model->name() << "\n";
  std::cout << "# solver " << solver->name() << "\n";
  std::cout << "objective " << solution.objective() << " = energy " << solution.energy
            << " + penalty " << solution.penalty << " per hyper-period\n";
  std::cout << "accepted " << solution.accepted_count() << "/" << tasks.size() << "\n";

  bool all_verified = true;
  for (int p = 0; p < options.processors; ++p) {
    const double speed = adapter.execution_speed_on(solution, p);
    std::cout << "processor " << p << ": demanded rate " << adapter.demanded_rate_on(solution, p)
              << ", EDF speed " << speed;
    if (speed > 0.0) {
      // Per-processor verification needs the per-processor selection mask.
      std::vector<bool> on_proc(tasks.size(), false);
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        on_proc[i] = solution.accepted[i] && solution.processor_of[i] == p;
      }
      EdfSimConfig sim;
      sim.speed = speed;
      const EdfSimResult run = simulate_edf(tasks, on_proc, sim,
                                            adapter.frame_problem().curve());
      std::cout << ", EDF check: " << run.jobs_released << " jobs, " << run.deadline_misses
                << " misses";
      all_verified = all_verified && run.deadline_misses == 0;
    }
    std::cout << "\n";
  }
  if (options.csv) write_solution_csv(std::cout, adapter.frame_problem(), solution);
  if (!all_verified) {
    std::cerr << "ERROR: EDF verification failed\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const CliOptions options = parse_cli_options(args);
    if (options.help) {
      std::cout << cli_usage();
      return 0;
    }
    return run(options);
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << "\n\n" << cli_usage();
    return 2;
  }
}
