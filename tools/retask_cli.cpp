// retask_cli — solve task-rejection instances from task-set files.
//
//   retask_cli --input tasks.csv --solver opt-dp --capacity 100
//   retask_cli --input periodic.csv --mode periodic --solver fptas:0.05
//
// The tool reads the task set, builds the requested scheduling instance,
// solves it, prints the decision report, and (periodic mode) re-executes the
// accepted set in the EDF simulator to certify schedulability.
#include <iostream>

#include "retask/io/cli_options.hpp"
#include "retask/io/task_io.hpp"
#include "retask/retask.hpp"

namespace {

using namespace retask;

int run(const CliOptions& options) {
  if (options.jobs > 0) set_default_jobs(options.jobs);
  const std::unique_ptr<PowerModel> model = make_model_by_name(options.model);
  const std::unique_ptr<RejectionSolver> solver = make_solver(options.solver);

  if (options.mode == CliOptions::Mode::kFrame) {
    const FrameTaskSet tasks = read_frame_tasks_file(options.input_path);
    EnergyCurve curve(*model, options.frame, options.idle, options.sleep);
    const double work_per_cycle = model->max_speed() * options.frame / options.capacity;
    const RejectionProblem problem(tasks, std::move(curve), work_per_cycle,
                                   options.processors);
    const RejectionSolution solution = solver->solve(problem);
    check_solution(problem, solution);

    std::cout << "# retask frame instance: " << tasks.size() << " tasks, "
              << options.processors << " processor(s), model " << model->name() << "\n";
    std::cout << "# solver " << solver->name() << "\n";
    std::cout << "objective " << solution.objective() << " = energy " << solution.energy
              << " + penalty " << solution.penalty << "\n";
    std::cout << "accepted " << solution.accepted_count() << "/" << tasks.size() << " (ratio "
              << solution.acceptance_ratio() << ")\n";
    if (options.csv) {
      write_solution_csv(std::cout, problem, solution);
    } else {
      for (std::size_t i = 0; i < problem.size(); ++i) {
        const FrameTask& task = problem.tasks()[i];
        std::cout << "  task " << task.id << " (" << task.cycles << " cycles, penalty "
                  << task.penalty << "): "
                  << (solution.accepted[i]
                          ? "accept on processor " + std::to_string(solution.processor_of[i])
                          : "reject")
                  << "\n";
      }
    }
    return 0;
  }

  const PeriodicTaskSet tasks = read_periodic_tasks_file(options.input_path);
  const PeriodicRejectionAdapter adapter(tasks, *model, options.idle, options.processors);
  const RejectionSolution solution = solver->solve(adapter.frame_problem());
  check_solution(adapter.frame_problem(), solution);

  std::cout << "# retask periodic instance: " << tasks.size() << " tasks, hyper-period "
            << adapter.hyper_period() << ", " << options.processors << " processor(s), model "
            << model->name() << "\n";
  std::cout << "# solver " << solver->name() << "\n";
  std::cout << "objective " << solution.objective() << " = energy " << solution.energy
            << " + penalty " << solution.penalty << " per hyper-period\n";
  std::cout << "accepted " << solution.accepted_count() << "/" << tasks.size() << "\n";

  bool all_verified = true;
  for (int p = 0; p < options.processors; ++p) {
    const double speed = adapter.execution_speed_on(solution, p);
    std::cout << "processor " << p << ": demanded rate " << adapter.demanded_rate_on(solution, p)
              << ", EDF speed " << speed;
    if (speed > 0.0) {
      // Per-processor verification needs the per-processor selection mask.
      std::vector<bool> on_proc(tasks.size(), false);
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        on_proc[i] = solution.accepted[i] && solution.processor_of[i] == p;
      }
      EdfSimConfig sim;
      sim.speed = speed;
      const EdfSimResult run = simulate_edf(tasks, on_proc, sim,
                                            adapter.frame_problem().curve());
      std::cout << ", EDF check: " << run.jobs_released << " jobs, " << run.deadline_misses
                << " misses";
      all_verified = all_verified && run.deadline_misses == 0;
    }
    std::cout << "\n";
  }
  if (options.csv) write_solution_csv(std::cout, adapter.frame_problem(), solution);
  if (!all_verified) {
    std::cerr << "ERROR: EDF verification failed\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const CliOptions options = parse_cli_options(args);
    if (options.help) {
      std::cout << cli_usage();
      return 0;
    }
    return run(options);
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << "\n\n" << cli_usage();
    return 2;
  }
}
