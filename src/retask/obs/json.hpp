// Minimal JSON reader for the observability tooling.
//
// The bench-regression runner must parse its own checked-in baseline files
// and the tests must re-parse the Chrome trace export, but the container
// policy forbids new third-party dependencies — so this is a small strict
// recursive-descent parser covering exactly the JSON subset the repo emits:
// objects, arrays, strings (with \uXXXX escapes decoded to UTF-8), finite
// numbers, booleans and null. Duplicate object keys keep both entries
// (lookup returns the first), comments and trailing commas are rejected.
#ifndef RETASK_OBS_JSON_HPP
#define RETASK_OBS_JSON_HPP

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace retask::obs {

/// One parsed JSON value (tagged union; containers own their children).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }

  /// First member named `key`, or nullptr (objects only).
  const JsonValue* find(std::string_view key) const;

  /// Typed accessors; throw retask::Error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
};

/// Parses one JSON document (the whole input must be consumed, trailing
/// whitespace aside). Throws retask::Error with a byte offset on malformed
/// input.
JsonValue parse_json(std::string_view text);

/// Escapes `text` for embedding inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view text);

}  // namespace retask::obs

#endif  // RETASK_OBS_JSON_HPP
