#include "retask/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "retask/common/error.hpp"

namespace retask::obs {
namespace {

std::atomic<std::size_t> g_capacity{65536};

bool env_trace_enabled() {
  const char* env = std::getenv("RETASK_TRACE");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_trace_enabled()};
  return flag;
}

/// Per-thread ring of complete events. `head` is the next write position;
/// once `wrapped`, the oldest event lives at `head`.
struct TraceRing {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
  std::size_t capacity = 0;  ///< applied g_capacity; re-checked on every push
  std::size_t head = 0;      ///< oldest event once wrapped; next overwrite slot
  bool wrapped = false;

  void push(const TraceEvent& event) {
    const std::size_t wanted = g_capacity.load(std::memory_order_relaxed);
    if (wanted == 0) return;
    if (capacity != wanted) {
      // Capacity changed (or first use): rebuild oldest-first, keeping the
      // newest events that still fit.
      std::vector<TraceEvent> kept = ordered();
      if (kept.size() > wanted) {
        kept.erase(kept.begin(), kept.end() - static_cast<std::ptrdiff_t>(wanted));
      }
      events = std::move(kept);
      events.reserve(wanted);
      capacity = wanted;
      head = 0;
      wrapped = events.size() == capacity;
    }
    if (events.size() < capacity) {
      events.push_back(event);
      if (events.size() == capacity) wrapped = true;
    } else {
      events[head] = event;
      head = (head + 1) % capacity;
    }
  }

  /// Events oldest-first.
  std::vector<TraceEvent> ordered() const {
    std::vector<TraceEvent> out;
    out.reserve(events.size());
    if (wrapped) {
      for (std::size_t i = head; i < events.size(); ++i) out.push_back(events[i]);
      for (std::size_t i = 0; i < head; ++i) out.push_back(events[i]);
    } else {
      out = events;
    }
    return out;
  }

  void clear() {
    events.clear();
    head = 0;
    wrapped = false;
  }
};

struct RingDirectory {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceRing>> rings;
  std::uint32_t next_tid = 0;
};

RingDirectory& ring_directory() {
  static RingDirectory directory;
  return directory;
}

TraceRing& thread_ring() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    auto created = std::make_shared<TraceRing>();
    RingDirectory& directory = ring_directory();
    std::lock_guard<std::mutex> lock(directory.mutex);
    created->tid = directory.next_tid++;
    directory.rings.push_back(created);
    return created;
  }();
  return *ring;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return epoch;
}

void write_json_escaped(std::ostream& os, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char ch = *p;
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(ch >> 4) & 0xf] << hex[ch & 0xf];
        } else {
          os << ch;
        }
    }
  }
}

}  // namespace

bool trace_enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_trace_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

void set_trace_capacity(std::size_t events) {
  g_capacity.store(events, std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() {
  const auto elapsed = std::chrono::steady_clock::now() - trace_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

void emit_trace(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns) {
  if (!trace_enabled() || name == nullptr) return;
  TraceRing& ring = thread_ring();
  ring.push(TraceEvent{name, ring.tid, ts_ns, dur_ns});
}

std::vector<TraceEvent> trace_snapshot() {
  RingDirectory& directory = ring_directory();
  std::lock_guard<std::mutex> lock(directory.mutex);
  std::vector<TraceEvent> all;
  for (const auto& ring : directory.rings) {
    const std::vector<TraceEvent> ordered = ring->ordered();
    all.insert(all.end(), ordered.begin(), ordered.end());
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    return a.tid < b.tid;
  });
  return all;
}

std::size_t trace_event_count() {
  RingDirectory& directory = ring_directory();
  std::lock_guard<std::mutex> lock(directory.mutex);
  std::size_t total = 0;
  for (const auto& ring : directory.rings) total += ring->events.size();
  return total;
}

void clear_trace() {
  RingDirectory& directory = ring_directory();
  std::lock_guard<std::mutex> lock(directory.mutex);
  for (const auto& ring : directory.rings) ring->clear();
}

void write_chrome_trace(std::ostream& os) {
  const std::vector<TraceEvent> events = trace_snapshot();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto us = [](std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; };
  for (const TraceEvent& event : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"";
    write_json_escaped(os, event.name);
    os << "\",\"cat\":\"retask\",\"ph\":\"X\",\"pid\":1,\"tid\":" << event.tid;
    const auto old_precision = os.precision(std::numeric_limits<double>::max_digits10);
    os << ",\"ts\":" << us(event.ts_ns) << ",\"dur\":" << us(event.dur_ns) << "}";
    os.precision(old_precision);
  }
  os << "]}\n";
}

void write_chrome_trace_file(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    require(!ec, "cannot create directory '" + parent.string() + "': " + ec.message());
  }
  std::ofstream out(path);
  require(out.good(), "cannot open trace file '" + path + "' for writing");
  write_chrome_trace(out);
  out.flush();
  require(out.good(), "failed writing trace file '" + path + "'");
}

}  // namespace retask::obs
