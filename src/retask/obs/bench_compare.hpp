// Bench-regression report format and baseline comparison.
//
// tools/retask_bench runs a pinned workload suite and serializes one
// BenchReport (median-of-k wall times plus the deterministic solver metrics
// of one run) as JSON — BENCH_PR<k>.json is the repo's recorded perf
// trajectory. compare_bench_reports() checks a fresh report against a
// checked-in baseline: a workload regresses when its median wall time
// exceeds threshold x the baseline's. Metric differences never fail the
// comparison (counters legitimately move when an algorithm changes); they
// are surfaced so a reviewer can tell "same work, slower" from "more
// work".
//
// The logic lives in the library (not the tool) so tests can drive the
// pass/fail/bootstrap paths directly.
#ifndef RETASK_OBS_BENCH_COMPARE_HPP
#define RETASK_OBS_BENCH_COMPARE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace retask::obs {

/// One workload's outcome: every run's wall time, the median the
/// comparison keys on, and the flattened deterministic metrics of one run.
struct BenchWorkloadResult {
  std::string name;
  std::uint64_t median_ns = 0;
  std::vector<std::uint64_t> runs_ns;
  std::vector<std::pair<std::string, double>> metrics;

  /// First metric named `name`, or nullptr.
  const double* metric(const std::string& metric_name) const;
};

/// One full suite run.
struct BenchReport {
  std::string schema = "retask-bench-v1";
  int jobs = 1;     ///< worker threads the suite was pinned to
  int repeats = 0;  ///< measured runs per workload (median over these)
  /// SIMD kernel backend the run dispatched to ("scalar", "sse2", "avx2",
  /// "neon"); always written, optional on read (older reports predate it
  /// and leave it empty). Wall times from different backends are not
  /// comparable, so baseline refreshes guard on this field.
  std::string backend;
  std::vector<BenchWorkloadResult> workloads;

  const BenchWorkloadResult* find(const std::string& name) const;
};

/// JSON round-trip. Readers validate the schema tag and throw
/// retask::Error on malformed input; the file writer creates missing
/// parent directories.
void write_bench_report(std::ostream& os, const BenchReport& report);
void write_bench_report_file(const std::string& path, const BenchReport& report);
BenchReport read_bench_report(std::istream& is);
BenchReport read_bench_report_file(const std::string& path);

/// One workload slower than threshold x baseline.
struct BenchRegression {
  std::string name;
  std::uint64_t baseline_ns = 0;
  std::uint64_t current_ns = 0;
  double ratio = 0.0;  ///< current / baseline
};

/// One deterministic metric whose value moved between baseline and current.
struct BenchMetricDrift {
  std::string workload;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
};

struct BenchComparison {
  std::vector<BenchRegression> regressions;   ///< ratio > threshold
  std::vector<BenchRegression> improvements;  ///< ratio < 1 / threshold
  std::vector<std::string> missing;           ///< in baseline, absent from current
  std::vector<std::string> added;             ///< in current, absent from baseline
  std::vector<BenchMetricDrift> metric_drift;

  /// Comparison verdict: no workload regressed and nothing the baseline
  /// tracks disappeared. Improvements, metric drift and added workloads are
  /// informational — but a significant improvement means the checked-in
  /// baseline understates current performance and should be refreshed
  /// (tools/retask_bench --write-baseline), or future regressions up to the
  /// improvement's size will pass unnoticed.
  bool ok() const { return regressions.empty() && missing.empty(); }
};

/// Compares `current` against `baseline` with the given wall-time
/// `threshold` (> 0; e.g. 2.0 = fail past a 2x slowdown, report runs more
/// than 2x FASTER as improvements). Workloads are matched by name.
BenchComparison compare_bench_reports(const BenchReport& current, const BenchReport& baseline,
                                      double threshold);

}  // namespace retask::obs

#endif  // RETASK_OBS_BENCH_COMPARE_HPP
