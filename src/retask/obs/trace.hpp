// Scoped trace events with a Chrome trace_event JSON exporter.
//
// Each thread owns a fixed-capacity ring buffer of complete ("ph":"X")
// events; emitting is a couple of stores plus two steady_clock reads, and
// old events are overwritten once the ring fills, so tracing a long run is
// bounded-memory by construction. write_chrome_trace() merges every
// thread's ring, sorts by timestamp and emits the JSON object format that
// chrome://tracing / Perfetto load directly.
//
// Tracing is OFF by default even in RETASK_OBS=ON builds: enable it with
// set_trace_enabled(true) or the RETASK_TRACE environment variable (any
// non-empty value but "0"). Event names must be string literals (the ring
// stores the pointer, not a copy).
//
// Concurrency contract mirrors obs/metrics.hpp: emitting is thread-local;
// trace_snapshot()/write_chrome_trace()/clear_trace() must not race a
// parallel region.
#ifndef RETASK_OBS_TRACE_HPP
#define RETASK_OBS_TRACE_HPP

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace retask::obs {

/// One complete ("ph":"X") event. Timestamps are nanoseconds from the
/// process-wide trace epoch (first use of the clock anchor).
struct TraceEvent {
  const char* name = nullptr;  ///< string literal supplied by the emitter
  std::uint32_t tid = 0;       ///< small stable per-thread id
  std::uint64_t ts_ns = 0;     ///< scope begin
  std::uint64_t dur_ns = 0;    ///< scope duration
};

/// Runtime switch; initialized from RETASK_TRACE on first query.
bool trace_enabled();
void set_trace_enabled(bool enabled);

/// Ring capacity (events per thread) applied to every buffer; shrinking
/// drops the oldest events. Default 65536.
void set_trace_capacity(std::size_t events);

/// Nanoseconds since the trace epoch.
std::uint64_t trace_now_ns();

/// Appends one complete event for the calling thread (no-op when disabled).
void emit_trace(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns);

/// Every buffered event across all threads, sorted by (ts_ns, tid).
std::vector<TraceEvent> trace_snapshot();

/// Total buffered events across all threads.
std::size_t trace_event_count();

/// Drops every buffered event (capacity kept).
void clear_trace();

/// Writes {"displayTimeUnit":"ms","traceEvents":[...]} with "ph":"X"
/// events; timestamps/durations in microseconds as Chrome expects.
void write_chrome_trace(std::ostream& os);

/// File variant; throws retask::Error when the file cannot be opened.
/// Creates missing parent directories.
void write_chrome_trace_file(const std::string& path);

/// RAII emitter: one complete event covering the scope's lifetime. The
/// enabled check happens at construction, so a disabled trace costs one
/// branch.
class ScopedTrace {
 public:
  explicit ScopedTrace(const char* name)
      : name_(trace_enabled() ? name : nullptr), start_ns_(name_ ? trace_now_ns() : 0) {}
  ~ScopedTrace() {
    if (name_ != nullptr) emit_trace(name_, start_ns_, trace_now_ns() - start_ns_);
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_;
};

}  // namespace retask::obs

#ifndef RETASK_OBS_CAT
#define RETASK_OBS_CAT2(a, b) a##b
#define RETASK_OBS_CAT(a, b) RETASK_OBS_CAT2(a, b)
#endif

#if defined(RETASK_OBS_ENABLED) && RETASK_OBS_ENABLED

/// Emits a complete trace event covering the enclosing scope. `name` must
/// be a string literal.
#define RETASK_TRACE_SCOPE(name) \
  const ::retask::obs::ScopedTrace RETASK_OBS_CAT(retask_obs_trace_, __LINE__)(name)

#else

#define RETASK_TRACE_SCOPE(name) ((void)0)

#endif  // RETASK_OBS_ENABLED

#endif  // RETASK_OBS_TRACE_HPP
