// Solver metrics: thread-local counter/gauge/histogram registries.
//
// Why a separate subsystem: the ROADMAP's runtime story (R8 tables, the
// parallel harness) needs to explain *why* a solver is slow — DP rows
// reached vs. skipped, FPTAS guess rounds, local-search moves, pool
// utilization — without perturbing the hot paths it observes. The design
// splits three concerns:
//
//  * Interning — metric names are interned once per call site into stable
//    per-kind integer ids (intern_metric), so the record path is an indexed
//    add into a plain vector, never a map lookup.
//  * Recording — every thread owns a default Registry and writes through a
//    thread-local "active registry" pointer. A caller that wants per-unit
//    attribution (the experiment harness attributes per instance x
//    algorithm cell) installs a fresh Registry with ActiveScope for the
//    duration of the unit; on scope exit the collected data is folded back
//    into the surrounding registry so process-wide totals stay complete.
//  * Reporting — Registry::merge combines registries with commutative,
//    associative operations only (integer adds, min/max), exactly like
//    OnlineStats::merge backs the harness's ordered reduce. Merging the
//    same multiset of observations therefore yields bit-identical reports
//    in ANY merge order — which is what makes jobs=1 and jobs=8 runs
//    indistinguishable in the metrics columns. Wall-clock metrics (kTimer)
//    are inherently nondeterministic, so reports can exclude them
//    (include_timers = false) wherever bit-identity is asserted.
//
// Concurrency contract: recording is wait-free (thread-local), interning
// and thread registration take a mutex, and global_snapshot()/reset_all()
// must be called while no parallel region is running (the worker pool's
// region-end handshake in common/parallel.cpp establishes the necessary
// happens-before edge).
//
// The instrumentation macros at the bottom (RETASK_COUNT, RETASK_GAUGE_MAX,
// RETASK_RECORD, RETASK_SCOPED_TIMER, RETASK_OBS_ONLY) compile to nothing
// unless the build sets RETASK_OBS_ENABLED (CMake option RETASK_OBS), so a
// disabled build pays zero overhead — not even the argument evaluation.
#ifndef RETASK_OBS_METRICS_HPP
#define RETASK_OBS_METRICS_HPP

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace retask::obs {

/// What a metric measures; selects the merge rule and the report section.
enum class MetricKind : std::uint8_t {
  kCounter,    ///< monotone event count (merge: add)
  kGauge,      ///< high-water mark (merge: max)
  kHistogram,  ///< value distribution (merge: bucket add + min/min + max/max)
  kTimer,      ///< wall-clock histogram in ns; excluded from deterministic reports
};

/// Stable per-kind index assigned by intern_metric.
using MetricId = std::size_t;

/// Interns `name` under `kind` and returns its process-wide stable id.
/// Repeated calls with the same (kind, name) return the same id. Intended
/// to be called once per call site via a function-local static.
MetricId intern_metric(MetricKind kind, std::string_view name);

/// All names interned so far under `kind`, indexed by MetricId.
std::vector<std::string> metric_names(MetricKind kind);

/// Log2-bucketed distribution: bucket b holds values in [2^(b-1), 2^b)
/// (bucket 0 holds everything below 1). Counts are integers and min/max
/// combine commutatively, so merged histograms are order-independent.
struct Histogram {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  /// Floating-point accumulation: merge order can perturb the last ulps, so
  /// sum is reported only for timers (which every bit-identity guarantee
  /// already excludes), never for histogram rows.
  double sum = 0.0;
  std::array<std::uint64_t, 64> buckets{};

  void record(double value);
  void merge(const Histogram& other);
};

/// One set of metric values: per-kind vectors indexed by MetricId, grown on
/// demand. A plain value type — copyable, mergeable, independent of the
/// thread-local machinery — so the harness can store one per result slot.
class Registry {
 public:
  void add(MetricId id, std::uint64_t n);       ///< kCounter
  void gauge_max(MetricId id, double value);    ///< kGauge
  void record(MetricId id, double value);       ///< kHistogram
  void record_time(MetricId id, double ns);     ///< kTimer

  /// Folds `other` into this registry. Counter adds, gauge maxes and
  /// histogram merges are commutative and associative, so any merge order
  /// over the same registries produces bit-identical results.
  void merge(const Registry& other);

  /// True when nothing has been recorded.
  bool empty() const;

  /// Drops every recorded value (keeps capacity).
  void clear();

  std::uint64_t counter(MetricId id) const;         ///< 0 when never touched
  double gauge(MetricId id) const;                  ///< 0 when never touched
  const Histogram* histogram(MetricId id) const;    ///< nullptr when never touched
  const Histogram* timer(MetricId id) const;        ///< nullptr when never touched

 private:
  friend std::vector<struct MetricRow> report_rows(const Registry&, bool);
  std::vector<std::uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<bool> gauges_set_;
  std::vector<Histogram> histograms_;
  std::vector<Histogram> timers_;
};

/// The registry the current thread records into: the innermost ActiveScope
/// target, else the thread's default registry.
Registry& active();

/// Installs `target` as the calling thread's active registry for the scope's
/// lifetime. On destruction the previous target is restored and, by
/// default, the collected values are folded into it so surrounding totals
/// remain complete.
class ActiveScope {
 public:
  explicit ActiveScope(Registry& target, bool fold_into_parent = true);
  ~ActiveScope();
  ActiveScope(const ActiveScope&) = delete;
  ActiveScope& operator=(const ActiveScope&) = delete;

 private:
  Registry* target_;
  Registry* previous_;
  bool fold_;
};

/// Merge of every thread's default registry (live and retired threads).
/// Must not race a parallel region; see the file comment.
Registry global_snapshot();

/// Zeroes every thread-default registry (tests). Same quiescence contract
/// as global_snapshot().
void reset_all();

/// One formatted report line. `numeric` carries the value for CSV/JSON
/// emission; `value` is the canonical string rendering (integers exact,
/// doubles with max_digits10 so equal values render identically).
struct MetricRow {
  std::string name;    ///< metric name, histograms expanded to name.count/.min/.max
  MetricKind kind = MetricKind::kCounter;
  double numeric = 0.0;
  std::string value;
};

/// Flattens `registry` into rows sorted by name (so the report is
/// independent of interning order). Histograms and timers expand to
/// .count/.min/.max rows; timers are dropped when include_timers is false,
/// which is the mode every bit-identity guarantee is stated for.
std::vector<MetricRow> report_rows(const Registry& registry, bool include_timers = true);

/// Records elapsed wall time into a kTimer metric on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(MetricId id)
      : id_(id), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    active().record_time(
        id_, static_cast<double>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricId id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace retask::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. Compiled out (including argument evaluation)
// unless RETASK_OBS_ENABLED is defined by the build (-DRETASK_OBS=ON).

#ifndef RETASK_OBS_CAT
#define RETASK_OBS_CAT2(a, b) a##b
#define RETASK_OBS_CAT(a, b) RETASK_OBS_CAT2(a, b)
#endif

#if defined(RETASK_OBS_ENABLED) && RETASK_OBS_ENABLED

/// Statements that only exist to feed the metrics layer (local accumulator
/// declarations and updates); removed entirely in disabled builds.
#define RETASK_OBS_ONLY(...) __VA_ARGS__

/// Adds `n` to the counter `name` on the active registry.
#define RETASK_COUNT(name, n)                                                         \
  do {                                                                                \
    static const ::retask::obs::MetricId retask_obs_id_ =                             \
        ::retask::obs::intern_metric(::retask::obs::MetricKind::kCounter, name);      \
    ::retask::obs::active().add(retask_obs_id_, static_cast<std::uint64_t>(n));       \
  } while (0)

/// Raises the gauge `name` to at least `v`.
#define RETASK_GAUGE_MAX(name, v)                                                     \
  do {                                                                                \
    static const ::retask::obs::MetricId retask_obs_id_ =                             \
        ::retask::obs::intern_metric(::retask::obs::MetricKind::kGauge, name);        \
    ::retask::obs::active().gauge_max(retask_obs_id_, static_cast<double>(v));        \
  } while (0)

/// Records `v` into the histogram `name`.
#define RETASK_RECORD(name, v)                                                        \
  do {                                                                                \
    static const ::retask::obs::MetricId retask_obs_id_ =                             \
        ::retask::obs::intern_metric(::retask::obs::MetricKind::kHistogram, name);    \
    ::retask::obs::active().record(retask_obs_id_, static_cast<double>(v));           \
  } while (0)

/// Times the enclosing scope into the kTimer metric `name` (suffix the name
/// with _ns by convention).
#define RETASK_SCOPED_TIMER(name)                                                     \
  static const ::retask::obs::MetricId RETASK_OBS_CAT(retask_obs_tid_, __LINE__) =    \
      ::retask::obs::intern_metric(::retask::obs::MetricKind::kTimer, name);          \
  const ::retask::obs::ScopedTimer RETASK_OBS_CAT(retask_obs_timer_, __LINE__)(       \
      RETASK_OBS_CAT(retask_obs_tid_, __LINE__))

#else  // !RETASK_OBS_ENABLED

#define RETASK_OBS_ONLY(...)
#define RETASK_COUNT(name, n) ((void)0)
#define RETASK_GAUGE_MAX(name, v) ((void)0)
#define RETASK_RECORD(name, v) ((void)0)
#define RETASK_SCOPED_TIMER(name) ((void)0)

#endif  // RETASK_OBS_ENABLED

#endif  // RETASK_OBS_METRICS_HPP
