#include "retask/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "retask/common/error.hpp"

namespace retask::obs {
namespace {

constexpr std::size_t kKindCount = 4;

std::size_t kind_index(MetricKind kind) { return static_cast<std::size_t>(kind); }

/// Name <-> id tables, one per kind. Guarded by its mutex; the record path
/// never touches it (ids are interned once per call site).
struct InternTable {
  std::mutex mutex;
  std::vector<std::string> names;
  std::unordered_map<std::string, MetricId> ids;
};

InternTable& intern_table(MetricKind kind) {
  static InternTable tables[kKindCount];
  return tables[kind_index(kind)];
}

/// All thread-default registries, in registration order. Entries are
/// shared_ptrs so a registry outlives its thread (retired threads keep
/// contributing to global_snapshot()).
struct ThreadDirectory {
  std::mutex mutex;
  std::vector<std::shared_ptr<Registry>> registries;
};

ThreadDirectory& thread_directory() {
  static ThreadDirectory directory;
  return directory;
}

struct ThreadState {
  std::shared_ptr<Registry> default_registry = std::make_shared<Registry>();
  Registry* active = nullptr;

  ThreadState() {
    active = default_registry.get();
    ThreadDirectory& directory = thread_directory();
    std::lock_guard<std::mutex> lock(directory.mutex);
    directory.registries.push_back(default_registry);
  }
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

template <typename T>
void grow_to(std::vector<T>& vec, std::size_t index) {
  if (vec.size() <= index) vec.resize(index + 1);
}

std::string format_numeric(double value) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << value;
  return os.str();
}

void append_histogram_rows(std::vector<MetricRow>& rows, const std::string& name,
                           MetricKind kind, const Histogram& histogram) {
  if (histogram.count == 0) return;
  rows.push_back({name + ".count", kind, static_cast<double>(histogram.count),
                  std::to_string(histogram.count)});
  rows.push_back({name + ".min", kind, histogram.min, format_numeric(histogram.min)});
  rows.push_back({name + ".max", kind, histogram.max, format_numeric(histogram.max)});
  if (kind == MetricKind::kTimer) {
    // Totals make scoped timers attributable (e.g. the select scans' share
    // of a lockstep batch), but float sums are merge-order sensitive, so
    // the row exists only for timers — histogram reports stay bit-stable.
    rows.push_back({name + ".sum", kind, histogram.sum, format_numeric(histogram.sum)});
  }
}

}  // namespace

MetricId intern_metric(MetricKind kind, std::string_view name) {
  require(!name.empty(), "intern_metric: empty metric name");
  InternTable& table = intern_table(kind);
  std::lock_guard<std::mutex> lock(table.mutex);
  const auto it = table.ids.find(std::string(name));
  if (it != table.ids.end()) return it->second;
  const MetricId id = table.names.size();
  table.names.emplace_back(name);
  table.ids.emplace(std::string(name), id);
  return id;
}

std::vector<std::string> metric_names(MetricKind kind) {
  InternTable& table = intern_table(kind);
  std::lock_guard<std::mutex> lock(table.mutex);
  return table.names;
}

void Histogram::record(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  // Bucket 0: value < 1 (including negatives/NaN-free zero); bucket b >= 1:
  // value in [2^(b-1), 2^b).
  std::size_t bucket = 0;
  if (value >= 1.0) {
    const int exponent = std::ilogb(value);
    bucket = static_cast<std::size_t>(std::min(exponent + 1, 63));
  }
  ++buckets[bucket];
}

void Histogram::merge(const Histogram& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  for (std::size_t b = 0; b < buckets.size(); ++b) buckets[b] += other.buckets[b];
}

void Registry::add(MetricId id, std::uint64_t n) {
  grow_to(counters_, id);
  counters_[id] += n;
}

void Registry::gauge_max(MetricId id, double value) {
  grow_to(gauges_, id);
  grow_to(gauges_set_, id);
  if (!gauges_set_[id] || value > gauges_[id]) gauges_[id] = value;
  gauges_set_[id] = true;
}

void Registry::record(MetricId id, double value) {
  grow_to(histograms_, id);
  histograms_[id].record(value);
}

void Registry::record_time(MetricId id, double ns) {
  grow_to(timers_, id);
  timers_[id].record(ns);
}

void Registry::merge(const Registry& other) {
  for (std::size_t id = 0; id < other.counters_.size(); ++id) {
    if (other.counters_[id] != 0) add(id, other.counters_[id]);
  }
  for (std::size_t id = 0; id < other.gauges_.size(); ++id) {
    if (other.gauges_set_[id]) gauge_max(id, other.gauges_[id]);
  }
  for (std::size_t id = 0; id < other.histograms_.size(); ++id) {
    if (other.histograms_[id].count == 0) continue;
    grow_to(histograms_, id);
    histograms_[id].merge(other.histograms_[id]);
  }
  for (std::size_t id = 0; id < other.timers_.size(); ++id) {
    if (other.timers_[id].count == 0) continue;
    grow_to(timers_, id);
    timers_[id].merge(other.timers_[id]);
  }
}

bool Registry::empty() const {
  for (const std::uint64_t c : counters_) {
    if (c != 0) return false;
  }
  for (const bool set : gauges_set_) {
    if (set) return false;
  }
  for (const Histogram& h : histograms_) {
    if (h.count != 0) return false;
  }
  for (const Histogram& t : timers_) {
    if (t.count != 0) return false;
  }
  return true;
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  gauges_set_.clear();
  histograms_.clear();
  timers_.clear();
}

std::uint64_t Registry::counter(MetricId id) const {
  return id < counters_.size() ? counters_[id] : 0;
}

double Registry::gauge(MetricId id) const {
  return id < gauges_.size() && gauges_set_[id] ? gauges_[id] : 0.0;
}

const Histogram* Registry::histogram(MetricId id) const {
  return id < histograms_.size() && histograms_[id].count > 0 ? &histograms_[id] : nullptr;
}

const Histogram* Registry::timer(MetricId id) const {
  return id < timers_.size() && timers_[id].count > 0 ? &timers_[id] : nullptr;
}

Registry& active() { return *thread_state().active; }

ActiveScope::ActiveScope(Registry& target, bool fold_into_parent)
    : target_(&target), previous_(thread_state().active), fold_(fold_into_parent) {
  thread_state().active = target_;
}

ActiveScope::~ActiveScope() {
  thread_state().active = previous_;
  if (fold_ && previous_ != nullptr && !target_->empty()) previous_->merge(*target_);
}

Registry global_snapshot() {
  ThreadDirectory& directory = thread_directory();
  std::lock_guard<std::mutex> lock(directory.mutex);
  Registry merged;
  for (const auto& registry : directory.registries) merged.merge(*registry);
  return merged;
}

void reset_all() {
  ThreadDirectory& directory = thread_directory();
  std::lock_guard<std::mutex> lock(directory.mutex);
  for (const auto& registry : directory.registries) registry->clear();
}

std::vector<MetricRow> report_rows(const Registry& registry, bool include_timers) {
  std::vector<MetricRow> rows;
  const std::vector<std::string> counter_names = metric_names(MetricKind::kCounter);
  for (std::size_t id = 0; id < registry.counters_.size() && id < counter_names.size(); ++id) {
    const std::uint64_t value = registry.counters_[id];
    if (value == 0) continue;
    rows.push_back({counter_names[id], MetricKind::kCounter, static_cast<double>(value),
                    std::to_string(value)});
  }
  const std::vector<std::string> gauge_names = metric_names(MetricKind::kGauge);
  for (std::size_t id = 0; id < registry.gauges_.size() && id < gauge_names.size(); ++id) {
    if (!registry.gauges_set_[id]) continue;
    rows.push_back({gauge_names[id], MetricKind::kGauge, registry.gauges_[id],
                    format_numeric(registry.gauges_[id])});
  }
  const std::vector<std::string> histogram_names = metric_names(MetricKind::kHistogram);
  for (std::size_t id = 0; id < registry.histograms_.size() && id < histogram_names.size();
       ++id) {
    append_histogram_rows(rows, histogram_names[id], MetricKind::kHistogram,
                          registry.histograms_[id]);
  }
  if (include_timers) {
    const std::vector<std::string> timer_names = metric_names(MetricKind::kTimer);
    for (std::size_t id = 0; id < registry.timers_.size() && id < timer_names.size(); ++id) {
      append_histogram_rows(rows, timer_names[id], MetricKind::kTimer, registry.timers_[id]);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return rows;
}

}  // namespace retask::obs
