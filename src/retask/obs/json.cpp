#include "retask/obs/json.hpp"

#include <cmath>
#include <cstdlib>

#include "retask/common/error.hpp"

namespace retask::obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    require(pos_ == text_.size(), error("trailing content after JSON document"));
    return value;
  }

 private:
  std::string error(const std::string& message) const {
    return "json: " + message + " at offset " + std::to_string(pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < text_.size(), error("unexpected end of input"));
    return text_[pos_];
  }

  void expect(char ch) {
    require(peek() == ch, error(std::string("expected '") + ch + "'"));
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char ch = peek();
    switch (ch) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue value;
        value.type = JsonValue::Type::kString;
        value.string = parse_string();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.type = JsonValue::Type::kBool;
        if (consume_literal("true")) {
          value.boolean = true;
        } else {
          require(consume_literal("false"), error("bad literal"));
          value.boolean = false;
        }
        return value;
      }
      case 'n': {
        require(consume_literal("null"), error("bad literal"));
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  /// Consumes the 4 hex digits of a \uXXXX escape (the "\u" is already
  /// consumed) and returns the UTF-16 code unit.
  unsigned parse_hex4() {
    require(pos_ + 4 <= text_.size(), error("truncated \\u escape"));
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char hex = text_[pos_++];
      code <<= 4;
      if (hex >= '0' && hex <= '9') code |= static_cast<unsigned>(hex - '0');
      else if (hex >= 'a' && hex <= 'f') code |= static_cast<unsigned>(hex - 'a' + 10);
      else if (hex >= 'A' && hex <= 'F') code |= static_cast<unsigned>(hex - 'A' + 10);
      else throw Error(error("bad \\u escape digit"));
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < text_.size(), error("unterminated string"));
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        require(static_cast<unsigned char>(ch) >= 0x20, error("raw control character in string"));
        out += ch;
        continue;
      }
      require(pos_ < text_.size(), error("unterminated escape"));
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          // UTF-16 escape semantics (RFC 8259 §7): a high surrogate must be
          // followed by a \u-escaped low surrogate, and the pair decodes to
          // one non-BMP code point; a lone surrogate in either half is
          // malformed and rejected rather than smuggled into the output.
          if (code >= 0xD800 && code <= 0xDBFF) {
            require(pos_ + 2 <= text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u',
                    error("high surrogate not followed by \\u escape"));
            pos_ += 2;
            const unsigned low = parse_hex4();
            require(low >= 0xDC00 && low <= 0xDFFF,
                    error("high surrogate not followed by a low surrogate"));
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else {
            require(code < 0xDC00 || code > 0xDFFF, error("lone low surrogate \\u escape"));
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: throw Error(error("unknown escape"));
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // JSON forbids leading zeros: "01" is two tokens, i.e. malformed here.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' && text_[pos_ + 1] >= '0' &&
        text_[pos_ + 1] <= '9') {
      throw Error(error("leading zero in number"));
    }
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if ((ch >= '0' && ch <= '9') || ch == '.' || ch == 'e' || ch == 'E' || ch == '+' ||
          ch == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    require(pos_ > start, error("expected a value"));
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    require(end == token.c_str() + token.size() && std::isfinite(parsed),
            error("bad number '" + token + "'"));
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = parsed;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::as_bool() const {
  require(type == Type::kBool, "json: value is not a boolean");
  return boolean;
}

double JsonValue::as_number() const {
  require(type == Type::kNumber, "json: value is not a number");
  return number;
}

const std::string& JsonValue::as_string() const {
  require(type == Type::kString, "json: value is not a string");
  return string;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  require(type == Type::kArray, "json: value is not an array");
  return array;
}

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(ch >> 4) & 0xf];
          out += hex[ch & 0xf];
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace retask::obs
