#include "retask/obs/bench_compare.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "retask/common/error.hpp"
#include "retask/obs/json.hpp"

namespace retask::obs {
namespace {

constexpr const char* kSchema = "retask-bench-v1";

std::string format_metric_value(double value) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << value;
  return os.str();
}

const JsonValue& member(const JsonValue& object, const char* key) {
  const JsonValue* value = object.find(key);
  require(value != nullptr, std::string("bench report: missing key '") + key + "'");
  return *value;
}

std::uint64_t as_uint64(const JsonValue& value, const char* what) {
  const double number = value.as_number();
  require(number >= 0.0 && number <= 1.8e19 && number == std::floor(number),
          std::string("bench report: '") + what + "' must be a non-negative integer");
  return static_cast<std::uint64_t>(number);
}

}  // namespace

const double* BenchWorkloadResult::metric(const std::string& metric_name) const {
  for (const auto& [name_, value] : metrics) {
    if (name_ == metric_name) return &value;
  }
  return nullptr;
}

const BenchWorkloadResult* BenchReport::find(const std::string& name) const {
  for (const BenchWorkloadResult& workload : workloads) {
    if (workload.name == name) return &workload;
  }
  return nullptr;
}

void write_bench_report(std::ostream& os, const BenchReport& report) {
  os << "{\n";
  os << "  \"schema\": \"" << json_escape(report.schema) << "\",\n";
  os << "  \"jobs\": " << report.jobs << ",\n";
  os << "  \"repeats\": " << report.repeats << ",\n";
  os << "  \"backend\": \"" << json_escape(report.backend) << "\",\n";
  os << "  \"workloads\": [";
  for (std::size_t w = 0; w < report.workloads.size(); ++w) {
    const BenchWorkloadResult& workload = report.workloads[w];
    os << (w == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(workload.name) << "\",\n";
    os << "      \"median_ns\": " << workload.median_ns << ",\n";
    os << "      \"runs_ns\": [";
    for (std::size_t r = 0; r < workload.runs_ns.size(); ++r) {
      os << (r == 0 ? "" : ", ") << workload.runs_ns[r];
    }
    os << "],\n";
    os << "      \"metrics\": {";
    for (std::size_t m = 0; m < workload.metrics.size(); ++m) {
      os << (m == 0 ? "\n" : ",\n");
      os << "        \"" << json_escape(workload.metrics[m].first)
         << "\": " << format_metric_value(workload.metrics[m].second);
    }
    os << (workload.metrics.empty() ? "}" : "\n      }") << "\n";
    os << "    }";
  }
  os << (report.workloads.empty() ? "]" : "\n  ]") << "\n";
  os << "}\n";
}

void write_bench_report_file(const std::string& path, const BenchReport& report) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    require(!ec, "cannot create directory '" + parent.string() + "': " + ec.message());
  }
  std::ofstream out(path);
  require(out.good(), "cannot open bench report '" + path + "' for writing");
  write_bench_report(out, report);
  out.flush();
  require(out.good(), "failed writing bench report '" + path + "'");
}

BenchReport read_bench_report(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const JsonValue document = parse_json(buffer.str());
  require(document.type == JsonValue::Type::kObject, "bench report: top level must be an object");

  BenchReport report;
  report.schema = member(document, "schema").as_string();
  require(report.schema == kSchema,
          "bench report: unsupported schema '" + report.schema + "' (expected " + kSchema + ")");
  report.jobs = static_cast<int>(as_uint64(member(document, "jobs"), "jobs"));
  report.repeats = static_cast<int>(as_uint64(member(document, "repeats"), "repeats"));
  if (const JsonValue* backend = document.find("backend")) {
    report.backend = backend->as_string();
  }

  for (const JsonValue& entry : member(document, "workloads").as_array()) {
    require(entry.type == JsonValue::Type::kObject, "bench report: workload must be an object");
    BenchWorkloadResult workload;
    workload.name = member(entry, "name").as_string();
    require(!workload.name.empty(), "bench report: workload name must be non-empty");
    workload.median_ns = as_uint64(member(entry, "median_ns"), "median_ns");
    for (const JsonValue& run : member(entry, "runs_ns").as_array()) {
      workload.runs_ns.push_back(as_uint64(run, "runs_ns"));
    }
    if (const JsonValue* metrics = entry.find("metrics")) {
      require(metrics->type == JsonValue::Type::kObject,
              "bench report: metrics must be an object");
      for (const auto& [name, value] : metrics->object) {
        workload.metrics.emplace_back(name, value.as_number());
      }
    }
    require(report.find(workload.name) == nullptr,
            "bench report: duplicate workload '" + workload.name + "'");
    report.workloads.push_back(std::move(workload));
  }
  return report;
}

BenchReport read_bench_report_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open bench report '" + path + "'");
  return read_bench_report(in);
}

BenchComparison compare_bench_reports(const BenchReport& current, const BenchReport& baseline,
                                      double threshold) {
  require(threshold > 0.0, "compare_bench_reports: threshold must be positive");
  BenchComparison comparison;
  for (const BenchWorkloadResult& base : baseline.workloads) {
    const BenchWorkloadResult* cur = current.find(base.name);
    if (cur == nullptr) {
      comparison.missing.push_back(base.name);
      continue;
    }
    // A zero baseline median carries no timing signal (sub-resolution
    // workload); skip the ratio rather than dividing by zero.
    if (base.median_ns > 0) {
      const double ratio =
          static_cast<double>(cur->median_ns) / static_cast<double>(base.median_ns);
      if (ratio > threshold) {
        comparison.regressions.push_back({base.name, base.median_ns, cur->median_ns, ratio});
      } else if (ratio < 1.0 / threshold) {
        // Symmetric to the regression gate: a run this much faster means the
        // baseline is stale and masks future regressions of the same size.
        comparison.improvements.push_back({base.name, base.median_ns, cur->median_ns, ratio});
      }
    }
    for (const auto& [metric_name, base_value] : base.metrics) {
      const double* cur_value = cur->metric(metric_name);
      if (cur_value != nullptr && *cur_value != base_value) {
        comparison.metric_drift.push_back({base.name, metric_name, base_value, *cur_value});
      }
    }
  }
  for (const BenchWorkloadResult& cur : current.workloads) {
    if (baseline.find(cur.name) == nullptr) comparison.added.push_back(cur.name);
  }
  return comparison;
}

}  // namespace retask::obs
