// Umbrella header: the complete public API of the retask library.
//
// retask reproduces "Energy-efficient real-time task scheduling with task
// rejection" (DATE 2007): scheduling frame-based or periodic real-time tasks
// on speed-bounded DVS processors where tasks may be rejected at a penalty,
// minimizing energy plus total rejection penalty. See DESIGN.md for the
// system inventory and README.md for a quickstart.
#ifndef RETASK_RETASK_HPP
#define RETASK_RETASK_HPP

#include "retask/common/bit_matrix.hpp"
#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/common/parallel.hpp"
#include "retask/common/rng.hpp"
#include "retask/common/stats.hpp"
#include "retask/common/table.hpp"
#include "retask/core/algorithm_registry.hpp"
#include "retask/core/allocation.hpp"
#include "retask/core/budgeted.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/exhaustive.hpp"
#include "retask/core/fptas.hpp"
#include "retask/core/greedy.hpp"
#include "retask/core/het_allocation.hpp"
#include "retask/core/leakage_aware.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/core/mp_scale.hpp"
#include "retask/core/multiproc.hpp"
#include "retask/core/periodic.hpp"
#include "retask/core/problem.hpp"
#include "retask/core/solution.hpp"
#include "retask/core/solver.hpp"
#include "retask/core/two_pe.hpp"
#include "retask/exp/harness.hpp"
#include "retask/exp/mp_scale_sweep.hpp"
#include "retask/exp/stochastic_sweep.hpp"
#include "retask/exp/workload.hpp"
#include "retask/obs/bench_compare.hpp"
#include "retask/obs/json.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/obs/trace.hpp"
#include "retask/power/critical_speed.hpp"
#include "retask/power/energy_curve.hpp"
#include "retask/power/freq_ladder.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/power/power_model.hpp"
#include "retask/power/table_power.hpp"
#include "retask/sched/edf_sim.hpp"
#include "retask/sched/feasibility.hpp"
#include "retask/sched/frame_sim.hpp"
#include "retask/sched/online_sim.hpp"
#include "retask/sched/partition.hpp"
#include "retask/sched/reclaim.hpp"
#include "retask/sched/speed_schedule.hpp"
#include "retask/sched/stochastic.hpp"
#include "retask/task/generator.hpp"
#include "retask/task/task.hpp"
#include "retask/task/task_set.hpp"

#endif  // RETASK_RETASK_HPP
