#include "retask/io/task_io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "retask/common/error.hpp"

namespace retask {
namespace {

/// Splits one CSV line on commas, trimming surrounding whitespace.
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) {
    const auto begin = field.find_first_not_of(" \t\r");
    const auto end = field.find_last_not_of(" \t\r");
    fields.push_back(begin == std::string::npos ? std::string()
                                                : field.substr(begin, end - begin + 1));
  }
  return fields;
}

bool parse_int64(const std::string& text, std::int64_t& out) {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last && !text.empty();
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  std::size_t used = 0;
  try {
    out = std::stod(text, &used);
  } catch (const std::exception&) {
    return false;
  }
  return used == text.size() && std::isfinite(out);
}

[[noreturn]] void fail(int line_number, const std::string& message) {
  throw Error("task file line " + std::to_string(line_number) + ": " + message);
}

/// A row is a header only when no field parses as a number. A row whose id
/// is garbled but whose remaining fields are numeric ("x1,40,0.5") is a data
/// row with a typo and must be reported, not silently dropped.
bool is_header_row(const std::vector<std::string>& fields) {
  for (const std::string& field : fields) {
    double probe = 0.0;
    if (parse_double(field, probe)) return false;
  }
  return true;
}

/// Iterates data lines of `in`, calling `on_row(fields, line_number)`; skips
/// comments, blanks and a single header row.
template <typename OnRow>
void for_each_row(std::istream& in, OnRow on_row) {
  std::string line;
  int line_number = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') continue;
    const std::vector<std::string> fields = split_csv(line);
    if (first_data_line) {
      first_data_line = false;
      if (is_header_row(fields)) continue;
    }
    on_row(fields, line_number);
  }
}

/// Runs `validate(task)` and converts the failure into a line-numbered one.
template <typename TaskT>
void validate_row(const TaskT& task, int line_number) {
  try {
    validate(task);
  } catch (const Error& error) {
    fail(line_number, error.what());
  }
}

}  // namespace

FrameTaskSet read_frame_tasks(std::istream& in) {
  std::vector<FrameTask> tasks;
  for_each_row(in, [&](const std::vector<std::string>& fields, int line_number) {
    if (fields.size() != 3) fail(line_number, "expected 3 fields: id,cycles,penalty");
    std::int64_t id = 0;
    std::int64_t cycles = 0;
    double penalty = 0.0;
    if (!parse_int64(fields[0], id)) fail(line_number, "bad task id '" + fields[0] + "'");
    if (!parse_int64(fields[1], cycles)) fail(line_number, "bad cycles '" + fields[1] + "'");
    if (!parse_double(fields[2], penalty)) fail(line_number, "bad penalty '" + fields[2] + "'");
    const FrameTask task{static_cast<int>(id), cycles, penalty};
    validate_row(task, line_number);
    tasks.push_back(task);
  });
  return FrameTaskSet(std::move(tasks));
}

PeriodicTaskSet read_periodic_tasks(std::istream& in) {
  std::vector<PeriodicTask> tasks;
  for_each_row(in, [&](const std::vector<std::string>& fields, int line_number) {
    if (fields.size() != 4) fail(line_number, "expected 4 fields: id,cycles,period,penalty");
    std::int64_t id = 0;
    std::int64_t cycles = 0;
    std::int64_t period = 0;
    double penalty = 0.0;
    if (!parse_int64(fields[0], id)) fail(line_number, "bad task id '" + fields[0] + "'");
    if (!parse_int64(fields[1], cycles)) fail(line_number, "bad cycles '" + fields[1] + "'");
    if (!parse_int64(fields[2], period)) fail(line_number, "bad period '" + fields[2] + "'");
    if (!parse_double(fields[3], penalty)) fail(line_number, "bad penalty '" + fields[3] + "'");
    const PeriodicTask task{static_cast<int>(id), cycles, period, penalty};
    validate_row(task, line_number);
    tasks.push_back(task);
  });
  return PeriodicTaskSet(std::move(tasks));
}

namespace {
template <typename Reader>
auto read_file(const std::string& path, Reader reader) {
  std::ifstream in(path);
  require(in.good(), "cannot open task file '" + path + "'");
  return reader(in);
}
}  // namespace

FrameTaskSet read_frame_tasks_file(const std::string& path) {
  return read_file(path, [](std::istream& in) { return read_frame_tasks(in); });
}

PeriodicTaskSet read_periodic_tasks_file(const std::string& path) {
  return read_file(path, [](std::istream& in) { return read_periodic_tasks(in); });
}

namespace {
/// Raises the stream to round-trip-exact double precision for the writer's
/// lifetime (counterexample replays must rebuild penalties bit-for-bit).
class PrecisionGuard {
 public:
  explicit PrecisionGuard(std::ostream& out)
      : out_(out), saved_(out.precision(std::numeric_limits<double>::max_digits10)) {}
  ~PrecisionGuard() { out_.precision(saved_); }
  PrecisionGuard(const PrecisionGuard&) = delete;
  PrecisionGuard& operator=(const PrecisionGuard&) = delete;

 private:
  std::ostream& out_;
  std::streamsize saved_;
};
}  // namespace

void write_frame_tasks(std::ostream& out, const FrameTaskSet& tasks) {
  const PrecisionGuard guard(out);
  out << "id,cycles,penalty\n";
  for (const FrameTask& task : tasks.tasks()) {
    out << task.id << ',' << task.cycles << ',' << task.penalty << '\n';
  }
}

void write_periodic_tasks(std::ostream& out, const PeriodicTaskSet& tasks) {
  const PrecisionGuard guard(out);
  out << "id,cycles,period,penalty\n";
  for (const PeriodicTask& task : tasks.tasks()) {
    out << task.id << ',' << task.cycles << ',' << task.period << ',' << task.penalty << '\n';
  }
}

void write_solution_csv(std::ostream& out, const RejectionProblem& problem,
                        const RejectionSolution& solution) {
  require(solution.accepted.size() == problem.size(), "write_solution_csv: size mismatch");
  out << "id,cycles,penalty,decision,processor\n";
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const FrameTask& task = problem.tasks()[i];
    out << task.id << ',' << task.cycles << ',' << task.penalty << ','
        << (solution.accepted[i] ? "accept" : "reject") << ',' << solution.processor_of[i]
        << '\n';
  }
}

}  // namespace retask
