// Command-line option parsing for the retask_cli tool (kept in the library
// so it is unit-testable).
#ifndef RETASK_IO_CLI_OPTIONS_HPP
#define RETASK_IO_CLI_OPTIONS_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "retask/power/energy_curve.hpp"
#include "retask/power/power_model.hpp"

namespace retask {

/// Parsed retask_cli options.
struct CliOptions {
  enum class Mode { kFrame, kPeriodic };

  Mode mode = Mode::kFrame;
  std::string input_path;         ///< required
  std::string solver = "opt-dp";  ///< algorithm_registry name
  int processors = 1;
  std::string model = "xscale";  ///< xscale | cubic | table5
  IdleDiscipline idle = IdleDiscipline::kDormantEnable;
  double frame = 1.0;       ///< frame mode: the common deadline D
  double capacity = 1000;   ///< frame mode: cycles that fit one processor at smax
  SleepParams sleep{};      ///< --esw / --tsw
  int jobs = 0;             ///< worker threads for parallel paths; 0 = auto
  bool csv = false;         ///< emit the per-task decision table as CSV
  bool help = false;

  // Stochastic replay of the accepted set (frame mode, single processor,
  // continuous models): --stochastic KIND:LO,HI enables it.
  std::string stochastic;            ///< empty = off; else "KIND:LO,HI"
  int trajectories = 16;             ///< seeded trajectories to replay
  int ladder = 0;                    ///< 0 = continuous; N >= 1 = N-level ladder
  std::uint64_t trajectory_seed = 1; ///< trajectory-draw seed
};

/// Parses `args` (without argv[0]); throws retask::Error on unknown flags,
/// missing values or out-of-range numbers. `--help` sets `help` and skips
/// the required-argument checks.
CliOptions parse_cli_options(const std::vector<std::string>& args);

/// Usage text shown by --help and on parse errors.
std::string cli_usage();

/// Builds the power model named by `CliOptions::model`; throws on unknown
/// names.
std::unique_ptr<PowerModel> make_model_by_name(const std::string& name);

}  // namespace retask

#endif  // RETASK_IO_CLI_OPTIONS_HPP
