// Task-set file I/O.
//
// Text formats are deliberately simple CSV so task sets can be produced by
// hand, spreadsheets, or trace-processing scripts:
//
//   frame tasks    : id,cycles,penalty
//   periodic tasks : id,cycles,period,penalty
//
// '#'-prefixed lines and blank lines are ignored; one optional header line
// (detected by a non-numeric first field) is skipped. Errors carry the line
// number. Writers emit the same format back, so round-trips are exact.
#ifndef RETASK_IO_TASK_IO_HPP
#define RETASK_IO_TASK_IO_HPP

#include <iosfwd>
#include <string>

#include "retask/core/solution.hpp"
#include "retask/task/task_set.hpp"

namespace retask {

/// Parses frame tasks from `in`; throws retask::Error with the offending
/// line number on malformed input.
FrameTaskSet read_frame_tasks(std::istream& in);

/// Parses periodic tasks from `in`.
PeriodicTaskSet read_periodic_tasks(std::istream& in);

/// Reads a whole file; throws retask::Error when the file cannot be opened.
FrameTaskSet read_frame_tasks_file(const std::string& path);
PeriodicTaskSet read_periodic_tasks_file(const std::string& path);

/// Writes the matching CSV (with a header line).
void write_frame_tasks(std::ostream& out, const FrameTaskSet& tasks);
void write_periodic_tasks(std::ostream& out, const PeriodicTaskSet& tasks);

/// Writes a per-task decision report for a solved instance:
/// id,cycles,penalty,decision,processor.
void write_solution_csv(std::ostream& out, const RejectionProblem& problem,
                        const RejectionSolution& solution);

}  // namespace retask

#endif  // RETASK_IO_TASK_IO_HPP
