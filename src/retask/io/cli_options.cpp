#include "retask/io/cli_options.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "retask/common/error.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/power/table_power.hpp"
#include "retask/sched/stochastic.hpp"

namespace retask {
namespace {

/// strtod with the failure modes closed: rejects trailing junk, literal
/// "inf"/"nan", and values strtod clamps on over/underflow (errno ERANGE),
/// so "--capacity 1e999" is an error instead of an infinite capacity.
double parse_finite_double(const std::string& flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  require(end != nullptr && *end == '\0' && !value.empty() && errno != ERANGE &&
              std::isfinite(parsed),
          flag + " expects a finite number, got '" + value + "'");
  return parsed;
}

double parse_positive_double(const std::string& flag, const std::string& value) {
  const double parsed = parse_finite_double(flag, value);
  require(parsed > 0.0, flag + " expects a positive number, got '" + value + "'");
  return parsed;
}

double parse_non_negative_double(const std::string& flag, const std::string& value) {
  const double parsed = parse_finite_double(flag, value);
  require(parsed >= 0.0, flag + " expects a non-negative number, got '" + value + "'");
  return parsed;
}

int parse_positive_int(const std::string& flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  require(end != nullptr && *end == '\0' && !value.empty() && errno != ERANGE && parsed > 0 &&
              parsed < 100000,
          flag + " expects a positive integer below 100000, got '" + value + "'");
  return static_cast<int>(parsed);
}

std::uint64_t parse_seed(const std::string& flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  require(end != nullptr && *end == '\0' && !value.empty() && errno != ERANGE &&
              value.find('-') == std::string::npos,
          flag + " expects a non-negative integer seed, got '" + value + "'");
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

std::string cli_usage() {
  return R"(retask_cli — energy-efficient real-time task scheduling with task rejection

usage: retask_cli --input FILE [options]

  --input FILE        task CSV (frame: id,cycles,penalty;
                      periodic: id,cycles,period,penalty)
  --mode MODE         frame (default) | periodic
  --solver NAME       opt-dp (default), opt-exh, fptas:<eps>, greedy,
                      ls-greedy, all-accept, rand, mp-ltf-dp, la-ltf-ff,
                      mp-greedy, mp-rand, mp-opt-exh
  --processors M      identical processors (default 1)
  --model NAME        xscale (default) | cubic | table5
  --idle MODE         enable (default, can sleep) | disable (always leaks)
  --frame D           frame mode: common deadline in time units (default 1)
  --capacity C        frame mode: cycles one processor executes at top speed
                      within the frame (default 1000)
  --esw E / --tsw T   dormant-mode switch overheads (default 0)
  --jobs N            worker threads for parallel execution paths
                      (default: RETASK_JOBS env var, else all hardware
                      threads; results are identical for every N)
  --csv               print the per-task decision table as CSV
  --stochastic SPEC   frame mode, 1 processor, continuous models: after the
                      solve, replay the accepted set with per-job actual
                      cycles drawn from SPEC = KIND:LO,HI (kind uniform,
                      normal or bimodal; LO,HI the ACET/WCET support) and
                      print a per-policy mean-energy table
  --trajectories K    stochastic replay: seeded trajectories (default 16)
  --ladder N          stochastic replay: execute on an N-level frequency
                      ladder (default 0 = ideal continuous speeds)
  --traj-seed S       stochastic replay: trajectory-draw seed (default 1)
  --help              this text
)";
}

std::unique_ptr<PowerModel> make_model_by_name(const std::string& name) {
  if (name == "xscale") return PolynomialPowerModel::xscale().clone();
  if (name == "cubic") return PolynomialPowerModel::cubic().clone();
  if (name == "table5") return TablePowerModel::xscale5().clone();
  throw Error("unknown power model '" + name + "' (expected xscale, cubic or table5)");
}

CliOptions parse_cli_options(const std::vector<std::string>& args) {
  CliOptions options;
  const auto next_value = [&](std::size_t& i, const std::string& flag) -> const std::string& {
    require(i + 1 < args.size(), flag + " expects a value");
    return args[++i];
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--input") {
      options.input_path = next_value(i, arg);
    } else if (arg == "--mode") {
      const std::string& value = next_value(i, arg);
      if (value == "frame") options.mode = CliOptions::Mode::kFrame;
      else if (value == "periodic") options.mode = CliOptions::Mode::kPeriodic;
      else throw Error("--mode expects 'frame' or 'periodic', got '" + value + "'");
    } else if (arg == "--solver") {
      options.solver = next_value(i, arg);
    } else if (arg == "--processors") {
      options.processors = parse_positive_int(arg, next_value(i, arg));
    } else if (arg == "--model") {
      options.model = next_value(i, arg);
    } else if (arg == "--idle") {
      const std::string& value = next_value(i, arg);
      if (value == "enable") options.idle = IdleDiscipline::kDormantEnable;
      else if (value == "disable") options.idle = IdleDiscipline::kDormantDisable;
      else throw Error("--idle expects 'enable' or 'disable', got '" + value + "'");
    } else if (arg == "--frame") {
      options.frame = parse_positive_double(arg, next_value(i, arg));
    } else if (arg == "--capacity") {
      options.capacity = parse_positive_double(arg, next_value(i, arg));
    } else if (arg == "--jobs") {
      options.jobs = parse_positive_int(arg, next_value(i, arg));
    } else if (arg == "--esw") {
      options.sleep.switch_energy = parse_non_negative_double(arg, next_value(i, arg));
    } else if (arg == "--tsw") {
      options.sleep.switch_time = parse_non_negative_double(arg, next_value(i, arg));
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--stochastic") {
      options.stochastic = next_value(i, arg);
    } else if (arg == "--trajectories") {
      options.trajectories = parse_positive_int(arg, next_value(i, arg));
    } else if (arg == "--ladder") {
      options.ladder = parse_positive_int(arg, next_value(i, arg));
    } else if (arg == "--traj-seed") {
      options.trajectory_seed = parse_seed(arg, next_value(i, arg));
    } else {
      throw Error("unknown option '" + arg + "' (see --help)");
    }
  }

  if (!options.help) {
    require(!options.input_path.empty(), "--input is required (see --help)");
    make_model_by_name(options.model);  // validate early
    if (!options.stochastic.empty()) {
      require(options.mode == CliOptions::Mode::kFrame,
              "--stochastic replays the frame schedule; use --mode frame");
      require(options.processors == 1, "--stochastic requires --processors 1");
      require(options.model != "table5",
              "--stochastic requires a continuous model (the --ladder flag supplies "
              "the discreteness)");
      validate(parse_distribution(options.stochastic));  // fail on bad SPEC early
    }
  }
  return options;
}

}  // namespace retask
