// Replayable counterexample files for the differential fuzz harness.
//
// A counterexample is a frame-task CSV preceded by "#@ key=value" metadata
// lines carrying the scenario that rebuilt the failing instance (power
// model, idle discipline, frame, resolution, processor count, seed, ...).
// Because "#@" lines are ordinary comments to read_frame_tasks, every
// counterexample file is also a plain task file: it can be fed directly to
// retask_cli for manual poking, while retask_fuzz --replay restores the full
// scenario. The io layer stores the metadata as opaque ordered key=value
// pairs; verify/differential.cpp owns the semantic mapping.
#ifndef RETASK_IO_COUNTEREXAMPLE_HPP
#define RETASK_IO_COUNTEREXAMPLE_HPP

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "retask/task/task_set.hpp"

namespace retask {

/// One counterexample file: ordered metadata plus the (minimized) task set.
struct CounterexampleFile {
  std::vector<std::pair<std::string, std::string>> meta;
  FrameTaskSet tasks;

  /// First value stored under `key`, or nullptr.
  const std::string* find(const std::string& key) const;
};

/// Writes "#@ key=value" lines followed by the standard frame-task CSV.
/// Keys must be non-empty and free of '=', '\n' and leading/trailing blanks;
/// values must be single-line. Throws retask::Error otherwise.
void write_counterexample(std::ostream& out, const CounterexampleFile& file);

/// Parses a counterexample file; unmarked content is parsed exactly like
/// read_frame_tasks (so validation and line numbers behave identically).
/// Malformed "#@" lines (no '=') throw retask::Error with the line number.
CounterexampleFile read_counterexample(std::istream& in);

/// File variants; throw retask::Error when the file cannot be opened.
void write_counterexample_file(const std::string& path, const CounterexampleFile& file);
CounterexampleFile read_counterexample_file(const std::string& path);

}  // namespace retask

#endif  // RETASK_IO_COUNTEREXAMPLE_HPP
