#include "retask/io/counterexample.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "retask/common/error.hpp"
#include "retask/io/task_io.hpp"

namespace retask {
namespace {

constexpr const char* kMetaPrefix = "#@ ";

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return std::string();
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

void check_meta_entry(const std::string& key, const std::string& value) {
  require(!key.empty() && key == trim(key) && key.find('=') == std::string::npos &&
              key.find('\n') == std::string::npos,
          "counterexample meta key '" + key + "' must be a non-empty single token without '='");
  require(value.find('\n') == std::string::npos,
          "counterexample meta value for '" + key + "' must be single-line");
}

}  // namespace

const std::string* CounterexampleFile::find(const std::string& key) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return &v;
  }
  return nullptr;
}

void write_counterexample(std::ostream& out, const CounterexampleFile& file) {
  for (const auto& [key, value] : file.meta) {
    check_meta_entry(key, value);
    out << kMetaPrefix << key << '=' << value << '\n';
  }
  write_frame_tasks(out, file.tasks);
}

CounterexampleFile read_counterexample(std::istream& in) {
  CounterexampleFile file;
  std::ostringstream task_text;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = trim(line);
    if (trimmed.rfind("#@", 0) == 0) {
      const std::string entry = trim(trimmed.substr(2));
      const auto eq = entry.find('=');
      require(eq != std::string::npos && eq > 0,
              "counterexample line " + std::to_string(line_number) +
                  ": metadata must be '#@ key=value', got '" + trimmed + "'");
      file.meta.emplace_back(trim(entry.substr(0, eq)), trim(entry.substr(eq + 1)));
      // Keep the line count aligned for task-parse error messages.
      task_text << "#\n";
      continue;
    }
    task_text << line << '\n';
  }
  std::istringstream tasks_in(task_text.str());
  file.tasks = read_frame_tasks(tasks_in);
  return file;
}

void write_counterexample_file(const std::string& path, const CounterexampleFile& file) {
  // `--out runs/today/ce` style prefixes point into directories that may not
  // exist yet; create them instead of failing the whole fuzz run at dump
  // time.
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    require(!ec, "cannot create directory '" + parent.string() + "' for counterexample '" +
                     path + "': " + ec.message());
  }
  std::ofstream out(path);
  require(out.good(), "cannot open counterexample file '" + path + "' for writing");
  write_counterexample(out, file);
  out.flush();
  require(out.good(), "failed writing counterexample file '" + path + "'");
}

CounterexampleFile read_counterexample_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open counterexample file '" + path + "'");
  return read_counterexample(in);
}

}  // namespace retask
