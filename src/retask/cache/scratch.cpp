#include "retask/cache/scratch.hpp"

namespace retask {

// No obs counters here on purpose: "was this a reuse" depends on which
// thread happened to run which solve, and harness metrics must stay
// bit-identical across --jobs counts (tests/test_obs.cpp pins that).

DpScratch& exact_dp_scratch() {
  thread_local DpScratch scratch;
  return scratch;
}

DpScratch& budgeted_scratch() {
  thread_local DpScratch scratch;
  return scratch;
}

FptasScratch& fptas_scratch() {
  thread_local FptasScratch scratch;
  return scratch;
}

GreedyScratch& greedy_scratch() {
  thread_local GreedyScratch scratch;
  return scratch;
}

}  // namespace retask
