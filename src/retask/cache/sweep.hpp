// Sweep-construction helpers shared by the harness, the benches, the fuzzer
// and the tests.
//
// A "sweep" here is a family of RejectionProblem points that differ in one
// knob but share their task set — the shape the reconstructed experiment
// grids (R1-style load/capacity sweeps) and the bench throughput workloads
// re-solve over and over. The helpers answer the two questions every
// sweep-aware cache needs: "do these points share an identical task set?"
// (the precondition for the prefix-DP warm start) and "give me the capacity
// variants of this instance" (the canonical sweep used by benches/tests).
#ifndef RETASK_CACHE_SWEEP_HPP
#define RETASK_CACHE_SWEEP_HPP

#include <vector>

#include "retask/core/problem.hpp"
#include "retask/power/energy_curve.hpp"

namespace retask {

/// Exact task-set equality: same size and identical (id, cycles, penalty)
/// triples in order. This is the warm-start precondition — the prefix-DP
/// table depends on nothing else about the instance.
bool same_task_sets(const FrameTaskSet& a, const FrameTaskSet& b);

/// Bitwise energy-curve equality: identical window, idle discipline, sleep
/// parameters and power model (discrete models point by point; continuous
/// models by parameters when the concrete type is known, else never equal).
/// E(W) is a pure function of the curve, so equal curves compute identical
/// energies — the precondition for sharing evaluations across instances.
bool same_curves(const EnergyCurve& a, const EnergyCurve& b);

/// Platform equality: same work_per_cycle, processor count and energy
/// curve. Problems on one platform map equal cycle counts to bit-identical
/// energies, which is exactly the EnergyMemo sharing contract (see
/// cache/energy_memo.hpp) and the lockstep batch solver's lane-grouping
/// precondition.
bool same_platforms(const RejectionProblem& a, const RejectionProblem& b);

/// Capacity-sweep variants of `base`: every point keeps the task set, the
/// energy curve and the processor count, and scales work_per_cycle by
/// 1/factor so point i's cycle capacity is ~factor x the base capacity
/// (factor in (0, 1] sweeps "same tasks, tighter processor"). Factors must
/// be positive.
std::vector<RejectionProblem> make_capacity_sweep(const RejectionProblem& base,
                                                  const std::vector<double>& factors);

}  // namespace retask

#endif  // RETASK_CACHE_SWEEP_HPP
