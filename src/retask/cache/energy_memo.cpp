#include "retask/cache/energy_memo.hpp"

#include "retask/obs/metrics.hpp"

namespace retask {
namespace {

/// Stable slot of the calling thread, assigned on first use and never
/// reused. Worker-pool threads persist for the process lifetime, so the
/// counter stays tiny in practice.
std::size_t thread_slot() {
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot = next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace

EnergyMemo::~EnergyMemo() {
  for (std::atomic<Shard*>& slot : shards_) {
    delete slot.load(std::memory_order_acquire);
  }
}

EnergyMemo::Shard* EnergyMemo::local_shard() {
  const std::size_t slot = thread_slot();
  if (slot >= kMaxShards) return nullptr;
  Shard* shard = shards_[slot].load(std::memory_order_acquire);
  if (shard == nullptr) {
    shard = new Shard();
    // The slot is owned by this thread, so the store cannot race another
    // writer; release pairs with the destructor's acquire.
    shards_[slot].store(shard, std::memory_order_release);
  }
  return shard;
}

bool EnergyMemo::lookup(Cycles cycles, double& energy) {
  Shard* shard = local_shard();
  if (shard == nullptr) return false;  // cold fallback, uncounted
  const auto it = shard->values.find(cycles);
  if (it == shard->values.end()) {
    count_miss();
    return false;
  }
  count_hit();
  energy = it->second;
  return true;
}

void EnergyMemo::record(Cycles cycles, double energy) {
  Shard* shard = local_shard();
  if (shard == nullptr) return;
  shard->values.emplace(cycles, energy);
}

std::size_t EnergyMemo::local_size() {
  Shard* shard = local_shard();
  return shard == nullptr ? 0 : shard->values.size();
}

std::size_t EnergyMemo::shard_count() const {
  std::size_t count = 0;
  for (const std::atomic<Shard*>& slot : shards_) {
    if (slot.load(std::memory_order_acquire) != nullptr) ++count;
  }
  return count;
}

void EnergyMemo::count_hit() { RETASK_COUNT("cache.energy_hits", 1); }

void EnergyMemo::count_miss() { RETASK_COUNT("cache.energy_misses", 1); }

}  // namespace retask
