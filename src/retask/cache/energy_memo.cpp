#include "retask/cache/energy_memo.hpp"

#include "retask/obs/metrics.hpp"

namespace retask {
namespace {

/// Stable slot of the calling thread, assigned on first use and never
/// reused. Worker-pool threads persist for the process lifetime, so the
/// counter stays tiny in practice.
std::size_t thread_slot() {
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot = next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace

EnergyMemo::~EnergyMemo() {
  for (std::atomic<Shard*>& slot : shards_) {
    delete slot.load(std::memory_order_acquire);
  }
}

EnergyMemo::Shard* EnergyMemo::local_shard() {
  const std::size_t slot = thread_slot();
  if (slot >= kMaxShards) return nullptr;
  Shard* shard = shards_[slot].load(std::memory_order_acquire);
  if (shard == nullptr) {
    shard = new Shard();
    // The slot is owned by this thread, so the store cannot race another
    // writer; release pairs with the destructor's acquire.
    shards_[slot].store(shard, std::memory_order_release);
  }
  return shard;
}

void EnergyMemo::reserve_dense(Cycles max_cycles) {
  if (max_cycles < 0) return;
  const auto want = static_cast<std::size_t>(max_cycles) + 1;
  if (want > kDenseLimit) return;
  // Monotonic max; shards grow their arrays lazily on next access.
  std::size_t current = dense_width_.load(std::memory_order_relaxed);
  while (current < want &&
         !dense_width_.compare_exchange_weak(current, want, std::memory_order_relaxed)) {
  }
}

void EnergyMemo::ensure_dense(Shard& shard, std::size_t width) {
  if (shard.dense.size() >= width) return;
  shard.dense.resize(width, 0.0);
  shard.dense_set.resize((width + 63) / 64, 0);
}

bool EnergyMemo::lookup(Cycles cycles, double& energy) {
  Shard* shard = local_shard();
  if (shard == nullptr) return false;  // cold fallback, uncounted
  const std::size_t width = dense_width_.load(std::memory_order_relaxed);
  if (width != 0 && cycles >= 0 && static_cast<std::size_t>(cycles) < width) {
    ensure_dense(*shard, width);
    const auto w = static_cast<std::size_t>(cycles);
    if ((shard->dense_set[w >> 6] >> (w & 63)) & 1u) {
      count_hit();
      energy = shard->dense[w];
      return true;
    }
    count_miss();
    return false;
  }
  const auto it = shard->values.find(cycles);
  if (it == shard->values.end()) {
    count_miss();
    return false;
  }
  count_hit();
  energy = it->second;
  return true;
}

void EnergyMemo::record(Cycles cycles, double energy) {
  Shard* shard = local_shard();
  if (shard == nullptr) return;
  const std::size_t width = dense_width_.load(std::memory_order_relaxed);
  if (width != 0 && cycles >= 0 && static_cast<std::size_t>(cycles) < width) {
    ensure_dense(*shard, width);
    const auto w = static_cast<std::size_t>(cycles);
    shard->dense[w] = energy;
    shard->dense_set[w >> 6] |= std::uint64_t{1} << (w & 63);
    return;
  }
  shard->values.emplace(cycles, energy);
}

std::size_t EnergyMemo::local_size() {
  Shard* shard = local_shard();
  if (shard == nullptr) return 0;
  std::size_t entries = shard->values.size();
  for (const std::uint64_t word : shard->dense_set) {
    entries += static_cast<std::size_t>(__builtin_popcountll(word));
  }
  return entries;
}

std::size_t EnergyMemo::shard_count() const {
  std::size_t count = 0;
  for (const std::atomic<Shard*>& slot : shards_) {
    if (slot.load(std::memory_order_acquire) != nullptr) ++count;
  }
  return count;
}

void EnergyMemo::count_hit() { RETASK_COUNT("cache.energy_hits", 1); }

void EnergyMemo::count_miss() { RETASK_COUNT("cache.energy_misses", 1); }

}  // namespace retask
