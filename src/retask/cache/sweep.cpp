#include "retask/cache/sweep.hpp"

#include <vector>

#include "retask/common/error.hpp"
#include "retask/power/polynomial_power.hpp"

namespace retask {
namespace {

/// Bitwise power-model equality as far as the energy curve can see it.
/// Discrete models are compared point by point (their curve is a function
/// of the operating points and the static power alone); continuous models
/// are compared by parameters when the concrete type is known. Unknown
/// continuous models never match — the cost is a missed sharing
/// opportunity, never a wrong grouping.
bool same_models(const PowerModel& a, const PowerModel& b) {
  if (a.is_continuous() != b.is_continuous()) return false;
  if (a.static_power() != b.static_power()) return false;
  if (a.min_speed() != b.min_speed() || a.max_speed() != b.max_speed()) return false;
  if (!a.is_continuous()) {
    const std::vector<double> speeds_a = a.available_speeds();
    if (speeds_a != b.available_speeds()) return false;
    for (const double s : speeds_a) {
      if (a.power(s) != b.power(s)) return false;
    }
    return true;
  }
  const auto* pa = dynamic_cast<const PolynomialPowerModel*>(&a);
  const auto* pb = dynamic_cast<const PolynomialPowerModel*>(&b);
  if (pa == nullptr || pb == nullptr) return false;
  return pa->beta1() == pb->beta1() && pa->beta2() == pb->beta2() && pa->alpha() == pb->alpha();
}

}  // namespace

bool same_curves(const EnergyCurve& a, const EnergyCurve& b) {
  return a.window() == b.window() && a.idle() == b.idle() &&
         a.sleep().switch_time == b.sleep().switch_time &&
         a.sleep().switch_energy == b.sleep().switch_energy &&
         a.max_workload() == b.max_workload() && same_models(a.model(), b.model());
}

bool same_platforms(const RejectionProblem& a, const RejectionProblem& b) {
  return a.work_per_cycle() == b.work_per_cycle() &&
         a.processor_count() == b.processor_count() && same_curves(a.curve(), b.curve());
}

bool same_task_sets(const FrameTaskSet& a, const FrameTaskSet& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].cycles != b[i].cycles || a[i].penalty != b[i].penalty) {
      return false;
    }
  }
  return true;
}

std::vector<RejectionProblem> make_capacity_sweep(const RejectionProblem& base,
                                                  const std::vector<double>& factors) {
  std::vector<RejectionProblem> points;
  points.reserve(factors.size());
  for (const double factor : factors) {
    require(factor > 0.0, "make_capacity_sweep: factors must be positive");
    points.emplace_back(base.tasks(), base.curve(), base.work_per_cycle() / factor,
                        base.processor_count());
  }
  return points;
}

}  // namespace retask
