#include "retask/cache/sweep.hpp"

#include "retask/common/error.hpp"

namespace retask {

bool same_task_sets(const FrameTaskSet& a, const FrameTaskSet& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].cycles != b[i].cycles || a[i].penalty != b[i].penalty) {
      return false;
    }
  }
  return true;
}

std::vector<RejectionProblem> make_capacity_sweep(const RejectionProblem& base,
                                                  const std::vector<double>& factors) {
  std::vector<RejectionProblem> points;
  points.reserve(factors.size());
  for (const double factor : factors) {
    require(factor > 0.0, "make_capacity_sweep: factors must be positive");
    points.emplace_back(base.tasks(), base.curve(), base.work_per_cycle() / factor,
                        base.processor_count());
  }
  return points;
}

}  // namespace retask
