// Thread-local scratch arenas for the knapsack-style DP solvers.
//
// A sweep grid runs thousands of solves per thread; before this module each
// solve allocated its value row and bit-packed choice table from scratch.
// The arenas keep one buffer set per (thread, solver family) at its
// high-water mark — BitMatrix::reset already reuses capacity, and the value
// rows are assign()ed, so repeated solves at similar sizes stop touching
// the allocator entirely. Each accessor returns storage private to the
// calling thread, so the solvers stay safe to run concurrently; solvers
// must finish with the arena before returning (none of them calls another
// arena user of the same family while mid-solve).
#ifndef RETASK_CACHE_SCRATCH_HPP
#define RETASK_CACHE_SCRATCH_HPP

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "retask/common/bit_matrix.hpp"
#include "retask/task/task.hpp"

namespace retask {

/// Buffers of one exact/budgeted DP solve: the value row plus the choice
/// table, and the chunked-select batch buffers (core/dp_select.hpp: the
/// predicted rows of one 64-row chunk and their batched energies).
struct DpScratch {
  std::vector<double> value;
  BitMatrix take;
  std::vector<Cycles> select_cycles;
  std::vector<double> select_energy;
};

/// A filled exact-DP table captured for handoff between solvers — the
/// lockstep lanes (batch/lockstep.hpp) export their per-lane tables in this
/// form and DeltaSolver::adopt_table (serve/delta_solver.hpp) seeds from it
/// instead of replaying the fill. The capture is self-describing: `value`
/// and `take` are the fill at some capacity `value.size() - 1` over the
/// producing task vector in order, `reachable` is the fill's reachability
/// bound, and `cp_values[c]` / `cp_reach[c]` snapshot the value row after
/// the first (c + 1) * checkpoint_stride tasks — dense (one row per stride
/// boundary), exactly the rows DeltaSolver's own checkpointing would have
/// retained. An empty `value` means "no capture" (the producer gated it
/// off); consumers must fall back to a cold seed.
struct DpTableExport {
  std::vector<double> value;  ///< kept[w] over w in [0, fill capacity]
  BitMatrix take;             ///< per-task choice bits, one row per task
  std::size_t reachable = 0;  ///< largest reachable w after the last task
  int checkpoint_stride = 0;  ///< tasks between cp_values rows
  std::vector<std::vector<double>> cp_values;  ///< value row per stride boundary
  std::vector<std::size_t> cp_reach;           ///< reachability per boundary
};

/// Buffers reused across the guess-refinement rounds of one FPTAS solve.
struct FptasScratch {
  std::vector<std::size_t> movable;  ///< task indices with penalty <= guess
  std::vector<std::size_t> quant;    ///< floor(penalty / delta) per movable task
  std::vector<Cycles> rej;
  std::vector<double> true_pen;
  BitMatrix take;
  // Candidate rows surviving the sweep prefilter, batched through the fused
  // cycles->energy kernel (structure-of-arrays: same index, three facets).
  std::vector<std::size_t> cand_row;
  std::vector<Cycles> cand_cycles;
  std::vector<double> cand_energy;
  /// Fallback energy memo for problems without an attached EnergyMemo;
  /// cleared at the start of every solve (entries are only valid within one
  /// problem's curve).
  std::unordered_map<Cycles, double> energy_memo;
};

/// Buffers of one marginal-greedy solve: per-task probe loads and flip
/// deltas (structure-of-arrays over the task index so the argmin kernel
/// scans one contiguous double row per round).
struct GreedyScratch {
  std::vector<double> delta;        ///< objective change of flipping task i (+inf: infeasible)
  std::vector<Cycles> eval_cycles;  ///< compacted batch input (feasible flips)
  std::vector<double> eval_energy;  ///< batch output aligned with eval_cycles
};

/// The calling thread's arena for the exact DP (core/exact_dp.cpp).
DpScratch& exact_dp_scratch();

/// The calling thread's arena for the budgeted DP (core/budgeted.cpp).
DpScratch& budgeted_scratch();

/// The calling thread's arena for the FPTAS rounds (core/fptas.cpp).
FptasScratch& fptas_scratch();

/// The calling thread's arena for the marginal greedy (core/greedy.cpp).
GreedyScratch& greedy_scratch();

}  // namespace retask

#endif  // RETASK_CACHE_SCRATCH_HPP
