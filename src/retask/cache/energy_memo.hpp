// Shared energy memo: a per-problem cache of E(cycles) evaluations.
//
// Every solver in core/ spends most of its time in
// RejectionProblem::energy_of_cycles — each call optimizes a speed schedule
// over the curve's hull — and a sweep grid evaluates the *same* curve at the
// same cycle counts thousands of times: the DP objective sweep, the FPTAS
// guess rounds, the marginal greedy's flip loop, the exhaustive mask loop
// and the harness's reference solve all revisit overlapping loads. The memo
// turns those repeats into hash lookups while keeping two hard guarantees:
//
//  * Bit-identity. E(W) is a pure function of (curve, work_per_cycle,
//    cycles); the memo only ever returns a value the cold path computed, so
//    cached and uncached runs produce the same bits in every consumer.
//  * Lock-free sharding. One memo may be shared across the worker pool (a
//    whole sweep's cells attach the same memo when their curves are
//    identical — see exp/harness.hpp). Each thread owns a private shard
//    selected by a stable per-thread slot, so recording never takes a lock
//    and never races: a thread only reads and writes its own shard. Threads
//    therefore do not see each other's entries — sharing across threads
//    trades perfect reuse for zero synchronization, which is the right
//    trade when each shard converges to the same hot working set anyway.
//
// Sharing contract: attach one memo only to problems with identical
// (EnergyCurve, work_per_cycle). The memo cannot verify this; the attach
// sites in exp/harness and the benches are the audited callers.
#ifndef RETASK_CACHE_ENERGY_MEMO_HPP
#define RETASK_CACHE_ENERGY_MEMO_HPP

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "retask/task/task.hpp"

namespace retask {

/// Per-thread-sharded memo of cycles -> energy. Copyable problems share it
/// through a shared_ptr (see RejectionProblem::attach_energy_memo).
class EnergyMemo {
 public:
  EnergyMemo() = default;
  ~EnergyMemo();
  EnergyMemo(const EnergyMemo&) = delete;
  EnergyMemo& operator=(const EnergyMemo&) = delete;

  /// Switches lookups for cycles in [0, max_cycles] to a dense per-shard
  /// array (indexed load + validity bit) instead of the hash map. The exact
  /// select sweeps evaluate E over nearly every load in that range, often
  /// millions of times per solve — the mp-scale local search alone replays
  /// tens of millions of rows — and at that density the hash probe IS the
  /// cost. Pure speedup: the stored values are the same bits either way.
  /// Call before heavy use (entries already in the hash map are not
  /// migrated — a later dense lookup recomputes them, bit-identically).
  /// Requests beyond kDenseLimit entries are ignored and the memo stays on
  /// the hash path; the bound may grow monotonically across calls.
  void reserve_dense(Cycles max_cycles);

  /// Returns the memoized energy for `cycles`, calling `compute(cycles)` on
  /// a miss and recording the result in the calling thread's shard. Safe to
  /// call concurrently from any number of threads; obs counters
  /// cache.energy_hits / cache.energy_misses track the reuse.
  template <typename Fn>
  double get_or_compute(Cycles cycles, const Fn& compute) {
    Shard* shard = local_shard();
    if (shard == nullptr) return compute(cycles);  // shard slots exhausted
    const std::size_t width = dense_width_.load(std::memory_order_relaxed);
    if (width != 0 && cycles >= 0 && static_cast<std::size_t>(cycles) < width) {
      ensure_dense(*shard, width);
      const auto w = static_cast<std::size_t>(cycles);
      if ((shard->dense_set[w >> 6] >> (w & 63)) & 1u) {
        count_hit();
        return shard->dense[w];
      }
      count_miss();
      const double energy = compute(cycles);
      shard->dense[w] = energy;
      shard->dense_set[w >> 6] |= std::uint64_t{1} << (w & 63);
      return energy;
    }
    const auto it = shard->values.find(cycles);
    if (it != shard->values.end()) {
      count_hit();
      return it->second;
    }
    count_miss();
    const double energy = compute(cycles);
    shard->values.emplace(cycles, energy);
    return energy;
  }

  /// Non-computing lookup in the calling thread's shard for the batched
  /// paths: on a hit stores the memoized value in `energy` and returns true
  /// (counting a hit); on a miss returns false (counting a miss). When the
  /// shard slots are exhausted, returns false without counting — matching
  /// get_or_compute's cold fallback.
  bool lookup(Cycles cycles, double& energy);

  /// Records a cold-path result in the calling thread's shard (no-op when
  /// slots are exhausted or the entry already exists — E is pure, so a
  /// duplicate is bit-identical by construction).
  void record(Cycles cycles, double energy);

  /// Entries in the calling thread's shard (tests; other shards are not
  /// safely readable from here).
  std::size_t local_size();

  /// Shards allocated so far (grows monotonically; tests).
  std::size_t shard_count() const;

 private:
  struct Shard {
    std::unordered_map<Cycles, double> values;
    std::vector<double> dense;              ///< energies for cycles < dense_width_
    std::vector<std::uint64_t> dense_set;   ///< validity bitmap for `dense`
  };

  /// Threads ever touching one memo beyond this count fall back to the cold
  /// path; far above the worker-pool sizes the harness uses.
  static constexpr std::size_t kMaxShards = 256;

  /// Densest range reserve_dense accepts: 2^22 entries = 32 MiB of doubles
  /// per shard. Larger requests keep the hash path.
  static constexpr std::size_t kDenseLimit = std::size_t{1} << 22;

  Shard* local_shard();
  /// Grows the calling thread's shard-local dense arrays to `width` (the
  /// shard is thread-private, so the resize cannot race; existing entries
  /// and bits are preserved).
  static void ensure_dense(Shard& shard, std::size_t width);
  static void count_hit();
  static void count_miss();

  std::array<std::atomic<Shard*>, kMaxShards> shards_{};
  /// Dense-range width (max_cycles + 1); 0 = hash-only. Monotonic.
  std::atomic<std::size_t> dense_width_{0};
};

}  // namespace retask

#endif  // RETASK_CACHE_ENERGY_MEMO_HPP
