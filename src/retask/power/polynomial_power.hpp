// Ideal (continuous-speed) DVS processor with polynomial power
// `P(s) = beta1 + beta2 * s^alpha`.
//
// This is the model the evaluation style of the venue/group uses throughout:
// dynamic CMOS power is cubic-like in speed (alpha in [2, 3]), and the
// speed-independent term beta1 captures leakage. The Intel XScale preset is
// the group's standard normalization `P(s) = 0.08 + 1.52 * s^3` W with the
// top speed normalized to 1.
#ifndef RETASK_POWER_POLYNOMIAL_POWER_HPP
#define RETASK_POWER_POLYNOMIAL_POWER_HPP

#include "retask/power/power_model.hpp"

namespace retask {

/// Continuous-speed power model `P(s) = beta1 + beta2 * s^alpha` on
/// `[min_speed, max_speed]`.
class PolynomialPowerModel final : public PowerModel {
 public:
  /// Requires beta1 >= 0, beta2 > 0, alpha > 1, 0 <= min_speed < max_speed.
  PolynomialPowerModel(double beta1, double beta2, double alpha, double min_speed,
                       double max_speed);

  /// `P(s) = s^3` on (0, 1]: the pure-dynamic model used by the group's
  /// homogeneous-multiprocessor experiments.
  static PolynomialPowerModel cubic();

  /// XScale normalization `P(s) = 0.08 + 1.52 s^3` W, smax = 1.
  static PolynomialPowerModel xscale();

  double power(double speed) const override;
  double static_power() const override { return beta1_; }
  double min_speed() const override { return min_speed_; }
  double max_speed() const override { return max_speed_; }
  bool is_continuous() const override { return true; }
  std::vector<double> available_speeds() const override { return {}; }
  std::string name() const override;
  std::unique_ptr<PowerModel> clone() const override;

  double beta1() const { return beta1_; }
  double beta2() const { return beta2_; }
  double alpha() const { return alpha_; }

  /// Closed-form unconstrained critical speed
  /// `s* = (beta1 / ((alpha - 1) * beta2))^(1/alpha)` (before clamping into
  /// the speed range); 0 when beta1 == 0.
  double analytic_critical_speed() const;

 private:
  double beta1_;
  double beta2_;
  double alpha_;
  double min_speed_;
  double max_speed_;
};

}  // namespace retask

#endif  // RETASK_POWER_POLYNOMIAL_POWER_HPP
