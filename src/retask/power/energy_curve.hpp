// The energy curve E(W): minimum energy to execute W cycles within a fixed
// scheduling window on one DVS processor.
//
// This is the load-bearing abstraction of the library. Every rejection
// algorithm optimizes `E(sum of accepted cycles) + rejected penalty`, so by
// writing the algorithms against E(W) they become independent of the power
// model (polynomial/table), the idle discipline (dormant-enable vs.
// dormant-disable), the speed granularity (ideal vs. non-ideal) and the
// dormant-mode overheads (free vs. costly sleep).
//
// Construction of E(W): the window splits into a busy part executing W
// cycles at an (average) speed s and an idle tail of length D - W/s. Busy
// energy is (W/s) * P(s), where for non-ideal processors P at a non-listed
// speed means time-sharing the two adjacent operating points on the lower
// convex hull of the table (the classic two-speed emulation). The idle tail
// costs
//     dormant-disable: Pind * t                    (leakage cannot be shed)
//     dormant-enable : min(Pind * t, Esw) if t >= tsw, else Pind * t
// i.e. sleeping through the tail is worth the switch pair (Esw, tsw) only
// past the break-even point; free sleep (Esw = tsw = 0, the default) gives
// idle cost 0. E minimizes over the execution speed, which with free sleep
// reproduces the classic critical-speed rule (never execute below
// s* = argmin P(s)/s on a dormant-enable processor) automatically.
//
// With free sleep E is convex and increasing; positive switch overheads add
// a jump at W = 0+ (the first cycle forces the processor to wake at all),
// so E stays increasing but is no longer convex — exactly the structural
// change that motivates consolidation heuristics (see
// core/leakage_aware.hpp). Algorithms that require convexity (the
// fractional and multiprocessor lower bounds) go through convex_floor(),
// the certified convex minorant of E, instead of energy() directly.
#ifndef RETASK_POWER_ENERGY_CURVE_HPP
#define RETASK_POWER_ENERGY_CURVE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "retask/power/power_model.hpp"
#include "retask/power/sleep.hpp"
#include "retask/simd/kernels.hpp"

namespace retask {

/// What an idle processor may do. Dormant-enable processors can enter a
/// zero-power dormant mode (paying the SleepParams overheads per sleep/wake
/// pair); dormant-disable processors keep drawing the speed-independent
/// power Pind whenever idle.
enum class IdleDiscipline {
  kDormantEnable,
  kDormantDisable,
};

/// One constant-speed execution segment (speed 0 denotes an idle interval).
struct PlanSegment {
  double speed = 0.0;
  double duration = 0.0;
};

/// A window-filling execution recipe: segments whose durations sum to the
/// window length and whose cycle total equals the planned workload.
struct ExecutionPlan {
  std::vector<PlanSegment> segments;

  /// Total cycles executed by the plan.
  double total_cycles() const;

  /// Total wall-clock time covered by the plan.
  double total_time() const;
};

/// Minimum-energy curve for one processor and one scheduling window.
class EnergyCurve {
 public:
  /// Requires window > 0 and valid sleep parameters. The curve keeps its own
  /// copy of the model. SleepParams are only meaningful for dormant-enable
  /// processors (dormant-disable processors never sleep); the default is
  /// free sleeping.
  EnergyCurve(const PowerModel& model, double window, IdleDiscipline idle,
              SleepParams sleep = SleepParams{});

  EnergyCurve(const EnergyCurve& other);
  EnergyCurve& operator=(const EnergyCurve& other);
  EnergyCurve(EnergyCurve&&) noexcept = default;
  EnergyCurve& operator=(EnergyCurve&&) noexcept = default;

  /// Scheduling window length D.
  double window() const { return window_; }

  /// Idle discipline the curve was built for.
  IdleDiscipline idle() const { return idle_; }

  /// Sleep-transition overheads (all-zero for free sleep).
  const SleepParams& sleep() const { return sleep_; }

  /// The processor model (valid as long as the curve lives).
  const PowerModel& model() const { return *model_; }

  /// Largest feasible workload, smax * D.
  double max_workload() const { return max_workload_; }

  /// True when `cycles` fit in the window at top speed (tolerant compare).
  bool feasible(double cycles) const;

  /// Minimum energy to execute `cycles` in the window; requires
  /// feasible(cycles) and cycles >= 0. E(0) is 0 for dormant-enable (the
  /// processor stays dormant) and Pind * D for dormant-disable.
  double energy(double cycles) const;

  /// Batched energy over integer cycle counts: out[i] equals
  /// energy(work_per_cycle * cycles[i]) bit for bit. Discrete (hull) models
  /// dispatch to the active SIMD backend's fused cycles->energy kernel;
  /// continuous models — and inputs outside the kernel's exact-conversion
  /// range [0, 2^52) — fall back to per-element evaluation. Requires
  /// work_per_cycle > 0 and every workload feasible, like energy().
  void energy_cycles_batch(double work_per_cycle, const std::int64_t* cycles, double* out,
                           std::size_t n) const;

  /// Cost of an idle interval of length `t` under this curve's discipline
  /// and sleep parameters.
  double idle_cost(double t) const;

  /// Numeric marginal energy dE/dW at `cycles` (one-sided difference at the
  /// domain boundary). Used by greedy thresholds and the fractional lower
  /// bound; with free sleep E is convex so the marginal is non-decreasing.
  double marginal(double cycles) const;

  /// True when E is convex on [0, max_workload()]: dormant-disable (the
  /// awake branch alone, linear busy cost per hull segment plus linear idle
  /// leakage), or dormant-enable with free sleep (the critical-speed rule).
  /// Positive switch overheads add a jump at W = 0+ and an awake/sleep
  /// branch crossover, so E is then increasing but not convex.
  bool convex() const;

  /// A certified convex lower bound on energy(cycles): energy(cycles)
  /// itself when convex(), otherwise the execution-only relaxation that
  /// drops the (nonnegative) idle and switch costs and charges the busy
  /// energy at the cheapest feasible average speed >= cycles / window. That
  /// relaxation is the value function of a parametric LP over execution
  /// plans with total time <= window, hence convex in `cycles`, and it
  /// matches E exactly wherever the sleep branch wins with free overheads.
  /// The Jensen step of the multiprocessor lower bound (core/lower_bound)
  /// requires convexity, so it must call this instead of energy().
  double convex_floor(double cycles) const;

  /// An execution plan achieving energy(cycles): at most two execution
  /// segments (one for continuous models) plus at most one idle segment.
  /// The plan's cycle total reproduces `cycles` and plan_energy(plan)
  /// reproduces energy(cycles); tests verify both.
  ExecutionPlan plan(double cycles) const;

  /// Energy drawn by an arbitrary plan under this curve's model, idle
  /// discipline and sleep parameters (each speed-0 segment is one idle
  /// interval of a WOKEN processor: with overheads it costs
  /// min(Pind * t, Esw), even if the plan is all-idle). A processor that
  /// never wakes is the energy(0) == 0 stay-dormant convention instead.
  /// Used by the simulators to cross-check analytic energies.
  double plan_energy(const ExecutionPlan& plan) const;

 private:
  struct HullPoint {
    double speed = 0.0;
    double power = 0.0;
  };
  struct Choice {
    double exec_speed = 0.0;  // average execution speed (0 when no work)
    double busy = 0.0;        // execution time
    bool sleeps = false;      // idle tail spent dormant
    double cost = 0.0;
  };

  double static_power() const;
  void build_hull();
  /// Time-shared power at average execution speed `s` on the exec hull.
  double hull_power(double s) const;
  /// Best (speed, branch) decision for a positive workload.
  Choice best_choice(double cycles) const;
  /// Flattened hull + model scalars for the SIMD energy kernels. Only valid
  /// for discrete models; pointers alias hull_speeds_/hull_powers_.
  simd::HullEnergyParams hull_params(double work_per_cycle) const;

  std::unique_ptr<PowerModel> model_;
  double window_ = 0.0;
  IdleDiscipline idle_ = IdleDiscipline::kDormantEnable;
  SleepParams sleep_;
  double max_workload_ = 0.0;
  std::vector<HullPoint> hull_;  // discrete models: lower hull of operating points
  // Structure-of-arrays view of hull_ for the vector kernels (same order).
  std::vector<double> hull_speeds_;
  std::vector<double> hull_powers_;
};

}  // namespace retask

#endif  // RETASK_POWER_ENERGY_CURVE_HPP
