#include "retask/power/freq_ladder.hpp"

#include <algorithm>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {

FreqLadder::FreqLadder(std::vector<LadderLevel> levels) : levels_(std::move(levels)) {
  require(!levels_.empty(), "FreqLadder: at least one level required");
  std::sort(levels_.begin(), levels_.end(),
            [](const LadderLevel& a, const LadderLevel& b) { return a.speed < b.speed; });
  double prev_speed = 0.0;
  double prev_power = 0.0;
  for (const LadderLevel& level : levels_) {
    require(level.speed > prev_speed, "FreqLadder: speeds must be positive, strictly increasing");
    require(level.power > prev_power, "FreqLadder: powers must be positive, strictly increasing");
    prev_speed = level.speed;
    prev_power = level.power;
  }
}

FreqLadder FreqLadder::from_model(const PowerModel& model, int count) {
  require(model.is_continuous(), "FreqLadder::from_model: continuous models only");
  require(count >= 1, "FreqLadder::from_model: at least one level required");
  const double smax = model.max_speed();
  std::vector<LadderLevel> levels;
  levels.reserve(static_cast<std::size_t>(count));
  for (int i = 1; i <= count; ++i) {
    const double speed = smax * static_cast<double>(i) / static_cast<double>(count);
    levels.push_back({speed, model.power(speed)});
  }
  return FreqLadder(std::move(levels));
}

FreqLadder FreqLadder::from_table(const TablePowerModel& table) {
  std::vector<LadderLevel> levels;
  levels.reserve(table.points().size());
  for (const OperatingPoint& point : table.points()) levels.push_back({point.speed, point.power});
  return FreqLadder(std::move(levels));
}

std::size_t FreqLadder::level_at_or_above(double speed) const {
  require(leq_tol(speed, max_speed()), "FreqLadder: speed exceeds the top level");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].speed >= speed) return i;
  }
  return levels_.size() - 1;  // within tolerance of the top level
}

FreqLadder::Split FreqLadder::two_speed_split(double speed, double duration) const {
  require(duration >= 0.0, "FreqLadder: split duration must be non-negative");
  Split split;
  const double clamped = clamp(speed, min_speed(), max_speed());
  require(leq_tol(speed, max_speed()), "FreqLadder: speed exceeds the top level");
  const std::size_t hi = level_at_or_above(clamped);
  if (hi == 0 || levels_[hi].speed == clamped) {
    // On a level (or clamped up to the bottom one): no time sharing.
    split.lo = hi;
    split.hi = hi;
    split.t_lo = duration;
    split.t_hi = 0.0;
    return split;
  }
  const std::size_t lo = hi - 1;
  const double s_lo = levels_[lo].speed;
  const double s_hi = levels_[hi].speed;
  split.lo = lo;
  split.hi = hi;
  split.t_hi = duration * (clamped - s_lo) / (s_hi - s_lo);
  split.t_lo = duration - split.t_hi;
  return split;
}

double FreqLadder::emulation_power(double speed) const {
  const Split split = two_speed_split(speed, 1.0);
  return split.t_lo * levels_[split.lo].power + split.t_hi * levels_[split.hi].power;
}

double FreqLadder::emulation_energy(double speed, double duration) const {
  return emulation_power(speed) * duration;
}

TablePowerModel FreqLadder::as_table_model(double static_power) const {
  std::vector<OperatingPoint> points;
  points.reserve(levels_.size());
  for (const LadderLevel& level : levels_) points.push_back({level.speed, level.power});
  return TablePowerModel(std::move(points), static_power);
}

}  // namespace retask
