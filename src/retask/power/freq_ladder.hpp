// Discrete frequency/voltage ladder: the N operating levels a real DVS part
// exposes, plus the classic two-speed emulation of intermediate speeds.
//
// The EnergyCurve already time-shares operating points for *offline* energy
// accounting (on the lower convex hull, minimizing over the whole window).
// The ladder is the *run-time* counterpart: a simulator that wants to run at
// some average speed s must realize it by splitting the interval between the
// two ladder levels adjacent to s — no hull shortcut, no window-global
// optimization — which is exactly what CC-EDF/LA-EDF style reclamation does
// on real frequency tables. Levels sampled from a convex power curve make
// the emulated (chord) power at least the continuous power at every speed,
// so quantization can only cost energy; the stochastic fuzz leans on the
// feasibility side of that contract.
#ifndef RETASK_POWER_FREQ_LADDER_HPP
#define RETASK_POWER_FREQ_LADDER_HPP

#include <cstddef>
#include <vector>

#include "retask/power/power_model.hpp"
#include "retask/power/table_power.hpp"

namespace retask {

/// One ladder level: an execution speed and the total power drawn there.
struct LadderLevel {
  double speed = 0.0;
  double power = 0.0;
};

/// An N-level frequency/voltage ladder, ascending in speed.
class FreqLadder {
 public:
  /// Requires at least one level; speeds and powers must be positive and
  /// strictly increasing after sorting by speed (a dominated level indicates
  /// a configuration error, as in TablePowerModel).
  explicit FreqLadder(std::vector<LadderLevel> levels);

  /// Samples `count` equally spaced levels {smax/count, 2*smax/count, ...,
  /// smax} on a continuous model's power curve — the standard "k-level
  /// processor" of the discrete-frequency-selection literature. count == 1
  /// degenerates to a single full-speed level. Requires a continuous model.
  static FreqLadder from_model(const PowerModel& model, int count);

  /// Adopts a discrete model's operating points verbatim.
  static FreqLadder from_table(const TablePowerModel& table);

  std::size_t size() const { return levels_.size(); }
  const std::vector<LadderLevel>& levels() const { return levels_; }
  double min_speed() const { return levels_.front().speed; }
  double max_speed() const { return levels_.back().speed; }

  /// Index of the slowest level whose speed is >= `speed` (quantize-up);
  /// requires speed <= max_speed() within tolerance.
  std::size_t level_at_or_above(double speed) const;

  /// Two-speed realization of average speed `speed` over `duration`.
  struct Split {
    std::size_t lo = 0;  ///< lower adjacent level index
    std::size_t hi = 0;  ///< upper adjacent level index (== lo on a level)
    double t_lo = 0.0;   ///< time share at `lo`
    double t_hi = 0.0;   ///< time share at `hi`
  };

  /// Splits `duration` between the two adjacent levels bracketing `speed` so
  /// the executed work equals speed * duration exactly:
  /// t_lo + t_hi == duration and s_lo*t_lo + s_hi*t_hi == speed * duration.
  /// A speed below the bottom level is clamped up to it (the ladder cannot
  /// run slower, so the whole duration executes at the bottom level and the
  /// plan simply finishes early); requires speed <= max_speed() within
  /// tolerance and duration >= 0.
  Split two_speed_split(double speed, double duration) const;

  /// Time-shared power of the two-speed emulation at average speed `speed`
  /// (the chord through the adjacent levels; the level power on a level).
  double emulation_power(double speed) const;

  /// Closed-form energy of emulating `speed` for `duration`:
  /// emulation_power(speed) * duration.
  double emulation_energy(double speed, double duration) const;

  /// The ladder as a discrete power model (for EnergyCurve interop);
  /// `static_power` is the idle-but-awake draw, as in TablePowerModel.
  TablePowerModel as_table_model(double static_power) const;

 private:
  std::vector<LadderLevel> levels_;  // ascending by speed
};

}  // namespace retask

#endif  // RETASK_POWER_FREQ_LADDER_HPP
