#include "retask/power/sleep.hpp"

#include <algorithm>
#include <limits>

#include "retask/common/error.hpp"

namespace retask {

void validate(const SleepParams& params) {
  require(params.switch_time >= 0.0, "SleepParams: switch_time must be non-negative");
  require(params.switch_energy >= 0.0, "SleepParams: switch_energy must be non-negative");
}

double idle_interval_energy(double static_power, const SleepParams& params, double idle) {
  require(idle >= 0.0, "idle_interval_energy: negative idle interval");
  require(static_power >= 0.0, "idle_interval_energy: negative static power");
  const double awake = static_power * idle;
  if (idle >= params.switch_time) {
    return std::min(awake, params.switch_energy);
  }
  return awake;
}

double break_even_time(const PowerModel& model, const SleepParams& params) {
  validate(params);
  if (params.free()) return 0.0;
  const double static_power = model.static_power();
  if (static_power <= 0.0) {
    return params.switch_energy > 0.0 ? std::numeric_limits<double>::infinity()
                                      : params.switch_time;
  }
  return std::max(params.switch_time, params.switch_energy / static_power);
}

}  // namespace retask
