#include "retask/power/energy_curve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {

double ExecutionPlan::total_cycles() const {
  double cycles = 0.0;
  for (const PlanSegment& seg : segments) cycles += seg.speed * seg.duration;
  return cycles;
}

double ExecutionPlan::total_time() const {
  double time = 0.0;
  for (const PlanSegment& seg : segments) time += seg.duration;
  return time;
}

EnergyCurve::EnergyCurve(const PowerModel& model, double window, IdleDiscipline idle,
                         SleepParams sleep)
    : model_(model.clone()), window_(window), idle_(idle), sleep_(sleep) {
  require(window > 0.0, "EnergyCurve: window must be positive");
  validate(sleep_);
  max_workload_ = model_->max_speed() * window_;
  if (!model_->is_continuous()) build_hull();
}

EnergyCurve::EnergyCurve(const EnergyCurve& other)
    : model_(other.model_->clone()),
      window_(other.window_),
      idle_(other.idle_),
      sleep_(other.sleep_),
      max_workload_(other.max_workload_),
      hull_(other.hull_),
      hull_speeds_(other.hull_speeds_),
      hull_powers_(other.hull_powers_) {}

EnergyCurve& EnergyCurve::operator=(const EnergyCurve& other) {
  if (this != &other) {
    model_ = other.model_->clone();
    window_ = other.window_;
    idle_ = other.idle_;
    sleep_ = other.sleep_;
    max_workload_ = other.max_workload_;
    hull_ = other.hull_;
    hull_speeds_ = other.hull_speeds_;
    hull_powers_ = other.hull_powers_;
  }
  return *this;
}

double EnergyCurve::static_power() const { return model_->static_power(); }

double EnergyCurve::idle_cost(double t) const {
  require(t >= 0.0, "EnergyCurve::idle_cost: negative idle interval");
  if (idle_ == IdleDiscipline::kDormantDisable) return static_power() * t;
  return idle_interval_energy(static_power(), sleep_, t);
}

void EnergyCurve::build_hull() {
  // Lower convex hull of the operating points (monotone chain). Unlike the
  // idle interval, execution time-sharing is linear in (speed, power), so
  // mixing two adjacent hull speeds realizes any average execution speed.
  hull_.clear();
  for (const double s : model_->available_speeds()) {
    const HullPoint p{s, model_->power(s)};
    while (hull_.size() >= 2) {
      const HullPoint& a = hull_[hull_.size() - 2];
      const HullPoint& b = hull_[hull_.size() - 1];
      const double cross =
          (b.speed - a.speed) * (p.power - a.power) - (b.power - a.power) * (p.speed - a.speed);
      if (cross <= 0.0) {
        hull_.pop_back();
      } else {
        break;
      }
    }
    hull_.push_back(p);
  }
  RETASK_ASSERT(!hull_.empty());
  // Structure-of-arrays mirror for the vector energy kernels.
  hull_speeds_.clear();
  hull_powers_.clear();
  for (const HullPoint& point : hull_) {
    hull_speeds_.push_back(point.speed);
    hull_powers_.push_back(point.power);
  }
}

simd::HullEnergyParams EnergyCurve::hull_params(double work_per_cycle) const {
  RETASK_ASSERT(!hull_.empty());
  simd::HullEnergyParams params;
  params.window = window_;
  params.work_per_cycle = work_per_cycle;
  params.static_power = static_power();
  params.smax = model_->max_speed();
  params.switch_energy = sleep_.switch_energy;
  params.switch_time = sleep_.switch_time;
  params.dormant_enable = idle_ == IdleDiscipline::kDormantEnable;
  params.e_zero = params.dormant_enable ? 0.0 : static_power() * window_;
  params.hull_speed = hull_speeds_.data();
  params.hull_power = hull_powers_.data();
  params.hull_size = hull_speeds_.size();
  return params;
}

double EnergyCurve::hull_power(double s) const {
  RETASK_ASSERT(!hull_.empty());
  if (s <= hull_.front().speed) return hull_.front().power;
  for (std::size_t i = 0; i + 1 < hull_.size(); ++i) {
    const HullPoint& a = hull_[i];
    const HullPoint& b = hull_[i + 1];
    if (leq_tol(s, b.speed)) {
      const double theta = (b.speed - s) / (b.speed - a.speed);
      return theta * a.power + (1.0 - theta) * b.power;
    }
  }
  return hull_.back().power;
}

bool EnergyCurve::feasible(double cycles) const {
  return cycles >= 0.0 && leq_tol(cycles, max_workload_);
}

EnergyCurve::Choice EnergyCurve::best_choice(double cycles) const {
  RETASK_ASSERT(cycles > 0.0);
  const double smax = model_->max_speed();
  const double s_req = std::min(cycles / window_, smax);
  const bool enable = idle_ == IdleDiscipline::kDormantEnable;
  const double pind = static_power();

  Choice best;
  best.cost = std::numeric_limits<double>::infinity();
  const auto consider = [&](double exec_speed, double busy_power, bool sleeps) {
    const double busy = cycles / exec_speed;
    const double idle = std::max(0.0, window_ - busy);
    if (sleeps && (!enable || idle < sleep_.switch_time)) return;
    const double cost =
        busy * busy_power + (sleeps ? sleep_.switch_energy : pind * idle);
    if (cost < best.cost) best = Choice{exec_speed, busy, sleeps && idle > 0.0, cost};
  };

  if (model_->is_continuous()) {
    const double lo =
        clamp(std::max(model_->min_speed(), s_req), std::max(smax * 1e-12, 1e-300), smax);
    // Awake branch: convex in s, golden section.
    const auto awake_cost = [&](double s) {
      const double busy = cycles / s;
      return busy * model_->power(s) + pind * (window_ - busy);
    };
    const double s_awake = lo >= smax ? smax : minimize_unimodal(awake_cost, lo, smax);
    consider(s_awake, model_->power(s_awake), false);

    if (enable) {
      // Sleep branch: idle tail must cover the mode switch.
      double sleep_lo = lo;
      if (sleep_.switch_time > 0.0) {
        if (window_ - sleep_.switch_time <= 0.0) sleep_lo = smax * 2.0;  // invalid
        else sleep_lo = std::max(sleep_lo, cycles / (window_ - sleep_.switch_time));
      }
      if (sleep_lo <= smax) {
        const auto sleep_cost = [&](double s) { return (cycles / s) * model_->power(s); };
        const double s_sleep =
            sleep_lo >= smax ? smax : minimize_unimodal(sleep_cost, sleep_lo, smax);
        consider(s_sleep, model_->power(s_sleep), true);
      }
    }
  } else {
    // Candidate average speeds: the lower feasibility boundary, the sleep
    // boundary, and every hull vertex at or above the boundary. Both branch
    // costs are fractional-linear per hull segment, so their optima lie at
    // these candidates.
    const double lower = clamp(std::max(s_req, hull_.front().speed), hull_.front().speed, smax);
    std::vector<double> candidates{lower, smax};
    for (const HullPoint& p : hull_) {
      if (p.speed > lower && p.speed < smax) candidates.push_back(p.speed);
    }
    if (enable && sleep_.switch_time > 0.0 && window_ - sleep_.switch_time > 0.0) {
      const double s_boundary = cycles / (window_ - sleep_.switch_time);
      if (s_boundary > lower && s_boundary < smax) candidates.push_back(s_boundary);
    }
    for (const double s : candidates) {
      const double p = hull_power(s);
      consider(s, p, false);
      if (enable) consider(s, p, true);
    }
  }
  RETASK_ASSERT(best.cost < std::numeric_limits<double>::infinity());
  return best;
}

double EnergyCurve::energy(double cycles) const {
  require(feasible(cycles), "EnergyCurve::energy: workload exceeds smax * window");
  if (cycles <= 0.0) {
    // Dormant-enable processors stay dormant through an empty window.
    return idle_ == IdleDiscipline::kDormantEnable ? 0.0 : static_power() * window_;
  }
  // Discrete models route through the shared scalar hull kernel — the same
  // reference body the batched SIMD kernels reduce to — so one-at-a-time and
  // batched evaluation can never diverge by a bit (the energy memo's replay
  // guarantee depends on this). best_choice stays the implementation for
  // continuous models and for plan(), which needs the speed, not the cost.
  if (!model_->is_continuous()) return simd::energy_hull_one(hull_params(1.0), cycles);
  return best_choice(cycles).cost;
}

void EnergyCurve::energy_cycles_batch(double work_per_cycle, const std::int64_t* cycles,
                                      double* out, std::size_t n) const {
  require(work_per_cycle > 0.0, "EnergyCurve::energy_cycles_batch: work_per_cycle must be positive");
  constexpr std::int64_t kMaxExact = std::int64_t{1} << 52;  // exact int64->double range
  bool kernel_ok = !model_->is_continuous();
  for (std::size_t i = 0; i < n && kernel_ok; ++i) {
    kernel_ok = cycles[i] >= 0 && cycles[i] < kMaxExact;
  }
  if (!kernel_ok) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = energy(work_per_cycle * static_cast<double>(cycles[i]));
    }
    return;
  }
  // Same feasibility contract as energy(), checked up front so the kernel
  // only ever sees workloads the scalar path would accept.
  for (std::size_t i = 0; i < n; ++i) {
    require(feasible(work_per_cycle * static_cast<double>(cycles[i])),
            "EnergyCurve::energy: workload exceeds smax * window");
  }
  simd::kernels().energy_hull_cycles(hull_params(work_per_cycle), cycles, out, n);
}

bool EnergyCurve::convex() const {
  return idle_ == IdleDiscipline::kDormantDisable || sleep_.free();
}

double EnergyCurve::convex_floor(double cycles) const {
  if (convex()) return energy(cycles);
  // Dormant-enable with switch overheads: E has a jump at 0+ and a branch
  // crossover, so bound it by the execution-only LP relaxation instead. Any
  // plan for `cycles` pays at least its busy energy, and the cheapest busy
  // energy with total time <= window is attained either at a single hull
  // speed s >= cycles / window (idle slack) or by time-sharing the hull at
  // average speed cycles / window across the full window.
  require(feasible(cycles), "EnergyCurve::convex_floor: workload exceeds smax * window");
  if (cycles <= 0.0) return 0.0;  // stays dormant, like energy(0)
  const double s_avg = cycles / window_;
  if (model_->is_continuous()) {
    const double smax = model_->max_speed();
    const double lo =
        clamp(std::max(model_->min_speed(), s_avg), std::max(smax * 1e-12, 1e-300), smax);
    const auto per_cycle = [&](double s) { return model_->power(s) / s; };
    const double s_star = lo >= smax ? smax : minimize_unimodal(per_cycle, lo, smax);
    return cycles * std::min({per_cycle(s_star), per_cycle(lo), per_cycle(smax)});
  }
  double best = std::numeric_limits<double>::infinity();
  for (const HullPoint& p : hull_) {
    if (p.speed >= s_avg) best = std::min(best, cycles * p.power / p.speed);
  }
  if (s_avg >= hull_.front().speed) best = std::min(best, window_ * hull_power(s_avg));
  RETASK_ASSERT(best < std::numeric_limits<double>::infinity());
  return best;
}

double EnergyCurve::marginal(double cycles) const {
  require(feasible(cycles), "EnergyCurve::marginal: workload exceeds smax * window");
  const double h = std::max(max_workload_ * 1e-7, 1e-12);
  const double lo = std::max(0.0, cycles - h);
  const double hi = std::min(max_workload_, cycles + h);
  RETASK_ASSERT(hi > lo);
  return (energy(hi) - energy(lo)) / (hi - lo);
}

ExecutionPlan EnergyCurve::plan(double cycles) const {
  require(feasible(cycles), "EnergyCurve::plan: workload exceeds smax * window");
  ExecutionPlan out;
  if (cycles <= 0.0) {
    out.segments.push_back({0.0, window_});
    return out;
  }
  const Choice choice = best_choice(cycles);

  if (model_->is_continuous()) {
    out.segments.push_back({choice.exec_speed, choice.busy});
  } else {
    // Decompose the average execution speed into the two adjacent hull
    // speeds (time-sharing), or a single segment when it is a vertex.
    const double s = choice.exec_speed;
    std::size_t seg = hull_.size();  // index of segment start
    for (std::size_t i = 0; i + 1 < hull_.size(); ++i) {
      if (s >= hull_[i].speed && s <= hull_[i + 1].speed) {
        seg = i;
        break;
      }
    }
    if (seg == hull_.size() || almost_equal(s, hull_.front().speed) ||
        (seg + 1 < hull_.size() && almost_equal(s, hull_[seg + 1].speed))) {
      // A vertex (or outside the hull range, clamped): single segment at the
      // nearest available hull speed.
      double vertex = hull_.front().speed;
      double gap = std::fabs(s - vertex);
      for (const HullPoint& p : hull_) {
        if (std::fabs(s - p.speed) < gap) {
          vertex = p.speed;
          gap = std::fabs(s - p.speed);
        }
      }
      out.segments.push_back({vertex, cycles / vertex});
    } else {
      const HullPoint& a = hull_[seg];
      const HullPoint& b = hull_[seg + 1];
      const double theta = (b.speed - s) / (b.speed - a.speed);
      const double t_a = choice.busy * theta;
      const double t_b = choice.busy * (1.0 - theta);
      if (t_a > 0.0) out.segments.push_back({a.speed, t_a});
      if (t_b > 0.0) out.segments.push_back({b.speed, t_b});
    }
  }
  double busy = 0.0;
  for (const PlanSegment& seg : out.segments) busy += seg.duration;
  if (busy < window_) out.segments.push_back({0.0, window_ - busy});
  return out;
}

double EnergyCurve::plan_energy(const ExecutionPlan& plan) const {
  double total = 0.0;
  for (const PlanSegment& seg : plan.segments) {
    require(seg.duration >= 0.0, "EnergyCurve::plan_energy: negative segment duration");
    if (seg.speed <= 0.0) {
      total += idle_cost(seg.duration);
    } else {
      total += seg.duration * model_->power(seg.speed);
    }
  }
  return total;
}

}  // namespace retask
