#include "retask/power/polynomial_power.hpp"

#include <cmath>
#include <sstream>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {

PolynomialPowerModel::PolynomialPowerModel(double beta1, double beta2, double alpha,
                                           double min_speed, double max_speed)
    : beta1_(beta1), beta2_(beta2), alpha_(alpha), min_speed_(min_speed), max_speed_(max_speed) {
  require(beta1 >= 0.0, "PolynomialPowerModel: beta1 must be non-negative");
  require(beta2 > 0.0, "PolynomialPowerModel: beta2 must be positive");
  require(alpha > 1.0, "PolynomialPowerModel: alpha must exceed 1");
  require(min_speed >= 0.0 && min_speed < max_speed,
          "PolynomialPowerModel: requires 0 <= min_speed < max_speed");
}

PolynomialPowerModel PolynomialPowerModel::cubic() {
  return PolynomialPowerModel(0.0, 1.0, 3.0, 0.0, 1.0);
}

PolynomialPowerModel PolynomialPowerModel::xscale() {
  return PolynomialPowerModel(0.08, 1.52, 3.0, 0.0, 1.0);
}

double PolynomialPowerModel::power(double speed) const {
  require(leq_tol(min_speed_, speed) && leq_tol(speed, max_speed_),
          "PolynomialPowerModel::power: speed outside the model's range");
  return beta1_ + beta2_ * std::pow(speed, alpha_);
}

std::string PolynomialPowerModel::name() const {
  std::ostringstream os;
  os << "poly(" << beta1_ << "+" << beta2_ << "*s^" << alpha_ << ", s in [" << min_speed_ << ","
     << max_speed_ << "])";
  return os.str();
}

std::unique_ptr<PowerModel> PolynomialPowerModel::clone() const {
  return std::make_unique<PolynomialPowerModel>(*this);
}

double PolynomialPowerModel::analytic_critical_speed() const {
  if (beta1_ == 0.0) return 0.0;
  return std::pow(beta1_ / ((alpha_ - 1.0) * beta2_), 1.0 / alpha_);
}

}  // namespace retask
