// Critical-speed computation.
//
// The critical speed `s*` is the execution speed minimizing the energy per
// cycle `P(s)/s`. On dormant-enable processors it is never energy-efficient
// to execute below `s*`: sprinting at `s*` and sleeping dominates. The
// rejection schedulers and the energy curve rely on `s*` to decide the
// execution speed of lightly loaded processors.
#ifndef RETASK_POWER_CRITICAL_SPEED_HPP
#define RETASK_POWER_CRITICAL_SPEED_HPP

#include "retask/power/power_model.hpp"

namespace retask {

/// Returns the speed in the model's usable range minimizing energy per cycle
/// `P(s)/s`. Continuous models are solved by golden-section search (P(s)/s
/// is convex for convex increasing P); table models by scanning the
/// operating points.
double critical_speed(const PowerModel& model);

}  // namespace retask

#endif  // RETASK_POWER_CRITICAL_SPEED_HPP
