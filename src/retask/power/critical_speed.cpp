#include "retask/power/critical_speed.hpp"

#include <algorithm>
#include <limits>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {

double critical_speed(const PowerModel& model) {
  if (!model.is_continuous()) {
    double best_speed = 0.0;
    double best_epc = std::numeric_limits<double>::infinity();
    for (const double s : model.available_speeds()) {
      const double epc = model.energy_per_cycle(s);
      if (epc < best_epc) {
        best_epc = epc;
        best_speed = s;
      }
    }
    RETASK_ASSERT(best_speed > 0.0);
    return best_speed;
  }

  // Continuous: avoid the singular point s = 0 when the range starts there.
  const double hi = model.max_speed();
  const double lo = std::max(model.min_speed(), hi * 1e-9);
  return minimize_unimodal([&](double s) { return model.energy_per_cycle(s); }, lo, hi);
}

}  // namespace retask
