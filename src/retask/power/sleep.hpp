// Dormant-mode (sleep) transition overheads.
//
// Turning a dormant-enable processor off and on again is not free: the pair
// of mode switches costs `switch_energy` (Esw) and takes `switch_time`
// (tsw). An idle interval is therefore worth sleeping through only when it
// is at least the break-even time: long enough for the switch (t >= tsw)
// and long enough that the leakage saved exceeds the switch energy
// (Pind * t >= Esw). Zero overheads (the default everywhere) reduce to the
// free-sleep model.
#ifndef RETASK_POWER_SLEEP_HPP
#define RETASK_POWER_SLEEP_HPP

#include "retask/power/power_model.hpp"

namespace retask {

/// Dormant-mode transition overheads (a sleep/wake pair).
struct SleepParams {
  double switch_time = 0.0;    ///< tsw: wall-clock cost of the mode switches
  double switch_energy = 0.0;  ///< Esw: energy cost of the mode switches

  /// True when both overheads are zero (free sleeping).
  bool free() const { return switch_time == 0.0 && switch_energy == 0.0; }
};

/// Validates sleep parameters (non-negative overheads); throws retask::Error.
void validate(const SleepParams& params);

/// Cheapest way to spend an idle interval of length `idle` on a
/// dormant-enable processor with static power `static_power`:
/// stay awake (static_power * idle) or, when idle >= switch_time, sleep
/// (switch_energy). Requires idle >= 0.
double idle_interval_energy(double static_power, const SleepParams& params, double idle);

/// Break-even idle length: the smallest idle interval for which sleeping is
/// no worse than staying awake, max(switch_time, switch_energy /
/// static_power). Infinite when the processor has no static power to save
/// (sleeping can then never pay for the switch) unless switching is free.
double break_even_time(const PowerModel& model, const SleepParams& params);

}  // namespace retask

#endif  // RETASK_POWER_SLEEP_HPP
