// Power model interface for DVS processors.
//
// A DVS processor executes `s` cycles per time unit at speed `s` and draws
// total power `P(s) = Pind + Pd(s)` while executing, where `Pd(s)` is the
// speed-dependent (dynamic + short-circuit) part — convex and increasing —
// and `Pind` the speed-independent (leakage) part. The model also declares
// the processor's speed range and, for non-ideal processors, the finite set
// of available speeds. Everything downstream (energy curves, critical speed,
// schedulers) consumes this interface only, so ideal and non-ideal
// processors are interchangeable.
#ifndef RETASK_POWER_POWER_MODEL_HPP
#define RETASK_POWER_POWER_MODEL_HPP

#include <memory>
#include <string>
#include <vector>

namespace retask {

/// Abstract DVS processor power model.
class PowerModel {
 public:
  virtual ~PowerModel() = default;

  /// Total power drawn while executing at `speed` (requires speed within
  /// [min_speed(), max_speed()] and, for non-ideal models, an available
  /// speed).
  virtual double power(double speed) const = 0;

  /// Speed-independent (leakage/static) power `Pind`.
  virtual double static_power() const = 0;

  /// Speed-dependent part, `power(speed) - static_power()`.
  double dynamic_power(double speed) const { return power(speed) - static_power(); }

  /// Energy to execute one cycle at `speed` (power(speed) / speed);
  /// requires speed > 0.
  double energy_per_cycle(double speed) const { return power(speed) / speed; }

  /// Lowest usable execution speed (0 allowed only as "never executes").
  virtual double min_speed() const = 0;

  /// Highest usable execution speed `smax`.
  virtual double max_speed() const = 0;

  /// True for ideal processors (continuous speed spectrum).
  virtual bool is_continuous() const = 0;

  /// Available execution speeds, ascending; empty for continuous models.
  virtual std::vector<double> available_speeds() const = 0;

  /// Short human-readable description for experiment reports.
  virtual std::string name() const = 0;

  /// Polymorphic copy.
  virtual std::unique_ptr<PowerModel> clone() const = 0;

 protected:
  PowerModel() = default;
  PowerModel(const PowerModel&) = default;
  PowerModel& operator=(const PowerModel&) = default;
};

}  // namespace retask

#endif  // RETASK_POWER_POWER_MODEL_HPP
