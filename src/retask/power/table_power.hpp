// Non-ideal DVS processor: a finite table of (speed, power) operating
// points, as found on real parts (e.g. the XScale family exposes five
// frequency/voltage steps).
//
// The table is the ground truth; helper accessors expose the sorted speed
// list and per-point powers. Continuous-looking queries (`power` at a
// non-listed speed) are rejected — emulating intermediate speeds by
// time-sharing two listed speeds is the job of the EnergyCurve, which owns
// the convex-hull construction.
#ifndef RETASK_POWER_TABLE_POWER_HPP
#define RETASK_POWER_TABLE_POWER_HPP

#include <vector>

#include "retask/power/power_model.hpp"

namespace retask {

/// One operating point of a non-ideal DVS processor.
struct OperatingPoint {
  double speed = 0.0;  ///< execution speed (cycles per time unit), > 0
  double power = 0.0;  ///< total power drawn while executing at this speed
};

/// Discrete-speed power model backed by an operating-point table.
class TablePowerModel final : public PowerModel {
 public:
  /// Requires at least one point; speeds must be positive and strictly
  /// increasing after sorting; powers must be positive and strictly
  /// increasing with speed (a dominated point would never be selected but
  /// indicates a configuration error). `static_power` is the power drawn
  /// while idle-but-awake; it must not exceed the smallest table power.
  TablePowerModel(std::vector<OperatingPoint> points, double static_power);

  /// Samples `count` equally spaced speeds of a polynomial-style curve
  /// `beta1 + beta2 * s^alpha` between `lo` and `hi` (inclusive) — the
  /// standard way to build "k-level" processors for granularity experiments.
  static TablePowerModel sampled(double beta1, double beta2, double alpha, double lo, double hi,
                                 int count);

  /// Five-level XScale-like table: speeds {0.15, 0.4, 0.6, 0.8, 1.0} on the
  /// group's normalized curve `0.08 + 1.52 s^3`.
  static TablePowerModel xscale5();

  double power(double speed) const override;
  double static_power() const override { return static_power_; }
  double min_speed() const override { return points_.front().speed; }
  double max_speed() const override { return points_.back().speed; }
  bool is_continuous() const override { return false; }
  std::vector<double> available_speeds() const override;
  std::string name() const override;
  std::unique_ptr<PowerModel> clone() const override;

  const std::vector<OperatingPoint>& points() const { return points_; }

 private:
  std::vector<OperatingPoint> points_;  // ascending by speed
  double static_power_;
};

}  // namespace retask

#endif  // RETASK_POWER_TABLE_POWER_HPP
