#include "retask/power/table_power.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {

TablePowerModel::TablePowerModel(std::vector<OperatingPoint> points, double static_power)
    : points_(std::move(points)), static_power_(static_power) {
  require(!points_.empty(), "TablePowerModel: at least one operating point required");
  std::sort(points_.begin(), points_.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) { return a.speed < b.speed; });
  double prev_speed = 0.0;
  double prev_power = 0.0;
  for (const OperatingPoint& pt : points_) {
    require(pt.speed > prev_speed, "TablePowerModel: speeds must be positive and distinct");
    require(pt.power > prev_power,
            "TablePowerModel: power must increase strictly with speed (dominated point)");
    prev_speed = pt.speed;
    prev_power = pt.power;
  }
  require(static_power_ >= 0.0, "TablePowerModel: static power must be non-negative");
  require(static_power_ <= points_.front().power,
          "TablePowerModel: idle power cannot exceed the lowest operating-point power");
}

TablePowerModel TablePowerModel::sampled(double beta1, double beta2, double alpha, double lo,
                                         double hi, int count) {
  require(count >= 1, "TablePowerModel::sampled: count must be at least 1");
  require(lo > 0.0 && lo <= hi, "TablePowerModel::sampled: requires 0 < lo <= hi");
  std::vector<OperatingPoint> pts;
  pts.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double s =
        count == 1 ? hi : lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count - 1);
    pts.push_back({s, beta1 + beta2 * std::pow(s, alpha)});
  }
  return TablePowerModel(std::move(pts), beta1);
}

TablePowerModel TablePowerModel::xscale5() {
  const double beta1 = 0.08;
  const double beta2 = 1.52;
  std::vector<OperatingPoint> pts;
  for (const double s : {0.15, 0.4, 0.6, 0.8, 1.0}) {
    pts.push_back({s, beta1 + beta2 * s * s * s});
  }
  return TablePowerModel(std::move(pts), beta1);
}

double TablePowerModel::power(double speed) const {
  for (const OperatingPoint& pt : points_) {
    if (almost_equal(pt.speed, speed)) return pt.power;
  }
  throw Error("TablePowerModel::power: speed is not an available operating point");
}

std::vector<double> TablePowerModel::available_speeds() const {
  std::vector<double> speeds;
  speeds.reserve(points_.size());
  for (const OperatingPoint& pt : points_) speeds.push_back(pt.speed);
  return speeds;
}

std::string TablePowerModel::name() const {
  std::ostringstream os;
  os << "table(" << points_.size() << " speeds in [" << points_.front().speed << ","
     << points_.back().speed << "], idle " << static_power_ << ")";
  return os.str();
}

std::unique_ptr<PowerModel> TablePowerModel::clone() const {
  return std::make_unique<TablePowerModel>(*this);
}

}  // namespace retask
