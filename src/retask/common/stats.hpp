// Descriptive statistics used by the experiment harness to aggregate
// per-instance results (normalized objective ratios, acceptance ratios,
// runtimes) into the rows the reconstructed figures report.
#ifndef RETASK_COMMON_STATS_HPP
#define RETASK_COMMON_STATS_HPP

#include <cstddef>
#include <vector>

namespace retask {

/// Streaming mean/variance/extrema accumulator (Welford's algorithm).
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Folds `other` into this accumulator as if its observations had been
  /// add()ed here. Folding a single-observation accumulator is exactly
  /// add(x) — bit-for-bit, which the parallel experiment harness relies on
  /// to make ordered reductions independent of the thread count; folding a
  /// larger accumulator uses Chan's parallel combination formula.
  void merge(const OnlineStats& other);

  /// Number of observations so far.
  std::size_t count() const { return count_; }

  /// Arithmetic mean; requires count() > 0.
  double mean() const;

  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Smallest observation; requires count() > 0.
  double min() const;

  /// Largest observation; requires count() > 0.
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation
/// between order statistics; requires a non-empty input.
double quantile(std::vector<double> values, double q);

}  // namespace retask

#endif  // RETASK_COMMON_STATS_HPP
