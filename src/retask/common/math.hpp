// Small numeric toolbox shared across the library: tolerant comparisons,
// one-dimensional convex minimization, and integer lcm with overflow checks.
//
// The rejection schedulers repeatedly minimize convex single-variable
// functions (energy-per-cycle over speed, frame energy over execution time),
// so the minimizers here are written once, tested once, and reused.
#ifndef RETASK_COMMON_MATH_HPP
#define RETASK_COMMON_MATH_HPP

#include <cstdint>
#include <functional>

namespace retask {

/// Default relative tolerance used by the tolerant comparisons below.
inline constexpr double kRelTol = 1e-9;

/// True when `a` and `b` agree within `tol` relative to their magnitude
/// (falls back to an absolute comparison near zero).
bool almost_equal(double a, double b, double tol = kRelTol);

/// True when `a <= b` up to the tolerant comparison above. Used by the
/// feasibility checks so that analytically tight solutions (e.g. running
/// exactly at `smax`) are not rejected for rounding noise.
bool leq_tol(double a, double b, double tol = kRelTol);

/// Clamps `x` into `[lo, hi]`; requires `lo <= hi`.
double clamp(double x, double lo, double hi);

/// Minimizes a strictly unimodal (e.g. convex) function `f` over `[lo, hi]`
/// by golden-section search until the bracket is below `x_tol` wide.
/// Returns the abscissa of the minimum; requires `lo <= hi`.
double minimize_unimodal(const std::function<double(double)>& f, double lo, double hi,
                         double x_tol = 1e-12, int max_iter = 200);

/// Least common multiple with overflow detection (throws retask::Error).
/// Arguments must be positive.
std::int64_t checked_lcm(std::int64_t a, std::int64_t b);

/// Integer power with overflow detection (throws retask::Error on overflow).
std::int64_t checked_mul(std::int64_t a, std::int64_t b);

}  // namespace retask

#endif  // RETASK_COMMON_MATH_HPP
