// Error handling primitives for the retask library.
//
// The library reports contract violations (bad arguments, impossible
// configurations) by throwing `retask::Error`; numeric results are never
// silently clamped into validity. Internal invariants that should be
// unreachable use `RETASK_ASSERT`, which is active in all build types —
// scheduling results feed energy claims, so a wrong answer is worse than an
// abort.
#ifndef RETASK_COMMON_ERROR_HPP
#define RETASK_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>
#include <string_view>

namespace retask {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// Throws `retask::Error` with `message` when `condition` is false.
/// Used for checking user-facing preconditions.
inline void require(bool condition, std::string_view message) {
  if (!condition) throw Error(std::string(message));
}

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  throw Error(std::string("internal invariant violated: ") + expr + " at " + file + ":" +
              std::to_string(line));
}
}  // namespace detail

}  // namespace retask

/// Always-on internal invariant check (throws retask::Error on failure).
#define RETASK_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::retask::detail::assert_fail(#expr, __FILE__, __LINE__))

#endif  // RETASK_COMMON_ERROR_HPP
