// Flat bit-packed boolean matrix for DP choice tables.
//
// The reconstruction tables of the knapsack-style DPs (exact DP, FPTAS
// rounds, budgeted value DP) are rows-of-bools indexed [task][state]. A
// vector<vector<bool>> pays one heap allocation per task and loses cache
// locality across rows; this class packs the whole table into one
// contiguous uint64_t buffer whose capacity is reused across reset() calls,
// so a solver that runs many rounds (FPTAS guess refinement) allocates at
// most once per high-water mark.
#ifndef RETASK_COMMON_BIT_MATRIX_HPP
#define RETASK_COMMON_BIT_MATRIX_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace retask {

/// Dense rows x cols bit matrix; all bits start (and reset()) to zero.
class BitMatrix {
 public:
  BitMatrix() = default;

  /// Resizes to rows x cols and clears every bit. Keeps the underlying
  /// buffer's capacity, so repeated resets at similar sizes do not allocate.
  void reset(std::size_t rows, std::size_t cols) {
    words_per_row_ = (cols + 63) / 64;
    words_.assign(rows * words_per_row_, 0);
  }

  /// Changes the row count in place, keeping the column stride: existing
  /// rows keep their bits, new rows start all-zero. Used by the serve-mode
  /// delta solver to grow its retained choice table one task at a time
  /// without rebuilding the filled prefix.
  void resize_rows(std::size_t rows) { words_.resize(rows * words_per_row_); }

  bool test(std::size_t row, std::size_t col) const {
    return (words_[row * words_per_row_ + col / 64] >> (col % 64)) & 1u;
  }

  void set(std::size_t row, std::size_t col) {
    words_[row * words_per_row_ + col / 64] |= std::uint64_t{1} << (col % 64);
  }

  /// Mutable word storage of one row, for kernels that OR choice bits in
  /// bulk (see simd/kernels.hpp). Bit `col` of the row lives at word
  /// `col / 64`, bit `col % 64`.
  std::uint64_t* row_words(std::size_t row) { return words_.data() + row * words_per_row_; }
  const std::uint64_t* row_words(std::size_t row) const {
    return words_.data() + row * words_per_row_;
  }

  /// Words allocated per row ((cols + 63) / 64).
  std::size_t words_per_row() const { return words_per_row_; }

  /// Rows currently allocated (0 when the matrix has never been reset).
  std::size_t rows() const { return words_per_row_ == 0 ? 0 : words_.size() / words_per_row_; }

 private:
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace retask

#endif  // RETASK_COMMON_BIT_MATRIX_HPP
