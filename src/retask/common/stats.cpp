#include "retask/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "retask/common/error.hpp"

namespace retask {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.count_ == 1) {
    add(other.mean_);  // reproduces the sequential add() stream exactly
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
}

double OnlineStats::mean() const {
  require(count_ > 0, "OnlineStats::mean: no observations");
  return mean_;
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  require(count_ > 0, "OnlineStats::min: no observations");
  return min_;
}

double OnlineStats::max() const {
  require(count_ > 0, "OnlineStats::max: no observations");
  return max_;
}

double quantile(std::vector<double> values, double q) {
  require(!values.empty(), "quantile: empty input");
  require(q >= 0.0 && q <= 1.0, "quantile: q must be in [0, 1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace retask
