#include "retask/common/rng.hpp"

#include <cmath>

#include "retask/common/error.hpp"

namespace retask {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::stream_seed(std::uint64_t base, std::uint64_t stream) {
  // Jump the splitmix64 counter directly to position `stream` (the gamma
  // increment is additive) and emit that one output.
  std::uint64_t x = base + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must not exceed hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must not exceed hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::log_uniform(double lo, double hi) {
  require(lo > 0.0 && lo <= hi, "Rng::log_uniform: requires 0 < lo <= hi");
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; draws until the radius is in (0, 1].
  double u = uniform();
  while (u <= 0.0) u = uniform();
  const double v = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * v);
}

}  // namespace retask
