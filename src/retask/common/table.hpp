// Table emission for the benchmark binaries.
//
// Every reconstructed figure/table in bench/ prints its data series through
// this writer so that the output is simultaneously human-readable (aligned
// columns on stdout) and machine-parsable (the same rows are valid CSV when
// requested). Keeping emission in one place guarantees every experiment
// reports in the same format.
#ifndef RETASK_COMMON_TABLE_HPP
#define RETASK_COMMON_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace retask {

/// Column-oriented results table with a title and named columns.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Appends one row; the cell count must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits and
  /// appends the row.
  void add_row(const std::vector<double>& cells, int precision = 6);

  const std::string& title() const { return title_; }
  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Writes an aligned, boxed, human-readable rendering.
  void write_pretty(std::ostream& os) const;

  /// Writes RFC-4180-style CSV (header row + data rows).
  void write_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `precision` significant digits (shared by callers
/// that assemble mixed string/number rows).
std::string format_double(double value, int precision = 6);

}  // namespace retask

#endif  // RETASK_COMMON_TABLE_HPP
