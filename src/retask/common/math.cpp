#include "retask/common/math.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "retask/common/error.hpp"

namespace retask {

bool almost_equal(double a, double b, double tol) {
  // Non-finite values compare exactly: infinity is never "almost" a finite
  // number, and NaN is never almost anything.
  if (!std::isfinite(a) || !std::isfinite(b)) return a == b;
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= tol * scale;
}

bool leq_tol(double a, double b, double tol) { return a <= b || almost_equal(a, b, tol); }

double clamp(double x, double lo, double hi) {
  require(lo <= hi, "clamp: lo must not exceed hi");
  return std::min(std::max(x, lo), hi);
}

double minimize_unimodal(const std::function<double(double)>& f, double lo, double hi,
                         double x_tol, int max_iter) {
  require(lo <= hi, "minimize_unimodal: lo must not exceed hi");
  if (hi - lo <= x_tol) return 0.5 * (lo + hi);

  // Golden-section search keeps one interior evaluation per step.
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int it = 0; it < max_iter && (b - a) > x_tol * std::max(1.0, std::fabs(a) + std::fabs(b));
       ++it) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  require(!__builtin_mul_overflow(a, b, &out), "checked_mul: 64-bit overflow");
  return out;
}

std::int64_t checked_lcm(std::int64_t a, std::int64_t b) {
  require(a > 0 && b > 0, "checked_lcm: arguments must be positive");
  const std::int64_t g = std::gcd(a, b);
  return checked_mul(a / g, b);
}

}  // namespace retask
