// Deterministic parallel execution for the experiment harness.
//
// The primitive is parallel_for(n, fn): run fn(0) ... fn(n-1) on a small
// reusable worker pool. Scheduling is a single shared atomic ticket counter
// (no work stealing, no per-thread queues), so every index runs exactly
// once, on exactly one thread, in an unspecified interleaving. Callers that
// want thread-count-independent results write fn(i)'s output into slot i of
// a pre-sized buffer and reduce the slots in index order afterwards — see
// run_comparison in exp/harness.cpp.
//
// Job-count resolution: an explicit `jobs` argument wins, then
// set_default_jobs(), then the RETASK_JOBS environment variable, then
// std::thread::hardware_concurrency(). jobs = 1 bypasses the pool entirely
// and runs the loop inline on the calling thread, preserving the exact
// behavior (including exception timing) of a plain sequential loop.
#ifndef RETASK_COMMON_PARALLEL_HPP
#define RETASK_COMMON_PARALLEL_HPP

#include <cstddef>
#include <functional>

namespace retask {

/// Worker threads used when parallel_for is called with jobs = 0: the
/// set_default_jobs() override if set, else RETASK_JOBS (clamped to >= 1),
/// else hardware_concurrency(). Always >= 1.
int default_jobs();

/// Process-wide override for default_jobs(); pass 0 to restore automatic
/// detection. Values < 0 are rejected.
void set_default_jobs(int jobs);

/// True when the calling thread is executing inside a parallel_for region
/// (worker or caller). Nested parallel_for calls run inline there; callers
/// that would only *add* parallelism (e.g. the wavefront DP fill) use this
/// to skip the attempt and its setup cost entirely.
bool inside_parallel_region();

/// Runs fn(i) for every i in [0, n) exactly once. `jobs` = 0 uses
/// default_jobs(); `jobs` = 1 (or n <= 1, or a call nested inside another
/// parallel_for) runs inline in index order on the calling thread. If any
/// fn(i) throws, the exception for the smallest failing index is rethrown
/// on the calling thread after all workers have drained — the same
/// exception a sequential loop would have surfaced first.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn, int jobs = 0);

}  // namespace retask

#endif  // RETASK_COMMON_PARALLEL_HPP
