#include "retask/common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/obs/metrics.hpp"

namespace retask {
namespace {

std::atomic<int> g_jobs_override{0};

int detect_jobs() {
  if (const char* env = std::getenv("RETASK_JOBS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(parsed);
    return 1;  // malformed or <= 0: fail safe to sequential
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Re-entrancy guard: a parallel_for issued from inside a worker (or from a
// callback already running under parallel_for) degrades to the inline path
// instead of deadlocking on the pool.
thread_local bool t_inside_parallel_region = false;

/// Reusable worker pool. Workers are started lazily on first parallel use
/// and persist for the process lifetime; each parallel region publishes a
/// (fn, n) pair plus a shared ticket counter and wakes the workers, the
/// calling thread participates, and the region ends when every participant
/// has drained the counter.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn, int jobs) {
    RETASK_SCOPED_TIMER("parallel.region_ns");
    RETASK_COUNT("parallel.regions", 1);
    RETASK_GAUGE_MAX("parallel.max_jobs", jobs);
    const int helpers = jobs - 1;  // the caller is participant #0
    std::unique_lock<std::mutex> region(region_mutex_);
    ensure_workers(helpers);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      fn_ = &fn;
      total_ = n;
      // Chunked ticketing: each fetch_add claims a run of indices instead of
      // one, cutting contention on the counter for fine-grained items. The
      // chunk is capped so every participant still sees ~8 claims (load
      // balance) and at 64 so a straggler never holds too much work.
      chunk_ = std::max<std::size_t>(
          1, std::min<std::size_t>(64, n / (static_cast<std::size_t>(jobs) * 8)));
      next_.store(0, std::memory_order_relaxed);
      pending_helpers_ = helpers;
      active_helpers_ = helpers;
      failed_index_ = std::numeric_limits<std::size_t>::max();
      failure_ = nullptr;
      ++generation_;
    }
    work_ready_.notify_all();

    drain(/*helper=*/false);

    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_done_.wait(lock, [&] { return active_helpers_ == 0; });
      fn_ = nullptr;
      if (failure_) std::rethrow_exception(failure_);
    }
  }

 private:
  ThreadPool() = default;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
      ++generation_;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  void ensure_workers(int helpers) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (static_cast<int>(workers_.size()) < helpers) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    t_inside_parallel_region = true;
    std::uint64_t seen_generation = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [&] { return generation_ != seen_generation || stopping_; });
        if (stopping_) return;
        seen_generation = generation_;
        if (pending_helpers_ == 0) continue;  // late joiner: region fully staffed
        --pending_helpers_;
      }
      drain(/*helper=*/true);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--active_helpers_ == 0) work_done_.notify_all();
      }
    }
  }

  void drain(bool helper) {
    (void)helper;
    const std::function<void(std::size_t)>& fn = *fn_;
    const std::size_t n = total_;
    // Items claimed by this participant; flushed once per drain so the hot
    // ticket loop never touches the registry. The helper/caller split shows
    // how much of the region's work actually ran off the calling thread —
    // the pool-utilization signal the bench runner reports.
    RETASK_OBS_ONLY(std::uint64_t claimed = 0; std::uint64_t chunks = 0;)
    const std::size_t chunk = chunk_;
    while (true) {
      const std::size_t start = next_.fetch_add(chunk, std::memory_order_relaxed);
      if (start >= n) break;
      const std::size_t stop = std::min(n, start + chunk);
      RETASK_OBS_ONLY(claimed += stop - start; ++chunks;)
      // Per-item catch so one failure neither takes down its chunk-mates nor
      // loses the smallest-failed-index guarantee.
      for (std::size_t i = start; i < stop; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex_);
          if (i < failed_index_) {
            failed_index_ = i;
            failure_ = std::current_exception();
          }
        }
      }
    }
    RETASK_COUNT("parallel.items", claimed);
    RETASK_COUNT("parallel.chunks", chunks);
    RETASK_OBS_ONLY(if (helper) { RETASK_COUNT("parallel.items_helper", claimed); })
  }

  std::mutex region_mutex_;  // one parallel region at a time

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t total_ = 0;
  std::size_t chunk_ = 1;
  std::atomic<std::size_t> next_{0};
  std::uint64_t generation_ = 0;
  int pending_helpers_ = 0;
  int active_helpers_ = 0;
  bool stopping_ = false;
  std::size_t failed_index_ = std::numeric_limits<std::size_t>::max();
  std::exception_ptr failure_;
};

}  // namespace

int default_jobs() {
  const int override_jobs = g_jobs_override.load(std::memory_order_relaxed);
  if (override_jobs >= 1) return override_jobs;
  return detect_jobs();
}

void set_default_jobs(int jobs) {
  require(jobs >= 0, "set_default_jobs: jobs must be >= 0 (0 = auto)");
  g_jobs_override.store(jobs, std::memory_order_relaxed);
}

bool inside_parallel_region() { return t_inside_parallel_region; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn, int jobs) {
  require(jobs >= 0, "parallel_for: jobs must be >= 0 (0 = auto)");
  if (jobs == 0) jobs = default_jobs();
  if (static_cast<std::size_t>(jobs) > n) jobs = static_cast<int>(n);

  if (jobs <= 1 || t_inside_parallel_region) {
    RETASK_COUNT("parallel.regions_inline", 1);
    RETASK_COUNT("parallel.items", n);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  t_inside_parallel_region = true;
  try {
    ThreadPool::instance().run(n, fn, jobs);
  } catch (...) {
    t_inside_parallel_region = false;
    throw;
  }
  t_inside_parallel_region = false;
}

}  // namespace retask
