#include "retask/common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "retask/common/error.hpp"

namespace retask {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << value;
  return os.str();
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  require(!columns_.empty(), "Table: at least one column required");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == columns_.size(), "Table::add_row: cell count mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double value : cells) formatted.push_back(format_double(value, precision));
  add_row(std::move(formatted));
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  os << "== " << title_ << " ==\n";
  auto write_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  std::size_t total = 1;
  for (const std::size_t w : widths) total += w + 3;
  const std::string rule(total, '-');
  os << rule << '\n';
  write_line(columns_);
  os << rule << '\n';
  for (const auto& row : rows_) write_line(row);
  os << rule << '\n';
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto write_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  write_line(columns_);
  for (const auto& row : rows_) write_line(row);
}

}  // namespace retask
