// Deterministic random number generation for synthetic workloads.
//
// Every experiment in the paper-style evaluation is seeded, so results are
// reproducible bit-for-bit across runs and platforms. We implement
// xoshiro256++ (public domain, Blackman & Vigna) seeded through splitmix64
// rather than relying on std::mt19937 so that the stream is identical on any
// standard library implementation.
#ifndef RETASK_COMMON_RNG_HPP
#define RETASK_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

namespace retask {

/// xoshiro256++ generator; satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Derives the seed of an independent substream: output number `stream`
  /// of the splitmix64 sequence anchored at `base`. Seeding an Rng with
  /// stream_seed(base, k) gives every (instance, trajectory, ...) index its
  /// own reproducible stream without consuming draws from any other — the
  /// derivation the stochastic sweep pins for its jobs-invariance guarantee.
  static std::uint64_t stream_seed(std::uint64_t base, std::uint64_t stream);

  /// Next 64 raw bits.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi); requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi]; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Log-uniform double in [lo, hi); requires 0 < lo <= hi.
  double log_uniform(double lo, double hi);

  /// Standard normal via Box–Muller (no cached spare; stream stays simple).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher–Yates shuffle of `values`.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace retask

#endif  // RETASK_COMMON_RNG_HPP
