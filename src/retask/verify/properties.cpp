#include "retask/verify/properties.hpp"

#include <cstdlib>
#include <optional>
#include <sstream>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/core/algorithm_registry.hpp"
#include "retask/core/exact_dp.hpp"

namespace retask {
namespace {

std::string fmt(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

SolverClaim claim_of(const std::string& name) {
  if (name == "opt-dp" || name == "opt-exh" || name == "mp-opt-exh") return SolverClaim::kExact;
  if (name.rfind("fptas:", 0) == 0) return SolverClaim::kApprox;
  return SolverClaim::kHeuristic;
}

SolverUnderTest make_sut(const std::string& name) {
  SolverUnderTest sut;
  sut.name = name;
  sut.solver = make_solver(name);
  sut.claim = claim_of(name);
  if (sut.claim == SolverClaim::kApprox) {
    sut.approx_factor = 1.0 + std::strtod(name.c_str() + 6, nullptr);
  }
  return sut;
}

/// The exact DP run against a capacity one cycle short: rebuilds the
/// instance with work_per_cycle inflated just enough to lose the last
/// cycle, solves that exactly, and maps the accept mask back. Feasible and
/// internally consistent, but suboptimal whenever the optimum fills the
/// capacity — exactly the class of bug the differential harness must catch.
class BrokenCapacitySolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override {
    require(problem.processor_count() == 1, "BrokenCapacitySolver: single-processor algorithm");
    const Cycles capacity = problem.cycle_capacity();
    if (capacity <= 1) return ExactDpSolver().solve(problem);
    const double shrunk_wpc =
        problem.curve().max_workload() / (static_cast<double>(capacity) - 0.5);
    const RejectionProblem reduced(problem.tasks(), problem.curve(), shrunk_wpc, 1);
    const RejectionSolution on_reduced = ExactDpSolver().solve(reduced);
    return make_solution_on_one(problem, on_reduced.accepted);
  }
  std::string name() const override { return "broken-off-by-one"; }
};

}  // namespace

std::vector<SolverUnderTest> default_suite(int processor_count) {
  require(processor_count >= 1, "default_suite: processor_count must be at least 1");
  std::vector<SolverUnderTest> suite;
  for (const std::string& name : known_solver_names()) {
    if (is_multiprocessor_solver(name) != (processor_count > 1)) continue;
    suite.push_back(make_sut(name));
  }
  if (processor_count == 1) suite.push_back(make_sut("fptas:0.5"));
  return suite;
}

SolverUnderTest broken_capacity_solver() {
  SolverUnderTest sut;
  sut.name = "broken-off-by-one";
  sut.solver = std::make_shared<BrokenCapacitySolver>();
  sut.claim = SolverClaim::kExact;
  return sut;
}

std::string to_string(const PropertyViolation& violation) {
  return violation.property + "/" + violation.solver + ": " + violation.detail;
}

std::vector<PropertyViolation> check_instance(const RejectionProblem& problem,
                                              const std::vector<SolverUnderTest>& suite) {
  std::vector<PropertyViolation> violations;
  struct Outcome {
    const SolverUnderTest* sut = nullptr;
    RejectionSolution solution;
  };
  std::vector<Outcome> outcomes;

  for (const SolverUnderTest& sut : suite) {
    RejectionSolution solution;
    try {
      solution = sut.solver->solve(problem);
    } catch (const std::exception& error) {
      violations.push_back({"solve-error", sut.name, error.what()});
      continue;
    }
    // Structural: the independent validator plus a from-scratch recompute of
    // the energy/penalty split out of the accept mask and bindings.
    try {
      check_solution(problem, solution);
      double energy = 0.0;
      for (const Cycles load : processor_loads(problem, solution)) {
        energy += problem.energy_of_cycles(load);
      }
      const double recomputed = energy + problem.rejected_penalty(solution.accepted);
      if (!almost_equal(recomputed, solution.objective(), kObjectiveTol)) {
        violations.push_back({"structural", sut.name,
                              "objective " + fmt(solution.objective()) +
                                  " != recomputation " + fmt(recomputed)});
        continue;
      }
    } catch (const std::exception& error) {
      violations.push_back({"structural", sut.name, error.what()});
      continue;
    }
    outcomes.push_back({&sut, std::move(solution)});
  }

  // Oracle: the best objective among structurally sound exact solvers. All
  // differential properties compare against it.
  std::optional<double> oracle;
  std::string oracle_solver;
  for (const Outcome& outcome : outcomes) {
    if (outcome.sut->claim != SolverClaim::kExact) continue;
    const double objective = outcome.solution.objective();
    if (!oracle || objective < *oracle) {
      oracle = objective;
      oracle_solver = outcome.sut->name;
    }
  }
  if (!oracle) return violations;

  for (const Outcome& outcome : outcomes) {
    const double objective = outcome.solution.objective();
    const std::string vs = " (optimum " + fmt(*oracle) + " by " + oracle_solver + ")";
    switch (outcome.sut->claim) {
      case SolverClaim::kExact:
        if (!almost_equal(objective, *oracle, kObjectiveTol)) {
          violations.push_back(
              {"exact-match", outcome.sut->name, "objective " + fmt(objective) + vs});
        }
        break;
      case SolverClaim::kApprox:
        if (!leq_tol(objective, outcome.sut->approx_factor * *oracle, kObjectiveTol)) {
          violations.push_back({"approx-bound", outcome.sut->name,
                                "objective " + fmt(objective) + " > " +
                                    fmt(outcome.sut->approx_factor) + " * optimum" + vs});
        }
        break;
      case SolverClaim::kHeuristic:
        break;
    }
    // No validated solution may beat the claimed optimum: a heuristic
    // "better than optimal" convicts the exact solver, not the heuristic.
    if (!leq_tol(*oracle, objective, kObjectiveTol)) {
      violations.push_back({"no-regression", oracle_solver,
                            "objective " + fmt(objective) + " of " + outcome.sut->name +
                                " beats the claimed optimum " + fmt(*oracle)});
    }
  }
  return violations;
}

}  // namespace retask
