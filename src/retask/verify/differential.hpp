// Random-instance differential fuzzing of the solver lineup.
//
// Each round draws a scenario (power model, idle discipline, dormant
// overheads, processor count, load, penalty scale/model, cycle spread),
// generates a task set from it, and runs the property registry
// (verify/properties.hpp) over the full solver suite. Rounds execute under
// parallel_for with per-round seeding, so a report is bit-identical at any
// job count. On a violation the instance is minimized by drop-one-task
// descent (the counterexample keeps failing, but dropping any single task
// makes it pass) and packaged with its scenario for a replayable dump
// (io/counterexample.hpp).
#ifndef RETASK_VERIFY_DIFFERENTIAL_HPP
#define RETASK_VERIFY_DIFFERENTIAL_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "retask/common/rng.hpp"
#include "retask/core/problem.hpp"
#include "retask/io/counterexample.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/task/generator.hpp"
#include "retask/verify/properties.hpp"

namespace retask {

/// Everything needed to rebuild one fuzz instance bit-for-bit. Serialized
/// into counterexample files; the generation knobs (task_count, load, ...)
/// are provenance once the concrete task set is saved.
struct InstanceSpec {
  std::string model = "xscale";  ///< xscale | cubic | table5
  IdleDiscipline idle = IdleDiscipline::kDormantEnable;
  double frame = 1.0;
  double resolution = 200.0;  ///< cycles representing load 1
  int processor_count = 1;
  double switch_energy = 0.0;  ///< dormant-mode switch overheads
  double switch_time = 0.0;
  int task_count = 8;
  double load = 1.2;
  double penalty_scale = 1.0;
  double cycle_spread = 8.0;
  PenaltyModel penalty_model = PenaltyModel::kUniform;
  std::uint64_t seed = 1;  ///< task-generator seed
  // Stochastic execution-time provenance (--stochastic-diff): the actual-cycle
  // distribution and the trajectory stream seed, so a counterexample replays
  // the exact same early-completion trajectories.
  std::string stoch_kind = "uniform";  ///< uniform | normal | bimodal
  double stoch_lo = 0.25;              ///< ACET/WCET ratio support, lower edge
  double stoch_hi = 1.0;               ///< ACET/WCET ratio support, upper edge
  std::uint64_t stoch_seed = 1;        ///< trajectory-draw seed
};

/// Draws the task set `spec` describes (generator reuse: the same
/// FrameWorkloadConfig path as the evaluation benches).
FrameTaskSet draw_tasks(const InstanceSpec& spec);

/// Builds the problem for an explicit task set (replay and shrinking).
RejectionProblem build_problem(const InstanceSpec& spec, FrameTaskSet tasks);

/// Convenience: build_problem(spec, draw_tasks(spec)).
RejectionProblem build_instance(const InstanceSpec& spec);

/// Builds the verification suite for a processor count; the default is
/// default_suite. Injecting extra (e.g. deliberately broken) solvers is how
/// tests prove the harness catches bugs.
using SuiteFactory = std::function<std::vector<SolverUnderTest>(int processor_count)>;

/// Fuzz run knobs.
struct FuzzOptions {
  std::uint64_t seed = 1;   ///< base seed; round r uses seed + r
  int rounds = 200;         ///< instances to draw
  int max_n = 12;           ///< largest task count (clamped further for M > 1)
  int jobs = 0;             ///< parallel_for jobs; 0 = default_jobs()
  bool shrink = true;       ///< minimize failing instances
  bool sweep_cache = false; ///< also check warm-vs-cold sweep solve identity
  bool simd_diff = false;   ///< also check forced-scalar vs SIMD solve identity
  bool lockstep_diff = false; ///< also check batch-lockstep vs per-instance identity
  bool fused_sweep_diff = false; ///< also check fused cross-instance sweeps vs warm/cold identity
  bool delta_diff = false;  ///< also check serve-mode delta-solve vs cold identity
  bool stochastic_diff = false; ///< also cross-check ladder vs continuous reclamation
  bool mp_diff = false;     ///< also check heap-partition and mp-scale identities
};

/// Warm-vs-cold sweep-cache check: solves a 3-point capacity sweep of
/// `problem` through ExactDpSolver::solve_sweep and per-point solve(), and
/// a 3-budget sweep through solve_budgeted_dp_sweep and per-budget
/// solve_budgeted_dp, reporting any bitwise mismatch (accept masks,
/// energies, penalties/values) as "sweep-cache" violations. The cached
/// paths promise strict bit-identity, so the comparison uses exact double
/// equality. Single-processor instances only (returns empty otherwise).
std::vector<PropertyViolation> check_sweep_cache(const RejectionProblem& problem);

/// Forced-scalar vs vector-backend check: solves `problem` with every
/// kernel-using single-processor solver (exact DP, budgeted DP, FPTAS,
/// density/marginal greedy) under the scalar kernel table and under every
/// vector backend the host can execute, reporting any bitwise difference
/// (accept masks, energies, penalties) as "simd-diff" violations. The SIMD
/// layer promises bit-identity, so the comparison uses exact double
/// equality. Single-processor instances only (returns empty otherwise, and
/// on scalar-only hosts).
std::vector<PropertyViolation> check_simd_diff(const RejectionProblem& problem);

/// Lockstep-batch vs per-instance check: builds a same-shape fleet around
/// `problem` (lane 0 is `problem` itself, the other lanes are freshly drawn
/// task sets from `spec` variants), then solves the fleet through
/// BatchRejectionSolver at lane counts 4 and 8 — exercising both full
/// chunks and ragged padding — under the scalar table and every available
/// vector backend, for every lockstep-capable solver (exact DP, density
/// greedy, marginal greedy). Any bitwise difference from the per-instance
/// base solves is a "lockstep-diff" violation. Single-processor instances
/// only (returns empty otherwise).
std::vector<PropertyViolation> check_lockstep_diff(const InstanceSpec& spec,
                                                   const RejectionProblem& problem);

/// Fused cross-instance sweep vs per-instance warm vs per-point cold check:
/// builds the same same-shape fleet as check_lockstep_diff (lane 0 is
/// `problem`), expands every instance into a 3-point capacity sweep, and
/// solves the whole (instance x point) grid through
/// BatchRejectionSolver::solve_sweep_batch at lane counts 4 and 8 —
/// exercising a full fused chunk plus a ragged tail, and a padded chunk —
/// under the scalar table and every available vector backend. The fused
/// results must be bitwise identical to each instance's own
/// solve_sweep (the warm path) AND to a cold per-point solve; the greedy
/// solvers, which are not sweep-fusable, must come back identical through
/// the per-instance fallback. Any difference is a "fused-sweep-diff"
/// violation. Single-processor instances only (returns empty otherwise).
std::vector<PropertyViolation> check_fused_sweep_diff(const InstanceSpec& spec,
                                                      const RejectionProblem& problem);

/// Serve-mode delta-solve vs cold-solve check: admits `problem`'s tasks one
/// at a time into a DeltaSolver (checkpoint stride 4, so removals exercise
/// the checkpointed replay path), then drives a seeded random walk of
/// remove / readmit / reprice mutations over the resident set. After every
/// step the incremental solution must be bitwise identical (accept mask,
/// energy, penalty) to a cold ExactDpSolver solve of the same resident set;
/// any difference is a "delta-diff" violation. The incremental path promises
/// strict bit-identity, so the comparison uses exact double equality.
/// Single-processor instances only (returns empty otherwise).
std::vector<PropertyViolation> check_delta_diff(const InstanceSpec& spec,
                                                const RejectionProblem& problem);

/// Ladder-quantized vs continuous stochastic-reclamation check: admits the
/// instance through the density-greedy solver, draws seeded early-completion
/// trajectories from the spec's ACET/WCET distribution (plus the degenerate
/// all-WCET trajectory), and runs every stochastic policy on the continuous
/// backend and on 5- and 2-level frequency ladders. Violations
/// ("stochastic-diff"): any deadline miss on either backend, any run below
/// the continuous clairvoyant lower bound (checked only where that bound is
/// exact: dormant-disable, or dormant-enable without switch overheads — a
/// non-amortized sleep switch makes idle power effectively positive and the
/// critical-speed floor no longer optimal), a degenerate-trajectory ladder
/// run cheaper than its continuous twin (the chord never undercuts the
/// curve), or a bitwise divergence between the engine's continuous
/// static/greedy/clairvoyant paths and sched/reclaim (and between
/// expected_ratio == 1 pacing and the greedy reclaimer). Counterexample
/// details embed the distribution and trajectory seed, so dumps replay the
/// exact trajectories. Single-processor continuous-model instances only
/// (returns empty otherwise).
std::vector<PropertyViolation> check_stochastic_diff(const InstanceSpec& spec,
                                                     const RejectionProblem& problem);

/// Multiprocessor-scale identity check. Three layers, all exact-equality:
/// (1) the O(n log m) heap / tournament-tree partitioners against the
/// O(n * m) linear-scan reference (`partition_items_reference`) over the
/// instance's cycle weights, every policy, several bin counts — bin
/// assignments and bin loads must match bit for bit; (2) the mp-scale
/// solver's invariance contract — solutions at different jobs / lockstep
/// lane counts and under every available SIMD backend must be bitwise
/// identical; (3) composition identities — with local search off and no
/// oversized task, mp-scale under LTF placement reproduces mp-ltf-dp
/// bitwise, and every produced solution's objective stays at or above the
/// multiprocessor Lagrangian lower bound (soundness of core/lower_bound).
/// Violations are "mp-diff". Layers 2-3 need processor_count >= 2; layer 1
/// runs on every instance.
std::vector<PropertyViolation> check_mp_diff(const InstanceSpec& spec,
                                             const RejectionProblem& problem);

/// One failing, minimized instance.
struct FuzzCounterexample {
  int round = 0;            ///< failing round (replay: --seed + round)
  InstanceSpec spec;
  FrameTaskSet tasks;       ///< minimized task set
  std::vector<PropertyViolation> violations;  ///< on the minimized instance
  /// Solver metrics collected while re-checking the minimized instance;
  /// serialized as `metric.<name>` rows so the dump shows how much work the
  /// failing solve did. Empty in RETASK_OBS=OFF builds.
  obs::Registry metrics;
};

/// Aggregate fuzz outcome.
struct FuzzReport {
  int rounds = 0;
  int solver_runs = 0;  ///< solve() calls across all rounds (without shrinking)
  std::vector<FuzzCounterexample> counterexamples;
  bool ok() const { return counterexamples.empty(); }
};

/// Draws one random scenario honoring `options` (task counts keep the
/// exhaustive oracles inside their state guards).
InstanceSpec draw_spec(Rng& rng, const FuzzOptions& options);

/// Runs the sweep. `factory` defaults to default_suite.
FuzzReport run_differential_fuzz(const FuzzOptions& options, const SuiteFactory& factory = {});

/// Drop-one-task minimization: returns a task set that still violates some
/// property but whose every single-task reduction passes. `tasks` must
/// already fail; returns it unchanged when it is already 1-minimal.
FrameTaskSet shrink_tasks(const InstanceSpec& spec, FrameTaskSet tasks,
                          const SuiteFactory& factory = {});

/// Serialization to/from the io-layer counterexample format.
CounterexampleFile to_counterexample_file(const FuzzCounterexample& counterexample);
struct ReplayCase {
  InstanceSpec spec;
  FrameTaskSet tasks;
  bool stochastic = false;  ///< dump carried stoch-* metadata: re-run the
                            ///< stochastic cross-check on replay
};
ReplayCase from_counterexample_file(const CounterexampleFile& file);

/// Rebuilds the instance of a replay case and re-runs the property checks.
std::vector<PropertyViolation> check_replay(const ReplayCase& replay,
                                            const SuiteFactory& factory = {});

}  // namespace retask

#endif  // RETASK_VERIFY_DIFFERENTIAL_HPP
