// Property registry for differential solver verification.
//
// The paper's contribution is the measured gap between heuristics (Greedy,
// FPTAS) and the exact optimum, so a solver that silently returns a wrong
// objective corrupts every downstream table. This module states, once, what
// each solver's output must satisfy and checks a whole lineup against one
// instance:
//
//   * structural   — the solution revalidates (check_solution) and its
//                    energy/penalty split matches an independent
//                    recomputation from the accept mask and bindings;
//   * exact-match  — solvers claiming exactness (opt-dp, opt-exh,
//                    mp-opt-exh) agree with the best exact objective;
//   * approx-bound — the FPTAS objective is within its (1+eps) factor of
//                    the exact optimum;
//   * no-regression— no validated solution beats the claimed optimum (a
//                    heuristic "better than optimal" means the exact solver
//                    is wrong, which pairwise exact checks alone can miss).
//
// The fuzz driver (verify/differential.hpp) runs these checks over random
// scenario sweeps; tests run them on fixed instances.
#ifndef RETASK_VERIFY_PROPERTIES_HPP
#define RETASK_VERIFY_PROPERTIES_HPP

#include <memory>
#include <string>
#include <vector>

#include "retask/core/solver.hpp"

namespace retask {

/// How strong a solver's optimality claim is; selects the differential
/// properties applied to its output.
enum class SolverClaim {
  kExact,      ///< must match the best exact objective (up to kObjectiveTol)
  kApprox,     ///< objective <= approx_factor * optimum
  kHeuristic,  ///< structural checks only, plus the no-regression bound
};

/// One solver wired into the verification lineup.
struct SolverUnderTest {
  std::string name;  ///< registry name (reproducible via make_solver)
  std::shared_ptr<const RejectionSolver> solver;
  SolverClaim claim = SolverClaim::kHeuristic;
  double approx_factor = 1.0;  ///< kApprox: allowed objective / optimum
};

/// One failed property on one instance.
struct PropertyViolation {
  std::string property;  ///< "solve-error", "structural", "exact-match", ...
  std::string solver;    ///< offending solver's registry name
  std::string detail;    ///< human-readable evidence (objectives, bounds)
};

/// Relative tolerance for cross-solver objective comparisons. Looser than
/// kRelTol: objectives are sums of energies minimized by golden-section
/// search, so independent solve paths legitimately differ in the last bits.
inline constexpr double kObjectiveTol = 1e-7;

/// The standard lineup for an instance with `processor_count` processors:
/// single-processor instances get the exact DP + exhaustive oracle + two
/// FPTAS settings + both greedies + both baselines; multiprocessor ones get
/// the exhaustive oracle + every mp-capable heuristic. Built from
/// known_solver_names() so newly registered solvers join automatically.
std::vector<SolverUnderTest> default_suite(int processor_count);

/// A deliberately wrong solver — the exact DP run against a capacity one
/// cycle short — used to prove the harness catches real bugs (tests and
/// retask_fuzz --inject-broken). It claims kExact but is suboptimal on any
/// instance whose optimum uses the full capacity.
SolverUnderTest broken_capacity_solver();

/// Runs every solver in `suite` on `problem` and checks all applicable
/// properties. Returns the (possibly empty) list of violations; never
/// throws on solver misbehavior — solver exceptions become "solve-error"
/// violations.
std::vector<PropertyViolation> check_instance(const RejectionProblem& problem,
                                              const std::vector<SolverUnderTest>& suite);

/// One-line rendering "property/solver: detail" for logs and test output.
std::string to_string(const PropertyViolation& violation);

}  // namespace retask

#endif  // RETASK_VERIFY_PROPERTIES_HPP
