#include "retask/verify/differential.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "retask/batch/lockstep.hpp"
#include "retask/cache/sweep.hpp"
#include "retask/common/error.hpp"
#include "retask/common/parallel.hpp"
#include "retask/core/budgeted.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/fptas.hpp"
#include "retask/core/greedy.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/core/mp_scale.hpp"
#include "retask/core/multiproc.hpp"
#include "retask/exp/workload.hpp"
#include "retask/io/cli_options.hpp"
#include "retask/sched/partition.hpp"
#include "retask/power/freq_ladder.hpp"
#include "retask/sched/reclaim.hpp"
#include "retask/sched/stochastic.hpp"
#include "retask/serve/delta_solver.hpp"
#include "retask/simd/backend.hpp"

namespace retask {
namespace {

std::vector<SolverUnderTest> build_suite(const SuiteFactory& factory, int processor_count) {
  return factory ? factory(processor_count) : default_suite(processor_count);
}

std::string fmt(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

std::string penalty_model_name(PenaltyModel model) {
  switch (model) {
    case PenaltyModel::kUniform: return "uniform";
    case PenaltyModel::kProportionalCycles: return "proportional";
    case PenaltyModel::kInverseCycles: return "inverse";
  }
  throw Error("penalty_model_name: unknown penalty model");
}

PenaltyModel penalty_model_from(const std::string& name) {
  if (name == "uniform") return PenaltyModel::kUniform;
  if (name == "proportional") return PenaltyModel::kProportionalCycles;
  if (name == "inverse") return PenaltyModel::kInverseCycles;
  throw Error("counterexample: unknown penalty model '" + name + "'");
}

double meta_double(const CounterexampleFile& file, const std::string& key, double fallback) {
  const std::string* text = file.find(key);
  if (text == nullptr) return fallback;
  std::size_t used = 0;
  const double parsed = std::stod(*text, &used);
  require(used == text->size() && std::isfinite(parsed),
          "counterexample: bad numeric value for '" + key + "': '" + *text + "'");
  return parsed;
}

std::string meta_string(const CounterexampleFile& file, const std::string& key,
                        const std::string& fallback) {
  const std::string* text = file.find(key);
  return text == nullptr ? fallback : *text;
}

std::uint64_t meta_uint64(const CounterexampleFile& file, const std::string& key,
                          std::uint64_t fallback) {
  const std::string* text = file.find(key);
  if (text == nullptr) return fallback;
  try {
    std::size_t used = 0;
    const std::uint64_t parsed = std::stoull(*text, &used);
    require(used == text->size(), "trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw Error("counterexample: bad integer value for '" + key + "': '" + *text + "'");
  }
}

}  // namespace

FrameTaskSet draw_tasks(const InstanceSpec& spec) {
  const std::unique_ptr<PowerModel> model = make_model_by_name(spec.model);
  FrameWorkloadConfig config;
  config.task_count = spec.task_count;
  config.target_load = spec.load;
  config.frame = spec.frame;
  config.max_speed = model->max_speed();
  config.resolution = spec.resolution;
  config.cycle_spread = spec.cycle_spread;
  config.penalty_model = spec.penalty_model;
  config.penalty_scale = spec.penalty_scale;
  config.energy_per_cycle_ref = penalty_anchor(*model);
  Rng rng(spec.seed);
  return generate_frame_tasks(config, rng);
}

RejectionProblem build_problem(const InstanceSpec& spec, FrameTaskSet tasks) {
  const std::unique_ptr<PowerModel> model = make_model_by_name(spec.model);
  SleepParams sleep;
  sleep.switch_energy = spec.switch_energy;
  sleep.switch_time = spec.switch_time;
  EnergyCurve curve(*model, spec.frame, spec.idle, sleep);
  const double work_per_cycle = model->max_speed() * spec.frame / spec.resolution;
  return RejectionProblem(std::move(tasks), std::move(curve), work_per_cycle,
                          spec.processor_count);
}

RejectionProblem build_instance(const InstanceSpec& spec) {
  return build_problem(spec, draw_tasks(spec));
}

InstanceSpec draw_spec(Rng& rng, const FuzzOptions& options) {
  InstanceSpec spec;
  const char* models[] = {"xscale", "cubic", "table5"};
  spec.model = models[rng.uniform_int(0, 2)];
  spec.idle = rng.uniform() < 0.5 ? IdleDiscipline::kDormantEnable
                                  : IdleDiscipline::kDormantDisable;
  spec.frame = rng.uniform(0.5, 2.0);
  spec.resolution = rng.uniform(50.0, 400.0);
  // Half the rounds single-processor (where the DP/FPTAS/exhaustive triangle
  // lives), half multiprocessor against the exhaustive oracle.
  spec.processor_count = rng.uniform() < 0.5 ? 1 : static_cast<int>(rng.uniform_int(2, 3));
  // Keep the exhaustive oracles inside their state guards and fast: the MP
  // oracle enumerates (M+1)^n states.
  int max_n = std::max(2, options.max_n);
  if (spec.processor_count == 2) max_n = std::min(max_n, 11);
  if (spec.processor_count == 3) max_n = std::min(max_n, 9);
  spec.task_count = static_cast<int>(rng.uniform_int(2, max_n));
  spec.load = rng.uniform(0.4, 1.4) * spec.processor_count;
  spec.penalty_scale = rng.log_uniform(0.05, 20.0);
  spec.cycle_spread = rng.uniform(1.0, 16.0);
  const PenaltyModel penalty_models[] = {PenaltyModel::kUniform,
                                         PenaltyModel::kProportionalCycles,
                                         PenaltyModel::kInverseCycles};
  spec.penalty_model = penalty_models[rng.uniform_int(0, 2)];
  if (rng.uniform() < 0.5 && spec.idle == IdleDiscipline::kDormantEnable) {
    spec.switch_energy = rng.uniform(0.0, 0.2);
    spec.switch_time = rng.uniform(0.0, 0.3 * spec.frame);
  }
  spec.seed = rng();
  // Stochastic trajectory provenance, drawn after `seed` so existing checks
  // see bit-identical instances whether or not --stochastic-diff is on.
  const char* stoch_kinds[] = {"uniform", "normal", "bimodal"};
  spec.stoch_kind = stoch_kinds[rng.uniform_int(0, 2)];
  spec.stoch_lo = rng.uniform(0.05, 0.6);
  spec.stoch_hi = spec.stoch_lo + rng.uniform(0.0, 1.0 - spec.stoch_lo);
  spec.stoch_seed = rng();
  return spec;
}

namespace {

/// Drop-one-task descent against an arbitrary "still fails" predicate over
/// candidate task sets.
template <typename Fails>
FrameTaskSet shrink_tasks_impl(FrameTaskSet tasks, const Fails& still_fails) {
  bool changed = true;
  while (changed && tasks.size() > 1) {
    changed = false;
    for (std::size_t drop = 0; drop < tasks.size(); ++drop) {
      std::vector<FrameTask> reduced;
      reduced.reserve(tasks.size() - 1);
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (i != drop) reduced.push_back(tasks[i]);
      }
      FrameTaskSet candidate(std::move(reduced));
      if (still_fails(candidate)) {
        tasks = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return tasks;
}

}  // namespace

FrameTaskSet shrink_tasks(const InstanceSpec& spec, FrameTaskSet tasks,
                          const SuiteFactory& factory) {
  return shrink_tasks_impl(std::move(tasks), [&](const FrameTaskSet& candidate) {
    return !check_instance(build_problem(spec, candidate),
                           build_suite(factory, spec.processor_count))
                .empty();
  });
}

std::vector<PropertyViolation> check_sweep_cache(const RejectionProblem& problem) {
  std::vector<PropertyViolation> violations;
  if (problem.processor_count() != 1) return violations;
  const auto mismatch = [&](const std::string& solver, const std::string& detail) {
    violations.push_back({"sweep-cache", solver, detail});
  };

  // Capacity sweep: solve_sweep's warm-started table vs per-point solves.
  const std::vector<double> factors{0.5, 0.8, 1.0};
  const std::vector<RejectionProblem> points = make_capacity_sweep(problem, factors);
  std::vector<const RejectionProblem*> group;
  group.reserve(points.size());
  for (const RejectionProblem& point : points) group.push_back(&point);
  try {
    const std::vector<RejectionSolution> warm = ExactDpSolver().solve_sweep(group);
    RETASK_ASSERT(warm.size() == points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      const RejectionSolution cold = ExactDpSolver().solve(points[p]);
      if (warm[p].accepted != cold.accepted || warm[p].energy != cold.energy ||
          warm[p].penalty != cold.penalty) {
        mismatch("opt-dp", "capacity factor " + fmt(factors[p]) + ": warm objective " +
                               fmt(warm[p].objective()) + " != cold " + fmt(cold.objective()) +
                               " (or accept masks differ)");
      }
    }
  } catch (const std::exception& error) {
    mismatch("opt-dp", std::string("capacity sweep threw: ") + error.what());
  }

  // Budget sweep: warm-started budgeted DP vs per-budget solves.
  const Cycles cap = std::min(problem.cycle_capacity(), problem.tasks().total_cycles());
  if (cap < 1) return violations;
  BudgetedProblem budgeted{problem.tasks(), problem.curve(), problem.work_per_cycle(), 1.0};
  std::vector<double> budgets;
  for (const double fill : {0.4, 0.7, 1.0}) {
    const auto cycles = std::max<Cycles>(static_cast<Cycles>(static_cast<double>(cap) * fill), 1);
    const double budget = problem.energy_of_cycles(cycles);
    if (budget > 0.0) budgets.push_back(budget);
  }
  if (budgets.empty()) return violations;
  try {
    const std::vector<BudgetedSolution> warm = solve_budgeted_dp_sweep(budgeted, budgets);
    RETASK_ASSERT(warm.size() == budgets.size());
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      budgeted.energy_budget = budgets[b];
      const BudgetedSolution cold = solve_budgeted_dp(budgeted);
      if (warm[b].accepted != cold.accepted || warm[b].value != cold.value ||
          warm[b].energy != cold.energy) {
        mismatch("budgeted-dp", "budget " + fmt(budgets[b]) + ": warm value " +
                                    fmt(warm[b].value) + " != cold " + fmt(cold.value) +
                                    " (or accept masks differ)");
      }
    }
  } catch (const std::exception& error) {
    mismatch("budgeted-dp", std::string("budget sweep threw: ") + error.what());
  }
  return violations;
}

std::vector<PropertyViolation> check_simd_diff(const RejectionProblem& problem) {
  std::vector<PropertyViolation> violations;
  if (problem.processor_count() != 1) return violations;

  // Every vector backend the host can execute; empty on scalar-only hosts.
  const std::vector<simd::Backend> vector_backends = simd::available_vector_backends();
  if (vector_backends.empty()) return violations;

  const auto mismatch = [&](const std::string& solver, const std::string& detail) {
    violations.push_back({"simd-diff", solver, detail});
  };

  // Rejection solvers that go through the kernel layer. ScopedBackend is a
  // thread-local override, so forcing it here covers the whole solve even
  // when this round runs on a fuzz pool thread.
  const ExactDpSolver exact;
  const FptasSolver fptas(0.1);
  const DensityGreedySolver density;
  const MarginalGreedySolver marginal;
  const std::vector<const RejectionSolver*> solvers = {&exact, &fptas, &density, &marginal};
  for (const RejectionSolver* solver : solvers) {
    try {
      RejectionSolution scalar;
      {
        simd::ScopedBackend forced(simd::Backend::kScalar);
        scalar = solver->solve(problem);
      }
      for (const simd::Backend backend : vector_backends) {
        simd::ScopedBackend forced(backend);
        const RejectionSolution vectored = solver->solve(problem);
        if (vectored.accepted != scalar.accepted || vectored.energy != scalar.energy ||
            vectored.penalty != scalar.penalty) {
          mismatch(solver->name(), std::string(simd::to_string(backend)) + " objective " +
                                       fmt(vectored.objective()) + " != scalar " +
                                       fmt(scalar.objective()) + " (or accept masks differ)");
        }
      }
    } catch (const std::exception& error) {
      mismatch(solver->name(), std::string("simd diff threw: ") + error.what());
    }
  }

  // Budgeted DP (value-maximization twin of the rejection DP).
  const Cycles cap = std::min(problem.cycle_capacity(), problem.tasks().total_cycles());
  if (cap >= 1) {
    const double budget = problem.energy_of_cycles(cap);
    if (budget > 0.0) {
      BudgetedProblem budgeted{problem.tasks(), problem.curve(), problem.work_per_cycle(),
                               budget};
      try {
        BudgetedSolution scalar;
        {
          simd::ScopedBackend forced(simd::Backend::kScalar);
          scalar = solve_budgeted_dp(budgeted);
        }
        for (const simd::Backend backend : vector_backends) {
          simd::ScopedBackend forced(backend);
          const BudgetedSolution vectored = solve_budgeted_dp(budgeted);
          if (vectored.accepted != scalar.accepted || vectored.value != scalar.value ||
              vectored.energy != scalar.energy) {
            mismatch("budgeted-dp", std::string(simd::to_string(backend)) + " value " +
                                        fmt(vectored.value) + " != scalar " + fmt(scalar.value) +
                                        " (or accept masks differ)");
          }
        }
      } catch (const std::exception& error) {
        mismatch("budgeted-dp", std::string("simd diff threw: ") + error.what());
      }
    }
  }
  return violations;
}

std::vector<PropertyViolation> check_lockstep_diff(const InstanceSpec& spec,
                                                   const RejectionProblem& problem) {
  std::vector<PropertyViolation> violations;
  if (problem.processor_count() != 1) return violations;
  const auto mismatch = [&](const std::string& solver, const std::string& detail) {
    violations.push_back({"lockstep-diff", solver, detail});
  };

  // Same-shape fleet: lane 0 is the instance under test (so shrinking can
  // minimize a failure), lanes 1..4 are fresh task sets of the same size
  // drawn from derived seeds. Five instances at 4 lanes exercises a full
  // chunk plus a ragged single-instance tail; at 8 lanes, a padded chunk.
  std::vector<RejectionProblem> fleet;
  fleet.reserve(5);
  fleet.push_back(problem);
  for (std::uint64_t v = 1; v <= 4; ++v) {
    InstanceSpec variant = spec;
    variant.task_count = static_cast<int>(problem.size());
    variant.seed = spec.seed + 0x9e3779b97f4a7c15ULL * v;
    fleet.push_back(build_instance(variant));
    if (!same_shape(fleet.front(), fleet.back())) {
      // Never expected (the builder derives shape from the spec alone), but
      // a silent scalar fallback would hollow the check out.
      mismatch("fleet", "variant " + std::to_string(v) + " is not shape-compatible");
      fleet.pop_back();
    }
  }
  std::vector<const RejectionProblem*> batch;
  batch.reserve(fleet.size());
  for (const RejectionProblem& instance : fleet) batch.push_back(&instance);

  std::vector<simd::Backend> backends = {simd::Backend::kScalar};
  for (const simd::Backend b : simd::available_vector_backends()) backends.push_back(b);

  const ExactDpSolver exact;
  const DensityGreedySolver density;
  const MarginalGreedySolver marginal;
  const std::vector<const RejectionSolver*> solvers = {&exact, &density, &marginal};
  for (const RejectionSolver* solver : solvers) {
    for (const simd::Backend backend : backends) {
      try {
        simd::ScopedBackend forced(backend);
        std::vector<RejectionSolution> base;
        base.reserve(batch.size());
        for (const RejectionProblem* instance : batch) base.push_back(solver->solve(*instance));
        for (const int lanes : {4, 8}) {
          const BatchRejectionSolver batched(*solver, BatchConfig{lanes});
          const std::vector<RejectionSolution> lockstep = batched.solve_batch(batch);
          RETASK_ASSERT(lockstep.size() == base.size());
          for (std::size_t k = 0; k < base.size(); ++k) {
            if (lockstep[k].accepted != base[k].accepted ||
                lockstep[k].energy != base[k].energy ||
                lockstep[k].penalty != base[k].penalty) {
              mismatch(solver->name(),
                       std::string(simd::to_string(backend)) + " lanes=" +
                           std::to_string(lanes) + " lane " + std::to_string(k) +
                           ": lockstep objective " + fmt(lockstep[k].objective()) +
                           " != per-instance " + fmt(base[k].objective()) +
                           " (or accept masks differ)");
            }
          }
        }
      } catch (const std::exception& error) {
        mismatch(solver->name(), std::string("lockstep diff threw: ") + error.what());
      }
    }
  }
  return violations;
}

std::vector<PropertyViolation> check_fused_sweep_diff(const InstanceSpec& spec,
                                                      const RejectionProblem& problem) {
  std::vector<PropertyViolation> violations;
  if (problem.processor_count() != 1) return violations;
  const auto mismatch = [&](const std::string& solver, const std::string& detail) {
    violations.push_back({"fused-sweep-diff", solver, detail});
  };

  // Same-shape fleet around the instance (lane 0 is `problem` itself, so
  // shrinking can minimize a failure), each expanded into the same 3-point
  // capacity sweep. Five instances at 4 lanes exercises a full fused chunk
  // plus a ragged single-instance tail (which must take the per-instance
  // fallback); at 8 lanes, a padded chunk.
  std::vector<RejectionProblem> fleet;
  fleet.reserve(5);
  fleet.push_back(problem);
  for (std::uint64_t v = 1; v <= 4; ++v) {
    InstanceSpec variant = spec;
    variant.task_count = static_cast<int>(problem.size());
    variant.seed = spec.seed + 0x9e3779b97f4a7c15ULL * v;
    fleet.push_back(build_instance(variant));
    if (!same_shape(fleet.front(), fleet.back())) {
      mismatch("fleet", "variant " + std::to_string(v) + " is not shape-compatible");
      fleet.pop_back();
    }
  }

  const std::vector<double> factors{0.5, 0.8, 1.0};
  std::vector<std::vector<RejectionProblem>> sweeps;
  sweeps.reserve(fleet.size());
  for (const RejectionProblem& instance : fleet) {
    sweeps.push_back(make_capacity_sweep(instance, factors));
  }
  std::vector<std::vector<const RejectionProblem*>> grids(sweeps.size());
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    grids[i].reserve(sweeps[i].size());
    for (const RejectionProblem& point : sweeps[i]) grids[i].push_back(&point);
  }

  std::vector<simd::Backend> backends = {simd::Backend::kScalar};
  for (const simd::Backend b : simd::available_vector_backends()) backends.push_back(b);

  // The exact DP takes the fused cross-instance path; the greedy solvers
  // are not sweep-fusable and must come back bit-identical through the
  // per-instance fallback.
  const ExactDpSolver exact;
  const DensityGreedySolver density;
  const MarginalGreedySolver marginal;
  const std::vector<const RejectionSolver*> solvers = {&exact, &density, &marginal};
  for (const RejectionSolver* solver : solvers) {
    for (const simd::Backend backend : backends) {
      try {
        simd::ScopedBackend forced(backend);
        // The two baselines the fused path promises to reproduce bit for
        // bit: each instance's own warm sweep and a cold per-point solve.
        std::vector<std::vector<RejectionSolution>> warm(grids.size());
        std::vector<std::vector<RejectionSolution>> cold(grids.size());
        for (std::size_t i = 0; i < grids.size(); ++i) {
          warm[i] = solver->solve_sweep(grids[i]);
          cold[i].reserve(grids[i].size());
          for (const RejectionProblem* point : grids[i]) cold[i].push_back(solver->solve(*point));
        }
        for (const int lanes : {4, 8}) {
          const BatchRejectionSolver batched(*solver, BatchConfig{lanes});
          const std::vector<std::vector<RejectionSolution>> fused =
              batched.solve_sweep_batch(grids);
          RETASK_ASSERT(fused.size() == grids.size());
          for (std::size_t i = 0; i < grids.size(); ++i) {
            RETASK_ASSERT(fused[i].size() == grids[i].size());
            for (std::size_t p = 0; p < grids[i].size(); ++p) {
              const RejectionSolution& got = fused[i][p];
              const auto differs = [&](const RejectionSolution& want) {
                return got.accepted != want.accepted || got.energy != want.energy ||
                       got.penalty != want.penalty;
              };
              if (differs(warm[i][p]) || differs(cold[i][p])) {
                mismatch(solver->name(),
                         std::string(simd::to_string(backend)) + " lanes=" +
                             std::to_string(lanes) + " instance " + std::to_string(i) +
                             " point " + std::to_string(p) + ": fused objective " +
                             fmt(got.objective()) + " != warm " + fmt(warm[i][p].objective()) +
                             " / cold " + fmt(cold[i][p].objective()) +
                             " (or accept masks differ)");
              }
            }
          }
        }
      } catch (const std::exception& error) {
        mismatch(solver->name(), std::string("fused sweep diff threw: ") + error.what());
      }
    }
  }
  return violations;
}

std::vector<PropertyViolation> check_delta_diff(const InstanceSpec& spec,
                                                const RejectionProblem& problem) {
  std::vector<PropertyViolation> violations;
  if (problem.processor_count() != 1) return violations;
  const auto mismatch = [&](const std::string& detail) {
    violations.push_back({"delta-diff", "delta-dp", detail});
  };

  // Stride 4 instead of the serving default: with fuzz-sized task sets every
  // removal then lands between checkpoints, so the checkpointed replay (not
  // just the base-state cold refill) is exercised.
  DeltaSolver::Config config;
  config.checkpoint_stride = 4;
  DeltaSolver delta(problem.curve(), problem.work_per_cycle(), config);

  // After every mutation the incremental table must reproduce a cold solve
  // of the same resident set bit for bit.
  const auto agrees = [&](const std::string& step) {
    const RejectionSolution& live = delta.solution();
    const RejectionSolution cold = ExactDpSolver().solve(delta.make_problem());
    if (live.accepted != cold.accepted || live.energy != cold.energy ||
        live.penalty != cold.penalty) {
      mismatch(step + ": delta objective " + fmt(live.objective()) + " != cold " +
               fmt(cold.objective()) + " (or accept masks differ)");
      return false;
    }
    return true;
  };

  try {
    const FrameTaskSet& tasks = problem.tasks();
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      delta.admit(tasks[i]);
      if (!agrees("admit id " + std::to_string(tasks[i].id))) return violations;
    }
    // Seeded mutation walk (replays bit-for-bit from the instance spec):
    // remove residents, readmit removed tasks, reprice survivors.
    Rng rng(spec.seed ^ 0xde17ad1ffULL);
    std::vector<FrameTask> removed;
    const std::size_t steps = 2 * tasks.size();
    for (std::size_t step = 0; step < steps; ++step) {
      const std::int64_t op = rng.uniform_int(0, 2);
      if (op == 0 && delta.size() > 0) {
        const auto at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(delta.size()) - 1));
        const FrameTask victim = delta.resident()[at];
        delta.remove(victim.id);
        removed.push_back(victim);
        if (!agrees("remove id " + std::to_string(victim.id))) return violations;
      } else if (op == 1 && !removed.empty()) {
        const auto at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(removed.size()) - 1));
        const FrameTask task = removed[at];
        removed.erase(removed.begin() + static_cast<std::ptrdiff_t>(at));
        delta.admit(task);
        if (!agrees("readmit id " + std::to_string(task.id))) return violations;
      } else if (op == 2 && delta.size() > 0) {
        const auto at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(delta.size()) - 1));
        const FrameTask target = delta.resident()[at];
        const double penalty = target.penalty * rng.uniform(0.25, 4.0);
        delta.reprice(target.id, penalty);
        if (!agrees("reprice id " + std::to_string(target.id))) return violations;
      }
    }
  } catch (const std::exception& error) {
    mismatch(std::string("delta walk threw: ") + error.what());
  }
  return violations;
}

std::vector<PropertyViolation> check_stochastic_diff(const InstanceSpec& spec,
                                                     const RejectionProblem& problem) {
  std::vector<PropertyViolation> violations;
  if (problem.processor_count() != 1) return violations;
  if (!problem.curve().model().is_continuous()) return violations;
  // Every detail carries the distribution and trajectory seed: together with
  // the serialized spec they replay the exact failing trajectory.
  const std::string provenance = " [stoch " + spec.stoch_kind + ":" + fmt(spec.stoch_lo) + "," +
                                 fmt(spec.stoch_hi) + " seed " +
                                 std::to_string(spec.stoch_seed) + "]";
  const auto mismatch = [&](const std::string& policy, const std::string& detail) {
    violations.push_back({"stochastic-diff", policy, detail + provenance});
  };

  try {
    // Admit through the density-greedy solver: the accepted set is feasible
    // by the solver contract, which is what the reclamation engine requires.
    const RejectionSolution solution = DensityGreedySolver().solve(problem);
    std::vector<FrameTask> accepted;
    accepted.reserve(problem.size());
    for (std::size_t i = 0; i < problem.size(); ++i) {
      if (solution.accepted[i]) accepted.push_back(problem.tasks()[i]);
    }
    if (accepted.empty()) return violations;

    const TrajectoryDistribution dist = parse_distribution(
        spec.stoch_kind + ":" + fmt(spec.stoch_lo) + "," + fmt(spec.stoch_hi));
    const EnergyCurve& curve = problem.curve();
    const double kappa = problem.work_per_cycle();
    const FreqLadder ladder5 = FreqLadder::from_model(curve.model(), 5);
    const FreqLadder ladder2 = FreqLadder::from_model(curve.model(), 2);

    std::vector<Cycles> worst(accepted.size());
    for (std::size_t i = 0; i < accepted.size(); ++i) worst[i] = accepted[i].cycles;

    // The clairvoyant bound is a theorem only where its floor is the true
    // optimum: dormant-disable (the convex extra-cost per work is minimized
    // at the slowest feasible speed) and overhead-free dormant-enable (idle
    // is free, the critical speed minimizes P(s)/s). With dormant-enable
    // switch overheads a short idle tail never amortizes the switch, the
    // effective idle power turns positive, and a longer-busy run can
    // legitimately undercut the critical-speed "optimum".
    const bool bound_is_exact = spec.idle == IdleDiscipline::kDormantDisable ||
                                (spec.switch_energy == 0.0 && spec.switch_time == 0.0);

    Rng rng(spec.stoch_seed);
    for (int t = 0; t < 4; ++t) {
      // Trajectory 0 is the degenerate all-WCET run (where ladder-dominates-
      // continuous is a theorem); the rest are seeded draws.
      const bool degenerate = t == 0;
      const std::vector<Cycles> actual =
          degenerate ? worst : draw_trajectory(accepted, dist, rng);
      const std::string tag = "trajectory " + std::to_string(t);

      StochasticFrameConfig frame;
      frame.policy = StochasticPolicy::kClairvoyant;
      const double bound = simulate_frame_stochastic(accepted, actual, kappa, curve, frame).energy;

      for (const StochasticPolicy policy : all_stochastic_policies()) {
        frame.policy = policy;
        frame.expected_ratio = dist.mean_ratio();
        frame.ladder = nullptr;
        const StochasticFrameResult continuous =
            simulate_frame_stochastic(accepted, actual, kappa, curve, frame);
        if (!continuous.deadline_met) {
          mismatch(to_string(policy), tag + ": continuous deadline miss, completion " +
                                          fmt(continuous.completion));
        }
        if (bound_is_exact && continuous.energy < bound - 1e-9) {
          mismatch(to_string(policy), tag + ": continuous energy " + fmt(continuous.energy) +
                                          " undercuts the clairvoyant bound " + fmt(bound));
        }
        for (const FreqLadder* ladder : {&ladder5, &ladder2}) {
          frame.ladder = ladder;
          const StochasticFrameResult quantized =
              simulate_frame_stochastic(accepted, actual, kappa, curve, frame);
          const std::string level_tag =
              tag + ": " + std::to_string(ladder->size()) + "-level ladder";
          if (!quantized.deadline_met) {
            mismatch(to_string(policy),
                     level_tag + " deadline miss, completion " + fmt(quantized.completion));
          }
          if (bound_is_exact && quantized.energy < bound - 1e-9) {
            mismatch(to_string(policy), level_tag + " energy " + fmt(quantized.energy) +
                                            " undercuts the clairvoyant bound " + fmt(bound));
          }
          // The chord argument only covers speeds within the ladder's range:
          // below the bottom level the ladder clamps up, finishes the task
          // early, and hands later tasks extra slack — legitimately cheaper.
          bool within_range = true;
          for (const double speed : continuous.task_speeds) {
            within_range = within_range && speed >= ladder->min_speed() - 1e-12;
          }
          if (degenerate && within_range && quantized.energy < continuous.energy - 1e-9) {
            mismatch(to_string(policy),
                     level_tag + " all-WCET energy " + fmt(quantized.energy) +
                         " undercuts the continuous run " + fmt(continuous.energy) +
                         " (the chord never undercuts the curve)");
          }
        }
      }

      // The continuous engine paths promise bit-identity with sched/reclaim.
      const struct {
        StochasticPolicy mine;
        ReclaimPolicy theirs;
      } pairs[] = {
          {StochasticPolicy::kStatic, ReclaimPolicy::kStatic},
          {StochasticPolicy::kGreedy, ReclaimPolicy::kGreedy},
          {StochasticPolicy::kClairvoyant, ReclaimPolicy::kClairvoyant},
      };
      frame.ladder = nullptr;
      for (const auto& pair : pairs) {
        frame.policy = pair.mine;
        const StochasticFrameResult mine =
            simulate_frame_stochastic(accepted, actual, kappa, curve, frame);
        const ReclaimResult theirs =
            simulate_frame_reclaim(accepted, actual, kappa, curve, pair.theirs);
        if (mine.energy != theirs.energy || mine.completion != theirs.completion) {
          mismatch(to_string(pair.mine),
                   tag + ": engine energy " + fmt(mine.energy) + " / completion " +
                       fmt(mine.completion) + " != reclaim " + fmt(theirs.energy) + " / " +
                       fmt(theirs.completion) + " (bit-identity promised)");
        }
      }
      frame.policy = StochasticPolicy::kExpected;
      frame.expected_ratio = 1.0;
      const StochasticFrameResult paced =
          simulate_frame_stochastic(accepted, actual, kappa, curve, frame);
      frame.policy = StochasticPolicy::kGreedy;
      const StochasticFrameResult greedy =
          simulate_frame_stochastic(accepted, actual, kappa, curve, frame);
      if (paced.energy != greedy.energy || paced.completion != greedy.completion) {
        mismatch("expected", tag + ": expected_ratio=1 energy " + fmt(paced.energy) +
                                 " / completion " + fmt(paced.completion) + " != greedy " +
                                 fmt(greedy.energy) + " / " + fmt(greedy.completion) +
                                 " (bit-identity promised)");
      }
    }
  } catch (const std::exception& error) {
    mismatch("engine", std::string("stochastic diff threw: ") + error.what());
  }
  return violations;
}

std::vector<PropertyViolation> check_mp_diff(const InstanceSpec& spec,
                                             const RejectionProblem& problem) {
  std::vector<PropertyViolation> violations;
  const auto mismatch = [&](const std::string& solver, const std::string& detail) {
    violations.push_back({"mp-diff", solver, detail});
  };

  // 1) Heap / tournament-tree partitioners vs the linear-scan reference.
  // Bin assignments AND loads must match bit for bit (loads accumulate in
  // assignment order, so equal assignments imply equal load bits — checking
  // both makes a divergence report pinpoint which side drifted).
  std::vector<double> weights(problem.size());
  for (std::size_t i = 0; i < problem.size(); ++i) {
    weights[i] = static_cast<double>(problem.tasks()[i].cycles);
  }
  const auto capacity = static_cast<double>(problem.cycle_capacity());
  const struct {
    PartitionPolicy policy;
    const char* name;
  } policies[] = {
      {PartitionPolicy::kLargestFirst, "ltf"},
      {PartitionPolicy::kInOrder, "in-order"},
      {PartitionPolicy::kFirstFit, "first-fit"},
      {PartitionPolicy::kBestFit, "best-fit"},
      {PartitionPolicy::kFirstFitDecreasing, "ffd"},
  };
  try {
    for (const int bins : {1, 2, 3, 7, 64, 257}) {
      for (const auto& entry : policies) {
        const Partition fast = partition_items(weights, bins, entry.policy, capacity);
        const Partition ref = partition_items_reference(weights, bins, entry.policy, capacity);
        if (fast.bin_of != ref.bin_of || fast.loads != ref.loads) {
          mismatch("partition", std::string(entry.name) + " bins=" + std::to_string(bins) +
                                    ": heap/tree assignment differs from the linear reference");
        }
      }
      // kShuffled consumes the rng; twin streams keep the orders identical.
      Rng fast_rng(spec.seed ^ 0x5eedULL);
      Rng ref_rng(spec.seed ^ 0x5eedULL);
      const Partition fast =
          partition_items(weights, bins, PartitionPolicy::kShuffled, 0.0, &fast_rng);
      const Partition ref =
          partition_items_reference(weights, bins, PartitionPolicy::kShuffled, 0.0, &ref_rng);
      if (fast.bin_of != ref.bin_of || fast.loads != ref.loads) {
        mismatch("partition", "shuffled bins=" + std::to_string(bins) +
                                  ": heap assignment differs from the linear reference");
      }
    }
  } catch (const std::exception& error) {
    mismatch("partition", std::string("partition diff threw: ") + error.what());
  }

  if (problem.processor_count() < 2) return violations;

  const auto same_solution = [](const RejectionSolution& a, const RejectionSolution& b) {
    return a.accepted == b.accepted && a.processor_of == b.processor_of &&
           a.energy == b.energy && a.penalty == b.penalty;
  };

  try {
    // 2) mp-scale invariance: jobs, lockstep lanes, and SIMD backend must
    // not change a bit (the solver's core contract — all parallelism lives
    // in the bit-exact phase 2).
    MpScaleConfig base_config;
    base_config.jobs = 1;
    base_config.lanes = 0;  // solo per-PE solves
    const RejectionSolution base = MultiProcScaleSolver(base_config).solve(problem);
    const struct {
      int jobs;
      int lanes;
    } variants[] = {{0, 4}, {2, 8}, {4, 2}};
    for (const auto& variant : variants) {
      MpScaleConfig config;
      config.jobs = variant.jobs;
      config.lanes = variant.lanes;
      const RejectionSolution other = MultiProcScaleSolver(config).solve(problem);
      if (!same_solution(base, other)) {
        mismatch("mp-scale", "jobs=" + std::to_string(variant.jobs) + " lanes=" +
                                 std::to_string(variant.lanes) + " objective " +
                                 fmt(other.objective()) + " != baseline " +
                                 fmt(base.objective()) + " (or masks/bindings differ)");
      }
    }
    for (const simd::Backend backend : simd::available_vector_backends()) {
      RejectionSolution scalar;
      {
        simd::ScopedBackend forced(simd::Backend::kScalar);
        scalar = MultiProcScaleSolver().solve(problem);
      }
      simd::ScopedBackend forced(backend);
      const RejectionSolution vectored = MultiProcScaleSolver().solve(problem);
      if (!same_solution(scalar, vectored)) {
        mismatch("mp-scale", std::string(simd::to_string(backend)) + " objective " +
                                 fmt(vectored.objective()) + " != scalar " +
                                 fmt(scalar.objective()) + " (or masks/bindings differ)");
      }
    }

    // 3a) Composition: local search off + LTF placement + no oversized task
    // reduces mp-scale to exactly the mp-ltf-dp pipeline (same partition,
    // lockstep-solved subproblems bit-identical to its solo DP solves).
    bool oversized = false;
    for (std::size_t i = 0; i < problem.size(); ++i) {
      oversized = oversized || problem.tasks()[i].cycles > problem.cycle_capacity();
    }
    if (!oversized) {
      MpScaleConfig ltf_config;
      ltf_config.local_search_rounds = 0;
      const RejectionSolution scale = MultiProcScaleSolver(ltf_config).solve(problem);
      const RejectionSolution ltf = MultiProcLtfRejectSolver().solve(problem);
      if (!same_solution(scale, ltf)) {
        mismatch("mp-scale", "rounds=0 objective " + fmt(scale.objective()) +
                                 " != mp-ltf-dp " + fmt(ltf.objective()) +
                                 " (composition identity, no oversized tasks)");
      }
    }

    // 3b) Bound soundness: no feasible solution may undercut the Lagrangian
    // lower bound (checked on the local-search solution, the strongest one
    // at hand).
    const double bound = multiproc_lower_bound(problem);
    if (base.objective() < bound - 1e-9 * std::max(1.0, bound)) {
      mismatch("mp-lower-bound", "mp-scale objective " + fmt(base.objective()) +
                                     " undercuts the Lagrangian bound " + fmt(bound));
    }
  } catch (const std::exception& error) {
    mismatch("mp-scale", std::string("mp diff threw: ") + error.what());
  }
  return violations;
}

FuzzReport run_differential_fuzz(const FuzzOptions& options, const SuiteFactory& factory) {
  require(options.rounds >= 0, "run_differential_fuzz: rounds must be non-negative");
  require(options.max_n >= 2, "run_differential_fuzz: max_n must be at least 2");

  const std::size_t rounds = static_cast<std::size_t>(options.rounds);
  std::vector<std::optional<FuzzCounterexample>> slots(rounds);
  std::vector<int> runs(rounds, 0);

  parallel_for(
      rounds,
      [&](std::size_t round) {
        Rng rng(options.seed + round);
        const InstanceSpec spec = draw_spec(rng, options);
        const std::vector<SolverUnderTest> suite = build_suite(factory, spec.processor_count);
        runs[round] = static_cast<int>(suite.size());
        FrameTaskSet tasks = draw_tasks(spec);
        // The per-round check (and, below, the shrink predicate and the
        // final re-check) optionally appends the sweep-cache warm-vs-cold
        // comparison, so cached-path divergences are caught, minimized and
        // reported exactly like property violations.
        const auto check_all = [&](const RejectionProblem& problem) {
          std::vector<PropertyViolation> found = check_instance(problem, suite);
          if (options.sweep_cache) {
            std::vector<PropertyViolation> extra = check_sweep_cache(problem);
            found.insert(found.end(), std::make_move_iterator(extra.begin()),
                         std::make_move_iterator(extra.end()));
          }
          if (options.simd_diff) {
            std::vector<PropertyViolation> extra = check_simd_diff(problem);
            found.insert(found.end(), std::make_move_iterator(extra.begin()),
                         std::make_move_iterator(extra.end()));
          }
          if (options.lockstep_diff) {
            std::vector<PropertyViolation> extra = check_lockstep_diff(spec, problem);
            found.insert(found.end(), std::make_move_iterator(extra.begin()),
                         std::make_move_iterator(extra.end()));
          }
          if (options.fused_sweep_diff) {
            std::vector<PropertyViolation> extra = check_fused_sweep_diff(spec, problem);
            found.insert(found.end(), std::make_move_iterator(extra.begin()),
                         std::make_move_iterator(extra.end()));
          }
          if (options.delta_diff) {
            std::vector<PropertyViolation> extra = check_delta_diff(spec, problem);
            found.insert(found.end(), std::make_move_iterator(extra.begin()),
                         std::make_move_iterator(extra.end()));
          }
          if (options.stochastic_diff) {
            std::vector<PropertyViolation> extra = check_stochastic_diff(spec, problem);
            found.insert(found.end(), std::make_move_iterator(extra.begin()),
                         std::make_move_iterator(extra.end()));
          }
          if (options.mp_diff) {
            std::vector<PropertyViolation> extra = check_mp_diff(spec, problem);
            found.insert(found.end(), std::make_move_iterator(extra.begin()),
                         std::make_move_iterator(extra.end()));
          }
          return found;
        };
        std::vector<PropertyViolation> violations = check_all(build_problem(spec, tasks));
        if (violations.empty()) return;
        if (options.shrink) {
          tasks = shrink_tasks_impl(std::move(tasks), [&](const FrameTaskSet& candidate) {
            return !check_all(build_problem(spec, candidate)).empty();
          });
        }
        // Re-check the (possibly minimized) instance under a scoped metrics
        // registry so the counterexample records how much work the failing
        // solves did — the shrink search's own solves are excluded.
        obs::Registry metrics;
        {
          obs::ActiveScope scope(metrics);
          violations = check_all(build_problem(spec, tasks));
        }
        slots[round] = FuzzCounterexample{static_cast<int>(round), spec, std::move(tasks),
                                          std::move(violations), std::move(metrics)};
      },
      options.jobs);

  FuzzReport report;
  report.rounds = options.rounds;
  for (std::size_t round = 0; round < rounds; ++round) {
    report.solver_runs += runs[round];
    if (slots[round]) report.counterexamples.push_back(std::move(*slots[round]));
  }
  return report;
}

CounterexampleFile to_counterexample_file(const FuzzCounterexample& counterexample) {
  const InstanceSpec& spec = counterexample.spec;
  CounterexampleFile file;
  file.meta = {
      {"model", spec.model},
      {"idle", spec.idle == IdleDiscipline::kDormantEnable ? "enable" : "disable"},
      {"frame", fmt(spec.frame)},
      {"resolution", fmt(spec.resolution)},
      {"processors", std::to_string(spec.processor_count)},
      {"esw", fmt(spec.switch_energy)},
      {"tsw", fmt(spec.switch_time)},
      {"penalty-model", penalty_model_name(spec.penalty_model)},
      {"load", fmt(spec.load)},
      {"penalty-scale", fmt(spec.penalty_scale)},
      {"cycle-spread", fmt(spec.cycle_spread)},
      {"task-count", std::to_string(spec.task_count)},
      {"seed", std::to_string(spec.seed)},
      {"stoch-kind", spec.stoch_kind},
      {"stoch-lo", fmt(spec.stoch_lo)},
      {"stoch-hi", fmt(spec.stoch_hi)},
      {"stoch-seed", std::to_string(spec.stoch_seed)},
      {"round", std::to_string(counterexample.round)},
  };
  for (const PropertyViolation& violation : counterexample.violations) {
    file.meta.emplace_back("violation", to_string(violation));
  }
  // Deterministic solver metrics of the failing re-check (timers excluded so
  // replays of the same instance produce the same dump).
  for (const obs::MetricRow& row :
       obs::report_rows(counterexample.metrics, /*include_timers=*/false)) {
    file.meta.emplace_back("metric." + row.name, row.value);
  }
  file.tasks = counterexample.tasks;
  return file;
}

ReplayCase from_counterexample_file(const CounterexampleFile& file) {
  ReplayCase replay;
  InstanceSpec& spec = replay.spec;
  spec.model = meta_string(file, "model", spec.model);
  const std::string idle = meta_string(file, "idle", "enable");
  require(idle == "enable" || idle == "disable",
          "counterexample: idle must be 'enable' or 'disable', got '" + idle + "'");
  spec.idle = idle == "enable" ? IdleDiscipline::kDormantEnable : IdleDiscipline::kDormantDisable;
  spec.frame = meta_double(file, "frame", spec.frame);
  spec.resolution = meta_double(file, "resolution", spec.resolution);
  spec.processor_count = static_cast<int>(meta_double(file, "processors", 1.0));
  spec.switch_energy = meta_double(file, "esw", 0.0);
  spec.switch_time = meta_double(file, "tsw", 0.0);
  spec.penalty_model = penalty_model_from(meta_string(file, "penalty-model", "uniform"));
  spec.load = meta_double(file, "load", spec.load);
  spec.penalty_scale = meta_double(file, "penalty-scale", spec.penalty_scale);
  spec.cycle_spread = meta_double(file, "cycle-spread", spec.cycle_spread);
  spec.task_count = static_cast<int>(meta_double(file, "task-count",
                                                 static_cast<double>(file.tasks.size())));
  spec.seed = meta_uint64(file, "seed", 1);
  replay.stochastic = file.find("stoch-kind") != nullptr;
  spec.stoch_kind = meta_string(file, "stoch-kind", spec.stoch_kind);
  spec.stoch_lo = meta_double(file, "stoch-lo", spec.stoch_lo);
  spec.stoch_hi = meta_double(file, "stoch-hi", spec.stoch_hi);
  spec.stoch_seed = meta_uint64(file, "stoch-seed", spec.stoch_seed);
  replay.tasks = file.tasks;
  return replay;
}

std::vector<PropertyViolation> check_replay(const ReplayCase& replay,
                                            const SuiteFactory& factory) {
  const RejectionProblem problem = build_problem(replay.spec, replay.tasks);
  std::vector<PropertyViolation> violations =
      check_instance(problem, build_suite(factory, replay.spec.processor_count));
  // Dumps carrying trajectory metadata re-run the stochastic cross-check, so
  // a --stochastic-diff counterexample keeps failing on replay.
  if (replay.stochastic) {
    std::vector<PropertyViolation> extra = check_stochastic_diff(replay.spec, problem);
    violations.insert(violations.end(), std::make_move_iterator(extra.begin()),
                      std::make_move_iterator(extra.end()));
  }
  return violations;
}

}  // namespace retask
