#include "retask/batch/wavefront.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/common/parallel.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/simd/kernels.hpp"

namespace retask {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Auto-mode floor: below this table width the per-diagonal barriers and the
/// out-of-place copies cost more than the parallelism returns.
constexpr std::size_t kMinAutoWidth = std::size_t{1} << 16;

/// Level-ring memory budget; the tile width grows until C + 1 rows fit.
constexpr std::size_t kMaxRingBytes = std::size_t{256} << 20;

std::atomic<int> g_mode{-1};  // -1: not yet resolved from the environment

int resolve_mode() {
  const char* env = std::getenv("RETASK_WAVEFRONT");
  const std::string name = env != nullptr ? std::string(env) : std::string();
  if (name.empty() || name == "auto") return static_cast<int>(WavefrontMode::kAuto);
  if (name == "off") return static_cast<int>(WavefrontMode::kOff);
  if (name == "force") return static_cast<int>(WavefrontMode::kForce);
  throw Error("RETASK_WAVEFRONT: unknown mode '" + name + "' (expected off|auto|force)");
}

/// Level-row ring reused across fills (high-water sizing), owned by the
/// calling thread; pool workers write disjoint tile ranges inside one
/// diagonal's region, separated from the next diagonal by the region
/// barrier.
std::vector<double>& ring_buffer() {
  thread_local std::vector<double> ring;
  return ring;
}

}  // namespace

WavefrontMode wavefront_mode() {
  int mode = g_mode.load(std::memory_order_acquire);
  if (mode < 0) {
    // Resolution is deterministic, so a first-use race recomputes the same
    // value on both threads.
    mode = resolve_mode();
    g_mode.store(mode, std::memory_order_release);
  }
  return static_cast<WavefrontMode>(mode);
}

void set_wavefront_mode(WavefrontMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_release);
}

bool wavefront_fill(const FrameTaskSet& tasks, Cycles cap, DpScratch& scratch,
                    const WavefrontOptions& options) {
  require(cap >= 0, "wavefront_fill: negative capacity");
  require(options.tile_width > 0 && options.tile_width % 64 == 0,
          "wavefront_fill: tile_width must be a positive multiple of 64");
  const WavefrontMode mode = wavefront_mode();
  if (mode == WavefrontMode::kOff) return false;

  const std::size_t n = tasks.size();
  const auto width = static_cast<std::size_t>(cap) + 1;
  const int jobs = options.jobs > 0 ? options.jobs : default_jobs();

  // Grow the tile until the level ring (C + 1 rows) fits its budget; the
  // halo-free per-task levels make wider tiles purely a parallelism tradeoff.
  std::size_t tile = options.tile_width;
  auto tile_count = [&] { return (width + tile - 1) / tile; };
  while (tile_count() > 1 && (tile_count() + 1) * width * sizeof(double) > kMaxRingBytes) {
    tile *= 2;
  }
  const std::size_t tiles = tile_count();

  const bool forced = options.force || mode == WavefrontMode::kForce;
  if (!forced) {
    // Auto gate: tiling only pays when the table is big, the pool has real
    // workers, there are several row updates to overlap, and the caller is
    // not already running under sweep-level parallelism (nested parallel_for
    // degrades to inline, leaving only the out-of-place copy overhead).
    if (width < kMinAutoWidth || n < 4 || tiles < 2 || jobs < 2 || inside_parallel_region()) {
      return false;
    }
  }

  // Static reachability — identical to the serial loop's running `reachable`
  // because both only advance on kept tasks: reach[i] is the largest
  // non-(-inf) row of level i.
  std::vector<std::size_t> reach(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const FrameTask& task = tasks[i];
    reach[i + 1] = task.cycles > cap
                       ? reach[i]
                       : std::min(width - 1, reach[i] + static_cast<std::size_t>(task.cycles));
  }

  const std::size_t ring_levels = tiles + 1;  // level L lives in slot L % (C + 1)
  std::vector<double>& ring = ring_buffer();
  ring.resize(ring_levels * width);
  double* level0 = ring.data();
  std::fill(level0, level0 + width, kNegInf);
  level0[0] = 0.0;
  scratch.take.reset(n, width);

  const simd::KernelTable& kernels = simd::kernels();
  // Tile counters are bumped from pool workers, so they aggregate through
  // relaxed atomics and flush to the caller's registry once per fill.
  RETASK_OBS_ONLY(std::atomic<std::uint64_t> relax_tiles{0}; std::atomic<std::uint64_t>
                      pruned_tiles{0};
                  std::uint64_t stalls = 0; std::uint64_t diagonals = 0;)

  // Anti-diagonal schedule with a barrier per diagonal: tile (i, t) runs on
  // diagonal i + t and only reads level-i tiles written on earlier
  // diagonals (see the header's dependency argument). Ring slots are reused
  // dirty, which is sound because every tile overwrites its full range.
  const std::size_t last_diagonal = n == 0 ? 0 : (n - 1) + (tiles - 1);
  for (std::size_t d = 0; n > 0 && d <= last_diagonal; ++d) {
    const std::size_t i_lo = d >= tiles - 1 ? d - (tiles - 1) : 0;
    const std::size_t i_hi = std::min(n - 1, d);
    const std::size_t count = i_hi - i_lo + 1;
    RETASK_OBS_ONLY(++diagonals; if (count < static_cast<std::size_t>(jobs)) ++stalls;)
    parallel_for(count, [&](std::size_t slot) {
      const std::size_t i = i_lo + slot;
      const std::size_t t = d - i;
      const std::size_t w0 = t * tile;
      const std::size_t w1 = std::min(width, w0 + tile);
      const double* prev = ring.data() + (i % ring_levels) * width;
      double* cur = ring.data() + ((i + 1) % ring_levels) * width;
      const FrameTask& task = tasks[i];
      if (task.cycles > cap) {  // serial loop skips the task: identity level
        std::memcpy(cur + w0, prev + w0, (w1 - w0) * sizeof(double));
        return;
      }
      const auto ci = static_cast<std::size_t>(task.cycles);
      const std::size_t r_lo = std::max(ci, w0);
      const std::size_t r_hi = std::min(reach[i + 1], w1 - 1);
      if (w0 > reach[i + 1]) {
        // Fully above reach: both prev and the relaxed row are -inf here.
        std::fill(cur + w0, cur + w1, kNegInf);
        RETASK_OBS_ONLY(pruned_tiles.fetch_add(1, std::memory_order_relaxed);)
        return;
      }
      if (r_lo > r_hi) {  // below the relax range: unchanged cells
        std::memcpy(cur + w0, prev + w0, (w1 - w0) * sizeof(double));
        return;
      }
      if (w0 < r_lo) std::memcpy(cur + w0, prev + w0, (r_lo - w0) * sizeof(double));
      if (r_hi + 1 < w1) {
        std::memcpy(cur + r_hi + 1, prev + r_hi + 1, (w1 - r_hi - 1) * sizeof(double));
      }
      kernels.relax_out_f64(prev, cur, scratch.take.row_words(i), ci, r_lo, r_hi, task.penalty);
      RETASK_OBS_ONLY(relax_tiles.fetch_add(1, std::memory_order_relaxed);)
    }, jobs);
  }

  scratch.value.resize(width);
  std::memcpy(scratch.value.data(), ring.data() + (n % ring_levels) * width,
              width * sizeof(double));
  RETASK_COUNT("wavefront.fills", 1);
  RETASK_COUNT("wavefront.tiles", relax_tiles.load(std::memory_order_relaxed));
  RETASK_COUNT("wavefront.tiles_pruned", pruned_tiles.load(std::memory_order_relaxed));
  RETASK_COUNT("wavefront.diagonals", diagonals);
  RETASK_COUNT("wavefront.stalls", stalls);
  RETASK_RECORD("wavefront.tile_width", tile);
  return true;
}

}  // namespace retask
