// Wavefront (anti-diagonal) tiling of one large knapsack DP table.
//
// The exact and budgeted DPs fill their table row update by row update: task
// i maps the value row L_i to L_{i+1} by a descending relaxation. One big
// solve therefore runs on a single core even when the sweep-level
// parallelism of the harness has nothing else to schedule. This module cuts
// each row update into weight tiles and runs the tiles over the
// parallel_for pool along anti-diagonals d = task + tile.
//
// Dependency argument (docs/ALGORITHMS.md has the long form): the cell
// (i+1, w) depends on (i, w) and (i, w - c_i) — both in level i, both at
// weight <= w. A tile (i, t) therefore only reads tiles (i-1, t') with
// t' <= t, all of which sit on anti-diagonals i-1+t' <= d-1, i.e. strictly
// earlier diagonals. Running each diagonal as one parallel_for region (a
// barrier between diagonals) makes every read happen-after its write, for
// any halo width, because halos only ever extend to the LEFT.
//
// Bit-identity: tiles relax out-of-place (cur from prev), and every cell of
// the relaxation is a pure function of the previous level, so the tile
// decomposition and the parallel schedule cannot change a bit relative to
// the serial in-place fill. Choice-bit writes stay word-race-free because
// tile boundaries are multiples of 64 (one tile owns every word it ORs
// into). tests/test_wavefront.cpp checks tiled == serial on 63/64/65-wide
// tables and retask_fuzz re-checks solutions under RETASK_WAVEFRONT=force.
#ifndef RETASK_BATCH_WAVEFRONT_HPP
#define RETASK_BATCH_WAVEFRONT_HPP

#include <cstddef>

#include "retask/cache/scratch.hpp"
#include "retask/task/task_set.hpp"

namespace retask {

/// Process-wide wavefront policy. kAuto (the default) tiles only when the
/// table is large, the pool has more than one job, and the caller is not
/// already inside a parallel region; kForce tiles whenever the fill is
/// well-formed (tests, benches); kOff never tiles.
enum class WavefrontMode {
  kOff,
  kAuto,
  kForce,
};

/// The active mode: the last set_wavefront_mode() value, else the
/// RETASK_WAVEFRONT environment variable (off|auto|force), else kAuto.
WavefrontMode wavefront_mode();

/// Overrides the mode process-wide (benches pit serial against tiled fills
/// without re-exec'ing; tests force the tiled path on small tables).
void set_wavefront_mode(WavefrontMode mode);

/// Per-call knobs; the defaults serve the solver hot paths.
struct WavefrontOptions {
  /// Weight cells per tile; must be a positive multiple of 64 (choice-bit
  /// word ownership). Grown automatically when the level ring would exceed
  /// its memory budget.
  std::size_t tile_width = std::size_t{1} << 14;
  /// parallel_for jobs for the per-diagonal regions; 0 = default_jobs().
  int jobs = 0;
  /// Bypass the auto-mode size/jobs gate (but not kOff) — used by tests to
  /// drive tiny tables through the tiled path.
  bool force = false;
};

/// Tiled equivalent of the serial exact/budgeted DP fill: on success,
/// scratch.value[w] holds the maximum total penalty of accepted tasks whose
/// cycles sum to exactly w (w in [0, cap], -inf when unreachable) and
/// scratch.take bit (i, w) marks task i improving state w — bit-identical
/// to the serial in-place loop over `kernels().relax_desc_f64`. Returns
/// false without touching `scratch` when the mode/gate says the serial fill
/// is the better plan (small table, single job, nested parallelism, mode
/// off); callers keep their serial loop as the fallback.
bool wavefront_fill(const FrameTaskSet& tasks, Cycles cap, DpScratch& scratch,
                    const WavefrontOptions& options = {});

}  // namespace retask

#endif  // RETASK_BATCH_WAVEFRONT_HPP
