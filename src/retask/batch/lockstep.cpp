#include "retask/batch/lockstep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "retask/cache/sweep.hpp"
#include "retask/common/bit_matrix.hpp"
#include "retask/common/error.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/greedy.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/simd/kernels.hpp"

namespace retask {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kPosInf = std::numeric_limits<double>::infinity();

std::atomic<int> g_lanes{-1};  // -1: not yet resolved from the environment
std::atomic<int> g_fused{-1};  // -1: not yet resolved from the environment

int resolve_lanes() {
  const char* env = std::getenv("RETASK_BATCH");
  const std::string name = env != nullptr ? std::string(env) : std::string();
  if (name.empty() || name == "auto") return 4;
  if (name == "off") return 0;
  char* end = nullptr;
  const long parsed = std::strtol(name.c_str(), &end, 10);
  if (end == name.c_str() || *end != '\0' || parsed < 0 || parsed > 64) {
    throw Error("RETASK_BATCH: unknown value '" + name + "' (expected off|auto|<lanes>)");
  }
  return static_cast<int>(parsed);
}

int resolve_fused() {
  const char* env = std::getenv("RETASK_FUSED_SWEEP");
  const std::string name = env != nullptr ? std::string(env) : std::string();
  if (name.empty() || name == "auto") return 1;
  if (name == "off") return 0;
  throw Error("RETASK_FUSED_SWEEP: unknown value '" + name + "' (expected off|auto)");
}

/// Per-lane fill capacity — the single-instance solver's fill_capacity.
std::size_t lane_cap(const RejectionProblem& problem) {
  require(problem.processor_count() == 1, "lockstep: single-processor algorithm");
  const Cycles cap = std::min(problem.cycle_capacity(), problem.tasks().total_cycles());
  require(cap >= 0, "lockstep: negative capacity");
  return static_cast<std::size_t>(cap);
}

/// Byte budget of one lane's table export (value row + dense checkpoint
/// rows + choice bits). Captures costlier than this are skipped and the
/// consumer falls back to a cold seed. The gate is a pure function of the
/// lane geometry, so gating can never change a solution bit.
constexpr std::size_t kExportByteBudget = std::size_t{16} << 20;

/// Lane-major fill state of one lockstep chunk: lane k's value row lives at
/// arena[k * stride] (stride 64-aligned so every lane owns whole choice-bit
/// words), its choice bits at word offset k * stride / 64 of every take
/// row. Cells above a lane's own fill cap are never written or read, so
/// lane k's span is its solo table at capacity cap[k].
struct LaneTables {
  std::size_t stride = 0;        ///< doubles per lane, 64-aligned
  std::vector<std::size_t> cap;  ///< fill capacity per lane
  std::vector<double> arena;     ///< lane k's value row at arena[k * stride]
  BitMatrix take;                ///< n rows of stride * m choice bits
};

/// Fills every lane's knapsack table, each lane by the SAME contiguous
/// relaxation kernel the single-instance solver uses, with per-lane
/// reachability bounds and capacity pruning. The fill is per lane on
/// purpose: the descending relaxation is already 4-wide vectorized on
/// contiguous cells, while a lane-interleaved traversal must gather strided
/// cells — measured several times slower on AVX2 (the gather-based
/// kernels.relax_desc_f64_lanes stays available for layouts that are
/// interleaved by necessity). When `exports` is non-null, lane k's finished
/// table — value row, choice bits, dense value-row checkpoints at a stride
/// targeting <= 4 rows — is captured into (*exports)[k] unless the capture
/// exceeds kExportByteBudget; the captured state is bit-identical to what
/// DeltaSolver::admit_all over the lane's task vector retains, which is
/// exactly the DeltaSolver::adopt_table contract.
void lockstep_fill(const std::vector<const RejectionProblem*>& chunk,
                   const std::vector<std::size_t>& cap, LaneTables& tables,
                   std::vector<DpTableExport>* exports) {
  const std::size_t m = chunk.size();
  const std::size_t n = chunk[0]->size();
  std::size_t max_cap = 0;
  for (std::size_t k = 0; k < m; ++k) max_cap = std::max(max_cap, cap[k]);
  const std::size_t width = max_cap + 1;
  tables.stride = (width + 63) / 64 * 64;  // whole take words per lane
  tables.cap = cap;
  tables.arena.assign(tables.stride * m, kNegInf);
  tables.take.reset(n, tables.stride * m);
  const std::size_t stride = tables.stride;

  const simd::KernelTable& kernels = simd::kernels();
  // The exact_dp.* counters mirror the serial fill lane by lane (each lane's
  // cell counts use its own cap[k]+1 width), so obs reports stay comparable
  // whether or not the harness batched the solves.
  RETASK_OBS_ONLY(std::uint64_t cells_touched = 0; std::uint64_t cells_skipped = 0;
                  std::uint64_t tasks_pruned = 0; std::uint64_t table_exports = 0;)
  for (std::size_t k = 0; k < m; ++k) {
    double* lane = tables.arena.data() + k * stride;
    lane[0] = 0.0;  // state w == 0
    const std::size_t word_offset = k * stride / 64;
    const std::size_t lane_width = cap[k] + 1;
    DpTableExport* exported = nullptr;
    std::size_t export_stride = 0;
    if (exports != nullptr && n > 0) {
      // Dense checkpoints at a stride targeting <= 4 retained rows keep the
      // export's replay cost bounded without retaining one row per task.
      export_stride = std::max<std::size_t>(1, (n + 3) / 4);
      const std::size_t bytes = (n / export_stride + 1) * lane_width * sizeof(double) +
                                n * ((lane_width + 63) / 64) * sizeof(std::uint64_t);
      if (bytes <= kExportByteBudget) {
        exported = &(*exports)[k];
        exported->checkpoint_stride = static_cast<int>(export_stride);
        exported->cp_values.clear();
        exported->cp_reach.clear();
      }
    }
    std::size_t reach = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const FrameTask& task = chunk[k]->tasks()[i];
      const auto ci = static_cast<std::size_t>(task.cycles);
      if (ci > cap[k]) {  // the serial fill prunes this task
        RETASK_OBS_ONLY(++tasks_pruned; cells_skipped += cap[k] + 1;)
      } else {
        const std::size_t top = std::min(cap[k], reach + ci);
        RETASK_OBS_ONLY(cells_touched += top + 1 - ci;
                        cells_skipped += cap[k] + 1 - (top + 1 - ci);)
        kernels.relax_desc_f64(lane, tables.take.row_words(i) + word_offset, ci, ci, top,
                               task.penalty);
        reach = top;
      }
      if (exported != nullptr && (i + 1) % export_stride == 0) {
        exported->cp_values.emplace_back(lane, lane + lane_width);
        exported->cp_reach.push_back(reach);
      }
    }
    if (exported != nullptr) {
      exported->value.assign(lane, lane + lane_width);
      exported->reachable = reach;
      exported->take.reset(n, lane_width);
      for (std::size_t i = 0; i < n; ++i) {
        std::copy_n(tables.take.row_words(i) + word_offset, exported->take.words_per_row(),
                    exported->take.row_words(i));
      }
      RETASK_OBS_ONLY(++table_exports;)
    }
  }
  RETASK_COUNT("exact_dp.solves", m);
  RETASK_COUNT("exact_dp.cells_touched", cells_touched);
  RETASK_COUNT("exact_dp.cells_skipped", cells_skipped);
  RETASK_COUNT("exact_dp.tasks_pruned", tasks_pruned);
  RETASK_COUNT("batch.table_exports", table_exports);
  RETASK_OBS_ONLY(for (std::size_t k = 0; k < m; ++k) {
    RETASK_RECORD("exact_dp.table_width", cap[k] + 1);
  })
}

/// Fused select over filled lane tables: sweeps rows [0, select_cap[k]] of
/// every lane for the best objective and reconstructs each lane's accept
/// set off the choice bits. `chunk[k]` supplies lane k's tasks and THIS
/// point's platform — the fused-sweep caller runs one select per sweep
/// point over a single fill, which the table's prefix property makes
/// bit-identical to a dedicated fill at select_cap[k] (see
/// core/exact_dp.cpp fill_table). Every lane reproduces the single-instance
/// ExactDpSolver bit for bit: the penalty/energy sweep prunes and the
/// choice-bit reconstruction are exactly the serial ones.
std::vector<RejectionSolution> lockstep_select(const std::vector<const RejectionProblem*>& chunk,
                                               const LaneTables& tables,
                                               const std::vector<std::size_t>& select_cap) {
  const std::size_t m = chunk.size();
  const std::size_t n = chunk[0]->size();
  const std::size_t stride = tables.stride;
  const std::vector<double>& arena = tables.arena;
  const BitMatrix& take = tables.take;
  std::size_t width = 0;
  for (std::size_t k = 0; k < m; ++k) width = std::max(width, select_cap[k] + 1);
  const std::vector<std::size_t>& cap = select_cap;
  const simd::KernelTable& kernels = simd::kernels();
  // Select-scan attribution: retask_bench divides this by the enclosing
  // batch timer to report the select's share of lockstep / fused-sweep
  // time (timers never enter the gated bench metrics).
  RETASK_SCOPED_TIMER("batch.select_scan_ns");

  // Chunked select: the serial sweep per lane, with the energy evaluations
  // of all lanes for one 64-row chunk fused into a single batched call. The
  // rows needed are predicted at chunk start; the prediction is a superset
  // of the true need (the best objective only improves within a chunk), and
  // E is pure, so extra evaluations cannot change a bit. Both the predict
  // scan and the replay's row walk run off one select_mask_f64 word per
  // lane per chunk: bit w - w0 is set iff total - kept < snapshot, which
  // folds the -inf reachability skip into the bound compare, and ascending
  // bit iteration visits exactly the rows the scalar scan visited, in the
  // same order (rows the mask over-predicts are re-pruned against the live
  // best, exactly as the scalar replay re-checks them).
  std::vector<double> total(m);
  std::vector<double> best_obj(m, kPosInf);
  std::vector<double> snapshot(m, kPosInf);
  std::vector<std::size_t> best_w(m, 0);
  std::vector<char> done(m, 0);
  std::vector<std::uint64_t> lane_mask(m, 0);
  for (std::size_t k = 0; k < m; ++k) total[k] = chunk[k]->tasks().total_penalty();
  std::vector<Cycles> need_cycles;
  std::vector<double> need_energy;
  std::vector<double> energy_at(64, 0.0);
  RETASK_OBS_ONLY(std::uint64_t scan_words = 0;)
  for (std::size_t w0 = 0; w0 < width; w0 += 64) {
    const std::size_t w1 = std::min(width, w0 + 64);
    std::uint64_t need_mask = 0;
    bool all_done = true;
    for (std::size_t k = 0; k < m; ++k) {
      lane_mask[k] = 0;
      if (done[k]) continue;
      all_done = false;
      snapshot[k] = best_obj[k];
      if (w0 > cap[k]) continue;
      const std::size_t rows = std::min(w1, cap[k] + 1) - w0;
      lane_mask[k] =
          kernels.select_mask_f64(arena.data() + k * stride + w0, rows, total[k], snapshot[k]);
      need_mask |= lane_mask[k];
    }
    if (all_done) break;
    need_cycles.clear();
    for (std::uint64_t bits = need_mask; bits != 0; bits &= bits - 1) {
      need_cycles.push_back(static_cast<Cycles>(w0 + static_cast<std::size_t>(__builtin_ctzll(bits))));
    }
    if (!need_cycles.empty()) {
      need_energy.resize(need_cycles.size());
      chunk[0]->energy_of_cycles_batch(need_cycles.data(), need_energy.data(),
                                       need_cycles.size());
      std::size_t p = 0;
      for (std::uint64_t bits = need_mask; bits != 0; bits &= bits - 1) {
        energy_at[static_cast<std::size_t>(__builtin_ctzll(bits))] = need_energy[p++];
      }
      RETASK_COUNT("batch.select_energy_evals", need_cycles.size());
    }
    // Kernelized replay of every live lane's decision walk over its masked
    // rows (same prunes, same early-exit, same improvement order as the
    // serial sweep; see select_scan_f64 in simd/kernels.hpp).
    for (std::size_t k = 0; k < m; ++k) {
      if (done[k] || lane_mask[k] == 0) continue;
      RETASK_OBS_ONLY(++scan_words;)
      const std::size_t rows = std::min(w1, cap[k] + 1) - w0;
      done[k] = kernels.select_scan_f64(arena.data() + k * stride + w0, energy_at.data(), rows,
                                        lane_mask[k], total[k], w0, &best_obj[k],
                                        &best_w[k]) != 0
                    ? 1
                    : 0;
    }
  }
  RETASK_COUNT("batch.select_scan_words", scan_words);

  std::vector<RejectionSolution> out;
  out.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    RETASK_ASSERT(best_obj[k] < kPosInf);
    std::vector<bool> accepted(n, false);
    std::size_t w = best_w[k];
    for (std::size_t i = n; i-- > 0;) {
      if (take.test(i, k * stride + w)) {
        accepted[i] = true;
        w -= static_cast<std::size_t>(chunk[k]->tasks()[i].cycles);
      }
    }
    RETASK_ASSERT(w == 0);
    out.push_back(make_solution_on_one(*chunk[k], std::move(accepted)));
  }
  return out;
}

/// Lockstep exact DP over one same-shape chunk: one shared fill, one fused
/// select, optionally capturing each lane's table for adoption. The shared
/// win of the batch is the select — one fused cycles->energy evaluation per
/// needed row instead of one solo evaluation per lane per row (the shape
/// check guarantees identical curves).
std::vector<RejectionSolution> lockstep_exact_dp(const std::vector<const RejectionProblem*>& chunk,
                                                 std::vector<DpTableExport>* exports) {
  const std::size_t m = chunk.size();
  std::vector<std::size_t> cap(m);
  for (std::size_t k = 0; k < m; ++k) cap[k] = lane_cap(*chunk[k]);
  LaneTables tables;
  lockstep_fill(chunk, cap, tables, exports);
  return lockstep_select(chunk, tables, cap);
}

/// One fused-sweep chunk: grid[k] points at lane k's sweep points (one task
/// set per lane, capacities/platforms varying by point; per point, all
/// lanes share a shape). Each lane fills ONCE at its widest point — the
/// warm start of ExactDpSolver::solve_sweep — and every point runs one
/// fused cross-lane select over the shared prefixes, so the sweep gets the
/// warm-start and the lockstep energy batching simultaneously. Returns
/// out[k][p], bit-identical to per-lane warm sweeps (and so to per-point
/// solo solves).
std::vector<std::vector<RejectionSolution>> lockstep_fused_sweep(
    const std::vector<const std::vector<const RejectionProblem*>*>& grid) {
  const std::size_t m = grid.size();
  const std::size_t points = grid[0]->size();
  std::vector<std::vector<std::size_t>> cap(m, std::vector<std::size_t>(points));
  std::vector<std::size_t> fill_cap(m, 0);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t p = 0; p < points; ++p) {
      cap[k][p] = lane_cap(*(*grid[k])[p]);
      fill_cap[k] = std::max(fill_cap[k], cap[k][p]);
    }
  }
  // The fill depends only on the task vector (cycles + penalties), never on
  // the platform, so one fill serves every point of a lane even though the
  // points' curves differ; the per-point energies enter at the select, which
  // reads them through that point's problems.
  std::vector<const RejectionProblem*> lane(m);
  for (std::size_t k = 0; k < m; ++k) lane[k] = (*grid[k])[0];
  LaneTables tables;
  lockstep_fill(lane, fill_cap, tables, nullptr);
  RETASK_COUNT("dp.warm_starts", m * (points - 1));
  RETASK_COUNT("batch.fused_sweep_points", m * points);

  std::vector<std::vector<RejectionSolution>> out(m);
  for (std::size_t k = 0; k < m; ++k) out[k].reserve(points);
  std::vector<std::size_t> point_cap(m);
  for (std::size_t p = 0; p < points; ++p) {
    for (std::size_t k = 0; k < m; ++k) {
      lane[k] = (*grid[k])[p];
      point_cap[k] = cap[k][p];
    }
    std::vector<RejectionSolution> solved = lockstep_select(lane, tables, point_cap);
    for (std::size_t k = 0; k < m; ++k) out[k].push_back(std::move(solved[k]));
  }
  return out;
}

/// Lockstep density greedy: per-lane density orders and feasibility
/// rejection, then one position-by-position pass where the two energy
/// probes of every live lane are fused into one batched evaluation.
/// Returns the accept masks (also the marginal solver's seed).
std::vector<std::vector<bool>> lockstep_density_masks(
    const std::vector<const RejectionProblem*>& chunk) {
  const std::size_t m = chunk.size();
  const std::size_t n = chunk[0]->size();
  std::vector<std::vector<std::size_t>> order(m);
  std::vector<std::vector<bool>> accepted(m);
  std::vector<Cycles> load(m, 0);
  for (std::size_t k = 0; k < m; ++k) {
    require(chunk[k]->processor_count() == 1, "lockstep: single-processor algorithm");
    order[k] = density_order(*chunk[k]);
    accepted[k].assign(n, true);
    load[k] = reject_until_feasible(*chunk[k], order[k], accepted[k]);
  }
  // Parity with the serial density pass (the marginal solver also seeds
  // through it, so both lockstep callers inherit the count here).
  RETASK_COUNT("greedy.density_solves", m);

  std::vector<Cycles> probes;
  std::vector<double> energies;
  RETASK_OBS_ONLY(std::uint64_t rejections = 0;)
  for (std::size_t j = 0; j < n; ++j) {
    probes.clear();
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t i = order[k][j];
      if (!accepted[k][i]) continue;
      probes.push_back(load[k]);
      probes.push_back(load[k] - chunk[k]->tasks()[i].cycles);
    }
    if (probes.empty()) continue;
    energies.resize(probes.size());
    chunk[0]->energy_of_cycles_batch(probes.data(), energies.data(), probes.size());
    std::size_t p = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t i = order[k][j];
      if (!accepted[k][i]) continue;
      const double saving = energies[p] - energies[p + 1];
      p += 2;
      const FrameTask& task = chunk[k]->tasks()[i];
      if (saving > task.penalty) {
        accepted[k][i] = false;
        load[k] -= task.cycles;
        RETASK_OBS_ONLY(++rejections;)
      }
    }
  }
  RETASK_COUNT("greedy.density_rejections", rejections);
  return accepted;
}

std::vector<RejectionSolution> lockstep_density(
    const std::vector<const RejectionProblem*>& chunk) {
  std::vector<std::vector<bool>> masks = lockstep_density_masks(chunk);
  std::vector<RejectionSolution> out;
  out.reserve(chunk.size());
  for (std::size_t k = 0; k < chunk.size(); ++k) {
    out.push_back(make_solution_on_one(*chunk[k], std::move(masks[k])));
  }
  return out;
}

/// Lockstep marginal greedy: density-seeded steepest descent, one round per
/// iteration across all live lanes, with every probe load of every lane
/// fused into one batched energy call. Each lane runs exactly the serial
/// round sequence (same probes, same deltas, same argmin, same stopping
/// round), lanes that converge drop out of the batch.
std::vector<RejectionSolution> lockstep_marginal(
    const std::vector<const RejectionProblem*>& chunk) {
  const std::size_t m = chunk.size();
  const std::size_t n = chunk[0]->size();
  std::vector<std::vector<bool>> accepted = lockstep_density_masks(chunk);
  std::vector<Cycles> load(m, 0);
  std::vector<char> done(m, 0);
  for (std::size_t k = 0; k < m; ++k) load[k] = chunk[k]->accepted_cycles(accepted[k]);
  RETASK_COUNT("greedy.marginal_solves", m);

  const simd::KernelTable& kernels = simd::kernels();
  const std::size_t max_moves = 4 * n * n + 16;
  std::vector<Cycles> probes;
  std::vector<double> energies;
  std::vector<double> delta(n, kPosInf);
  for (std::size_t move = 0; move < max_moves; ++move) {
    probes.clear();
    for (std::size_t k = 0; k < m; ++k) {
      if (done[k]) continue;
      probes.push_back(load[k]);  // E at the current load, hoisted per round
      for (std::size_t i = 0; i < n; ++i) {
        const FrameTask& task = chunk[k]->tasks()[i];
        if (accepted[k][i]) {
          probes.push_back(load[k] - task.cycles);
        } else if (load[k] + task.cycles <= chunk[k]->cycle_capacity()) {
          probes.push_back(load[k] + task.cycles);
        }
      }
    }
    if (probes.empty()) break;  // every lane converged
    energies.resize(probes.size());
    chunk[0]->energy_of_cycles_batch(probes.data(), energies.data(), probes.size());

    std::size_t p = 0;
    for (std::size_t k = 0; k < m; ++k) {
      if (done[k]) continue;
      const double energy_at_load = energies[p++];
      const double objective = energy_at_load + chunk[k]->rejected_penalty(accepted[k]);
      delta.assign(n, kPosInf);
      for (std::size_t i = 0; i < n; ++i) {
        const FrameTask& task = chunk[k]->tasks()[i];
        if (accepted[k][i]) {
          delta[i] = task.penalty - (energy_at_load - energies[p++]);
        } else if (load[k] + task.cycles <= chunk[k]->cycle_capacity()) {
          delta[i] = (energies[p++] - energy_at_load) - task.penalty;
        }
      }
      const double threshold = -1e-12 * std::max(objective, 1.0);
      const std::size_t best_index = kernels.argmin_strided_f64(delta.data(), n, 1, threshold);
      if (best_index == simd::kNpos) {
        done[k] = 1;
        continue;
      }
      if (accepted[k][best_index]) {
        accepted[k][best_index] = false;
        load[k] -= chunk[k]->tasks()[best_index].cycles;
      } else {
        accepted[k][best_index] = true;
        load[k] += chunk[k]->tasks()[best_index].cycles;
      }
    }
  }

  std::vector<RejectionSolution> out;
  out.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    out.push_back(make_solution_on_one(*chunk[k], std::move(accepted[k])));
  }
  return out;
}

enum class LockstepKind { kNone, kExactDp, kDensity, kMarginal };

LockstepKind kind_of(const RejectionSolver& solver) {
  if (dynamic_cast<const ExactDpSolver*>(&solver) != nullptr) return LockstepKind::kExactDp;
  if (dynamic_cast<const DensityGreedySolver*>(&solver) != nullptr) return LockstepKind::kDensity;
  if (dynamic_cast<const MarginalGreedySolver*>(&solver) != nullptr) {
    return LockstepKind::kMarginal;
  }
  return LockstepKind::kNone;
}

}  // namespace

int lockstep_lanes() {
  int lanes = g_lanes.load(std::memory_order_acquire);
  if (lanes < 0) {
    lanes = resolve_lanes();  // deterministic: a first-use race is benign
    g_lanes.store(lanes, std::memory_order_release);
  }
  return lanes;
}

void set_lockstep_lanes(int lanes) {
  require(lanes >= 0 && lanes <= 64, "set_lockstep_lanes: lanes must be in [0, 64]");
  g_lanes.store(lanes, std::memory_order_release);
}

bool fused_sweep_enabled() {
  int fused = g_fused.load(std::memory_order_acquire);
  if (fused < 0) {
    fused = resolve_fused();  // deterministic: a first-use race is benign
    g_fused.store(fused, std::memory_order_release);
  }
  return fused != 0;
}

void set_fused_sweep_enabled(bool enabled) {
  g_fused.store(enabled ? 1 : 0, std::memory_order_release);
}

bool same_shape(const RejectionProblem& a, const RejectionProblem& b) {
  // Platform equality (curve/work_per_cycle; see cache/sweep.hpp) plus the
  // lane-layout constraints: same task count and the single-processor form.
  return a.size() == b.size() && a.processor_count() == 1 && b.processor_count() == 1 &&
         a.cycle_capacity() == b.cycle_capacity() && same_platforms(a, b);
}

BatchRejectionSolver::BatchRejectionSolver(const RejectionSolver& base, BatchConfig config)
    : base_(&base), config_(config) {}

std::string BatchRejectionSolver::name() const { return base_->name() + "+LOCKSTEP"; }

std::vector<RejectionSolution> BatchRejectionSolver::solve_batch(
    const std::vector<const RejectionProblem*>& problems) const {
  return solve_batch(problems, nullptr);
}

std::vector<RejectionSolution> BatchRejectionSolver::solve_batch(
    const std::vector<const RejectionProblem*>& problems, LockstepTables* tables) const {
  const std::size_t count = problems.size();
  std::vector<RejectionSolution> out(count);
  if (tables != nullptr) {
    tables->exports.clear();
    tables->exports.resize(count);
  }
  const int lanes_cfg = config_.lanes < 0 ? lockstep_lanes() : config_.lanes;
  const LockstepKind kind = kind_of(*base_);
  if (lanes_cfg < 2 || kind == LockstepKind::kNone || count < 2) {
    for (std::size_t i = 0; i < count; ++i) out[i] = base_->solve(*problems[i]);
    RETASK_COUNT("batch.scalar_fallbacks", count);
    return out;
  }
  RETASK_SCOPED_TIMER("batch.lockstep_ns");
  const auto lanes = static_cast<std::size_t>(lanes_cfg);

  // First-fit shape grouping; groups and their chunks keep input order, so
  // lane assignment is deterministic for a fixed batch.
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < count; ++i) {
    bool placed = false;
    for (std::vector<std::size_t>& group : groups) {
      if (same_shape(*problems[group[0]], *problems[i])) {
        group.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }
  RETASK_COUNT("batch.solves", 1);
  RETASK_COUNT("batch.groups", groups.size());

  std::vector<const RejectionProblem*> chunk;
  for (const std::vector<std::size_t>& group : groups) {
    for (std::size_t pos = 0; pos < group.size(); pos += lanes) {
      const std::size_t chunk_size = std::min(lanes, group.size() - pos);
      if (chunk_size < 2) {
        out[group[pos]] = base_->solve(*problems[group[pos]]);
        RETASK_COUNT("batch.scalar_fallbacks", 1);
        continue;
      }
      chunk.assign(chunk_size, nullptr);
      for (std::size_t j = 0; j < chunk_size; ++j) chunk[j] = problems[group[pos + j]];
      std::vector<RejectionSolution> solved;
      std::vector<DpTableExport> chunk_exports;
      switch (kind) {
        case LockstepKind::kExactDp:
          if (tables != nullptr) {
            chunk_exports.resize(chunk_size);
            solved = lockstep_exact_dp(chunk, &chunk_exports);
            for (std::size_t j = 0; j < chunk_size; ++j) {
              tables->exports[group[pos + j]] = std::move(chunk_exports[j]);
            }
          } else {
            solved = lockstep_exact_dp(chunk, nullptr);
          }
          break;
        case LockstepKind::kDensity:
          solved = lockstep_density(chunk);
          break;
        case LockstepKind::kMarginal:
          solved = lockstep_marginal(chunk);
          break;
        case LockstepKind::kNone:
          break;  // unreachable: handled above
      }
      for (std::size_t j = 0; j < chunk_size; ++j) {
        out[group[pos + j]] = std::move(solved[j]);
      }
      RETASK_COUNT("batch.lockstep_chunks", 1);
      RETASK_COUNT("batch.lanes_filled", chunk_size);
      RETASK_COUNT("batch.padding_waste", lanes - chunk_size);
    }
  }
  return out;
}

std::vector<std::vector<RejectionSolution>> BatchRejectionSolver::solve_sweep_batch(
    const std::vector<std::vector<const RejectionProblem*>>& grids) const {
  const std::size_t count = grids.size();
  std::vector<std::vector<RejectionSolution>> out(count);
  std::vector<char> solved(count, 0);
  const auto fallback = [&](std::size_t i) {
    out[i] = base_->solve_sweep(grids[i]);
    solved[i] = 1;
    RETASK_COUNT("batch.sweep_fallbacks", 1);
  };

  const int lanes_cfg = config_.lanes < 0 ? lockstep_lanes() : config_.lanes;
  if (!fused_sweep_enabled() || lanes_cfg < 2 || count < 2 ||
      kind_of(*base_) != LockstepKind::kExactDp) {
    for (std::size_t i = 0; i < count; ++i) fallback(i);
    return out;
  }
  const auto lanes = static_cast<std::size_t>(lanes_cfg);

  // A lane must be a genuine warm sweep — single-processor points carrying
  // one task set (the fill is a function of nothing else). Anything odd
  // takes the base fallback, which degrades the same way internally.
  std::vector<char> eligible(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const std::vector<const RejectionProblem*>& instance = grids[i];
    bool ok = !instance.empty();
    for (std::size_t p = 0; p < instance.size() && ok; ++p) {
      ok = instance[p]->processor_count() == 1;
    }
    for (std::size_t p = 1; p < instance.size() && ok; ++p) {
      ok = same_task_sets(instance[0]->tasks(), instance[p]->tasks());
    }
    eligible[i] = ok ? 1 : 0;
  }

  // First-fit grouping by per-point shape, as solve_batch groups instances:
  // two lanes may share a chunk only when every sweep point pairs same-shape
  // problems (the per-point fused select shares that point's energies).
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < count; ++i) {
    if (!eligible[i]) continue;
    bool placed = false;
    for (std::vector<std::size_t>& group : groups) {
      const std::vector<const RejectionProblem*>& lead = grids[group[0]];
      bool match = lead.size() == grids[i].size();
      for (std::size_t p = 0; p < lead.size() && match; ++p) {
        match = same_shape(*lead[p], *grids[i][p]);
      }
      if (match) {
        group.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }

  for (const std::vector<std::size_t>& group : groups) {
    for (std::size_t pos = 0; pos < group.size(); pos += lanes) {
      const std::size_t chunk_size = std::min(lanes, group.size() - pos);
      if (chunk_size < 2) {
        fallback(group[pos]);
        continue;
      }
      std::vector<const std::vector<const RejectionProblem*>*> chunk(chunk_size);
      for (std::size_t j = 0; j < chunk_size; ++j) chunk[j] = &grids[group[pos + j]];
      std::vector<std::vector<RejectionSolution>> fused;
      {
        RETASK_SCOPED_TIMER("batch.fused_sweep_ns");
        fused = lockstep_fused_sweep(chunk);
      }
      for (std::size_t j = 0; j < chunk_size; ++j) {
        out[group[pos + j]] = std::move(fused[j]);
        solved[group[pos + j]] = 1;
      }
      RETASK_COUNT("batch.lockstep_chunks", 1);
      RETASK_COUNT("batch.lanes_filled", chunk_size);
      RETASK_COUNT("batch.padding_waste", lanes - chunk_size);
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (!solved[i]) fallback(i);
  }
  return out;
}

}  // namespace retask
