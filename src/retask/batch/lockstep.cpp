#include "retask/batch/lockstep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "retask/cache/sweep.hpp"
#include "retask/common/bit_matrix.hpp"
#include "retask/common/error.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/greedy.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/simd/kernels.hpp"

namespace retask {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kPosInf = std::numeric_limits<double>::infinity();

std::atomic<int> g_lanes{-1};  // -1: not yet resolved from the environment

int resolve_lanes() {
  const char* env = std::getenv("RETASK_BATCH");
  const std::string name = env != nullptr ? std::string(env) : std::string();
  if (name.empty() || name == "auto") return 4;
  if (name == "off") return 0;
  char* end = nullptr;
  const long parsed = std::strtol(name.c_str(), &end, 10);
  if (end == name.c_str() || *end != '\0' || parsed < 0 || parsed > 64) {
    throw Error("RETASK_BATCH: unknown value '" + name + "' (expected off|auto|<lanes>)");
  }
  return static_cast<int>(parsed);
}

/// Per-lane fill capacity — the single-instance solver's fill_capacity.
std::size_t lane_cap(const RejectionProblem& problem) {
  require(problem.processor_count() == 1, "lockstep: single-processor algorithm");
  const Cycles cap = std::min(problem.cycle_capacity(), problem.tasks().total_cycles());
  require(cap >= 0, "lockstep: negative capacity");
  return static_cast<std::size_t>(cap);
}

/// Lockstep exact DP over one same-shape chunk: one lane-major arena (lane
/// k's table at arena[k * stride], stride 64-aligned so every lane owns
/// whole choice-bit words), each lane filled by the SAME contiguous
/// relaxation kernel the single-instance solver uses, then a chunked select
/// sweep whose energy evaluations are shared across lanes (the shape check
/// guarantees identical curves). The fill is per lane on purpose: the
/// descending relaxation is already 4-wide vectorized on contiguous cells,
/// while a lane-interleaved traversal must gather strided cells — measured
/// several times slower on AVX2 (the gather-based
/// kernels.relax_desc_f64_lanes stays available for layouts that are
/// interleaved by necessity). The shared win of the batch is the select:
/// one fused cycles->energy evaluation per needed row instead of one solo
/// evaluation per lane per row. Every lane reproduces the single-instance
/// ExactDpSolver bit for bit: its cells, its reachability prune, its
/// penalty/energy sweep prunes and its choice-bit reconstruction are
/// exactly the serial ones.
std::vector<RejectionSolution> lockstep_exact_dp(
    const std::vector<const RejectionProblem*>& chunk) {
  const std::size_t m = chunk.size();
  const std::size_t n = chunk[0]->size();
  std::vector<std::size_t> cap(m);
  std::size_t max_cap = 0;
  for (std::size_t k = 0; k < m; ++k) {
    cap[k] = lane_cap(*chunk[k]);
    max_cap = std::max(max_cap, cap[k]);
  }
  const std::size_t width = max_cap + 1;
  const std::size_t stride = (width + 63) / 64 * 64;  // whole take words per lane

  // Cells above a lane's own cap are never written or read, so lane k's
  // span is its solo table at capacity cap[k]; the tail lanes of a ragged
  // chunk simply do not exist (m spans, not `lanes`).
  std::vector<double> arena(stride * m, kNegInf);
  BitMatrix take;
  take.reset(n, stride * m);

  const simd::KernelTable& kernels = simd::kernels();
  // The exact_dp.* counters mirror the serial fill lane by lane (each lane's
  // cell counts use its own cap[k]+1 width), so obs reports stay comparable
  // whether or not the harness batched the solves.
  RETASK_OBS_ONLY(std::uint64_t cells_touched = 0; std::uint64_t cells_skipped = 0;
                  std::uint64_t tasks_pruned = 0;)
  for (std::size_t k = 0; k < m; ++k) {
    double* lane = arena.data() + k * stride;
    lane[0] = 0.0;  // state w == 0
    const std::size_t word_offset = k * stride / 64;
    std::size_t reach = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const FrameTask& task = chunk[k]->tasks()[i];
      const auto ci = static_cast<std::size_t>(task.cycles);
      if (ci > cap[k]) {  // the serial fill prunes this task
        RETASK_OBS_ONLY(++tasks_pruned; cells_skipped += cap[k] + 1;)
        continue;
      }
      const std::size_t top = std::min(cap[k], reach + ci);
      RETASK_OBS_ONLY(cells_touched += top + 1 - ci;
                      cells_skipped += cap[k] + 1 - (top + 1 - ci);)
      kernels.relax_desc_f64(lane, take.row_words(i) + word_offset, ci, ci, top, task.penalty);
      reach = top;
    }
  }
  RETASK_COUNT("exact_dp.solves", m);
  RETASK_COUNT("exact_dp.cells_touched", cells_touched);
  RETASK_COUNT("exact_dp.cells_skipped", cells_skipped);
  RETASK_COUNT("exact_dp.tasks_pruned", tasks_pruned);
  RETASK_OBS_ONLY(for (std::size_t k = 0; k < m; ++k) {
    RETASK_RECORD("exact_dp.table_width", cap[k] + 1);
  })

  // Chunked select: the serial sweep per lane, with the energy evaluations
  // of all lanes for one 64-row chunk fused into a single batched call. The
  // rows needed are predicted at chunk start; the prediction is a superset
  // of the true need (the best objective only improves within a chunk), and
  // E is pure, so extra evaluations cannot change a bit. Both the predict
  // scan and the replay's row walk run off one select_mask_f64 word per
  // lane per chunk: bit w - w0 is set iff total - kept < snapshot, which
  // folds the -inf reachability skip into the bound compare, and ascending
  // bit iteration visits exactly the rows the scalar scan visited, in the
  // same order (rows the mask over-predicts are re-pruned against the live
  // best, exactly as the scalar replay re-checks them).
  std::vector<double> total(m);
  std::vector<double> best_obj(m, kPosInf);
  std::vector<double> snapshot(m, kPosInf);
  std::vector<std::size_t> best_w(m, 0);
  std::vector<char> done(m, 0);
  std::vector<std::uint64_t> lane_mask(m, 0);
  for (std::size_t k = 0; k < m; ++k) total[k] = chunk[k]->tasks().total_penalty();
  std::vector<Cycles> need_cycles;
  std::vector<double> need_energy;
  std::vector<double> energy_at(64, 0.0);
  for (std::size_t w0 = 0; w0 < width; w0 += 64) {
    const std::size_t w1 = std::min(width, w0 + 64);
    std::uint64_t need_mask = 0;
    bool all_done = true;
    for (std::size_t k = 0; k < m; ++k) {
      lane_mask[k] = 0;
      if (done[k]) continue;
      all_done = false;
      snapshot[k] = best_obj[k];
      if (w0 > cap[k]) continue;
      const std::size_t rows = std::min(w1, cap[k] + 1) - w0;
      lane_mask[k] =
          kernels.select_mask_f64(arena.data() + k * stride + w0, rows, total[k], snapshot[k]);
      need_mask |= lane_mask[k];
    }
    if (all_done) break;
    need_cycles.clear();
    for (std::uint64_t bits = need_mask; bits != 0; bits &= bits - 1) {
      need_cycles.push_back(static_cast<Cycles>(w0 + static_cast<std::size_t>(__builtin_ctzll(bits))));
    }
    if (!need_cycles.empty()) {
      need_energy.resize(need_cycles.size());
      chunk[0]->energy_of_cycles_batch(need_cycles.data(), need_energy.data(),
                                       need_cycles.size());
      std::size_t p = 0;
      for (std::uint64_t bits = need_mask; bits != 0; bits &= bits - 1) {
        energy_at[static_cast<std::size_t>(__builtin_ctzll(bits))] = need_energy[p++];
      }
      RETASK_COUNT("batch.select_energy_evals", need_cycles.size());
    }
    for (std::size_t k = 0; k < m; ++k) {
      if (done[k]) continue;
      for (std::uint64_t bits = lane_mask[k]; bits != 0; bits &= bits - 1) {
        const auto bit = static_cast<std::size_t>(__builtin_ctzll(bits));
        const std::size_t w = w0 + bit;
        const double kept = arena[k * stride + w];
        const double penalty = total[k] - kept;
        if (penalty >= best_obj[k]) continue;
        // penalty < best_obj[k] <= snapshot[k], so this row was predicted.
        const double energy = energy_at[bit];
        if (energy >= best_obj[k]) {
          done[k] = 1;  // E non-decreasing: the serial sweep's early break
          break;
        }
        const double objective = energy + penalty;
        if (objective < best_obj[k]) {
          best_obj[k] = objective;
          best_w[k] = w;
        }
      }
    }
  }

  std::vector<RejectionSolution> out;
  out.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    RETASK_ASSERT(best_obj[k] < kPosInf);
    std::vector<bool> accepted(n, false);
    std::size_t w = best_w[k];
    for (std::size_t i = n; i-- > 0;) {
      if (take.test(i, k * stride + w)) {
        accepted[i] = true;
        w -= static_cast<std::size_t>(chunk[k]->tasks()[i].cycles);
      }
    }
    RETASK_ASSERT(w == 0);
    out.push_back(make_solution_on_one(*chunk[k], std::move(accepted)));
  }
  return out;
}

/// Lockstep density greedy: per-lane density orders and feasibility
/// rejection, then one position-by-position pass where the two energy
/// probes of every live lane are fused into one batched evaluation.
/// Returns the accept masks (also the marginal solver's seed).
std::vector<std::vector<bool>> lockstep_density_masks(
    const std::vector<const RejectionProblem*>& chunk) {
  const std::size_t m = chunk.size();
  const std::size_t n = chunk[0]->size();
  std::vector<std::vector<std::size_t>> order(m);
  std::vector<std::vector<bool>> accepted(m);
  std::vector<Cycles> load(m, 0);
  for (std::size_t k = 0; k < m; ++k) {
    require(chunk[k]->processor_count() == 1, "lockstep: single-processor algorithm");
    order[k] = density_order(*chunk[k]);
    accepted[k].assign(n, true);
    load[k] = reject_until_feasible(*chunk[k], order[k], accepted[k]);
  }
  // Parity with the serial density pass (the marginal solver also seeds
  // through it, so both lockstep callers inherit the count here).
  RETASK_COUNT("greedy.density_solves", m);

  std::vector<Cycles> probes;
  std::vector<double> energies;
  RETASK_OBS_ONLY(std::uint64_t rejections = 0;)
  for (std::size_t j = 0; j < n; ++j) {
    probes.clear();
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t i = order[k][j];
      if (!accepted[k][i]) continue;
      probes.push_back(load[k]);
      probes.push_back(load[k] - chunk[k]->tasks()[i].cycles);
    }
    if (probes.empty()) continue;
    energies.resize(probes.size());
    chunk[0]->energy_of_cycles_batch(probes.data(), energies.data(), probes.size());
    std::size_t p = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t i = order[k][j];
      if (!accepted[k][i]) continue;
      const double saving = energies[p] - energies[p + 1];
      p += 2;
      const FrameTask& task = chunk[k]->tasks()[i];
      if (saving > task.penalty) {
        accepted[k][i] = false;
        load[k] -= task.cycles;
        RETASK_OBS_ONLY(++rejections;)
      }
    }
  }
  RETASK_COUNT("greedy.density_rejections", rejections);
  return accepted;
}

std::vector<RejectionSolution> lockstep_density(
    const std::vector<const RejectionProblem*>& chunk) {
  std::vector<std::vector<bool>> masks = lockstep_density_masks(chunk);
  std::vector<RejectionSolution> out;
  out.reserve(chunk.size());
  for (std::size_t k = 0; k < chunk.size(); ++k) {
    out.push_back(make_solution_on_one(*chunk[k], std::move(masks[k])));
  }
  return out;
}

/// Lockstep marginal greedy: density-seeded steepest descent, one round per
/// iteration across all live lanes, with every probe load of every lane
/// fused into one batched energy call. Each lane runs exactly the serial
/// round sequence (same probes, same deltas, same argmin, same stopping
/// round), lanes that converge drop out of the batch.
std::vector<RejectionSolution> lockstep_marginal(
    const std::vector<const RejectionProblem*>& chunk) {
  const std::size_t m = chunk.size();
  const std::size_t n = chunk[0]->size();
  std::vector<std::vector<bool>> accepted = lockstep_density_masks(chunk);
  std::vector<Cycles> load(m, 0);
  std::vector<char> done(m, 0);
  for (std::size_t k = 0; k < m; ++k) load[k] = chunk[k]->accepted_cycles(accepted[k]);
  RETASK_COUNT("greedy.marginal_solves", m);

  const simd::KernelTable& kernels = simd::kernels();
  const std::size_t max_moves = 4 * n * n + 16;
  std::vector<Cycles> probes;
  std::vector<double> energies;
  std::vector<double> delta(n, kPosInf);
  for (std::size_t move = 0; move < max_moves; ++move) {
    probes.clear();
    for (std::size_t k = 0; k < m; ++k) {
      if (done[k]) continue;
      probes.push_back(load[k]);  // E at the current load, hoisted per round
      for (std::size_t i = 0; i < n; ++i) {
        const FrameTask& task = chunk[k]->tasks()[i];
        if (accepted[k][i]) {
          probes.push_back(load[k] - task.cycles);
        } else if (load[k] + task.cycles <= chunk[k]->cycle_capacity()) {
          probes.push_back(load[k] + task.cycles);
        }
      }
    }
    if (probes.empty()) break;  // every lane converged
    energies.resize(probes.size());
    chunk[0]->energy_of_cycles_batch(probes.data(), energies.data(), probes.size());

    std::size_t p = 0;
    for (std::size_t k = 0; k < m; ++k) {
      if (done[k]) continue;
      const double energy_at_load = energies[p++];
      const double objective = energy_at_load + chunk[k]->rejected_penalty(accepted[k]);
      delta.assign(n, kPosInf);
      for (std::size_t i = 0; i < n; ++i) {
        const FrameTask& task = chunk[k]->tasks()[i];
        if (accepted[k][i]) {
          delta[i] = task.penalty - (energy_at_load - energies[p++]);
        } else if (load[k] + task.cycles <= chunk[k]->cycle_capacity()) {
          delta[i] = (energies[p++] - energy_at_load) - task.penalty;
        }
      }
      const double threshold = -1e-12 * std::max(objective, 1.0);
      const std::size_t best_index = kernels.argmin_strided_f64(delta.data(), n, 1, threshold);
      if (best_index == simd::kNpos) {
        done[k] = 1;
        continue;
      }
      if (accepted[k][best_index]) {
        accepted[k][best_index] = false;
        load[k] -= chunk[k]->tasks()[best_index].cycles;
      } else {
        accepted[k][best_index] = true;
        load[k] += chunk[k]->tasks()[best_index].cycles;
      }
    }
  }

  std::vector<RejectionSolution> out;
  out.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    out.push_back(make_solution_on_one(*chunk[k], std::move(accepted[k])));
  }
  return out;
}

enum class LockstepKind { kNone, kExactDp, kDensity, kMarginal };

LockstepKind kind_of(const RejectionSolver& solver) {
  if (dynamic_cast<const ExactDpSolver*>(&solver) != nullptr) return LockstepKind::kExactDp;
  if (dynamic_cast<const DensityGreedySolver*>(&solver) != nullptr) return LockstepKind::kDensity;
  if (dynamic_cast<const MarginalGreedySolver*>(&solver) != nullptr) {
    return LockstepKind::kMarginal;
  }
  return LockstepKind::kNone;
}

}  // namespace

int lockstep_lanes() {
  int lanes = g_lanes.load(std::memory_order_acquire);
  if (lanes < 0) {
    lanes = resolve_lanes();  // deterministic: a first-use race is benign
    g_lanes.store(lanes, std::memory_order_release);
  }
  return lanes;
}

void set_lockstep_lanes(int lanes) {
  require(lanes >= 0 && lanes <= 64, "set_lockstep_lanes: lanes must be in [0, 64]");
  g_lanes.store(lanes, std::memory_order_release);
}

bool same_shape(const RejectionProblem& a, const RejectionProblem& b) {
  // Platform equality (curve/work_per_cycle; see cache/sweep.hpp) plus the
  // lane-layout constraints: same task count and the single-processor form.
  return a.size() == b.size() && a.processor_count() == 1 && b.processor_count() == 1 &&
         a.cycle_capacity() == b.cycle_capacity() && same_platforms(a, b);
}

BatchRejectionSolver::BatchRejectionSolver(const RejectionSolver& base, BatchConfig config)
    : base_(&base), config_(config) {}

std::string BatchRejectionSolver::name() const { return base_->name() + "+LOCKSTEP"; }

std::vector<RejectionSolution> BatchRejectionSolver::solve_batch(
    const std::vector<const RejectionProblem*>& problems) const {
  const std::size_t count = problems.size();
  std::vector<RejectionSolution> out(count);
  const int lanes_cfg = config_.lanes < 0 ? lockstep_lanes() : config_.lanes;
  const LockstepKind kind = kind_of(*base_);
  if (lanes_cfg < 2 || kind == LockstepKind::kNone || count < 2) {
    for (std::size_t i = 0; i < count; ++i) out[i] = base_->solve(*problems[i]);
    RETASK_COUNT("batch.scalar_fallbacks", count);
    return out;
  }
  RETASK_SCOPED_TIMER("batch.lockstep_ns");
  const auto lanes = static_cast<std::size_t>(lanes_cfg);

  // First-fit shape grouping; groups and their chunks keep input order, so
  // lane assignment is deterministic for a fixed batch.
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < count; ++i) {
    bool placed = false;
    for (std::vector<std::size_t>& group : groups) {
      if (same_shape(*problems[group[0]], *problems[i])) {
        group.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }
  RETASK_COUNT("batch.solves", 1);
  RETASK_COUNT("batch.groups", groups.size());

  std::vector<const RejectionProblem*> chunk;
  for (const std::vector<std::size_t>& group : groups) {
    for (std::size_t pos = 0; pos < group.size(); pos += lanes) {
      const std::size_t chunk_size = std::min(lanes, group.size() - pos);
      if (chunk_size < 2) {
        out[group[pos]] = base_->solve(*problems[group[pos]]);
        RETASK_COUNT("batch.scalar_fallbacks", 1);
        continue;
      }
      chunk.assign(chunk_size, nullptr);
      for (std::size_t j = 0; j < chunk_size; ++j) chunk[j] = problems[group[pos + j]];
      std::vector<RejectionSolution> solved;
      switch (kind) {
        case LockstepKind::kExactDp:
          solved = lockstep_exact_dp(chunk);
          break;
        case LockstepKind::kDensity:
          solved = lockstep_density(chunk);
          break;
        case LockstepKind::kMarginal:
          solved = lockstep_marginal(chunk);
          break;
        case LockstepKind::kNone:
          break;  // unreachable: handled above
      }
      for (std::size_t j = 0; j < chunk_size; ++j) {
        out[group[pos + j]] = std::move(solved[j]);
      }
      RETASK_COUNT("batch.lockstep_chunks", 1);
      RETASK_COUNT("batch.lanes_filled", chunk_size);
      RETASK_COUNT("batch.padding_waste", lanes - chunk_size);
    }
  }
  return out;
}

}  // namespace retask
