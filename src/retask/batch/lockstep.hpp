// Instance-batched lockstep solving: many same-shape instances, one pass.
//
// Sweep reuse (cache/sweep.hpp) collapses points that share a task set; a
// fleet of *different* instances with the same shape (equal task count, one
// processor, equal cycle capacity, bit-identical energy curve) gets no help
// from it — every instance pays its own DP fill and its own select sweep.
// This module runs up to `lanes` such instances in lockstep instead:
//
//  * Exact DP — one lane-major arena (lane k's table at arena[k * stride])
//    filled per lane by the same contiguous relaxation kernel the solo
//    solver uses, with per-lane reachability bounds and capacity pruning.
//    The select sweep batches the energy evaluations of all lanes through
//    one `energy_of_cycles_batch` call per 64-row chunk — legal because the
//    shape check guarantees every lane's curve produces identical bits.
//    (A lane-interleaved fill through `relax_desc_f64_lanes` was measured
//    slower than per-lane contiguous fills on AVX2 — gathers lose to the
//    4-wide contiguous path — so the shared work lives in the select, not
//    the fill; see lockstep.cpp.)
//  * Density / marginal greedy — per-lane decisions replayed position by
//    position (density) or round by round (local search), with every
//    energy probe of every live lane fused into one batched evaluation.
//
// Lane-by-lane bit-identity: each lane's cells, prunes, probes and flips
// are exactly the single-instance solver's (the kernels touch disjoint
// strided cells, batched energies match scalar energies bit for bit), so
// solve_batch() == { base.solve(p) for p in batch } on every backend —
// tests/test_batch_lockstep.cpp asserts this per backend, and
// `retask_fuzz --lockstep-diff` re-checks it on random fleets.
#ifndef RETASK_BATCH_LOCKSTEP_HPP
#define RETASK_BATCH_LOCKSTEP_HPP

#include <string>
#include <vector>

#include "retask/core/solver.hpp"

namespace retask {

/// The process-wide lane count: the last set_lockstep_lanes() value, else
/// the RETASK_BATCH environment variable (off -> 0, auto or unset -> 4, or
/// an explicit lane count). 0 and 1 both mean "solve per instance".
int lockstep_lanes();

/// Overrides the lane count process-wide (0 disables lockstep batching).
void set_lockstep_lanes(int lanes);

/// Per-solver batching knobs.
struct BatchConfig {
  /// Lanes run in lockstep; -1 defers to lockstep_lanes(). Values below 2
  /// disable batching (every instance solves through the base solver).
  int lanes = -1;
};

/// True when `a` and `b` may share lockstep lanes: equal task count, one
/// processor each, equal cycle capacity and bitwise-equal energy curves
/// (window, idle discipline, sleep overheads, power model parameters,
/// work_per_cycle). Shape says nothing about the task data — lanes carry
/// different cycles and penalties; that is the point.
bool same_shape(const RejectionProblem& a, const RejectionProblem& b);

/// Facade turning a single-instance solver into a batch solver. Instances
/// are grouped by shape signature, groups are cut into lane-sized chunks,
/// and each chunk runs in lockstep when the base solver has a lockstep
/// implementation (exact DP, density greedy, marginal greedy); ragged
/// tails of size 1 and unsupported solvers fall back to per-instance
/// base.solve(). Results come back in input order.
class BatchRejectionSolver {
 public:
  /// `base` must outlive the facade.
  explicit BatchRejectionSolver(const RejectionSolver& base, BatchConfig config = {});

  /// Solves every instance; bit-identical to calling base.solve() per
  /// instance, in any grouping and at any lane count.
  std::vector<RejectionSolution> solve_batch(
      const std::vector<const RejectionProblem*>& problems) const;

  /// "<base name>+LOCKSTEP".
  std::string name() const;

 private:
  const RejectionSolver* base_;
  BatchConfig config_;
};

}  // namespace retask

#endif  // RETASK_BATCH_LOCKSTEP_HPP
