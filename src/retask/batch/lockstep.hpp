// Instance-batched lockstep solving: many same-shape instances, one pass.
//
// Sweep reuse (cache/sweep.hpp) collapses points that share a task set; a
// fleet of *different* instances with the same shape (equal task count, one
// processor, equal cycle capacity, bit-identical energy curve) gets no help
// from it — every instance pays its own DP fill and its own select sweep.
// This module runs up to `lanes` such instances in lockstep instead:
//
//  * Exact DP — one lane-major arena (lane k's table at arena[k * stride])
//    filled per lane by the same contiguous relaxation kernel the solo
//    solver uses, with per-lane reachability bounds and capacity pruning.
//    The select sweep batches the energy evaluations of all lanes through
//    one `energy_of_cycles_batch` call per 64-row chunk — legal because the
//    shape check guarantees every lane's curve produces identical bits.
//    (A lane-interleaved fill through `relax_desc_f64_lanes` was measured
//    slower than per-lane contiguous fills on AVX2 — gathers lose to the
//    4-wide contiguous path — so the shared work lives in the select, not
//    the fill; see lockstep.cpp.)
//  * Density / marginal greedy — per-lane decisions replayed position by
//    position (density) or round by round (local search), with every
//    energy probe of every live lane fused into one batched evaluation.
//  * Fused sweeps (solve_sweep_batch) — a (point x instance) sweep grid is
//    partitioned into same-shape lane groups; each lane fills ONCE at its
//    widest point (the warm start of ExactDpSolver::solve_sweep) and every
//    point runs one fused cross-instance select, so the sweep gets the
//    warm-start and the lockstep energy batching simultaneously.
//  * Table export (solve_batch + LockstepTables) — the exact-DP lanes'
//    filled tables can be captured as DpTableExport views for
//    DeltaSolver::adopt_table, sparing downstream incremental solvers the
//    cold refill (core/mp_scale.cpp seeds its local search this way).
//
// Lane-by-lane bit-identity: each lane's cells, prunes, probes and flips
// are exactly the single-instance solver's (the kernels touch disjoint
// strided cells, batched energies match scalar energies bit for bit), so
// solve_batch() == { base.solve(p) for p in batch } on every backend —
// tests/test_batch_lockstep.cpp asserts this per backend, and
// `retask_fuzz --lockstep-diff` re-checks it on random fleets.
#ifndef RETASK_BATCH_LOCKSTEP_HPP
#define RETASK_BATCH_LOCKSTEP_HPP

#include <string>
#include <vector>

#include "retask/cache/scratch.hpp"
#include "retask/core/solver.hpp"

namespace retask {

/// The process-wide lane count: the last set_lockstep_lanes() value, else
/// the RETASK_BATCH environment variable (off -> 0, auto or unset -> 4, or
/// an explicit lane count). 0 and 1 both mean "solve per instance".
int lockstep_lanes();

/// Overrides the lane count process-wide (0 disables lockstep batching).
void set_lockstep_lanes(int lanes);

/// The process-wide fused-sweep switch: the last set_fused_sweep_enabled()
/// value, else the RETASK_FUSED_SWEEP environment variable (off -> false,
/// auto or unset -> true). When off, solve_sweep_batch degrades to a
/// per-instance solve_sweep loop (bit-identical results either way).
bool fused_sweep_enabled();

/// Overrides the fused-sweep switch process-wide.
void set_fused_sweep_enabled(bool enabled);

/// Per-instance DP tables captured by solve_batch's lockstep exact-DP path
/// (one slot per input problem, input order). A slot with an empty `value`
/// was not captured: the instance fell back to a per-instance solve, the
/// base solver has no exportable table, or the capture exceeded the byte
/// budget. Captured slots are bit-identical to what DeltaSolver::admit_all
/// over the instance's task vector would have filled, so
/// DeltaSolver::adopt_table can seed from them directly.
struct LockstepTables {
  std::vector<DpTableExport> exports;
};

/// Per-solver batching knobs.
struct BatchConfig {
  /// Lanes run in lockstep; -1 defers to lockstep_lanes(). Values below 2
  /// disable batching (every instance solves through the base solver).
  int lanes = -1;
};

/// True when `a` and `b` may share lockstep lanes: equal task count, one
/// processor each, equal cycle capacity and bitwise-equal energy curves
/// (window, idle discipline, sleep overheads, power model parameters,
/// work_per_cycle). Shape says nothing about the task data — lanes carry
/// different cycles and penalties; that is the point.
bool same_shape(const RejectionProblem& a, const RejectionProblem& b);

/// Facade turning a single-instance solver into a batch solver. Instances
/// are grouped by shape signature, groups are cut into lane-sized chunks,
/// and each chunk runs in lockstep when the base solver has a lockstep
/// implementation (exact DP, density greedy, marginal greedy); ragged
/// tails of size 1 and unsupported solvers fall back to per-instance
/// base.solve(). Results come back in input order.
class BatchRejectionSolver {
 public:
  /// `base` must outlive the facade.
  explicit BatchRejectionSolver(const RejectionSolver& base, BatchConfig config = {});

  /// Solves every instance; bit-identical to calling base.solve() per
  /// instance, in any grouping and at any lane count.
  std::vector<RejectionSolution> solve_batch(
      const std::vector<const RejectionProblem*>& problems) const;

  /// solve_batch that additionally captures the lockstep exact-DP lanes'
  /// filled tables into `tables` (resized to one slot per problem; see
  /// LockstepTables for which slots stay empty). The solutions are the same
  /// bits with or without capture.
  std::vector<RejectionSolution> solve_batch(
      const std::vector<const RejectionProblem*>& problems, LockstepTables* tables) const;

  /// Fused cross-instance sweep: `grids[i]` is instance i's sweep points
  /// (one task set per instance, capacities/platforms varying by point, as
  /// RejectionSolver::solve_sweep receives them). Instances whose per-point
  /// shapes match are grouped, cut into lane-sized chunks, and each chunk
  /// shares ONE lane-major fill (per lane, at the lane's widest point) plus
  /// one fused lockstep select per point — so a chunk gets the warm-start
  /// AND the cross-instance energy batching at once. Results are
  /// bit-identical to calling base.solve_sweep(grids[i]) per instance;
  /// ineligible instances (mixed task sets, odd shapes, non-exact-DP base,
  /// fused sweeps disabled) take exactly that fallback.
  std::vector<std::vector<RejectionSolution>> solve_sweep_batch(
      const std::vector<std::vector<const RejectionProblem*>>& grids) const;

  /// "<base name>+LOCKSTEP".
  std::string name() const;

 private:
  const RejectionSolver* base_;
  BatchConfig config_;
};

}  // namespace retask

#endif  // RETASK_BATCH_LOCKSTEP_HPP
