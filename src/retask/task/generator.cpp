#include "retask/task/generator.hpp"

#include <algorithm>
#include <cmath>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {
namespace {

double penalty_for(PenaltyModel model, double scale, double e_ref, double cycles,
                   double mean_cycles, Rng& rng) {
  const double base = scale * e_ref;
  switch (model) {
    case PenaltyModel::kUniform:
      return base * mean_cycles * rng.uniform(0.5, 1.5);
    case PenaltyModel::kProportionalCycles:
      return base * cycles * rng.uniform(0.8, 1.25);
    case PenaltyModel::kInverseCycles:
      return base * (mean_cycles * mean_cycles / cycles) * rng.uniform(0.8, 1.25);
  }
  throw Error("penalty_for: unknown penalty model");
}

}  // namespace

std::vector<double> uunifast(int count, double total, Rng& rng) {
  require(count >= 1, "uunifast: count must be at least 1");
  require(total >= 0.0, "uunifast: total must be non-negative");
  std::vector<double> shares(static_cast<std::size_t>(count));
  double remaining = total;
  for (int i = count; i > 1; --i) {
    const double next = remaining * std::pow(rng.uniform(), 1.0 / static_cast<double>(i - 1));
    shares[static_cast<std::size_t>(count - i)] = remaining - next;
    remaining = next;
  }
  shares.back() = remaining;
  return shares;
}

FrameTaskSet generate_frame_tasks(const FrameWorkloadConfig& config, Rng& rng) {
  require(config.task_count >= 1, "generate_frame_tasks: task_count must be at least 1");
  require(config.target_load > 0.0, "generate_frame_tasks: target_load must be positive");
  require(config.frame > 0.0 && config.max_speed > 0.0,
          "generate_frame_tasks: frame and max_speed must be positive");
  require(config.resolution >= static_cast<double>(config.task_count),
          "generate_frame_tasks: resolution too coarse for the task count");
  require(config.cycle_spread >= 1.0, "generate_frame_tasks: cycle_spread must be >= 1");
  require(config.penalty_scale >= 0.0 && config.energy_per_cycle_ref > 0.0,
          "generate_frame_tasks: penalty scale/reference must be valid");

  const auto n = static_cast<std::size_t>(config.task_count);
  // Cycle budget: `resolution` cycles correspond to system load 1.
  const double budget = config.target_load * config.resolution;

  std::vector<double> raw(n);
  double raw_sum = 0.0;
  for (double& r : raw) {
    r = rng.log_uniform(1.0, config.cycle_spread);
    raw_sum += r;
  }

  std::vector<FrameTask> tasks(n);
  double mean_cycles = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto cycles = static_cast<Cycles>(
        std::max<long long>(1, std::llround(budget * raw[i] / raw_sum)));
    tasks[i].id = static_cast<int>(i);
    tasks[i].cycles = cycles;
    mean_cycles += static_cast<double>(cycles);
  }
  mean_cycles /= static_cast<double>(n);

  // Anchor penalties to the energy scale implied by the cycle resolution:
  // one "typical task" costs roughly e_ref * mean_cycles * (smax * D /
  // resolution) energy units when cycles are mapped back to real workload.
  const double cycle_to_work = config.max_speed * config.frame / config.resolution;
  for (FrameTask& task : tasks) {
    task.penalty =
        penalty_for(config.penalty_model, config.penalty_scale,
                    config.energy_per_cycle_ref * cycle_to_work,
                    static_cast<double>(task.cycles), mean_cycles, rng);
  }
  return FrameTaskSet(std::move(tasks));
}

std::vector<TwoPeTask> generate_two_pe_tasks(const TwoPeWorkloadConfig& config, Rng& rng) {
  require(config.task_count >= 1, "generate_two_pe_tasks: task_count must be at least 1");
  require(config.dvs_load > 0.0, "generate_two_pe_tasks: dvs_load must be positive");
  require(config.u2_total > 0.0, "generate_two_pe_tasks: u2_total must be positive");
  require(config.cycle_spread >= 1.0, "generate_two_pe_tasks: cycle_spread must be >= 1");
  require(config.resolution >= static_cast<double>(config.task_count),
          "generate_two_pe_tasks: resolution too coarse for the task count");

  // DVS cycles: same recipe as the frame generator.
  FrameWorkloadConfig frame;
  frame.task_count = config.task_count;
  frame.target_load = config.dvs_load;
  frame.resolution = config.resolution;
  frame.cycle_spread = config.cycle_spread;
  frame.penalty_model = config.penalty_model;
  frame.penalty_scale = config.penalty_scale;
  frame.energy_per_cycle_ref = config.energy_per_cycle_ref;
  const FrameTaskSet base = generate_frame_tasks(frame, rng);

  const auto n = static_cast<std::size_t>(config.task_count);
  std::vector<double> weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double jitter = rng.uniform(0.8, 1.25);
    switch (config.relation) {
      case Pe2Relation::kProportional:
        weight[i] = static_cast<double>(base[i].cycles) * jitter;
        break;
      case Pe2Relation::kInverse:
        weight[i] = jitter / static_cast<double>(base[i].cycles);
        break;
      case Pe2Relation::kIndependent:
        weight[i] = jitter;
        break;
    }
  }
  double weight_sum = 0.0;
  for (const double w : weight) weight_sum += w;

  std::vector<TwoPeTask> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i].id = base[i].id;
    tasks[i].cycles = base[i].cycles;
    tasks[i].penalty = base[i].penalty;
    tasks[i].pe2_utilization =
        clamp(config.u2_total * weight[i] / weight_sum, 1e-6, 1.0);
    validate(tasks[i]);
  }
  return tasks;
}

PeriodicTaskSet generate_periodic_tasks(const PeriodicWorkloadConfig& config, Rng& rng) {
  require(config.task_count >= 1, "generate_periodic_tasks: task_count must be at least 1");
  require(config.total_rate > 0.0, "generate_periodic_tasks: total_rate must be positive");
  require(!config.period_menu.empty(), "generate_periodic_tasks: period menu must not be empty");
  for (const std::int64_t p : config.period_menu) {
    require(p > 0, "generate_periodic_tasks: periods must be positive");
  }

  const auto n = static_cast<std::size_t>(config.task_count);
  const std::vector<double> rates = uunifast(config.task_count, config.total_rate, rng);

  std::vector<PeriodicTask> tasks(n);
  double mean_cycles = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t period =
        config.period_menu[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.period_menu.size()) - 1))];
    const auto cycles = static_cast<Cycles>(
        std::max<long long>(1, std::llround(rates[i] * static_cast<double>(period))));
    tasks[i].id = static_cast<int>(i);
    tasks[i].period = period;
    tasks[i].cycles = cycles;
    mean_cycles += static_cast<double>(cycles);
  }
  mean_cycles /= static_cast<double>(n);

  for (PeriodicTask& task : tasks) {
    task.penalty = penalty_for(config.penalty_model, config.penalty_scale,
                               config.energy_per_cycle_ref, static_cast<double>(task.cycles),
                               mean_cycles, rng);
  }
  return PeriodicTaskSet(std::move(tasks));
}

}  // namespace retask
