// Task-set containers: aggregate views (total workload, total penalty,
// utilization, hyper-period) over frame and periodic task collections.
#ifndef RETASK_TASK_TASK_SET_HPP
#define RETASK_TASK_TASK_SET_HPP

#include <cstdint>
#include <vector>

#include "retask/task/task.hpp"

namespace retask {

/// An immutable-after-construction set of frame-based tasks.
class FrameTaskSet {
 public:
  FrameTaskSet() = default;

  /// Validates every task and freezes the set; ids must be unique.
  explicit FrameTaskSet(std::vector<FrameTask> tasks);

  const std::vector<FrameTask>& tasks() const { return tasks_; }
  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }
  const FrameTask& operator[](std::size_t index) const { return tasks_[index]; }

  /// Sum of worst-case execution cycles over all tasks.
  Cycles total_cycles() const { return total_cycles_; }

  /// Sum of rejection penalties over all tasks.
  double total_penalty() const { return total_penalty_; }

 private:
  std::vector<FrameTask> tasks_;
  Cycles total_cycles_ = 0;
  double total_penalty_ = 0.0;
};

/// An immutable-after-construction set of periodic tasks.
class PeriodicTaskSet {
 public:
  PeriodicTaskSet() = default;

  /// Validates every task and freezes the set; ids must be unique.
  explicit PeriodicTaskSet(std::vector<PeriodicTask> tasks);

  const std::vector<PeriodicTask>& tasks() const { return tasks_; }
  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }
  const PeriodicTask& operator[](std::size_t index) const { return tasks_[index]; }

  /// Total demanded execution rate, sum of ci/pi (cycles per time unit).
  double total_rate() const { return total_rate_; }

  /// Sum of rejection penalties over all tasks.
  double total_penalty() const { return total_penalty_; }

  /// Hyper-period: least common multiple of all periods (throws on 64-bit
  /// overflow); 1 for an empty set.
  std::int64_t hyper_period() const { return hyper_period_; }

 private:
  std::vector<PeriodicTask> tasks_;
  double total_rate_ = 0.0;
  double total_penalty_ = 0.0;
  std::int64_t hyper_period_ = 1;
};

}  // namespace retask

#endif  // RETASK_TASK_TASK_SET_HPP
