#include "retask/task/task_set.hpp"

#include <unordered_set>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {
namespace {

template <typename Task>
void check_unique_ids(const std::vector<Task>& tasks) {
  std::unordered_set<int> seen;
  for (const Task& task : tasks) {
    require(seen.insert(task.id).second, "task set: duplicate task id");
  }
}

}  // namespace

FrameTaskSet::FrameTaskSet(std::vector<FrameTask> tasks) : tasks_(std::move(tasks)) {
  check_unique_ids(tasks_);
  for (const FrameTask& task : tasks_) {
    validate(task);
    total_cycles_ += task.cycles;
    total_penalty_ += task.penalty;
  }
}

PeriodicTaskSet::PeriodicTaskSet(std::vector<PeriodicTask> tasks) : tasks_(std::move(tasks)) {
  check_unique_ids(tasks_);
  for (const PeriodicTask& task : tasks_) {
    validate(task);
    total_rate_ += task.rate();
    total_penalty_ += task.penalty;
    hyper_period_ = checked_lcm(hyper_period_, task.period);
  }
}

}  // namespace retask
