// Task types for the rejection-scheduling problem.
//
// Frame-based tasks all arrive at time 0 and share one common deadline (the
// frame length D); this is the model under which the task-rejection problem
// is stated, because a bounded top speed makes an overloaded frame
// unschedulable without rejections. Periodic tasks generalize the model:
// each task releases a job every `period` with an implicit deadline, and the
// periodic problem reduces to the frame problem over the hyper-period (see
// core/periodic.hpp).
#ifndef RETASK_TASK_TASK_HPP
#define RETASK_TASK_TASK_HPP

#include <cstdint>

namespace retask {

/// Worst-case execution cycles are integral: the exact DP and the FPTAS
/// index their tables by cycles.
using Cycles = std::int64_t;

/// Frame-based task: `cycles` of work due at the common frame deadline, and
/// the penalty charged if the task is rejected.
struct FrameTask {
  int id = 0;
  Cycles cycles = 0;
  double penalty = 0.0;
};

/// Periodic task with implicit deadline: a job of `cycles` cycles is
/// released every `period` time units. `penalty` is the cost of rejecting
/// the whole task (all of its jobs) for one hyper-period.
struct PeriodicTask {
  int id = 0;
  Cycles cycles = 0;
  std::int64_t period = 1;  ///< integral so that the hyper-period is an lcm
  double penalty = 0.0;

  /// Utilization in cycles per time unit (the demanded execution rate).
  double rate() const { return static_cast<double>(cycles) / static_cast<double>(period); }
};

/// Task for the heterogeneous two-PE system: it can run on the DVS processor
/// (costing `cycles` of DVS work), on the non-DVS processing element
/// (costing `pe2_utilization` of that PE's unit capacity — e.g. area share
/// on a 1-D FPGA), or be rejected at `penalty`.
struct TwoPeTask {
  int id = 0;
  Cycles cycles = 0;           ///< execution cycles on the DVS PE
  double pe2_utilization = 0;  ///< share of the non-DVS PE, in (0, 1]
  double penalty = 0.0;
};

/// Validates a frame task (positive cycles, non-negative penalty); throws
/// retask::Error otherwise.
void validate(const FrameTask& task);

/// Validates a two-PE task (positive cycles, utilization in (0, 1],
/// non-negative penalty); throws retask::Error otherwise.
void validate(const TwoPeTask& task);

/// Validates a periodic task (positive cycles and period, non-negative
/// penalty); throws retask::Error otherwise.
void validate(const PeriodicTask& task);

}  // namespace retask

#endif  // RETASK_TASK_TASK_HPP
