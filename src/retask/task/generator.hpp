// Synthetic task-set generators.
//
// The evaluation style of the venue (and of this research group) is entirely
// simulation on synthetic task sets: execution cycles drawn from a spread
// distribution, utilizations drawn with UUniFast, and — for the rejection
// problem — penalties tied to a reference energy so that a single scale
// parameter lambda sweeps the penalty-to-energy crossover. All generators
// are deterministic given the caller's Rng.
#ifndef RETASK_TASK_GENERATOR_HPP
#define RETASK_TASK_GENERATOR_HPP

#include <cstdint>
#include <vector>

#include "retask/common/rng.hpp"
#include "retask/task/task_set.hpp"

namespace retask {

/// How rejection penalties relate to task sizes.
enum class PenaltyModel {
  kUniform,             ///< penalty independent of size (lambda * e_ref * mean cycles)
  kProportionalCycles,  ///< big tasks hurt more to reject (lambda * e_ref * ci)
  kInverseCycles,       ///< small tasks hurt more to reject (lambda * e_ref * mean^2 / ci)
};

/// Configuration for frame-based synthetic task sets.
struct FrameWorkloadConfig {
  int task_count = 10;
  /// System load Wtot / (smax * frame). Loads above 1 force rejections.
  double target_load = 1.0;
  double frame = 1.0;      ///< common deadline D (time units)
  double max_speed = 1.0;  ///< smax used to size the cycle budget
  /// Cycle resolution: total cycles at load 1 equal
  /// resolution * max_speed * frame. Larger values give finer tasks.
  double resolution = 10000.0;
  /// Ratio between the largest and smallest raw task size (log-uniform).
  double cycle_spread = 8.0;
  PenaltyModel penalty_model = PenaltyModel::kUniform;
  /// Penalty scale lambda: 1.0 makes the typical penalty comparable to the
  /// energy of executing a typical task at `energy_per_cycle_ref`.
  double penalty_scale = 1.0;
  /// Reference energy per cycle used to anchor penalty magnitudes (pass the
  /// power model's energy_per_cycle at the critical or top speed).
  double energy_per_cycle_ref = 1.0;
};

/// Draws a frame task set according to `config`. Total cycles land within
/// task_count of the target (rounding); every task has at least one cycle.
FrameTaskSet generate_frame_tasks(const FrameWorkloadConfig& config, Rng& rng);

/// Configuration for periodic synthetic task sets.
struct PeriodicWorkloadConfig {
  int task_count = 10;
  /// Total demanded rate sum(ci/pi) in cycles per time unit. Rates above
  /// smax force rejections.
  double total_rate = 1.0;
  /// Periods are drawn uniformly from this menu (kept lcm-friendly so the
  /// hyper-period stays bounded).
  std::vector<std::int64_t> period_menu = {100, 200, 400, 500, 1000, 2000};
  PenaltyModel penalty_model = PenaltyModel::kUniform;
  double penalty_scale = 1.0;
  double energy_per_cycle_ref = 1.0;
};

/// Draws a periodic task set: UUniFast splits `total_rate` over the tasks,
/// periods come from the menu, cycles are rounded to at least 1.
PeriodicTaskSet generate_periodic_tasks(const PeriodicWorkloadConfig& config, Rng& rng);

/// UUniFast (Bini & Buttazzo): splits `total` into `count` non-negative
/// shares whose sum is `total`, uniformly over the simplex. Requires
/// count >= 1 and total >= 0.
std::vector<double> uunifast(int count, double total, Rng& rng);

/// How a task's non-DVS-PE utilization relates to its DVS computation
/// demand, matching the source line's two evaluation settings plus an
/// uncorrelated control.
enum class Pe2Relation {
  kProportional,  ///< heavy DVS tasks are also heavy on the non-DVS PE
  kInverse,       ///< heavy DVS tasks are cheap on the non-DVS PE
  kIndependent,   ///< uncorrelated
};

/// Configuration for two-PE synthetic task sets.
struct TwoPeWorkloadConfig {
  int task_count = 10;
  /// DVS-side load (1.0 = exactly fills the DVS PE at top speed).
  double dvs_load = 1.2;
  double resolution = 1000.0;  ///< cycles representing DVS load 1
  double cycle_spread = 8.0;
  /// Total non-DVS-PE demand sum(u_i); above 1 forces placement choices.
  double u2_total = 1.6;
  Pe2Relation relation = Pe2Relation::kIndependent;
  PenaltyModel penalty_model = PenaltyModel::kUniform;
  double penalty_scale = 1.0;
  double energy_per_cycle_ref = 1.0;
};

/// Draws a two-PE task set: DVS cycles like the frame generator, PE2
/// utilizations shaped by `relation` and normalized to `u2_total` (each
/// clamped into (0, 1]).
std::vector<TwoPeTask> generate_two_pe_tasks(const TwoPeWorkloadConfig& config, Rng& rng);

}  // namespace retask

#endif  // RETASK_TASK_GENERATOR_HPP
