#include "retask/task/task.hpp"

#include "retask/common/error.hpp"

namespace retask {

void validate(const FrameTask& task) {
  require(task.cycles > 0, "FrameTask: cycles must be positive");
  require(task.penalty >= 0.0, "FrameTask: penalty must be non-negative");
}

void validate(const TwoPeTask& task) {
  require(task.cycles > 0, "TwoPeTask: cycles must be positive");
  require(task.pe2_utilization > 0.0 && task.pe2_utilization <= 1.0,
          "TwoPeTask: pe2_utilization must be in (0, 1]");
  require(task.penalty >= 0.0, "TwoPeTask: penalty must be non-negative");
}

void validate(const PeriodicTask& task) {
  require(task.cycles > 0, "PeriodicTask: cycles must be positive");
  require(task.period > 0, "PeriodicTask: period must be positive");
  require(task.penalty >= 0.0, "PeriodicTask: penalty must be non-negative");
}

}  // namespace retask
