#include "retask/serve/delta_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "retask/common/error.hpp"
#include "retask/core/dp_select.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/simd/kernels.hpp"

namespace retask {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

double assigned_speed(const EnergyCurve& curve, double work_per_cycle, Cycles load) {
  require(load >= 0, "assigned_speed: negative load");
  const ExecutionPlan plan = curve.plan(work_per_cycle * static_cast<double>(load));
  double work = 0.0;
  double busy = 0.0;
  for (const PlanSegment& segment : plan.segments) {
    if (segment.speed <= 0.0) continue;
    work += segment.speed * segment.duration;
    busy += segment.duration;
  }
  return busy > 0.0 ? work / busy : 0.0;
}

DeltaSolver::DeltaSolver(EnergyCurve curve, double work_per_cycle, Config config)
    : curve_(std::move(curve)), work_per_cycle_(work_per_cycle), config_(config) {
  require(work_per_cycle_ > 0.0, "DeltaSolver: work_per_cycle must be positive");
  require(config_.checkpoint_stride >= 1, "DeltaSolver: checkpoint_stride must be >= 1");
  cycle_capacity_ = cycle_capacity_for(curve_, work_per_cycle_);
  width_ = static_cast<std::size_t>(cycle_capacity_) + 1;
  table_.value.assign(width_, kNegInf);
  table_.value[0] = 0.0;
  table_.take.reset(0, width_);
  memo_ = config_.shared_memo != nullptr ? config_.shared_memo : std::make_shared<EnergyMemo>();
  select();
}

std::size_t DeltaSolver::index_of(int id) const {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].id == id) return i;
  }
  return kNone;
}

void DeltaSolver::ensure_rows(std::size_t rows) {
  if (rows <= rows_) return;
  rows_ = std::max({rows, rows_ * 2, std::size_t{8}});
  table_.take.resize_rows(rows_);
}

void DeltaSolver::relax_row(std::size_t i) {
  // The row may hold bits from an earlier fill epoch (a removed task's
  // relaxation); the kernel only ORs improvements in, so clear first.
  std::fill_n(table_.take.row_words(i), table_.take.words_per_row(), std::uint64_t{0});
  const FrameTask& task = tasks_[i];
  if (task.cycles > cycle_capacity_) return;  // can never be accepted
  const auto ci = static_cast<std::size_t>(task.cycles);
  const std::size_t top = std::min(width_ - 1, reachable_ + ci);
  simd::kernels().relax_desc_f64(table_.value.data(), table_.take.row_words(i), ci, ci, top,
                                 task.penalty);
  reachable_ = top;
}

void DeltaSolver::push_checkpoint_if_due(std::size_t prefix) {
  const auto stride = static_cast<std::size_t>(config_.checkpoint_stride);
  if (prefix == 0 || prefix % stride != 0) return;
  if (cp_pool_.empty()) {
    cp_values_.emplace_back();
  } else {
    cp_values_.push_back(std::move(cp_pool_.back()));
    cp_pool_.pop_back();
  }
  cp_values_.back() = table_.value;  // assign into retained capacity
  cp_reach_.push_back(reachable_);
}

void DeltaSolver::drop_checkpoints_to(std::size_t count) {
  while (cp_values_.size() > count) {
    cp_pool_.push_back(std::move(cp_values_.back()));
    cp_values_.pop_back();
    cp_reach_.pop_back();
  }
}

void DeltaSolver::replay_from(std::size_t invalidated) {
  const auto stride = static_cast<std::size_t>(config_.checkpoint_stride);
  // Checkpoints still valid; clamped so a retained-row shortfall (an
  // adopted table whose producer captured fewer rows than dense) degrades
  // to a longer replay instead of an out-of-range read.
  const std::size_t keep = std::min(invalidated / stride, cp_values_.size());
  drop_checkpoints_to(keep);
  const std::size_t start = keep * stride;
  if (keep == 0) {
    std::fill(table_.value.begin(), table_.value.end(), kNegInf);
    table_.value[0] = 0.0;
    reachable_ = 0;
  } else {
    std::copy(cp_values_[keep - 1].begin(), cp_values_[keep - 1].end(), table_.value.begin());
    reachable_ = cp_reach_[keep - 1];
  }
  if (start == 0 && !tasks_.empty()) {
    ++cold_falls_;
    RETASK_COUNT("serve.cold_falls", 1);
  } else {
    ++delta_hits_;
    RETASK_COUNT("serve.delta_hits", 1);
  }
  for (std::size_t i = start; i < tasks_.size(); ++i) {
    relax_row(i);
    push_checkpoint_if_due(i + 1);
  }
}

const RejectionSolution& DeltaSolver::admit(const FrameTask& task) {
  validate(task);
  require(index_of(task.id) == kNone, "DeltaSolver::admit: task id already resident");
  tasks_.push_back(task);
  total_cycles_ += task.cycles;
  const std::size_t i = tasks_.size() - 1;
  ensure_rows(i + 1);
  relax_row(i);
  push_checkpoint_if_due(i + 1);
  ++delta_hits_;
  RETASK_COUNT("serve.delta_hits", 1);
  select();
  return solution_;
}

const RejectionSolution& DeltaSolver::admit_all(const std::vector<FrameTask>& tasks) {
  for (const FrameTask& task : tasks) {
    validate(task);
    require(index_of(task.id) == kNone, "DeltaSolver::admit_all: task id already resident");
    tasks_.push_back(task);  // visible to index_of: later duplicates rejected
    total_cycles_ += task.cycles;
    const std::size_t i = tasks_.size() - 1;
    ensure_rows(i + 1);
    relax_row(i);
    push_checkpoint_if_due(i + 1);
    ++delta_hits_;
  }
  RETASK_COUNT("serve.delta_hits", tasks.size());
  select();
  return solution_;
}

const RejectionSolution& DeltaSolver::adopt_table(const std::vector<FrameTask>& tasks,
                                                  DpTableExport table) {
  require(tasks_.empty(), "DeltaSolver::adopt_table: solver already has resident tasks");
  const std::size_t n = tasks.size();
  require(!table.value.empty() && table.value.size() <= width_,
          "DeltaSolver::adopt_table: exported width exceeds the platform capacity");
  require(table.take.rows() == n, "DeltaSolver::adopt_table: choice rows != task count");
  require(table.checkpoint_stride >= 1, "DeltaSolver::adopt_table: checkpoint_stride must be >= 1");
  const auto stride = static_cast<std::size_t>(table.checkpoint_stride);
  require(table.cp_values.size() == n / stride && table.cp_reach.size() == table.cp_values.size(),
          "DeltaSolver::adopt_table: checkpoint rows must be dense at the stride");
  for (const FrameTask& task : tasks) {
    validate(task);
    require(index_of(task.id) == kNone, "DeltaSolver::adopt_table: duplicate task id");
    tasks_.push_back(task);  // visible to index_of: later duplicates rejected
    total_cycles_ += task.cycles;
  }

  // Rebind the checkpoint cadence to the export's so push_checkpoint_if_due
  // keeps the dense invariant (cp_values_[c] is the row after (c + 1) *
  // stride tasks) across future admissions. The stride never affects a
  // solution bit, only replay cost.
  config_.checkpoint_stride = table.checkpoint_stride;
  drop_checkpoints_to(0);
  for (std::size_t c = 0; c < table.cp_values.size(); ++c) {
    table.cp_values[c].resize(width_, kNegInf);  // rows above the export stay unreachable
    cp_values_.push_back(std::move(table.cp_values[c]));
    cp_reach_.push_back(table.cp_reach[c]);
  }

  ensure_rows(n);
  std::copy(table.value.begin(), table.value.end(), table_.value.begin());
  std::fill(table_.value.begin() + static_cast<std::ptrdiff_t>(table.value.size()),
            table_.value.end(), kNegInf);
  reachable_ = table.reachable;
  const std::size_t src_words = table.take.words_per_row();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t* row = table_.take.row_words(i);
    std::copy_n(table.take.row_words(i), src_words, row);
    std::fill(row + src_words, row + table_.take.words_per_row(), std::uint64_t{0});
  }

  ++delta_hits_;
  RETASK_COUNT("serve.delta_hits", 1);
  RETASK_COUNT("delta.table_adoptions", 1);
  select();
  return solution_;
}

const RejectionSolution& DeltaSolver::remove(int id) {
  const std::size_t i = index_of(id);
  require(i != kNone, "DeltaSolver::remove: unknown task id");
  total_cycles_ -= tasks_[i].cycles;
  tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(i));
  replay_from(i);
  select();
  return solution_;
}

const RejectionSolution& DeltaSolver::reprice(int id, double penalty) {
  const std::size_t i = index_of(id);
  require(i != kNone, "DeltaSolver::reprice: unknown task id");
  FrameTask probe = tasks_[i];
  probe.penalty = penalty;
  validate(probe);  // same rules as admit (finite, non-negative)
  tasks_[i] = probe;
  replay_from(i);
  select();
  return solution_;
}

double DeltaSolver::energy_of(Cycles cycles) {
  return memo_->get_or_compute(cycles, [this](Cycles c) {
    return curve_.energy(work_per_cycle_ * static_cast<double>(c));
  });
}

void DeltaSolver::energy_batch(const Cycles* cycles, double* out, std::size_t n) {
  // Mirrors RejectionProblem::energy_of_cycles_batch: memo hits replay
  // recorded bits, misses run through the fused batch kernel (bit-identical
  // to one-at-a-time evaluation) and are recorded.
  miss_index_.clear();
  miss_cycles_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (!memo_->lookup(cycles[i], out[i])) {
      miss_index_.push_back(i);
      miss_cycles_.push_back(cycles[i]);
    }
  }
  if (miss_index_.empty()) return;
  miss_out_.resize(miss_index_.size());
  curve_.energy_cycles_batch(work_per_cycle_, miss_cycles_.data(), miss_out_.data(),
                             miss_index_.size());
  for (std::size_t j = 0; j < miss_index_.size(); ++j) {
    memo_->record(miss_cycles_[j], miss_out_[j]);
    out[miss_index_[j]] = miss_out_[j];
  }
}

void DeltaSolver::select() {
  const std::size_t n = tasks_.size();
  // A cold solve fills at min(capacity, total cycles); our retained table
  // is filled at the full capacity, and the prefix property makes rows
  // <= that cap bit-identical, so sweeping the same range reads the same
  // answer.
  const auto cap = static_cast<std::size_t>(std::min(cycle_capacity_, total_cycles_));
  // Recomputed in residual order every time — FrameTaskSet accumulates its
  // total the same way, and float addition is order-sensitive, so an
  // incrementally maintained sum could drift from the cold solve's bits.
  double total_penalty = 0.0;
  for (const FrameTask& task : tasks_) total_penalty += task.penalty;

  const DpSelectResult sel = select_best_row(
      table_.value, cap, total_penalty,
      [this](const Cycles* cycles, double* out, std::size_t m) { energy_batch(cycles, out, m); },
      table_.select_cycles, table_.select_energy);
  RETASK_COUNT("serve.select_energy_evals", sel.energy_evals);
  RETASK_ASSERT(sel.best_objective < std::numeric_limits<double>::infinity());

  solution_.accepted.assign(n, false);
  std::size_t w = sel.best_w;
  for (std::size_t i = n; i-- > 0;) {
    if (table_.take.test(i, w)) {
      solution_.accepted[i] = true;
      w -= static_cast<std::size_t>(tasks_[i].cycles);
    }
  }
  RETASK_ASSERT(w == 0);

  // Score exactly as make_solution does: rejected penalties summed in index
  // order, energy through the single-load evaluation.
  solution_.processor_of.assign(n, -1);
  Cycles load = 0;
  double penalty = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (solution_.accepted[i]) {
      solution_.processor_of[i] = 0;
      load += tasks_[i].cycles;
    } else {
      penalty += tasks_[i].penalty;
    }
  }
  solution_.energy = energy_of(load);
  solution_.penalty = penalty;
  accepted_load_ = load;
}

RejectionProblem DeltaSolver::make_problem() const {
  return RejectionProblem(FrameTaskSet(tasks_), curve_, work_per_cycle_, 1);
}

}  // namespace retask
