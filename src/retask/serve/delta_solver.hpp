// Incremental exact solver for the admission-control serve mode.
//
// A long-lived scheduler answers a stream of admit / remove / reprice
// requests against one fixed platform (one DVS processor described by an
// EnergyCurve, cycles scaled by work_per_cycle). Cold-solving every request
// refills the whole exact-DP table — O(n * W) — even though consecutive
// requests differ by a single task. This solver retains the table between
// requests and exploits the prefix property documented at
// core/exact_dp.cpp's fill_table: rows w <= c of a fill at capacity >= c
// are bit-identical to a dedicated fill at c, and the value row after the
// first k tasks depends only on those k tasks in order.
//
//  * The table is filled at the platform's full cycle capacity, so growing
//    or shrinking the resident set never changes the fill capacity — the
//    read-out just sweeps rows [0, min(capacity, resident cycles)], which
//    the prefix property makes bit-identical to a cold solve's narrower
//    fill.
//  * admit appends one task: a single descending relaxation over the
//    retained value row — O(W) instead of O(n * W).
//  * remove / reprice invalidate the suffix from the changed index on. The
//    solver keeps a value-row checkpoint every `checkpoint_stride` tasks
//    and replays only the tasks past the nearest surviving checkpoint; a
//    change inside the first stride replays everything (the cold fall).
//
// Replay preserves the residual insertion order, so the per-task choice
// bits — and with them the reconstructed accept set — match what a cold
// ExactDpSolver::solve over the same task vector produces. Every returned
// solution is bit-identical (accept mask, energy, penalty) to that cold
// solve; retask_fuzz --delta-diff replays random request sequences against
// cold solves to enforce exactly this, and tests/test_delta_solver.cpp
// pins the edge cases.
//
// The request path allocates nothing in steady state: the table and select
// buffers live in a private DpScratch arena at their high-water mark,
// checkpoint rows are recycled through a pool, and the solution's vectors
// are assign()ed in place.
#ifndef RETASK_SERVE_DELTA_SOLVER_HPP
#define RETASK_SERVE_DELTA_SOLVER_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "retask/cache/energy_memo.hpp"
#include "retask/cache/scratch.hpp"
#include "retask/core/problem.hpp"
#include "retask/core/solution.hpp"
#include "retask/power/energy_curve.hpp"
#include "retask/task/task.hpp"

namespace retask {

/// Average execution speed of the minimum-energy plan for `load` accepted
/// cycles under `curve` — the speed assignment a serve-mode verdict
/// reports. 0 when the plan executes nothing.
double assigned_speed(const EnergyCurve& curve, double work_per_cycle, Cycles load);

/// Incremental single-processor exact solver over a mutable resident task
/// set. Not thread-safe: one solver serves one session.
class DeltaSolver {
 public:
  struct Config {
    /// Tasks between retained value-row checkpoints. Smaller strides bound
    /// the replay cost of a removal near the end of the set at the price of
    /// more retained rows; must be >= 1.
    int checkpoint_stride = 16;
    /// Energy memo to share with other solvers of the SAME platform (curve +
    /// work_per_cycle) — e.g. the per-PE solvers of one multiprocessor
    /// instance, whose loads heavily overlap. Null: the solver creates its
    /// own. Sharing is safe (the memoized value is a pure function of the
    /// cycles) and cannot change a solution bit.
    std::shared_ptr<EnergyMemo> shared_memo;
  };

  DeltaSolver(EnergyCurve curve, double work_per_cycle) : DeltaSolver(std::move(curve), work_per_cycle, Config()) {}
  DeltaSolver(EnergyCurve curve, double work_per_cycle, Config config);

  /// Admits `task` (validated; its id must not be resident) and returns the
  /// new optimal solution over the resident set. The verdict for the task
  /// is solution().accepted.back() — an admitted task may be rejected, and
  /// admitting one task may evict a previously accepted one.
  const RejectionSolution& admit(const FrameTask& task);

  /// Bulk admission: appends every task (validated; ids must be new and
  /// pairwise distinct) with ONE select at the end instead of one per task.
  /// The resulting state — table, checkpoints, solution — is bit-identical
  /// to admitting the tasks one at a time in order; only the intermediate
  /// solutions are skipped. Seeding path of the multiprocessor local search.
  const RejectionSolution& admit_all(const std::vector<FrameTask>& tasks);

  /// Adopts an already-filled DP table instead of replaying the fill: the
  /// solver (which must still be empty) becomes bit-identical to
  /// admit_all(tasks) without touching a single DP cell. `table` must be
  /// the exact-DP fill over `tasks` in order at a capacity covering every
  /// reachable row (rows above the exported width are unreachable and stay
  /// -inf), with DENSE value-row checkpoints every `checkpoint_stride`
  /// tasks — exactly what the lockstep lanes capture (batch/lockstep.hpp
  /// LockstepTables). The solver's checkpoint stride is rebound to the
  /// export's. Every later admit / remove / reprice replays through the
  /// adopted rows and stays bit-identical to a cold-seeded solver.
  const RejectionSolution& adopt_table(const std::vector<FrameTask>& tasks, DpTableExport table);

  /// Removes the resident task with `id` (throws when unknown) and returns
  /// the new optimal solution.
  const RejectionSolution& remove(int id);

  /// Replaces the rejection penalty of resident task `id` and returns the
  /// new optimal solution.
  const RejectionSolution& reprice(int id, double penalty);

  /// The optimal solution over the current resident set, indexed like
  /// resident(). Valid until the next mutating call.
  const RejectionSolution& solution() const { return solution_; }

  const std::vector<FrameTask>& resident() const { return tasks_; }
  std::size_t size() const { return tasks_.size(); }
  bool contains(int id) const { return index_of(id) != kNone; }
  /// Index of `id` in resident(), or npos (size_t(-1)) when not resident.
  std::size_t index_of(int id) const;

  const EnergyCurve& curve() const { return curve_; }
  double work_per_cycle() const { return work_per_cycle_; }
  Cycles cycle_capacity() const { return cycle_capacity_; }
  /// Total accepted cycles of solution().
  Cycles accepted_load() const { return accepted_load_; }

  /// Requests served by appending / partial replay vs. by a full refill
  /// (a change inside the first checkpoint stride). Mirrored into the obs
  /// counters serve.delta_hits / serve.cold_falls.
  std::uint64_t delta_hits() const { return delta_hits_; }
  std::uint64_t cold_falls() const { return cold_falls_; }

  /// A standalone cold problem over the current resident set (differential
  /// checks and tests; allocates, unlike the request path). No memo is
  /// attached, so a cold solve of it shares no state with this solver.
  RejectionProblem make_problem() const;

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  void ensure_rows(std::size_t rows);
  /// Clears and relaxes choice row `i` from the current value row, exactly
  /// as fill_table does at capacity cycle_capacity_.
  void relax_row(std::size_t i);
  /// Restores the nearest checkpoint at or before prefix length
  /// `invalidated` and replays the remaining tasks in residual order.
  void replay_from(std::size_t invalidated);
  void push_checkpoint_if_due(std::size_t prefix);
  void drop_checkpoints_to(std::size_t count);
  /// Reads the optimal solution off the retained table into solution_.
  void select();
  /// energy(work_per_cycle * cycles) through the retained memo — the same
  /// computation RejectionProblem::energy_of_cycles performs.
  double energy_of(Cycles cycles);
  /// Batched energy_of, mirroring RejectionProblem::energy_of_cycles_batch
  /// (memo hits replayed, misses through the fused batch kernel).
  void energy_batch(const Cycles* cycles, double* out, std::size_t n);

  EnergyCurve curve_;
  double work_per_cycle_ = 1.0;
  Config config_;
  Cycles cycle_capacity_ = 0;
  std::size_t width_ = 1;  ///< cycle_capacity_ + 1 value cells

  std::vector<FrameTask> tasks_;
  Cycles total_cycles_ = 0;

  // Retained DP state: value row + choice rows (row capacity grows
  // geometrically; rows_ tracks the allocated count) + select batch
  // buffers, all in one private arena.
  DpScratch table_;
  std::size_t rows_ = 0;
  std::size_t reachable_ = 0;

  // Value-row checkpoints: cp_values_[c] is the row after the first
  // (c + 1) * checkpoint_stride tasks, cp_reach_[c] the reachability bound
  // there. Retired rows are recycled through cp_pool_.
  std::vector<std::vector<double>> cp_values_;
  std::vector<std::size_t> cp_reach_;
  std::vector<std::vector<double>> cp_pool_;

  std::shared_ptr<EnergyMemo> memo_;
  // Scratch of energy_batch's memo miss partition.
  std::vector<std::size_t> miss_index_;
  std::vector<Cycles> miss_cycles_;
  std::vector<double> miss_out_;

  RejectionSolution solution_;
  Cycles accepted_load_ = 0;
  std::uint64_t delta_hits_ = 0;
  std::uint64_t cold_falls_ = 0;
};

}  // namespace retask

#endif  // RETASK_SERVE_DELTA_SOLVER_HPP
