#include "retask/serve/protocol.hpp"

#include <array>
#include <istream>
#include <ostream>

#include "retask/common/error.hpp"

namespace retask {

bool read_frame(std::istream& in, std::string& payload) {
  std::array<char, 4> header;
  in.read(header.data(), 4);
  if (in.gcount() == 0) return false;  // clean end of stream
  require(in.gcount() == 4, "read_frame: truncated frame header");
  const std::uint32_t length = static_cast<std::uint32_t>(static_cast<unsigned char>(header[0])) |
                               (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
                                << 8) |
                               (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
                                << 16) |
                               (static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]))
                                << 24);
  require(length <= kMaxFramePayload, "read_frame: frame payload exceeds the protocol cap");
  payload.resize(length);
  if (length > 0) {
    in.read(payload.data(), static_cast<std::streamsize>(length));
    require(static_cast<std::uint32_t>(in.gcount()) == length, "read_frame: truncated frame payload");
  }
  return true;
}

void write_frame(std::ostream& out, std::string_view payload) {
  require(payload.size() <= kMaxFramePayload, "write_frame: payload exceeds the protocol cap");
  const auto length = static_cast<std::uint32_t>(payload.size());
  const std::array<char, 4> header = {
      static_cast<char>(length & 0xFF),
      static_cast<char>((length >> 8) & 0xFF),
      static_cast<char>((length >> 16) & 0xFF),
      static_cast<char>((length >> 24) & 0xFF),
  };
  out.write(header.data(), 4);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  require(static_cast<bool>(out), "write_frame: stream write failed");
}

}  // namespace retask
