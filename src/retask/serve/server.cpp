#include "retask/serve/server.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <ostream>
#include <thread>

#include "retask/common/error.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/serve/protocol.hpp"

namespace retask {
namespace {

/// Pops the next space-separated token off `rest`; false when exhausted.
bool next_token(std::string_view& rest, std::string_view& token) {
  std::size_t start = 0;
  while (start < rest.size() && rest[start] == ' ') ++start;
  if (start == rest.size()) {
    rest = {};
    return false;
  }
  std::size_t end = start;
  while (end < rest.size() && rest[end] != ' ') ++end;
  token = rest.substr(start, end - start);
  rest = rest.substr(end);
  return true;
}

/// Strict bounded integer parse (the request ids and cycle counts).
bool parse_i64(std::string_view token, std::int64_t& value) {
  if (token.empty() || token.size() >= 24) return false;
  char buf[24];
  token.copy(buf, token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + token.size()) return false;
  value = parsed;
  return true;
}

bool parse_int(std::string_view token, int& value) {
  std::int64_t wide = 0;
  if (!parse_i64(token, wide)) return false;
  if (wide < INT_MIN || wide > INT_MAX) return false;
  value = static_cast<int>(wide);
  return true;
}

/// Strict finite double parse (penalties).
bool parse_finite(std::string_view token, double& value) {
  if (token.empty() || token.size() >= 64) return false;
  char buf[64];
  token.copy(buf, token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(buf, &end);
  if (end != buf + token.size() || !std::isfinite(parsed)) return false;
  value = parsed;
  return true;
}

void append_i64(std::string& out, std::int64_t value) {
  char buf[24];
  const int written = std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  out.append(buf, static_cast<std::size_t>(written));
}

}  // namespace

ServeSession::ServeSession(EnergyCurve curve, double work_per_cycle, ServeOptions options)
    : solver_(std::move(curve), work_per_cycle, options.solver), options_(options) {
  require(options_.reply_precision >= 1 && options_.reply_precision <= 17,
          "ServeSession: reply_precision must be in [1, 17]");
}

void ServeSession::append_double(double value) {
  char buf[40];
  const int written =
      std::snprintf(buf, sizeof buf, "%.*g", options_.reply_precision, value);
  reply_.append(buf, static_cast<std::size_t>(written));
}

void ServeSession::append_solution_summary() {
  const RejectionSolution& sol = solver_.solution();
  reply_ += " accepted=";
  append_i64(reply_, static_cast<std::int64_t>(sol.accepted_count()));
  reply_ += '/';
  append_i64(reply_, static_cast<std::int64_t>(solver_.size()));
  reply_ += " load=";
  append_i64(reply_, solver_.accepted_load());
  reply_ += " speed=";
  append_double(assigned_speed(solver_.curve(), solver_.work_per_cycle(), solver_.accepted_load()));
  reply_ += " energy=";
  append_double(sol.energy);
  reply_ += " penalty=";
  append_double(sol.penalty);
  reply_ += " objective=";
  append_double(sol.energy + sol.penalty);
}

std::string_view ServeSession::handle(std::string_view request) {
  ++requests_;
  RETASK_COUNT("serve.requests", 1);
  reply_.clear();
  std::string_view rest = request;
  std::string_view cmd;
  const auto fail = [this](std::string_view reason) -> std::string_view {
    reply_.clear();
    reply_ += "err ";
    reply_ += reason;
    return reply_;
  };
  if (!next_token(rest, cmd)) return fail("empty request");

  try {
    if (cmd == "admit" || cmd == "reprice") {
      std::string_view id_token, amount_token, cycles_token, trailing;
      int id = 0;
      if (!next_token(rest, id_token) || !parse_int(id_token, id)) {
        return fail("expected: admit <id> <cycles> <penalty> | reprice <id> <penalty>");
      }
      const std::uint64_t cold_before = solver_.cold_falls();
      if (cmd == "admit") {
        std::int64_t cycles = 0;
        double penalty = 0.0;
        if (!next_token(rest, cycles_token) || !parse_i64(cycles_token, cycles) ||
            !next_token(rest, amount_token) || !parse_finite(amount_token, penalty) ||
            next_token(rest, trailing)) {
          return fail("expected: admit <id> <cycles> <penalty>");
        }
        solver_.admit(FrameTask{id, cycles, penalty});
      } else {
        double penalty = 0.0;
        if (!next_token(rest, amount_token) || !parse_finite(amount_token, penalty) ||
            next_token(rest, trailing)) {
          return fail("expected: reprice <id> <penalty>");
        }
        solver_.reprice(id, penalty);
      }
      reply_ += "ok ";
      reply_ += cmd;
      reply_ += " id=";
      append_i64(reply_, id);
      reply_ += " verdict=";
      reply_ += solver_.solution().accepted[solver_.index_of(id)] ? "accept" : "reject";
      append_solution_summary();
      reply_ += " path=";
      reply_ += solver_.cold_falls() != cold_before ? "cold" : "delta";
    } else if (cmd == "remove") {
      std::string_view id_token, trailing;
      int id = 0;
      if (!next_token(rest, id_token) || !parse_int(id_token, id) || next_token(rest, trailing)) {
        return fail("expected: remove <id>");
      }
      const std::uint64_t cold_before = solver_.cold_falls();
      solver_.remove(id);
      reply_ += "ok remove id=";
      append_i64(reply_, id);
      append_solution_summary();
      reply_ += " path=";
      reply_ += solver_.cold_falls() != cold_before ? "cold" : "delta";
    } else if (cmd == "query") {
      std::string_view trailing;
      if (next_token(rest, trailing)) return fail("expected: query");
      reply_ += "ok query resident=";
      append_i64(reply_, static_cast<std::int64_t>(solver_.size()));
      append_solution_summary();
    } else if (cmd == "stats") {
      std::string_view trailing;
      if (next_token(rest, trailing)) return fail("expected: stats");
      reply_ += "ok stats requests=";
      append_i64(reply_, static_cast<std::int64_t>(requests_));
      reply_ += " resident=";
      append_i64(reply_, static_cast<std::int64_t>(solver_.size()));
      reply_ += " delta_hits=";
      append_i64(reply_, static_cast<std::int64_t>(solver_.delta_hits()));
      reply_ += " cold_falls=";
      append_i64(reply_, static_cast<std::int64_t>(solver_.cold_falls()));
    } else if (cmd == "ping") {
      reply_ += "ok ping";
    } else if (cmd == "bye") {
      closed_ = true;
      reply_ += "ok bye";
    } else {
      return fail("unknown command");
    }
  } catch (const Error& error) {
    return fail(error.what());
  }
  return reply_;
}

void ServeLoopStats::record_latency(std::uint64_t ns) {
  const auto bucket = static_cast<std::size_t>(std::bit_width(ns));
  ++latency_ns_log2[std::min(bucket, latency_ns_log2.size() - 1)];
}

std::uint64_t ServeLoopStats::latency_percentile_ns(double p) const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : latency_ns_log2) total += count;
  if (total == 0) return 0;
  const auto threshold =
      static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < latency_ns_log2.size(); ++b) {
    seen += latency_ns_log2[b];
    if (seen >= threshold) return std::uint64_t{1} << b;
  }
  return std::uint64_t{1} << (latency_ns_log2.size() - 1);
}

ServeLoopStats run_serve_loop(std::istream& in, std::ostream& out, ServeSession& session,
                              const ServeLoopOptions& options) {
  ServeLoopStats stats;
  const std::size_t max_batch = std::max<std::size_t>(1, options.max_batch);

  // Reply pipeline: the pump thread solves, the writer thread frames and
  // flushes, so encoding and I/O overlap the next request's solve. Replies
  // keep request order (single queue), and drained buffers are recycled so
  // the steady state allocates nothing.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> pending;
  std::vector<std::string> spare;
  bool done = false;
  std::thread writer;
  if (options.async_replies) {
    writer = std::thread([&] {
      std::unique_lock<std::mutex> lock(mu);
      while (true) {
        cv.wait(lock, [&] { return done || !pending.empty(); });
        if (pending.empty() && done) break;
        while (!pending.empty()) {
          std::string reply = std::move(pending.front());
          pending.pop_front();
          lock.unlock();
          write_frame(out, reply);
          lock.lock();
          spare.push_back(std::move(reply));
        }
        out.flush();  // one flush per drained burst
      }
    });
  }
  const auto emit = [&](std::string_view reply) {
    if (!options.async_replies) {
      write_frame(out, reply);
      return;
    }
    std::lock_guard<std::mutex> lock(mu);
    std::string slot;
    if (!spare.empty()) {
      slot = std::move(spare.back());
      spare.pop_back();
    }
    slot.assign(reply);
    pending.push_back(std::move(slot));
    cv.notify_one();
  };

  std::string payload;
  bool open = true;
  while (open && !session.closed() && read_frame(in, payload)) {
    std::uint64_t batch_frames = 0;
    while (true) {
      const auto start = std::chrono::steady_clock::now();
      const std::string_view reply = session.handle(payload);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      stats.record_latency(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
      ++stats.requests;
      ++batch_frames;
      emit(reply);
      if (session.closed() || batch_frames >= max_batch) break;
      // Drain whatever the client already buffered before blocking again —
      // a pipelined burst is solved back-to-back with one wakeup.
      if (in.rdbuf() == nullptr || in.rdbuf()->in_avail() <= 0) break;
      if (!read_frame(in, payload)) {
        open = false;
        break;
      }
    }
    ++stats.batches;
    stats.max_batch_frames = std::max(stats.max_batch_frames, batch_frames);
    RETASK_RECORD("serve.batch_frames", batch_frames);
    if (!options.async_replies) out.flush();
  }

  if (options.async_replies) {
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    cv.notify_one();
    writer.join();
  } else {
    out.flush();
  }
  return stats;
}

}  // namespace retask
