// Length-prefixed frame protocol of the serve mode.
//
// retask_serve speaks a byte-stream protocol designed for pipes and local
// sockets: each message is one frame — a 4-byte little-endian unsigned
// payload length followed by exactly that many payload bytes. Inside a
// frame, requests and replies are single-line ASCII text (the grammar lives
// in serve/server.hpp); the framing exists so that a client never has to
// scan for delimiters, a reply can contain any byte, and a short read is
// detectable as corruption instead of silently splitting a message.
//
// The reader enforces a payload cap so a corrupt or hostile length prefix
// cannot turn into an attempted multi-gigabyte allocation.
#ifndef RETASK_SERVE_PROTOCOL_HPP
#define RETASK_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace retask {

/// Largest accepted frame payload in bytes. Requests are one short text
/// line; a length prefix beyond this is treated as stream corruption.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Reads one frame into `payload` (reusing its capacity). Returns false on
/// a clean end of stream (no bytes before the header); throws retask::Error
/// on a truncated header/payload or an oversized length prefix.
bool read_frame(std::istream& in, std::string& payload);

/// Writes one frame. The caller flushes when a reply batch is complete.
void write_frame(std::ostream& out, std::string_view payload);

}  // namespace retask

#endif  // RETASK_SERVE_PROTOCOL_HPP
