// Serve-mode session state machine and the framed request pump.
//
// Request grammar (one ASCII line per frame; fields separated by spaces):
//
//   admit <id> <cycles> <penalty>   admit a task; answers the verdict
//   remove <id>                     drop a resident task
//   reprice <id> <penalty>          replace a resident task's penalty
//   query                           current solution summary
//   stats                           session counters
//   ping                            liveness probe
//   bye                             reply, then end the session
//
// Replies are one line per request, in request order:
//
//   ok admit id=7 verdict=accept accepted=3/4 load=120 speed=0.61803
//      energy=1.2345 penalty=0.5 objective=1.7345 path=delta
//   err <reason>
//
// verdict reflects the admitted/repriced task itself; accepted/load/speed/
// energy/penalty/objective describe the optimal solution over the whole
// resident set (admitting one task may evict another — the solver re-solves
// exactly, it does not patch greedily). path says whether the request was
// served by the incremental table (delta) or forced a full refill (cold).
// A malformed or rejected request answers `err` and leaves the resident set
// untouched; the session keeps serving.
//
// run_serve_loop pumps frames between two streams: requests are drained in
// batches (everything already buffered is processed back-to-back before the
// next blocking read), and replies are handed to a writer thread so frame
// encoding and flushing overlap the next request's solve. Replies stay in
// request order. Reply buffers are recycled between the two sides, so the
// steady-state pump allocates nothing.
#ifndef RETASK_SERVE_SERVER_HPP
#define RETASK_SERVE_SERVER_HPP

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "retask/serve/delta_solver.hpp"

namespace retask {

/// Session-level options.
struct ServeOptions {
  /// Significant digits of floating-point reply fields. 17 round-trips
  /// doubles exactly; the CI golden-transcript smoke uses a lower precision
  /// so the transcript is stable across libm implementations.
  int reply_precision = 17;
  DeltaSolver::Config solver;
};

/// One serve session: a DeltaSolver plus the request-line protocol over it.
/// Not thread-safe; one session per client.
class ServeSession {
 public:
  ServeSession(EnergyCurve curve, double work_per_cycle, ServeOptions options = {});

  /// Handles one request payload and returns the reply payload. The view
  /// aliases an internal buffer reused by the next call.
  std::string_view handle(std::string_view request);

  const DeltaSolver& solver() const { return solver_; }
  std::uint64_t requests() const { return requests_; }
  /// True once a `bye` request was answered; the pump stops reading.
  bool closed() const { return closed_; }

 private:
  void append_double(double value);
  void append_solution_summary();

  DeltaSolver solver_;
  ServeOptions options_;
  std::string reply_;
  std::uint64_t requests_ = 0;
  bool closed_ = false;
};

/// Pump outcome plus a log2(ns) latency histogram over per-request handle
/// times (bucket b counts requests with latency in [2^b, 2^(b+1)) ns).
struct ServeLoopStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch_frames = 0;
  std::array<std::uint64_t, 40> latency_ns_log2{};

  void record_latency(std::uint64_t ns);
  /// Upper edge of the bucket containing the p-th percentile request
  /// (p in (0, 1]); 0 when no requests were recorded.
  std::uint64_t latency_percentile_ns(double p) const;
};

struct ServeLoopOptions {
  /// Frames processed back-to-back per wakeup before replies must drain.
  std::size_t max_batch = 64;
  /// Drain replies on a writer thread (the stdin-pipe daemon). Off writes
  /// replies inline — deterministic interleaving for tests and sockets.
  bool async_replies = true;
};

/// Reads framed requests from `in` until end of stream or a `bye` reply,
/// answering each through `session` onto `out`. Returns the pump stats.
ServeLoopStats run_serve_loop(std::istream& in, std::ostream& out, ServeSession& session,
                              const ServeLoopOptions& options = {});

}  // namespace retask

#endif  // RETASK_SERVE_SERVER_HPP
