// SSE2 kernel backend: 2-lane double implementations of the kernels SSE2
// can express. SSE2 has no 64-bit integer compare and no blendv, so the
// FPTAS int64 relaxation and the hull energy batch keep the scalar bodies
// (bit-identity is then trivial); the win is the f64 knapsack relaxation —
// the hottest kernel — plus the argmax/argmin scans. Compiled with -msse2
// (a no-op on x86-64, where SSE2 is baseline).
#include "retask/simd/kernels.hpp"

#if defined(__SSE2__) && (defined(__x86_64__) || defined(__i386__))

#include <emmintrin.h>

#include <cstddef>
#include <cstdint>
#include <limits>

namespace retask::simd {

namespace {

#include "retask/simd/kernels_scalar_impl.inl"

constexpr std::size_t kLanes = 2;

inline void or_take_bits(std::uint64_t* take_row, std::size_t base, unsigned bits) {
  const std::size_t word = base >> 6;
  const std::size_t off = base & 63;
  take_row[word] |= static_cast<std::uint64_t>(bits) << off;
  if (off > 64 - kLanes) take_row[word + 1] |= static_cast<std::uint64_t>(bits) >> (64 - off);
}

// blendv emulation: mask lanes must be all-ones/all-zeros (compare output).
inline __m128d select_pd(__m128d when_clear, __m128d when_set, __m128d mask) {
  return _mm_or_pd(_mm_and_pd(mask, when_set), _mm_andnot_pd(mask, when_clear));
}

// Out-of-place span relaxation (wavefront tiles): each cell is a pure
// function of prev, so the ascending 2-wide traversal is bit-identical to
// the scalar loop.
void sse2_relax_out_f64(const double* prev, double* cur, std::uint64_t* take_row,
                        std::size_t shift, std::size_t lo, std::size_t hi, double add) {
  const __m128d add_v = _mm_set1_pd(add);
  std::size_t w = lo;
  for (; w + kLanes <= hi + 1; w += kLanes) {
    const __m128d src = _mm_loadu_pd(prev + w - shift);
    const __m128d dst = _mm_loadu_pd(prev + w);
    const __m128d cand = _mm_add_pd(src, add_v);
    const __m128d improved = _mm_cmpgt_pd(cand, dst);
    _mm_storeu_pd(cur + w, select_pd(dst, cand, improved));
    const int bits = _mm_movemask_pd(improved);
    if (bits != 0) or_take_bits(take_row, w, static_cast<unsigned>(bits));
  }
  if (w <= hi) scalar_relax_out_f64(prev, cur, take_row, shift, w, hi, add);
}

void sse2_relax_desc_f64(double* row, std::uint64_t* take_row, std::size_t shift, std::size_t lo,
                         std::size_t hi, double add) {
  const __m128d add_v = _mm_set1_pd(add);
  std::size_t w = hi + 1;  // exclusive upper end of the unprocessed range
  while (w >= lo + kLanes) {
    const std::size_t base = w - kLanes;
    const __m128d src = _mm_loadu_pd(row + base - shift);
    const __m128d dst = _mm_loadu_pd(row + base);
    const __m128d cand = _mm_add_pd(src, add_v);
    const __m128d improved = _mm_cmpgt_pd(cand, dst);
    const int bits = _mm_movemask_pd(improved);
    if (bits != 0) {
      _mm_storeu_pd(row + base, select_pd(dst, cand, improved));
      or_take_bits(take_row, base, static_cast<unsigned>(bits));
    }
    w = base;
  }
  if (w > lo) scalar_relax_desc_f64(row, take_row, shift, lo, w - 1, add);
}

std::uint64_t sse2_select_mask_f64(const double* kept, std::size_t n, double total,
                                   double snapshot) {
  // Elementwise: each lane performs exactly the scalar subtract + compare.
  const __m128d total_v = _mm_set1_pd(total);
  const __m128d snap_v = _mm_set1_pd(snapshot);
  std::uint64_t mask = 0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m128d penalty = _mm_sub_pd(total_v, _mm_loadu_pd(kept + i));
    const int bits = _mm_movemask_pd(_mm_cmplt_pd(penalty, snap_v));
    mask |= static_cast<std::uint64_t>(static_cast<unsigned>(bits)) << i;
  }
  for (; i < n; ++i) {
    if (total - kept[i] < snapshot) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

std::uint32_t sse2_select_scan_f64(const double* kept, const double* energy_at, std::size_t n,
                                   std::uint64_t mask, double total, std::size_t w0,
                                   double* best, std::size_t* best_w) {
  if (mask == 0) return 0;
  // Branch-free 2-wide precompute of every row's penalty and objective —
  // exactly the scalar walk's operands (IEEE adds commute bit for bit), so
  // reading them back preserves every bit. Only rows < n are touched; mask
  // bits at or above n are never set.
  alignas(16) double pen[64];
  alignas(16) double obj[64];
  const __m128d total_v = _mm_set1_pd(total);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m128d p = _mm_sub_pd(total_v, _mm_loadu_pd(kept + i));
    _mm_store_pd(pen + i, p);
    _mm_store_pd(obj + i, _mm_add_pd(_mm_loadu_pd(energy_at + i), p));
  }
  for (; i < n; ++i) {
    pen[i] = total - kept[i];
    obj[i] = energy_at[i] + pen[i];
  }
  // The decision walk replays the scalar order exactly — the early-exit's
  // timing depends on the live best, so only the arithmetic vectorizes.
  for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
    const auto bit = static_cast<std::size_t>(__builtin_ctzll(bits));
    if (pen[bit] >= *best) continue;
    if (energy_at[bit] >= *best) return 1;
    if (obj[bit] < *best) {
      *best = obj[bit];
      *best_w = w0 + bit;
    }
  }
  return 0;
}

std::size_t sse2_argmax_f64(const double* values, std::size_t n, double init) {
  if (n < 2 * kLanes) return scalar_argmax_f64(values, n, init);
  __m128d best_v = _mm_set1_pd(-std::numeric_limits<double>::infinity());
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) best_v = _mm_max_pd(best_v, _mm_loadu_pd(values + i));
  alignas(16) double lanes[kLanes];
  _mm_store_pd(lanes, best_v);
  double best = init;
  bool found = false;
  for (std::size_t k = 0; k < kLanes; ++k) {
    if (lanes[k] > best) {
      best = lanes[k];
      found = true;
    }
  }
  for (; i < n; ++i) {
    if (values[i] > best) {
      best = values[i];
      found = true;
    }
  }
  if (!found) return kNpos;
  const __m128d best_b = _mm_set1_pd(best);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const int eq = _mm_movemask_pd(_mm_cmpeq_pd(_mm_loadu_pd(values + j), best_b));
    if (eq != 0) return j + static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(eq)));
  }
  for (; j < n; ++j) {
    if (values[j] == best) return j;
  }
  return kNpos;  // unreachable
}

std::size_t sse2_argmin_strided_f64(const double* values, std::size_t n, std::size_t stride,
                                    double init) {
  if (stride != 1 || n < 2 * kLanes) return scalar_argmin_strided_f64(values, n, stride, init);
  __m128d best_v = _mm_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) best_v = _mm_min_pd(best_v, _mm_loadu_pd(values + i));
  alignas(16) double lanes[kLanes];
  _mm_store_pd(lanes, best_v);
  double best = init;
  bool found = false;
  for (std::size_t k = 0; k < kLanes; ++k) {
    if (lanes[k] < best) {
      best = lanes[k];
      found = true;
    }
  }
  for (; i < n; ++i) {
    if (values[i] < best) {
      best = values[i];
      found = true;
    }
  }
  if (!found) return kNpos;
  const __m128d best_b = _mm_set1_pd(best);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const int eq = _mm_movemask_pd(_mm_cmpeq_pd(_mm_loadu_pd(values + j), best_b));
    if (eq != 0) return j + static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(eq)));
  }
  for (; j < n; ++j) {
    if (values[j] == best) return j;
  }
  return kNpos;  // unreachable
}

}  // namespace

const KernelTable* sse2_table() noexcept {
  static const KernelTable table{
      &sse2_relax_desc_f64,    &scalar_relax_desc_i64,      &sse2_argmax_f64,
      &sse2_argmin_strided_f64, &scalar_energy_hull_cycles,
      // SSE2 has no masked 64-bit gather for the lane-interleaved loads;
      // the lane relaxation keeps the scalar body.
      &scalar_relax_desc_f64_lanes, &sse2_relax_out_f64,     &sse2_select_mask_f64,
      &sse2_select_scan_f64,
  };
  return &table;
}

}  // namespace retask::simd

#else  // !__SSE2__

namespace retask::simd {
const KernelTable* sse2_table() noexcept { return nullptr; }
}  // namespace retask::simd

#endif
