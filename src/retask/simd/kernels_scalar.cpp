// Scalar kernel backend — the reference implementation every vector backend
// must match bit for bit. Also home of `energy_hull_one`, the single source
// of truth for discrete-model energy evaluation: `EnergyCurve::energy`
// routes its hull branch through this function, so the batched kernels and
// the one-at-a-time path can never disagree.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/simd/kernels.hpp"

namespace retask::simd {

namespace {

/// Transliteration of `EnergyCurve::hull_power` over the flattened hull
/// arrays: time-shared power at average execution speed `s`.
double hull_power_ref(const HullEnergyParams& params, double s) {
  if (s <= params.hull_speed[0]) return params.hull_power[0];
  for (std::size_t i = 0; i + 1 < params.hull_size; ++i) {
    if (leq_tol(s, params.hull_speed[i + 1])) {
      const double theta =
          (params.hull_speed[i + 1] - s) / (params.hull_speed[i + 1] - params.hull_speed[i]);
      return theta * params.hull_power[i] + (1.0 - theta) * params.hull_power[i + 1];
    }
  }
  return params.hull_power[params.hull_size - 1];
}

#include "retask/simd/kernels_scalar_impl.inl"

}  // namespace

double energy_hull_one(const HullEnergyParams& params, double work) {
  // Transliteration of the discrete branch of `EnergyCurve::best_choice`,
  // cost only: same candidate order, same comparisons, same operation order.
  RETASK_ASSERT(work > 0.0);
  RETASK_ASSERT(params.hull_size > 0);
  const double smax = params.smax;
  const double s_req = std::min(work / params.window, smax);
  const bool enable = params.dormant_enable;
  const double pind = params.static_power;

  double best = std::numeric_limits<double>::infinity();
  const auto consider = [&](double exec_speed, double busy_power, bool sleeps) {
    const double busy = work / exec_speed;
    const double idle = std::max(0.0, params.window - busy);
    if (sleeps && (!enable || idle < params.switch_time)) return;
    const double cost = busy * busy_power + (sleeps ? params.switch_energy : pind * idle);
    if (cost < best) best = cost;
  };
  const auto consider_both = [&](double s) {
    const double p = hull_power_ref(params, s);
    consider(s, p, false);
    if (enable) consider(s, p, true);
  };

  // Candidate average speeds: the lower feasibility boundary, smax, every
  // hull vertex strictly between them, and the sleep boundary. Both branch
  // costs are fractional-linear per hull segment, so the optima lie here.
  const double front = params.hull_speed[0];
  const double lower = std::min(std::max(std::max(s_req, front), front), smax);
  consider_both(lower);
  consider_both(smax);
  for (std::size_t i = 0; i < params.hull_size; ++i) {
    const double vertex = params.hull_speed[i];
    if (vertex > lower && vertex < smax) consider_both(vertex);
  }
  if (enable && params.switch_time > 0.0 && params.window - params.switch_time > 0.0) {
    const double s_boundary = work / (params.window - params.switch_time);
    if (s_boundary > lower && s_boundary < smax) consider_both(s_boundary);
  }
  RETASK_ASSERT(best < std::numeric_limits<double>::infinity());
  return best;
}

const KernelTable* scalar_table() noexcept {
  static const KernelTable table{
      &scalar_relax_desc_f64,    &scalar_relax_desc_i64,      &scalar_argmax_f64,
      &scalar_argmin_strided_f64, &scalar_energy_hull_cycles,
      &scalar_relax_desc_f64_lanes, &scalar_relax_out_f64,     &scalar_select_mask_f64,
      &scalar_select_scan_f64,
  };
  return &table;
}

}  // namespace retask::simd
