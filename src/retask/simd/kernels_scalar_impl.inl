// Scalar reference bodies for every kernel — the normative semantics that
// each vector backend must match bit for bit.
//
// This file is #included inside an anonymous namespace of every backend
// translation unit (scalar, SSE2, AVX2, NEON). Internal linkage is on
// purpose: the backend TUs are compiled with different -m target flags, and
// out-of-line shared helpers could otherwise be merged across TUs by the
// linker and picked from a TU whose ISA the host CPU cannot execute. Each TU
// gets its own private copy instead; the copies are trivially identical
// arithmetic, so bit-identity across backends is unaffected.
//
// The energy body transliterates the discrete (hull) branch of
// `EnergyCurve::best_choice` / `hull_power` / `leq_tol` exactly — same
// candidate order, same comparisons, same operation order — so that the
// solvers can batch-evaluate energies without perturbing a single bit of any
// solution. Keep the two in sync (test_simd_kernels cross-checks them).

inline void scalar_relax_desc_f64(double* row, std::uint64_t* take_row, std::size_t shift,
                                  std::size_t lo, std::size_t hi, double add) {
  for (std::size_t w = hi + 1; w-- > lo;) {
    const double cand = row[w - shift] + add;  // -inf + add stays -inf
    if (cand > row[w]) {
      row[w] = cand;
      take_row[w >> 6] |= std::uint64_t{1} << (w & 63);
    }
  }
}

inline void scalar_relax_desc_f64_lanes(double* row, std::uint64_t* take_row, std::size_t lanes,
                                        const std::size_t* shift, const std::size_t* lo,
                                        const std::size_t* hi, const double* add,
                                        const unsigned char* active) {
  // Lane-major order; lanes touch disjoint strided cells, so this matches
  // the w-major vector traversal bit for bit.
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    if (active[lane] == 0) continue;
    for (std::size_t w = hi[lane] + 1; w-- > lo[lane];) {
      const std::size_t cell = w * lanes + lane;
      const double cand = row[(w - shift[lane]) * lanes + lane] + add[lane];
      if (cand > row[cell]) {
        row[cell] = cand;
        take_row[cell >> 6] |= std::uint64_t{1} << (cell & 63);
      }
    }
  }
}

inline void scalar_relax_out_f64(const double* prev, double* cur, std::uint64_t* take_row,
                                 std::size_t shift, std::size_t lo, std::size_t hi, double add) {
  for (std::size_t w = lo; w <= hi; ++w) {
    const double cand = prev[w - shift] + add;  // -inf + add stays -inf
    if (cand > prev[w]) {
      cur[w] = cand;
      take_row[w >> 6] |= std::uint64_t{1} << (w & 63);
    } else {
      cur[w] = prev[w];
    }
  }
}

inline void scalar_relax_desc_i64(std::int64_t* rej, double* payload, std::uint64_t* take_row,
                                  std::size_t shift, std::size_t lo, std::size_t hi,
                                  std::int64_t add_cycles, double add_payload) {
  for (std::size_t w = hi + 1; w-- > lo;) {
    const std::int64_t src = rej[w - shift];
    if (src < 0) continue;  // unreachable sentinel (-1)
    const std::int64_t cand = src + add_cycles;
    if (cand > rej[w]) {
      rej[w] = cand;
      payload[w] = payload[w - shift] + add_payload;
      take_row[w >> 6] |= std::uint64_t{1} << (w & 63);
    }
  }
}

inline std::uint64_t scalar_select_mask_f64(const double* kept, std::size_t n, double total,
                                            double snapshot) {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // kept == -inf gives total - kept == +inf, never < snapshot: the
    // reachability skip is folded into the bound compare.
    if (total - kept[i] < snapshot) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

inline std::uint32_t scalar_select_scan_f64(const double* kept, const double* energy_at,
                                            std::size_t n, std::uint64_t mask, double total,
                                            std::size_t w0, double* best, std::size_t* best_w) {
  (void)n;  // bounds the vector bodies' pre-reads; every mask bit is < n
  for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
    const auto bit = static_cast<std::size_t>(__builtin_ctzll(bits));
    const double penalty = total - kept[bit];
    if (penalty >= *best) continue;
    const double energy = energy_at[bit];
    if (energy >= *best) return 1;  // E non-decreasing: the sweep is over
    const double objective = energy + penalty;
    if (objective < *best) {
      *best = objective;
      *best_w = w0 + bit;
    }
  }
  return 0;
}

inline std::size_t scalar_argmax_f64(const double* values, std::size_t n, double init) {
  double best = init;
  std::size_t best_index = ::retask::simd::kNpos;
  for (std::size_t i = 0; i < n; ++i) {
    if (values[i] > best) {
      best = values[i];
      best_index = i;
    }
  }
  return best_index;
}

inline std::size_t scalar_argmin_strided_f64(const double* values, std::size_t n,
                                             std::size_t stride, double init) {
  double best = init;
  std::size_t best_index = ::retask::simd::kNpos;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = values[i * stride];
    if (x < best) {
      best = x;
      best_index = i;
    }
  }
  return best_index;
}

inline void scalar_energy_hull_cycles(const ::retask::simd::HullEnergyParams& params,
                                      const std::int64_t* cycles, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double work = params.work_per_cycle * static_cast<double>(cycles[i]);
    out[i] = work <= 0.0 ? params.e_zero : ::retask::simd::energy_hull_one(params, work);
  }
}
