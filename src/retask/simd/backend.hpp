// Runtime SIMD backend selection for the vector-kernel layer.
//
// The library ships one scalar reference implementation of every kernel plus
// optional SSE2 / AVX2 / NEON translation units compiled with the matching
// target flags. At first use the dispatcher picks the widest backend the host
// CPU supports; `RETASK_SIMD=off|scalar|sse2|avx2|neon|auto` (environment) or
// the `RETASK_SIMD` CMake cache entry overrides that choice process-wide, and
// `ScopedBackend` overrides it per thread (used by the differential fuzzer to
// pit backends against each other on worker threads without racing).
//
// Every backend is bit-identical to the scalar path by construction: all
// kernels are elementwise (no reassociated floating-point reductions), so
// forcing a backend changes latency, never solutions. `tests/
// test_simd_kernels.cpp` and `retask_fuzz --simd-diff` enforce this.
#ifndef RETASK_SIMD_BACKEND_HPP
#define RETASK_SIMD_BACKEND_HPP

#include <string>
#include <string_view>
#include <vector>

namespace retask::simd {

/// Kernel implementation families, narrowest first. `kScalar` is always
/// available; the vector backends exist only when the translation unit was
/// compiled for that ISA *and* the host CPU reports support at runtime.
enum class Backend {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Human-readable backend name ("scalar", "sse2", "avx2", "neon").
std::string_view to_string(Backend backend) noexcept;

/// Parses a backend name as accepted by `RETASK_SIMD`. "off" and "scalar"
/// both mean `kScalar`; "auto" (or "") means detect. Throws `retask::Error`
/// on unknown names.
/// Returns true and sets `backend` for explicit names; returns false for
/// "auto"/"" (caller should detect).
bool parse_backend(std::string_view name, Backend& backend);

/// Widest backend the host CPU supports among those compiled in.
Backend detect_backend() noexcept;

/// True when `backend`'s kernel table was compiled in and the host CPU can
/// execute it.
bool backend_available(Backend backend) noexcept;

/// Every vector (non-scalar) backend the host can execute, in enum order;
/// empty on scalar-only hosts. The single source of the backend list for
/// the differential checks (`--simd-diff`, `--lockstep-diff`) and the
/// equivalence tests, so a new backend is picked up everywhere at once.
std::vector<Backend> available_vector_backends();

/// The backend the calling thread will dispatch to: the thread-local
/// override if one is active, else the process-wide selection (resolved on
/// first use from `RETASK_SIMD`, the compiled-in default, then detection).
Backend active_backend();

/// Forces the process-wide backend. Throws `retask::Error` when `backend`
/// is not available on this host. Threads holding a `ScopedBackend`
/// override are unaffected until it unwinds.
void set_backend(Backend backend);

/// RAII thread-local backend override, nestable. Used by tests and the
/// fuzzer's `--simd-diff` mode to run forced-scalar and dispatched solves
/// side by side on the same worker thread.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  int saved_;
};

}  // namespace retask::simd

#endif  // RETASK_SIMD_BACKEND_HPP
