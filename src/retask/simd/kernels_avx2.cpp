// AVX2 kernel backend: 4-lane double / 4-lane int64 implementations of the
// hot kernels. Compiled with -mavx2 (see src/CMakeLists.txt); the dispatcher
// only hands this table out when the host CPU reports AVX2.
//
// Bit-identity notes (why each lane computes exactly the scalar result):
//  * every kernel is elementwise — no reassociated FP reductions, and the
//    build disables FMA contraction (-ffp-contract=off), so per-lane
//    arithmetic matches the scalar reference operation for operation;
//  * min/max tie cases (which operand's bits survive an equal compare) only
//    differ between std::min/max and vminpd/vmaxpd on +-0.0 ties, and every
//    such site below is either sign-insensitive downstream (idle cost adds
//    +-0.0 to a nonnegative product) or operates on strictly positive
//    speeds;
//  * the argmax/argmin reductions return the first index attaining the
//    optimum, which equals the scalar strict-improvement scan's answer, so
//    the reduced *value* never leaves the kernel — only the index does.
#include "retask/simd/kernels.hpp"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <limits>

#include "retask/common/math.hpp"

namespace retask::simd {

namespace {

#include "retask/simd/kernels_scalar_impl.inl"

constexpr std::size_t kLanes = 4;

// ORs a 4-bit lane mask into the take bitset at bit position `base`,
// spilling into the next word when the chunk straddles a word boundary.
inline void or_take_bits(std::uint64_t* take_row, std::size_t base, unsigned bits) {
  const std::size_t word = base >> 6;
  const std::size_t off = base & 63;
  take_row[word] |= static_cast<std::uint64_t>(bits) << off;
  if (off > 64 - kLanes) take_row[word + 1] |= static_cast<std::uint64_t>(bits) >> (64 - off);
}

inline __m256d abs_pd(__m256d x) { return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x); }

// Exact int64 -> double conversion for 0 <= x < 2^52 (the kernel contract):
// OR the payload into the mantissa of 2^52 and subtract the bias.
inline __m256d i64_to_f64(__m256i x) {
  const __m256i magic = _mm256_set1_epi64x(0x4330000000000000LL);
  return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(x, magic)),
                       _mm256_castsi256_pd(magic));
}

void avx2_relax_desc_f64(double* row, std::uint64_t* take_row, std::size_t shift, std::size_t lo,
                         std::size_t hi, double add) {
  // Descending chunks preserve the scalar loop's old-value semantics: every
  // read index w - shift is strictly below all indices already written
  // (shift >= 0), and within a chunk both vectors load before the store.
  const __m256d add_v = _mm256_set1_pd(add);
  std::size_t w = hi + 1;  // exclusive upper end of the unprocessed range
  while (w >= lo + kLanes) {
    const std::size_t base = w - kLanes;
    const __m256d src = _mm256_loadu_pd(row + base - shift);
    const __m256d dst = _mm256_loadu_pd(row + base);
    const __m256d cand = _mm256_add_pd(src, add_v);
    const __m256d improved = _mm256_cmp_pd(cand, dst, _CMP_GT_OQ);
    const int bits = _mm256_movemask_pd(improved);
    if (bits != 0) {
      _mm256_storeu_pd(row + base, _mm256_blendv_pd(dst, cand, improved));
      or_take_bits(take_row, base, static_cast<unsigned>(bits));
    }
    w = base;
  }
  if (w > lo) scalar_relax_desc_f64(row, take_row, shift, lo, w - 1, add);
}

// One quad of 4 adjacent lanes [first, first + 4) of a `lanes`-wide
// interleaved row. Destinations are 4 contiguous doubles per w; sources use
// a masked gather with the per-lane constant offset lane - lanes * shift
// (negative for masked-off lanes is fine — the mask suppresses the load).
// Divergent lanes (w outside [lo, hi], or inactive) are masked off per
// iteration, reproducing each lane's scalar range exactly.
void avx2_relax_lane_quad(double* row, std::uint64_t* take_row, std::size_t lanes,
                          std::size_t first, const std::size_t* shift, const std::size_t* lo,
                          const std::size_t* hi, const double* add,
                          const unsigned char* active) {
  bool any = false;
  std::size_t wmin = 0;
  std::size_t wmax = 0;
  alignas(32) long long lo_a[4];
  alignas(32) long long hi_a[4];
  alignas(32) long long off_a[4];
  alignas(32) double add_a[4];
  for (std::size_t k = 0; k < 4; ++k) {
    const std::size_t lane = first + k;
    if (active[lane] == 0) {
      lo_a[k] = 1;  // empty range: the lane never matches any w
      hi_a[k] = 0;
      off_a[k] = 0;
      add_a[k] = 0.0;
      continue;
    }
    lo_a[k] = static_cast<long long>(lo[lane]);
    hi_a[k] = static_cast<long long>(hi[lane]);
    off_a[k] = static_cast<long long>(lane) - static_cast<long long>(lanes * shift[lane]);
    add_a[k] = add[lane];
    wmin = any ? std::min(wmin, lo[lane]) : lo[lane];
    wmax = any ? std::max(wmax, hi[lane]) : hi[lane];
    any = true;
  }
  if (!any) return;
  const __m256i lo_v = _mm256_load_si256(reinterpret_cast<const __m256i*>(lo_a));
  const __m256i hi_v = _mm256_load_si256(reinterpret_cast<const __m256i*>(hi_a));
  const __m256i off_v = _mm256_load_si256(reinterpret_cast<const __m256i*>(off_a));
  const __m256d add_v = _mm256_load_pd(add_a);
  for (std::size_t w = wmax + 1; w-- > wmin;) {
    const __m256i w_v = _mm256_set1_epi64x(static_cast<long long>(w));
    // in-range mask: !(lo > w) && !(w > hi); inactive lanes carry lo > hi.
    const __m256i outside =
        _mm256_or_si256(_mm256_cmpgt_epi64(lo_v, w_v), _mm256_cmpgt_epi64(w_v, hi_v));
    const __m256d mask =
        _mm256_castsi256_pd(_mm256_xor_si256(outside, _mm256_set1_epi64x(-1)));
    if (_mm256_movemask_pd(mask) == 0) continue;
    double* cell = row + w * lanes + first;
    const __m256d dst = _mm256_loadu_pd(cell);
    const __m256i idx =
        _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(w * lanes)), off_v);
    const __m256d src = _mm256_mask_i64gather_pd(dst, row, idx, mask, 8);
    const __m256d cand = _mm256_add_pd(src, add_v);
    const __m256d improved = _mm256_and_pd(mask, _mm256_cmp_pd(cand, dst, _CMP_GT_OQ));
    const int bits = _mm256_movemask_pd(improved);
    if (bits != 0) {
      _mm256_storeu_pd(cell, _mm256_blendv_pd(dst, cand, improved));
      or_take_bits(take_row, w * lanes + first, static_cast<unsigned>(bits));
    }
  }
}

void avx2_relax_desc_f64_lanes(double* row, std::uint64_t* take_row, std::size_t lanes,
                               const std::size_t* shift, const std::size_t* lo,
                               const std::size_t* hi, const double* add,
                               const unsigned char* active) {
  if (lanes % kLanes != 0) {
    scalar_relax_desc_f64_lanes(row, take_row, lanes, shift, lo, hi, add, active);
    return;
  }
  // Lanes are independent (disjoint strided cells), so quad order is free.
  for (std::size_t first = 0; first < lanes; first += kLanes) {
    avx2_relax_lane_quad(row, take_row, lanes, first, shift, lo, hi, add, active);
  }
}

// Out-of-place span relaxation (wavefront tiles): every cell is a pure
// function of prev, so the ascending traversal is bit-identical to the
// scalar loop.
void avx2_relax_out_f64(const double* prev, double* cur, std::uint64_t* take_row,
                        std::size_t shift, std::size_t lo, std::size_t hi, double add) {
  const __m256d add_v = _mm256_set1_pd(add);
  std::size_t w = lo;
  for (; w + kLanes <= hi + 1; w += kLanes) {
    const __m256d src = _mm256_loadu_pd(prev + w - shift);
    const __m256d dst = _mm256_loadu_pd(prev + w);
    const __m256d cand = _mm256_add_pd(src, add_v);
    const __m256d improved = _mm256_cmp_pd(cand, dst, _CMP_GT_OQ);
    _mm256_storeu_pd(cur + w, _mm256_blendv_pd(dst, cand, improved));
    const int bits = _mm256_movemask_pd(improved);
    if (bits != 0) or_take_bits(take_row, w, static_cast<unsigned>(bits));
  }
  if (w <= hi) scalar_relax_out_f64(prev, cur, take_row, shift, w, hi, add);
}

void avx2_relax_desc_i64(std::int64_t* rej, double* payload, std::uint64_t* take_row,
                         std::size_t shift, std::size_t lo, std::size_t hi,
                         std::int64_t add_cycles, double add_payload) {
  const __m256i add_c = _mm256_set1_epi64x(add_cycles);
  const __m256i none = _mm256_set1_epi64x(-1);
  const __m256d add_p = _mm256_set1_pd(add_payload);
  std::size_t w = hi + 1;
  while (w >= lo + kLanes) {
    const std::size_t base = w - kLanes;
    const __m256i src = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rej + base - shift));
    const __m256i dst = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rej + base));
    const __m256i reachable = _mm256_cmpgt_epi64(src, none);  // src > -1
    const __m256i cand = _mm256_add_epi64(src, add_c);
    const __m256i improved = _mm256_and_si256(reachable, _mm256_cmpgt_epi64(cand, dst));
    const int bits = _mm256_movemask_pd(_mm256_castsi256_pd(improved));
    if (bits != 0) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(rej + base),
                          _mm256_blendv_epi8(dst, cand, improved));
      const __m256d pay_src = _mm256_loadu_pd(payload + base - shift);
      const __m256d pay_dst = _mm256_loadu_pd(payload + base);
      const __m256d pay_cand = _mm256_add_pd(pay_src, add_p);
      _mm256_storeu_pd(payload + base,
                       _mm256_blendv_pd(pay_dst, pay_cand, _mm256_castsi256_pd(improved)));
      or_take_bits(take_row, base, static_cast<unsigned>(bits));
    }
    w = base;
  }
  if (w > lo) {
    scalar_relax_desc_i64(rej, payload, take_row, shift, lo, w - 1, add_cycles, add_payload);
  }
}

std::uint64_t avx2_select_mask_f64(const double* kept, std::size_t n, double total,
                                   double snapshot) {
  // Elementwise: each lane performs exactly the scalar subtract + compare.
  const __m256d total_v = _mm256_set1_pd(total);
  const __m256d snap_v = _mm256_set1_pd(snapshot);
  std::uint64_t mask = 0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d penalty = _mm256_sub_pd(total_v, _mm256_loadu_pd(kept + i));
    const int bits = _mm256_movemask_pd(_mm256_cmp_pd(penalty, snap_v, _CMP_LT_OQ));
    mask |= static_cast<std::uint64_t>(static_cast<unsigned>(bits)) << i;
  }
  for (; i < n; ++i) {
    if (total - kept[i] < snapshot) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

std::uint32_t avx2_select_scan_f64(const double* kept, const double* energy_at, std::size_t n,
                                   std::uint64_t mask, double total, std::size_t w0,
                                   double* best, std::size_t* best_w) {
  if (mask == 0) return 0;
  // Branch-free 4-wide precompute of every row's penalty and objective —
  // exactly the scalar walk's operands (IEEE adds commute bit for bit), so
  // reading them back preserves every bit. Only rows < n are touched; mask
  // bits at or above n are never set.
  alignas(32) double pen[64];
  alignas(32) double obj[64];
  const __m256d total_v = _mm256_set1_pd(total);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d p = _mm256_sub_pd(total_v, _mm256_loadu_pd(kept + i));
    _mm256_store_pd(pen + i, p);
    _mm256_store_pd(obj + i, _mm256_add_pd(_mm256_loadu_pd(energy_at + i), p));
  }
  for (; i < n; ++i) {
    pen[i] = total - kept[i];
    obj[i] = energy_at[i] + pen[i];
  }
  // The decision walk replays the scalar order exactly — the early-exit's
  // timing depends on the live best, so only the arithmetic vectorizes.
  for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
    const auto bit = static_cast<std::size_t>(__builtin_ctzll(bits));
    if (pen[bit] >= *best) continue;
    if (energy_at[bit] >= *best) return 1;
    if (obj[bit] < *best) {
      *best = obj[bit];
      *best_w = w0 + bit;
    }
  }
  return 0;
}

std::size_t avx2_argmax_f64(const double* values, std::size_t n, double init) {
  if (n < 2 * kLanes) return scalar_argmax_f64(values, n, init);
  __m256d best_v = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    best_v = _mm256_max_pd(best_v, _mm256_loadu_pd(values + i));
  }
  alignas(32) double lanes[kLanes];
  _mm256_store_pd(lanes, best_v);
  double best = init;
  bool found = false;
  for (std::size_t k = 0; k < kLanes; ++k) {
    if (lanes[k] > best) {
      best = lanes[k];
      found = true;
    }
  }
  for (; i < n; ++i) {
    if (values[i] > best) {
      best = values[i];
      found = true;
    }
  }
  if (!found) return kNpos;
  // First index attaining the maximum == the scalar strict-improvement scan.
  const __m256d best_b = _mm256_set1_pd(best);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const int eq =
        _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(values + j), best_b, _CMP_EQ_OQ));
    if (eq != 0) return j + static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(eq)));
  }
  for (; j < n; ++j) {
    if (values[j] == best) return j;
  }
  return kNpos;  // unreachable: the maximum exists
}

std::size_t avx2_argmin_strided_f64(const double* values, std::size_t n, std::size_t stride,
                                    double init) {
  if (stride != 1 || n < 2 * kLanes) return scalar_argmin_strided_f64(values, n, stride, init);
  __m256d best_v = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    best_v = _mm256_min_pd(best_v, _mm256_loadu_pd(values + i));
  }
  alignas(32) double lanes[kLanes];
  _mm256_store_pd(lanes, best_v);
  double best = init;
  bool found = false;
  for (std::size_t k = 0; k < kLanes; ++k) {
    if (lanes[k] < best) {
      best = lanes[k];
      found = true;
    }
  }
  for (; i < n; ++i) {
    if (values[i] < best) {
      best = values[i];
      found = true;
    }
  }
  if (!found) return kNpos;
  const __m256d best_b = _mm256_set1_pd(best);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const int eq =
        _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(values + j), best_b, _CMP_EQ_OQ));
    if (eq != 0) return j + static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(eq)));
  }
  for (; j < n; ++j) {
    if (values[j] == best) return j;
  }
  return kNpos;  // unreachable
}

void avx2_energy_hull_cycles(const HullEnergyParams& params, const std::int64_t* cycles,
                             double* out, std::size_t n) {
  const __m256d window = _mm256_set1_pd(params.window);
  const __m256d smax = _mm256_set1_pd(params.smax);
  const __m256d front_speed = _mm256_set1_pd(params.hull_speed[0]);
  const __m256d pind = _mm256_set1_pd(params.static_power);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d rel_tol = _mm256_set1_pd(kRelTol);
  const __m256d infinity = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const bool enable = params.dormant_enable;

  // leq_tol/almost_equal transliterated for finite inputs (all speeds and
  // candidate averages here are finite, so the isfinite prefilter is moot).
  const auto leq_tol_v = [&](__m256d a, __m256d b) {
    const __m256d le = _mm256_cmp_pd(a, b, _CMP_LE_OQ);
    const __m256d scale = _mm256_max_pd(_mm256_max_pd(abs_pd(a), abs_pd(b)), one);
    const __m256d near_eq = _mm256_cmp_pd(abs_pd(_mm256_sub_pd(a, b)),
                                          _mm256_mul_pd(rel_tol, scale), _CMP_LE_OQ);
    return _mm256_or_pd(le, near_eq);
  };

  // EnergyCurve::hull_power per lane; the `done` mask reproduces the scalar
  // first-matching-segment early return.
  const auto hull_power_v = [&](__m256d s) {
    __m256d done = _mm256_cmp_pd(s, front_speed, _CMP_LE_OQ);
    __m256d power = _mm256_and_pd(done, _mm256_set1_pd(params.hull_power[0]));
    for (std::size_t seg = 0; seg + 1 < params.hull_size; ++seg) {
      const double a_speed = params.hull_speed[seg];
      const double b_speed = params.hull_speed[seg + 1];
      const __m256d b_speed_v = _mm256_set1_pd(b_speed);
      const __m256d hit = _mm256_andnot_pd(done, leq_tol_v(s, b_speed_v));
      const __m256d theta =
          _mm256_div_pd(_mm256_sub_pd(b_speed_v, s), _mm256_set1_pd(b_speed - a_speed));
      const __m256d interp =
          _mm256_add_pd(_mm256_mul_pd(theta, _mm256_set1_pd(params.hull_power[seg])),
                        _mm256_mul_pd(_mm256_sub_pd(one, theta),
                                      _mm256_set1_pd(params.hull_power[seg + 1])));
      power = _mm256_blendv_pd(power, interp, hit);
      done = _mm256_or_pd(done, hit);
    }
    return _mm256_blendv_pd(_mm256_set1_pd(params.hull_power[params.hull_size - 1]), power,
                            done);
  };

  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256i cyc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cycles + i));
    const __m256d work = _mm256_mul_pd(_mm256_set1_pd(params.work_per_cycle), i64_to_f64(cyc));
    const __m256d s_req = _mm256_min_pd(_mm256_div_pd(work, window), smax);
    const __m256d lower =
        _mm256_min_pd(_mm256_max_pd(_mm256_max_pd(s_req, front_speed), front_speed), smax);

    __m256d best = infinity;
    const auto consider = [&](__m256d s, __m256d p, bool sleeps, __m256d valid) {
      const __m256d busy = _mm256_div_pd(work, s);
      const __m256d idle = _mm256_max_pd(zero, _mm256_sub_pd(window, busy));
      __m256d ok = valid;
      __m256d cost;
      if (sleeps) {
        // scalar: return when idle < switch_time, i.e. keep idle >= tsw
        ok = _mm256_and_pd(
            ok, _mm256_cmp_pd(idle, _mm256_set1_pd(params.switch_time), _CMP_GE_OQ));
        cost = _mm256_add_pd(_mm256_mul_pd(busy, p), _mm256_set1_pd(params.switch_energy));
      } else {
        cost = _mm256_add_pd(_mm256_mul_pd(busy, p), _mm256_mul_pd(pind, idle));
      }
      const __m256d better = _mm256_and_pd(ok, _mm256_cmp_pd(cost, best, _CMP_LT_OQ));
      best = _mm256_blendv_pd(best, cost, better);
    };
    const auto consider_both = [&](__m256d s, __m256d valid) {
      const __m256d p = hull_power_v(s);
      consider(s, p, false, valid);
      if (enable) consider(s, p, true, valid);
    };

    // Same candidate order as the scalar reference: lower, smax, hull
    // vertices, sleep boundary; strict < keeps the earliest winner on ties.
    const __m256d all = _mm256_cmp_pd(zero, zero, _CMP_EQ_OQ);
    consider_both(lower, all);
    consider_both(smax, all);
    for (std::size_t v = 0; v < params.hull_size; ++v) {
      const double vertex = params.hull_speed[v];
      if (!(vertex < params.smax)) continue;  // lane-uniform half of the filter
      const __m256d vertex_v = _mm256_set1_pd(vertex);
      const __m256d valid = _mm256_cmp_pd(vertex_v, lower, _CMP_GT_OQ);
      if (_mm256_movemask_pd(valid) == 0) continue;
      consider_both(vertex_v, valid);
    }
    if (enable && params.switch_time > 0.0 && params.window - params.switch_time > 0.0) {
      const __m256d boundary =
          _mm256_div_pd(work, _mm256_set1_pd(params.window - params.switch_time));
      const __m256d valid = _mm256_and_pd(_mm256_cmp_pd(boundary, lower, _CMP_GT_OQ),
                                          _mm256_cmp_pd(boundary, smax, _CMP_LT_OQ));
      if (_mm256_movemask_pd(valid) != 0) consider_both(boundary, valid);
    }

    const __m256d positive = _mm256_cmp_pd(work, zero, _CMP_GT_OQ);
    _mm256_storeu_pd(out + i, _mm256_blendv_pd(_mm256_set1_pd(params.e_zero), best, positive));
  }
  if (i < n) scalar_energy_hull_cycles(params, cycles + i, out + i, n - i);
}

}  // namespace

const KernelTable* avx2_table() noexcept {
  static const KernelTable table{
      &avx2_relax_desc_f64,    &avx2_relax_desc_i64,      &avx2_argmax_f64,
      &avx2_argmin_strided_f64, &avx2_energy_hull_cycles,
      &avx2_relax_desc_f64_lanes, &avx2_relax_out_f64,     &avx2_select_mask_f64,
      &avx2_select_scan_f64,
  };
  return &table;
}

}  // namespace retask::simd

#else  // !__AVX2__

namespace retask::simd {
const KernelTable* avx2_table() noexcept { return nullptr; }
}  // namespace retask::simd

#endif
