// Runtime backend selection: cpuid detection, RETASK_SIMD overrides, and
// the thread-local forcing used by the equivalence tests and the fuzzer.
#include "retask/simd/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "retask/common/error.hpp"
#include "retask/simd/kernels.hpp"

namespace retask::simd {

namespace {

thread_local int t_backend_override = -1;  // -1: no per-thread override
std::atomic<int> g_backend{-1};            // -1: not yet resolved

const KernelTable* table_for(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar: return scalar_table();
    case Backend::kSse2: return sse2_table();
    case Backend::kAvx2: return avx2_table();
    case Backend::kNeon: return neon_table();
  }
  return nullptr;
}

bool cpu_supports(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(__x86_64__)
      return true;  // SSE2 is baseline on x86-64
#elif defined(__i386__) && defined(__GNUC__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case Backend::kAvx2:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is baseline on aarch64
#else
      return false;
#endif
  }
  return false;
}

/// Process-wide default: RETASK_SIMD env, then the compiled-in default
/// (CMake -DRETASK_SIMD=...), then the widest backend the CPU supports.
int resolve_default() {
  const char* env = std::getenv("RETASK_SIMD");
  std::string name = env != nullptr ? std::string(env) : std::string();
#if defined(RETASK_SIMD_DEFAULT)
  if (name.empty()) name = RETASK_SIMD_DEFAULT;
#endif
  Backend chosen = Backend::kScalar;
  if (!name.empty() && parse_backend(name, chosen)) {
    require(backend_available(chosen), "RETASK_SIMD: backend '" + name +
                                           "' is not available on this host (compiled out or "
                                           "unsupported CPU)");
    return static_cast<int>(chosen);
  }
  return static_cast<int>(detect_backend());
}

}  // namespace

std::string_view to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kSse2: return "sse2";
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
  }
  return "unknown";
}

bool parse_backend(std::string_view name, Backend& backend) {
  if (name == "auto" || name.empty()) return false;
  if (name == "off" || name == "scalar") {
    backend = Backend::kScalar;
  } else if (name == "sse2") {
    backend = Backend::kSse2;
  } else if (name == "avx2") {
    backend = Backend::kAvx2;
  } else if (name == "neon") {
    backend = Backend::kNeon;
  } else {
    throw Error("RETASK_SIMD: unknown backend '" + std::string(name) +
                "' (expected off|scalar|sse2|avx2|neon|auto)");
  }
  return true;
}

Backend detect_backend() noexcept {
  for (const Backend candidate : {Backend::kAvx2, Backend::kNeon, Backend::kSse2}) {
    if (table_for(candidate) != nullptr && cpu_supports(candidate)) return candidate;
  }
  return Backend::kScalar;
}

bool backend_available(Backend backend) noexcept {
  return table_for(backend) != nullptr && cpu_supports(backend);
}

std::vector<Backend> available_vector_backends() {
  std::vector<Backend> backends;
  for (const Backend candidate : {Backend::kSse2, Backend::kAvx2, Backend::kNeon}) {
    if (backend_available(candidate)) backends.push_back(candidate);
  }
  return backends;
}

Backend active_backend() {
  if (t_backend_override >= 0) return static_cast<Backend>(t_backend_override);
  int backend = g_backend.load(std::memory_order_acquire);
  if (backend < 0) {
    // Resolution is deterministic, so a first-use race just recomputes the
    // same value on both threads.
    backend = resolve_default();
    g_backend.store(backend, std::memory_order_release);
  }
  return static_cast<Backend>(backend);
}

void set_backend(Backend backend) {
  require(backend_available(backend), "set_backend: backend '" +
                                          std::string(to_string(backend)) +
                                          "' is not available on this host");
  g_backend.store(static_cast<int>(backend), std::memory_order_release);
}

ScopedBackend::ScopedBackend(Backend backend) : saved_(t_backend_override) {
  require(backend_available(backend), "ScopedBackend: backend '" +
                                          std::string(to_string(backend)) +
                                          "' is not available on this host");
  t_backend_override = static_cast<int>(backend);
}

ScopedBackend::~ScopedBackend() { t_backend_override = saved_; }

const KernelTable& kernels() { return *table_for(active_backend()); }

const KernelTable& kernels_for(Backend backend) {
  require(backend_available(backend), "kernels_for: backend '" +
                                          std::string(to_string(backend)) +
                                          "' is not available on this host");
  return *table_for(backend);
}

}  // namespace retask::simd
