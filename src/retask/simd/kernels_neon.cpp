// NEON (aarch64) kernel backend: 2-lane double / 2-lane int64 kernels for
// the relaxations and scans. The hull energy batch keeps the scalar body
// (the heavy masking does not pay at 2 lanes). Untested in x86 CI; the
// structure mirrors the SSE2/AVX2 backends and the same equivalence tests
// gate it on ARM hosts.
#include "retask/simd/kernels.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>
#include <limits>

namespace retask::simd {

namespace {

#include "retask/simd/kernels_scalar_impl.inl"

constexpr std::size_t kLanes = 2;

inline void or_take_bits(std::uint64_t* take_row, std::size_t base, unsigned bits) {
  const std::size_t word = base >> 6;
  const std::size_t off = base & 63;
  take_row[word] |= static_cast<std::uint64_t>(bits) << off;
  if (off > 64 - kLanes) take_row[word + 1] |= static_cast<std::uint64_t>(bits) >> (64 - off);
}

inline unsigned mask_bits(uint64x2_t mask) {
  return static_cast<unsigned>(vgetq_lane_u64(mask, 0) & 1u) |
         (static_cast<unsigned>(vgetq_lane_u64(mask, 1) & 1u) << 1);
}

void neon_relax_desc_f64(double* row, std::uint64_t* take_row, std::size_t shift, std::size_t lo,
                         std::size_t hi, double add) {
  const float64x2_t add_v = vdupq_n_f64(add);
  std::size_t w = hi + 1;
  while (w >= lo + kLanes) {
    const std::size_t base = w - kLanes;
    const float64x2_t src = vld1q_f64(row + base - shift);
    const float64x2_t dst = vld1q_f64(row + base);
    const float64x2_t cand = vaddq_f64(src, add_v);
    const uint64x2_t improved = vcgtq_f64(cand, dst);
    const unsigned bits = mask_bits(improved);
    if (bits != 0) {
      vst1q_f64(row + base, vbslq_f64(improved, cand, dst));
      or_take_bits(take_row, base, bits);
    }
    w = base;
  }
  if (w > lo) scalar_relax_desc_f64(row, take_row, shift, lo, w - 1, add);
}

// Out-of-place span relaxation (wavefront tiles): cells are pure functions
// of prev, so the ascending 2-wide traversal matches the scalar loop.
void neon_relax_out_f64(const double* prev, double* cur, std::uint64_t* take_row,
                        std::size_t shift, std::size_t lo, std::size_t hi, double add) {
  const float64x2_t add_v = vdupq_n_f64(add);
  std::size_t w = lo;
  for (; w + kLanes <= hi + 1; w += kLanes) {
    const float64x2_t src = vld1q_f64(prev + w - shift);
    const float64x2_t dst = vld1q_f64(prev + w);
    const float64x2_t cand = vaddq_f64(src, add_v);
    const uint64x2_t improved = vcgtq_f64(cand, dst);
    vst1q_f64(cur + w, vbslq_f64(improved, cand, dst));
    const unsigned bits = mask_bits(improved);
    if (bits != 0) or_take_bits(take_row, w, bits);
  }
  if (w <= hi) scalar_relax_out_f64(prev, cur, take_row, shift, w, hi, add);
}

void neon_relax_desc_i64(std::int64_t* rej, double* payload, std::uint64_t* take_row,
                         std::size_t shift, std::size_t lo, std::size_t hi,
                         std::int64_t add_cycles, double add_payload) {
  const int64x2_t add_c = vdupq_n_s64(add_cycles);
  const int64x2_t none = vdupq_n_s64(-1);
  const float64x2_t add_p = vdupq_n_f64(add_payload);
  std::size_t w = hi + 1;
  while (w >= lo + kLanes) {
    const std::size_t base = w - kLanes;
    const int64x2_t src = vld1q_s64(rej + base - shift);
    const int64x2_t dst = vld1q_s64(rej + base);
    const uint64x2_t reachable = vcgtq_s64(src, none);
    const int64x2_t cand = vaddq_s64(src, add_c);
    const uint64x2_t improved = vandq_u64(reachable, vcgtq_s64(cand, dst));
    const unsigned bits = mask_bits(improved);
    if (bits != 0) {
      vst1q_s64(rej + base, vbslq_s64(improved, cand, dst));
      const float64x2_t pay_src = vld1q_f64(payload + base - shift);
      const float64x2_t pay_dst = vld1q_f64(payload + base);
      vst1q_f64(payload + base, vbslq_f64(improved, vaddq_f64(pay_src, add_p), pay_dst));
      or_take_bits(take_row, base, bits);
    }
    w = base;
  }
  if (w > lo) {
    scalar_relax_desc_i64(rej, payload, take_row, shift, lo, w - 1, add_cycles, add_payload);
  }
}

std::uint64_t neon_select_mask_f64(const double* kept, std::size_t n, double total,
                                   double snapshot) {
  // Elementwise: each lane performs exactly the scalar subtract + compare.
  const float64x2_t total_v = vdupq_n_f64(total);
  const float64x2_t snap_v = vdupq_n_f64(snapshot);
  std::uint64_t mask = 0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const float64x2_t penalty = vsubq_f64(total_v, vld1q_f64(kept + i));
    const unsigned bits = mask_bits(vcltq_f64(penalty, snap_v));
    mask |= static_cast<std::uint64_t>(bits) << i;
  }
  for (; i < n; ++i) {
    if (total - kept[i] < snapshot) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

}  // namespace

const KernelTable* neon_table() noexcept {
  static const KernelTable table{
      &neon_relax_desc_f64,      &neon_relax_desc_i64,       &scalar_argmax_f64,
      &scalar_argmin_strided_f64, &scalar_energy_hull_cycles,
      // No 2-lane win for the interleaved gather pattern; keep the scalar
      // body (bit-identity is then trivial).
      &scalar_relax_desc_f64_lanes, &neon_relax_out_f64,     &neon_select_mask_f64,
      // The select-scan's decision walk is serial; at 2 lanes the branch-free
      // precompute does not pay, so keep the scalar body (trivially
      // bit-identical).
      &scalar_select_scan_f64,
  };
  return &table;
}

}  // namespace retask::simd

#else  // !aarch64 NEON

namespace retask::simd {
const KernelTable* neon_table() noexcept { return nullptr; }
}  // namespace retask::simd

#endif
