// Vector kernels behind the DP/FPTAS/greedy hot loops.
//
// Each kernel is elementwise over contiguous (or strided) arrays, so a wider
// backend performs exactly the scalar reference's arithmetic per element —
// no reassociated sums, no FMA contraction (the build sets -ffp-contract=off)
// — which is what makes the bit-identity guarantee hold. The scalar bodies in
// `kernels_scalar_impl.inl` are the normative semantics; every vector
// implementation must match them bit for bit on every input the solvers can
// produce.
//
// Callers fetch the active table once per solve region via `kernels()` and
// invoke through the function pointers; the table never changes mid-call.
#ifndef RETASK_SIMD_KERNELS_HPP
#define RETASK_SIMD_KERNELS_HPP

#include <cstddef>
#include <cstdint>

#include "retask/simd/backend.hpp"

namespace retask::simd {

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Flattened description of a discrete (lower-hull) power model, the hot
/// case behind `EnergyCurve::energy`. Speeds/powers are the hull vertices in
/// ascending speed order; `hull_size >= 1` and `hull_speed[hull_size-1]`
/// equals `smax`. `e_zero` is the energy of an empty window (returned for
/// `cycles <= 0`).
struct HullEnergyParams {
  double window = 0.0;          ///< frame length (seconds)
  double work_per_cycle = 0.0;  ///< cycles -> normalized work factor
  double static_power = 0.0;    ///< idle power while awake (P_ind)
  double smax = 0.0;            ///< maximum speed
  double switch_energy = 0.0;   ///< dormant transition energy (E_sw)
  double switch_time = 0.0;     ///< dormant transition time (t_sw)
  double e_zero = 0.0;          ///< energy of a window with no work
  bool dormant_enable = false;  ///< sleep state usable at all
  const double* hull_speed = nullptr;
  const double* hull_power = nullptr;
  std::size_t hull_size = 0;
};

/// One backend's kernel implementations. All pointers are non-null in every
/// table (narrow backends fall back to the scalar body for kernels their ISA
/// cannot express, e.g. 64-bit integer compares on SSE2).
struct KernelTable {
  /// Descending-order knapsack relaxation over a double row:
  ///   for w = hi down to lo:
  ///     cand = row[w - shift] + add
  ///     if cand > row[w]: row[w] = cand; take_row[w/64] |= 1 << (w%64)
  /// Requires lo >= shift and hi >= lo - 1 (empty when hi < lo). Unreachable
  /// cells hold -inf; `-inf + add == -inf` keeps them inert.
  void (*relax_desc_f64)(double* row, std::uint64_t* take_row, std::size_t shift, std::size_t lo,
                         std::size_t hi, double add);

  /// Descending relaxation over an int64 row with a paired double payload
  /// (the FPTAS scaled round): entries are >= 0 or exactly -1 (unreachable).
  ///   for w = hi down to lo:
  ///     src = rej[w - shift]; if src < 0: continue
  ///     cand = src + add_cycles
  ///     if cand > rej[w]:
  ///       rej[w] = cand; payload[w] = payload[w - shift] + add_payload
  ///       take_row[w/64] |= 1 << (w%64)
  /// Requires lo >= shift.
  void (*relax_desc_i64)(std::int64_t* rej, double* payload, std::uint64_t* take_row,
                         std::size_t shift, std::size_t lo, std::size_t hi,
                         std::int64_t add_cycles, double add_payload);

  /// First index i with values[i] > init and values[i] == max(values), i.e.
  /// the scalar left-to-right strict-improvement argmax. Returns kNpos when
  /// no element beats init.
  std::size_t (*argmax_f64)(const double* values, std::size_t n, double init);

  /// Strided strict argmin: first index i (element values[i*stride]) with
  /// values[i*stride] < init and == min over the scanned elements. Returns
  /// kNpos when no element beats init. `stride >= 1` in elements.
  std::size_t (*argmin_strided_f64)(const double* values, std::size_t n, std::size_t stride,
                                    double init);

  /// Fused cycles -> energy evaluation for a discrete (hull) power model:
  /// out[i] = energy of `cycles[i]` demand, bit-identical to
  /// `EnergyCurve::energy`. Requires 0 <= cycles[i] < 2^52.
  void (*energy_hull_cycles)(const HullEnergyParams& params, const std::int64_t* cycles,
                             double* out, std::size_t n);

  /// Lane-interleaved knapsack relaxation over `lanes` independent DP rows
  /// (the lockstep batch solver): cell (w, lane) lives at row[w * lanes +
  /// lane] and its choice bit at bit w * lanes + lane of take_row. For every
  /// lane with active[lane] != 0:
  ///   for w = hi[lane] down to lo[lane]:
  ///     cand = row[(w - shift[lane]) * lanes + lane] + add[lane]
  ///     if cand > row[w * lanes + lane]: write cell + choice bit
  /// Lanes touch disjoint strided cells, so any interleaving of lanes
  /// produces identical bits; the scalar body runs lane-major, vector
  /// implementations run w-major across lanes. Requires lo[lane] >=
  /// shift[lane] per active lane; `lanes` is typically 4 or 8.
  void (*relax_desc_f64_lanes)(double* row, std::uint64_t* take_row, std::size_t lanes,
                               const std::size_t* shift, const std::size_t* lo,
                               const std::size_t* hi, const double* add,
                               const unsigned char* active);

  /// Out-of-place relaxation over one span (the wavefront DP tiles):
  ///   for w in [lo, hi]:
  ///     cand = prev[w - shift] + add
  ///     cur[w] = cand > prev[w] ? cand : prev[w]
  ///     improvement sets take_row bit w
  /// Every cell is a pure function of `prev`, so evaluation order is free
  /// (implementations vectorize ascending); the results are bit-identical
  /// to the in-place descending relax_desc_f64 over the same range.
  /// Requires lo >= shift and prev != cur.
  void (*relax_out_f64)(const double* prev, double* cur, std::uint64_t* take_row,
                        std::size_t shift, std::size_t lo, std::size_t hi, double add);

  /// Select-sweep candidate mask over one <= 64-row window of DP kept-value
  /// cells: bit i is set iff total - kept[i] < snapshot (exact double
  /// compare). Unreachable cells hold kept[i] == -inf, so total - kept[i] is
  /// +inf and the bit stays clear — including against snapshot == +inf
  /// (inf < inf is false) — which folds the sweep's reachability skip and
  /// its bound prune into one predicate. Inputs are never NaN (kept values
  /// are penalty partial sums or -inf). Requires n <= 64.
  std::uint64_t (*select_mask_f64)(const double* kept, std::size_t n, double total,
                                   double snapshot);

  /// Select-sweep replay over one <= 64-row window: walk the set bits of
  /// `mask` in ascending order (row w0 + i has DP value kept[i] and energy
  /// energy_at[i]) replaying the serial sweep's decisions against the live
  /// best objective *best:
  ///   penalty = total - kept[i]    -> skip the row when penalty >= *best
  ///   energy  = energy_at[i]       -> return 1 when energy >= *best (E is
  ///                                   non-decreasing: the sweep is over)
  ///   energy + penalty             -> improve *best / *best_w when smaller
  /// Returns 1 when the energy early-exit fired (the caller must end the
  /// whole sweep), else 0. Mask bits at or above n are never set
  /// (select_mask_f64 guarantees it); n bounds the rows a vector body may
  /// pre-read. Vector backends precompute the penalties and objectives
  /// branch-free (IEEE adds are commutative bit for bit), but the decision
  /// walk itself replays in order — the early-exit's timing depends on the
  /// live best, so it cannot be reassociated. Requires n <= 64.
  std::uint32_t (*select_scan_f64)(const double* kept, const double* energy_at, std::size_t n,
                                   std::uint64_t mask, double total, std::size_t w0,
                                   double* best, std::size_t* best_w);
};

/// Scalar reference evaluation of one positive-work hull energy; the single
/// source of truth shared by `EnergyCurve::energy` (discrete models) and the
/// batch kernels. `work > 0`.
double energy_hull_one(const HullEnergyParams& params, double work);

/// Kernel table for the calling thread's active backend.
const KernelTable& kernels();

/// Kernel table for a specific backend (throws when unavailable). Used by
/// the equivalence tests to compare tables directly.
const KernelTable& kernels_for(Backend backend);

// Per-backend tables; null when the TU was compiled without that ISA.
const KernelTable* scalar_table() noexcept;
const KernelTable* sse2_table() noexcept;
const KernelTable* avx2_table() noexcept;
const KernelTable* neon_table() noexcept;

}  // namespace retask::simd

#endif  // RETASK_SIMD_KERNELS_HPP
