#include "retask/core/het_allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {
namespace {

/// Packs chosen (type, speed) options into unit-utilization bins per type
/// (first-fit decreasing) and fills a full result.
HetAllocationResult pack(const HetAllocationProblem& problem,
                         const std::vector<std::pair<int, int>>& choice) {
  const std::size_t n = problem.tasks.size();
  const std::size_t m = problem.types.size();
  HetAllocationResult result;
  result.placement.resize(n);
  result.processors_per_type.assign(m, 0);

  for (std::size_t j = 0; j < m; ++j) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < n; ++i) {
      if (static_cast<std::size_t>(choice[i].first) == j) members.push_back(i);
    }
    if (members.empty()) continue;
    std::stable_sort(members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
      return het_utilization(problem, a, j, static_cast<std::size_t>(choice[a].second)) >
             het_utilization(problem, b, j, static_cast<std::size_t>(choice[b].second));
    });
    std::vector<double> bins;
    for (const std::size_t i : members) {
      const double u = het_utilization(problem, i, j, static_cast<std::size_t>(choice[i].second));
      std::size_t placed = bins.size();
      for (std::size_t b = 0; b < bins.size(); ++b) {
        if (leq_tol(bins[b] + u, 1.0)) {
          placed = b;
          break;
        }
      }
      if (placed == bins.size()) bins.push_back(0.0);
      bins[placed] += u;
      result.placement[i] = {static_cast<int>(j), static_cast<int>(placed), choice[i].second};
      result.energy += het_energy(problem, i, j, static_cast<std::size_t>(choice[i].second));
    }
    result.processors_per_type[j] = static_cast<int>(bins.size());
    result.cost += problem.types[j].cost * static_cast<double>(bins.size());
  }
  return result;
}

/// All feasible (type, speed) options for one task, with their utilization
/// and energy.
struct Option {
  int type = 0;
  int speed = 0;
  double utilization = 0.0;
  double energy = 0.0;
};

std::vector<std::vector<Option>> feasible_options(const HetAllocationProblem& problem) {
  std::vector<std::vector<Option>> options(problem.tasks.size());
  for (std::size_t i = 0; i < problem.tasks.size(); ++i) {
    for (std::size_t j = 0; j < problem.types.size(); ++j) {
      const auto speeds = problem.types[j].model.available_speeds();
      for (std::size_t l = 0; l < speeds.size(); ++l) {
        const double u = het_utilization(problem, i, j, l);
        if (!leq_tol(u, 1.0)) continue;
        options[i].push_back({static_cast<int>(j), static_cast<int>(l), u,
                              het_energy(problem, i, j, l)});
      }
    }
  }
  return options;
}

}  // namespace

void validate(const HetAllocationProblem& problem) {
  require(!problem.types.empty(), "HetAllocationProblem: at least one processor type required");
  require(!problem.tasks.empty(), "HetAllocationProblem: at least one task required");
  require(problem.window > 0.0, "HetAllocationProblem: window must be positive");
  require(problem.energy_budget > 0.0, "HetAllocationProblem: energy budget must be positive");
  for (const ProcessorType& type : problem.types) {
    require(type.cost > 0.0, "HetAllocationProblem: processor cost must be positive");
  }
  for (const HetTask& task : problem.tasks) {
    require(task.cycles_per_type.size() == problem.types.size(),
            "HetAllocationProblem: per-type cycle vector size mismatch");
    bool feasible = false;
    for (std::size_t j = 0; j < problem.types.size(); ++j) {
      require(task.cycles_per_type[j] > 0, "HetAllocationProblem: cycles must be positive");
      const double top = problem.types[j].model.max_speed() * problem.window;
      feasible = feasible || leq_tol(static_cast<double>(task.cycles_per_type[j]), top);
    }
    require(feasible, "HetAllocationProblem: a task fits no processor type at top speed");
  }
}

double het_utilization(const HetAllocationProblem& problem, std::size_t task, std::size_t type,
                       std::size_t speed) {
  const double s = problem.types[type].model.available_speeds().at(speed);
  return static_cast<double>(problem.tasks[task].cycles_per_type[type]) /
         (s * problem.window);
}

double het_energy(const HetAllocationProblem& problem, std::size_t task, std::size_t type,
                  std::size_t speed) {
  const double s = problem.types[type].model.available_speeds().at(speed);
  const double busy = static_cast<double>(problem.tasks[task].cycles_per_type[type]) / s;
  return busy * problem.types[type].model.power(s);
}

HetAllocationResult allocate_het_lagrangian(const HetAllocationProblem& problem) {
  validate(problem);
  const std::vector<std::vector<Option>> options = feasible_options(problem);
  const std::size_t n = problem.tasks.size();
  const std::size_t m = problem.types.size();

  // Types in ascending cost for the parametric restriction.
  std::vector<std::size_t> by_cost(m);
  std::iota(by_cost.begin(), by_cost.end(), std::size_t{0});
  std::stable_sort(by_cost.begin(), by_cost.end(), [&](std::size_t a, std::size_t b) {
    return problem.types[a].cost < problem.types[b].cost;
  });

  // Lambda scale: cost-per-utilization against energy magnitudes.
  double min_cost = std::numeric_limits<double>::infinity();
  double mean_energy = 0.0;
  std::size_t option_count = 0;
  for (const auto& task_options : options) {
    for (const Option& option : task_options) {
      min_cost = std::min(min_cost, problem.types[static_cast<std::size_t>(option.type)].cost);
      mean_energy += option.energy;
      ++option_count;
    }
  }
  require(option_count > 0, "allocate_het_lagrangian: no feasible options");
  mean_energy /= static_cast<double>(option_count);
  const double lambda0 = mean_energy > 0.0 ? 0.01 * min_cost / mean_energy : 1.0;

  HetAllocationResult best;
  best.cost = std::numeric_limits<double>::infinity();

  for (std::size_t restrict = 1; restrict <= m; ++restrict) {
    std::vector<bool> allowed(m, false);
    for (std::size_t r = 0; r < restrict; ++r) allowed[by_cost[r]] = true;

    double lambda = 0.0;
    for (int step = 0; step <= 60; ++step) {
      std::vector<std::pair<int, int>> choice(n, {-1, -1});
      bool complete = true;
      for (std::size_t i = 0; i < n && complete; ++i) {
        double best_score = std::numeric_limits<double>::infinity();
        for (const Option& option : options[i]) {
          if (!allowed[static_cast<std::size_t>(option.type)]) continue;
          const double score =
              problem.types[static_cast<std::size_t>(option.type)].cost * option.utilization +
              lambda * option.energy;
          if (score < best_score) {
            best_score = score;
            choice[i] = {option.type, option.speed};
          }
        }
        complete = choice[i].first >= 0;
      }
      if (complete) {
        const HetAllocationResult candidate = pack(problem, choice);
        if (leq_tol(candidate.energy, problem.energy_budget)) {
          if (candidate.cost < best.cost) best = candidate;
          break;  // higher lambda in this restriction only chases energy
        }
      }
      lambda = lambda == 0.0 ? lambda0 : lambda * 2.0;
    }
  }
  require(best.cost < std::numeric_limits<double>::infinity(),
          "allocate_het_lagrangian: no schedule meets the energy budget");
  return best;
}

HetAllocationResult allocate_het_exhaustive(const HetAllocationProblem& problem) {
  validate(problem);
  const std::vector<std::vector<Option>> options = feasible_options(problem);
  double states = 1.0;
  for (const auto& task_options : options) {
    require(!task_options.empty(), "allocate_het_exhaustive: a task has no feasible option");
    states *= static_cast<double>(task_options.size());
  }
  require(states <= 1.5e6,
          "allocate_het_exhaustive: instance too large (options^n > 1.5e6)");

  const std::size_t n = problem.tasks.size();
  std::vector<std::pair<int, int>> choice(n, {-1, -1});
  HetAllocationResult best;
  best.cost = std::numeric_limits<double>::infinity();

  // Odometer enumeration over per-task options.
  std::vector<std::size_t> idx(n, 0);
  while (true) {
    for (std::size_t i = 0; i < n; ++i) {
      choice[i] = {options[i][idx[i]].type, options[i][idx[i]].speed};
    }
    const HetAllocationResult candidate = pack(problem, choice);
    if (leq_tol(candidate.energy, problem.energy_budget) && candidate.cost < best.cost) {
      best = candidate;
    }
    std::size_t pos = 0;
    while (pos < n && ++idx[pos] == options[pos].size()) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  require(best.cost < std::numeric_limits<double>::infinity(),
          "allocate_het_exhaustive: no schedule meets the energy budget");
  return best;
}

double het_cost_lower_bound(const HetAllocationProblem& problem) {
  validate(problem);
  const std::vector<std::vector<Option>> options = feasible_options(problem);
  double fractional = 0.0;
  for (const auto& task_options : options) {
    double cheapest = std::numeric_limits<double>::infinity();
    for (const Option& option : task_options) {
      cheapest = std::min(cheapest,
                          problem.types[static_cast<std::size_t>(option.type)].cost *
                              option.utilization);
    }
    fractional += cheapest;
  }
  double min_type_cost = std::numeric_limits<double>::infinity();
  for (const ProcessorType& type : problem.types) {
    min_type_cost = std::min(min_type_cost, type.cost);
  }
  return std::max(fractional, min_type_cost);
}

void check_het_allocation(const HetAllocationProblem& problem,
                          const HetAllocationResult& result) {
  validate(problem);
  require(result.placement.size() == problem.tasks.size(),
          "check_het_allocation: placement size mismatch");
  require(result.processors_per_type.size() == problem.types.size(),
          "check_het_allocation: per-type counter size mismatch");

  // Per (type, processor) utilization sums.
  std::vector<std::vector<double>> load(problem.types.size());
  for (std::size_t j = 0; j < problem.types.size(); ++j) {
    require(result.processors_per_type[j] >= 0, "check_het_allocation: negative counts");
    load[j].assign(static_cast<std::size_t>(result.processors_per_type[j]), 0.0);
  }
  double energy = 0.0;
  double cost = 0.0;
  for (std::size_t i = 0; i < result.placement.size(); ++i) {
    const HetPlacement& p = result.placement[i];
    const auto j = static_cast<std::size_t>(p.type);
    require(j < problem.types.size(), "check_het_allocation: type out of range");
    require(p.processor >= 0 && static_cast<std::size_t>(p.processor) < load[j].size(),
            "check_het_allocation: processor index out of range");
    const auto l = static_cast<std::size_t>(p.speed);
    require(l < problem.types[j].model.available_speeds().size(),
            "check_het_allocation: speed index out of range");
    load[j][static_cast<std::size_t>(p.processor)] += het_utilization(problem, i, j, l);
    energy += het_energy(problem, i, j, l);
  }
  for (std::size_t j = 0; j < problem.types.size(); ++j) {
    for (const double u : load[j]) {
      require(leq_tol(u, 1.0), "check_het_allocation: a processor exceeds utilization 1");
    }
    cost += problem.types[j].cost * static_cast<double>(result.processors_per_type[j]);
  }
  require(leq_tol(energy, problem.energy_budget), "check_het_allocation: budget exceeded");
  require(almost_equal(energy, result.energy, 1e-6),
          "check_het_allocation: recorded energy mismatch");
  require(almost_equal(cost, result.cost, 1e-9), "check_het_allocation: recorded cost mismatch");
}

}  // namespace retask
