#include "retask/core/fptas.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "retask/cache/scratch.hpp"
#include "retask/common/bit_matrix.hpp"
#include "retask/common/error.hpp"
#include "retask/core/greedy.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/obs/trace.hpp"

namespace retask {
namespace {

/// One scaled-DP round under the guess G. Returns the best solution found
/// (always a genuine feasible solution) or an empty optional-like flag via
/// `found`.
RejectionSolution scaled_round(const RejectionProblem& problem, double guess, double eps_int,
                               bool& found, FptasScratch& scratch) {
  const std::size_t n = problem.size();
  const double delta = eps_int * guess / static_cast<double>(n);
  RETASK_ASSERT(delta > 0.0);

  // Tasks with penalty above the guess cannot be rejected by any solution of
  // value <= guess: force-accept them. The scaled penalty floor(penalty /
  // delta) is computed once here and shared by the DP fill and the
  // reconstruction, so the two sites can never disagree.
  std::vector<std::size_t>& movable = scratch.movable;
  std::vector<std::size_t>& quant = scratch.quant;
  movable.clear();
  quant.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const FrameTask& task = problem.tasks()[i];
    if (task.penalty <= guess) {
      movable.push_back(i);
      quant.push_back(static_cast<std::size_t>(std::floor(task.penalty / delta)));
    }
  }

  const auto r_max = static_cast<std::size_t>(std::ceil(guess / delta)) + movable.size();
  const auto width = r_max + 1;

  constexpr Cycles kNone = -1;
  // rej[r]: max cycles rejectable at scaled penalty exactly r; true_pen[r]
  // carries the exact penalty of that set so candidates are evaluated
  // without rounding error.
  std::vector<Cycles>& rej = scratch.rej;
  std::vector<double>& true_pen = scratch.true_pen;
  rej.assign(width, kNone);
  true_pen.assign(width, 0.0);
  rej[0] = 0;
  BitMatrix& take = scratch.take;
  take.reset(movable.size(), width);

  // reachable: largest row index any processed task combination can have
  // filled so far; rows above it are all kNone, so the inner loop skips
  // them without even reading.
  std::size_t reachable = 0;
  RETASK_OBS_ONLY(std::uint64_t cells_touched = 0;)
  for (std::size_t k = 0; k < movable.size(); ++k) {
    const FrameTask& task = problem.tasks()[movable[k]];
    const std::size_t q = quant[k];
    if (q >= width) continue;  // cannot fit any budget row
    const std::size_t top = std::min(width - 1, reachable + q);
    RETASK_OBS_ONLY(cells_touched += top + 1 - q;)
    for (std::size_t r = top + 1; r-- > q;) {
      if (rej[r - q] == kNone) continue;
      const Cycles candidate = rej[r - q] + task.cycles;
      if (candidate > rej[r]) {
        rej[r] = candidate;
        true_pen[r] = true_pen[r - q] + task.penalty;
        take.set(k, r);
      }
    }
    reachable = top;
  }
  RETASK_COUNT("fptas.cells_touched", cells_touched);
  RETASK_COUNT("fptas.movable_tasks", movable.size());
  RETASK_RECORD("fptas.table_width", width);

  // Sweep rows: accepted cycles = total - rejected; keep the best feasible
  // candidate by its TRUE objective. Rows whose exact penalty already
  // matches or exceeds the best objective are skipped before the energy
  // evaluation (energy >= 0, so they cannot strictly win), and energies are
  // memoized across guess rounds.
  // best_objective starts at the incumbent's value (the guess): rows that
  // cannot strictly beat it would be discarded by solve() anyway, so
  // pruning them here changes nothing but the number of energy
  // evaluations. `found` then means "found an improving row".
  const Cycles total = problem.tasks().total_cycles();
  double best_objective = guess;
  std::size_t best_r = width;
  for (std::size_t r = 0; r < width; ++r) {
    if (rej[r] == kNone) continue;
    const Cycles accepted_cycles = total - rej[r];
    if (accepted_cycles > problem.cycle_capacity()) continue;
    if (true_pen[r] >= best_objective) continue;
    double energy = 0.0;
    if (problem.energy_memo() != nullptr) {
      // The attached per-problem memo subsumes the round-local one (and
      // additionally shares energies with the other solvers run on this
      // problem); its own cache.energy_* counters track hits.
      energy = problem.energy_of_cycles(accepted_cycles);
    } else {
      // Round-local memo: successive guesses revisit mostly the same cycle
      // totals, and the speed-schedule optimization behind each energy()
      // call dwarfs a hash lookup.
      const auto memo = scratch.energy_memo.find(accepted_cycles);
      if (memo != scratch.energy_memo.end()) {
        RETASK_COUNT("fptas.energy_memo_hits", 1);
        energy = memo->second;
      } else {
        RETASK_COUNT("fptas.energy_evals", 1);
        energy = problem.energy_of_cycles(accepted_cycles);
        scratch.energy_memo.emplace(accepted_cycles, energy);
      }
    }
    const double objective = energy + true_pen[r];
    if (objective < best_objective) {
      best_objective = objective;
      best_r = r;
    }
  }
  if (best_r == width) {
    found = false;
    return RejectionSolution{};
  }
  found = true;

  // Reconstruct the rejected set backwards.
  std::vector<bool> accepted(n, true);
  std::size_t r = best_r;
  for (std::size_t k = movable.size(); k-- > 0;) {
    if (take.test(k, r)) {
      accepted[movable[k]] = false;
      r -= quant[k];
    }
  }
  RETASK_ASSERT(r == 0);
  return make_solution_on_one(problem, std::move(accepted));
}

}  // namespace

FptasSolver::FptasSolver(double epsilon) : epsilon_(epsilon) {
  require(epsilon > 0.0, "FptasSolver: epsilon must be positive");
}

std::string FptasSolver::name() const {
  std::ostringstream os;
  os << "FPTAS(" << epsilon_ << ")";
  return os.str();
}

RejectionSolution FptasSolver::solve(const RejectionProblem& problem) const {
  RETASK_SCOPED_TIMER("fptas.solve_ns");
  RETASK_TRACE_SCOPE("fptas.solve");
  require(problem.processor_count() == 1, "FptasSolver: single-processor algorithm");

  // Upper bound from a genuine heuristic solution.
  RejectionSolution best = DensityGreedySolver().solve(problem);
  RETASK_OBS_ONLY(const double seed_objective = best.objective();)
  const double eps_int = epsilon_ / (1.0 + epsilon_);
  RETASK_COUNT("fptas.solves", 1);

  // A zero objective is already optimal (nothing to approximate).
  if (best.objective() <= 0.0) return best;

  FptasScratch& scratch = fptas_scratch();
  scratch.energy_memo.clear();
  constexpr int kMaxRounds = 40;
  RETASK_OBS_ONLY(std::uint64_t rounds = 0;)
  for (int round = 0; round < kMaxRounds; ++round) {
    RETASK_OBS_ONLY(++rounds;)
    bool found = false;
    const RejectionSolution candidate =
        scaled_round(problem, best.objective(), eps_int, found, scratch);
    if (!found) break;
    const double improvement = best.objective() - candidate.objective();
    if (candidate.objective() < best.objective()) best = candidate;
    // Fixpoint: the guess can no longer shrink meaningfully.
    if (improvement <= 1e-12 * std::max(1.0, best.objective())) break;
  }
  RETASK_COUNT("fptas.guess_rounds", rounds);
  // How much the guess refinement tightened the greedy seed: seed/final - 1
  // is the seed's relative error certified by the rounds actually run.
  RETASK_OBS_ONLY(if (best.objective() > 0.0) {
    RETASK_RECORD("fptas.seed_gap", seed_objective / best.objective() - 1.0);
  })
  return best;
}

}  // namespace retask
