#include "retask/core/fptas.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "retask/cache/scratch.hpp"
#include "retask/common/bit_matrix.hpp"
#include "retask/common/error.hpp"
#include "retask/core/greedy.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/obs/trace.hpp"
#include "retask/simd/kernels.hpp"

namespace retask {
namespace {

/// One scaled-DP round under the guess G. Returns the best solution found
/// (always a genuine feasible solution) or an empty optional-like flag via
/// `found`.
RejectionSolution scaled_round(const RejectionProblem& problem, double guess, double eps_int,
                               bool& found, FptasScratch& scratch) {
  const std::size_t n = problem.size();
  const double delta = eps_int * guess / static_cast<double>(n);
  RETASK_ASSERT(delta > 0.0);

  // Tasks with penalty above the guess cannot be rejected by any solution of
  // value <= guess: force-accept them. The scaled penalty floor(penalty /
  // delta) is computed once here and shared by the DP fill and the
  // reconstruction, so the two sites can never disagree.
  std::vector<std::size_t>& movable = scratch.movable;
  std::vector<std::size_t>& quant = scratch.quant;
  movable.clear();
  quant.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const FrameTask& task = problem.tasks()[i];
    if (task.penalty <= guess) {
      movable.push_back(i);
      quant.push_back(static_cast<std::size_t>(std::floor(task.penalty / delta)));
    }
  }

  const auto r_max = static_cast<std::size_t>(std::ceil(guess / delta)) + movable.size();
  const auto width = r_max + 1;

  constexpr Cycles kNone = -1;
  // rej[r]: max cycles rejectable at scaled penalty exactly r; true_pen[r]
  // carries the exact penalty of that set so candidates are evaluated
  // without rounding error.
  std::vector<Cycles>& rej = scratch.rej;
  std::vector<double>& true_pen = scratch.true_pen;
  rej.assign(width, kNone);
  true_pen.assign(width, 0.0);
  rej[0] = 0;
  BitMatrix& take = scratch.take;
  take.reset(movable.size(), width);

  // reachable: largest row index any processed task combination can have
  // filled so far; rows above it are all kNone, so the relaxation skips
  // them without even reading.
  std::size_t reachable = 0;
  const simd::KernelTable& kernels = simd::kernels();
  RETASK_OBS_ONLY(std::uint64_t cells_touched = 0;)
  for (std::size_t k = 0; k < movable.size(); ++k) {
    const FrameTask& task = problem.tasks()[movable[k]];
    const std::size_t q = quant[k];
    if (q >= width) continue;  // cannot fit any budget row
    const std::size_t top = std::min(width - 1, reachable + q);
    RETASK_OBS_ONLY(cells_touched += top + 1 - q;)
    // Vectorized descending relaxation over the int64 row with the exact
    // penalty carried as the paired payload.
    kernels.relax_desc_i64(rej.data(), true_pen.data(), take.row_words(k), q, q, top,
                           task.cycles, task.penalty);
    reachable = top;
  }
  RETASK_COUNT("fptas.cells_touched", cells_touched);
  RETASK_COUNT("fptas.movable_tasks", movable.size());
  RETASK_RECORD("fptas.table_width", width);

  // Sweep rows: accepted cycles = total - rejected; keep the best feasible
  // candidate by its TRUE objective, evaluated in three passes so the
  // energies go through the fused batch kernel.
  //
  // Pass 1 prefilters with the round-start guess: a row with true_pen >=
  // guess has objective >= guess (energy >= 0) and can never be selected,
  // exactly like the old evolving-threshold skip — the evolving prune only
  // dropped rows whose objective already lost to the running best, so
  // keeping them until pass 3's strict ascending scan selects the identical
  // row. The only difference is how many energies are (batch-)evaluated,
  // which the fptas.energy_evals counter makes visible.
  const Cycles total = problem.tasks().total_cycles();
  std::vector<std::size_t>& cand_row = scratch.cand_row;
  std::vector<Cycles>& cand_cycles = scratch.cand_cycles;
  std::vector<double>& cand_energy = scratch.cand_energy;
  cand_row.clear();
  cand_cycles.clear();
  for (std::size_t r = 0; r < width; ++r) {
    if (rej[r] == kNone) continue;
    const Cycles accepted_cycles = total - rej[r];
    if (accepted_cycles > problem.cycle_capacity()) continue;
    if (true_pen[r] >= guess) continue;
    cand_row.push_back(r);
    cand_cycles.push_back(accepted_cycles);
  }

  // Pass 2: energies for every surviving row.
  cand_energy.resize(cand_cycles.size());
  if (problem.energy_memo() != nullptr) {
    // The attached per-problem memo subsumes the round-local one (and
    // additionally shares energies with the other solvers run on this
    // problem); its own cache.energy_* counters track hits.
    problem.energy_of_cycles_batch(cand_cycles.data(), cand_energy.data(), cand_cycles.size());
  } else {
    // Round-local memo: successive guesses revisit mostly the same cycle
    // totals, and the speed-schedule optimization behind each energy
    // evaluation dwarfs a hash lookup. Misses are compacted and batched.
    std::vector<Cycles> misses;
    std::vector<std::size_t> miss_at;
    for (std::size_t c = 0; c < cand_cycles.size(); ++c) {
      const auto memo = scratch.energy_memo.find(cand_cycles[c]);
      if (memo != scratch.energy_memo.end()) {
        RETASK_COUNT("fptas.energy_memo_hits", 1);
        cand_energy[c] = memo->second;
      } else {
        RETASK_COUNT("fptas.energy_evals", 1);
        misses.push_back(cand_cycles[c]);
        miss_at.push_back(c);
      }
    }
    if (!misses.empty()) {
      std::vector<double> miss_energy(misses.size());
      problem.energy_of_cycles_batch(misses.data(), miss_energy.data(), misses.size());
      for (std::size_t m = 0; m < misses.size(); ++m) {
        cand_energy[miss_at[m]] = miss_energy[m];
        scratch.energy_memo.emplace(misses[m], miss_energy[m]);
      }
    }
  }

  // Pass 3: strict ascending selection — identical tie-breaks to the old
  // fused loop. best_objective starts at the incumbent's value (the guess):
  // rows that cannot strictly beat it would be discarded by solve() anyway,
  // so `found` means "found an improving row".
  double best_objective = guess;
  std::size_t best_r = width;
  for (std::size_t c = 0; c < cand_row.size(); ++c) {
    const double objective = cand_energy[c] + true_pen[cand_row[c]];
    if (objective < best_objective) {
      best_objective = objective;
      best_r = cand_row[c];
    }
  }
  if (best_r == width) {
    found = false;
    return RejectionSolution{};
  }
  found = true;

  // Reconstruct the rejected set backwards.
  std::vector<bool> accepted(n, true);
  std::size_t r = best_r;
  for (std::size_t k = movable.size(); k-- > 0;) {
    if (take.test(k, r)) {
      accepted[movable[k]] = false;
      r -= quant[k];
    }
  }
  RETASK_ASSERT(r == 0);
  return make_solution_on_one(problem, std::move(accepted));
}

}  // namespace

FptasSolver::FptasSolver(double epsilon) : epsilon_(epsilon) {
  require(epsilon > 0.0, "FptasSolver: epsilon must be positive");
}

std::string FptasSolver::name() const {
  std::ostringstream os;
  os << "FPTAS(" << epsilon_ << ")";
  return os.str();
}

RejectionSolution FptasSolver::solve(const RejectionProblem& problem) const {
  RETASK_SCOPED_TIMER("fptas.solve_ns");
  RETASK_TRACE_SCOPE("fptas.solve");
  require(problem.processor_count() == 1, "FptasSolver: single-processor algorithm");

  // Upper bound from a genuine heuristic solution.
  RejectionSolution best = DensityGreedySolver().solve(problem);
  RETASK_OBS_ONLY(const double seed_objective = best.objective();)
  const double eps_int = epsilon_ / (1.0 + epsilon_);
  RETASK_COUNT("fptas.solves", 1);

  // A zero objective is already optimal (nothing to approximate).
  if (best.objective() <= 0.0) return best;

  FptasScratch& scratch = fptas_scratch();
  scratch.energy_memo.clear();
  constexpr int kMaxRounds = 40;
  RETASK_OBS_ONLY(std::uint64_t rounds = 0;)
  for (int round = 0; round < kMaxRounds; ++round) {
    RETASK_OBS_ONLY(++rounds;)
    bool found = false;
    const RejectionSolution candidate =
        scaled_round(problem, best.objective(), eps_int, found, scratch);
    if (!found) break;
    const double improvement = best.objective() - candidate.objective();
    if (candidate.objective() < best.objective()) best = candidate;
    // Fixpoint: the guess can no longer shrink meaningfully.
    if (improvement <= 1e-12 * std::max(1.0, best.objective())) break;
  }
  RETASK_COUNT("fptas.guess_rounds", rounds);
  // How much the guess refinement tightened the greedy seed: seed/final - 1
  // is the seed's relative error certified by the rounds actually run.
  RETASK_OBS_ONLY(if (best.objective() > 0.0) {
    RETASK_RECORD("fptas.seed_gap", seed_objective / best.objective() - 1.0);
  })
  return best;
}

}  // namespace retask
