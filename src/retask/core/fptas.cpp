#include "retask/core/fptas.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/core/greedy.hpp"

namespace retask {
namespace {

/// One scaled-DP round under the guess G. Returns the best solution found
/// (always a genuine feasible solution) or an empty optional-like flag via
/// `found`.
RejectionSolution scaled_round(const RejectionProblem& problem, double guess, double eps_int,
                               bool& found) {
  const std::size_t n = problem.size();
  const double delta = eps_int * guess / static_cast<double>(n);
  RETASK_ASSERT(delta > 0.0);

  // Tasks with penalty above the guess cannot be rejected by any solution of
  // value <= guess: force-accept them.
  std::vector<std::size_t> movable;
  for (std::size_t i = 0; i < n; ++i) {
    if (problem.tasks()[i].penalty <= guess) movable.push_back(i);
  }

  const auto r_max = static_cast<std::size_t>(std::ceil(guess / delta)) + movable.size();
  const auto width = r_max + 1;

  constexpr Cycles kNone = -1;
  // rej[r]: max cycles rejectable at scaled penalty exactly r; true_pen[r]
  // carries the exact penalty of that set so candidates are evaluated
  // without rounding error.
  std::vector<Cycles> rej(width, kNone);
  std::vector<double> true_pen(width, 0.0);
  rej[0] = 0;
  std::vector<std::vector<bool>> take(movable.size(), std::vector<bool>(width, false));

  for (std::size_t k = 0; k < movable.size(); ++k) {
    const FrameTask& task = problem.tasks()[movable[k]];
    const auto q = static_cast<std::size_t>(std::floor(task.penalty / delta));
    if (q >= width) continue;  // cannot fit any budget row
    for (std::size_t r = width; r-- > q;) {
      if (rej[r - q] == kNone) continue;
      const Cycles candidate = rej[r - q] + task.cycles;
      if (candidate > rej[r]) {
        rej[r] = candidate;
        true_pen[r] = true_pen[r - q] + task.penalty;
        take[k][r] = true;
      }
    }
  }

  // Sweep rows: accepted cycles = total - rejected; keep the best feasible
  // candidate by its TRUE objective.
  const Cycles total = problem.tasks().total_cycles();
  double best_objective = std::numeric_limits<double>::infinity();
  std::size_t best_r = 0;
  for (std::size_t r = 0; r < width; ++r) {
    if (rej[r] == kNone) continue;
    const Cycles accepted_cycles = total - rej[r];
    if (accepted_cycles > problem.cycle_capacity()) continue;
    const double objective = problem.energy_of_cycles(accepted_cycles) + true_pen[r];
    if (objective < best_objective) {
      best_objective = objective;
      best_r = r;
    }
  }
  if (best_objective == std::numeric_limits<double>::infinity()) {
    found = false;
    return RejectionSolution{};
  }
  found = true;

  // Reconstruct the rejected set backwards.
  std::vector<bool> accepted(n, true);
  std::size_t r = best_r;
  for (std::size_t k = movable.size(); k-- > 0;) {
    if (take[k][r]) {
      accepted[movable[k]] = false;
      const FrameTask& task = problem.tasks()[movable[k]];
      r -= static_cast<std::size_t>(std::floor(task.penalty / delta));
    }
  }
  RETASK_ASSERT(r == 0);
  return make_solution_on_one(problem, std::move(accepted));
}

}  // namespace

FptasSolver::FptasSolver(double epsilon) : epsilon_(epsilon) {
  require(epsilon > 0.0, "FptasSolver: epsilon must be positive");
}

std::string FptasSolver::name() const {
  std::ostringstream os;
  os << "FPTAS(" << epsilon_ << ")";
  return os.str();
}

RejectionSolution FptasSolver::solve(const RejectionProblem& problem) const {
  require(problem.processor_count() == 1, "FptasSolver: single-processor algorithm");

  // Upper bound from a genuine heuristic solution.
  RejectionSolution best = DensityGreedySolver().solve(problem);
  const double eps_int = epsilon_ / (1.0 + epsilon_);

  // A zero objective is already optimal (nothing to approximate).
  if (best.objective() <= 0.0) return best;

  constexpr int kMaxRounds = 40;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool found = false;
    const RejectionSolution candidate = scaled_round(problem, best.objective(), eps_int, found);
    if (!found) break;
    const double improvement = best.objective() - candidate.objective();
    if (candidate.objective() < best.objective()) best = candidate;
    // Fixpoint: the guess can no longer shrink meaningfully.
    if (improvement <= 1e-12 * std::max(1.0, best.objective())) break;
  }
  return best;
}

}  // namespace retask
