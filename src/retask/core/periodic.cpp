#include "retask/core/periodic.hpp"

#include <algorithm>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {
namespace {

RejectionProblem build_frame_problem(const PeriodicTaskSet& tasks, const PowerModel& model,
                                     IdleDiscipline idle, int processor_count) {
  const std::int64_t hyper = tasks.hyper_period();
  std::vector<FrameTask> frame_tasks;
  frame_tasks.reserve(tasks.size());
  for (const PeriodicTask& task : tasks.tasks()) {
    RETASK_ASSERT(hyper % task.period == 0);
    const Cycles per_hyper = checked_mul(task.cycles, hyper / task.period);
    frame_tasks.push_back({task.id, per_hyper, task.penalty});
  }
  EnergyCurve curve(model, static_cast<double>(hyper), idle);
  return RejectionProblem(FrameTaskSet(std::move(frame_tasks)), std::move(curve),
                          /*work_per_cycle=*/1.0, processor_count);
}

}  // namespace

PeriodicRejectionAdapter::PeriodicRejectionAdapter(PeriodicTaskSet tasks, const PowerModel& model,
                                                   IdleDiscipline idle, int processor_count)
    : tasks_(std::move(tasks)),
      problem_(build_frame_problem(tasks_, model, idle, processor_count)) {
  require(!tasks_.empty(), "PeriodicRejectionAdapter: empty task set");
}

double PeriodicRejectionAdapter::demanded_rate_on(const RejectionSolution& solution,
                                                  int processor) const {
  require(solution.accepted.size() == tasks_.size(),
          "PeriodicRejectionAdapter: solution size mismatch");
  double rate = 0.0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (solution.accepted[i] && solution.processor_of[i] == processor) {
      rate += tasks_[i].rate();
    }
  }
  return rate;
}

double PeriodicRejectionAdapter::execution_speed_on(const RejectionSolution& solution,
                                                    int processor) const {
  require(solution.accepted.size() == tasks_.size(),
          "PeriodicRejectionAdapter: solution size mismatch");
  Cycles load = 0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (solution.accepted[i] && solution.processor_of[i] == processor) {
      load += problem_.tasks()[i].cycles;
    }
  }
  if (load == 0) return 0.0;
  const ExecutionPlan plan =
      problem_.curve().plan(problem_.work_per_cycle() * static_cast<double>(load));
  double speed = 0.0;
  for (const PlanSegment& seg : plan.segments) speed = std::max(speed, seg.speed);
  RETASK_ASSERT(speed > 0.0);
  return speed;
}

}  // namespace retask
