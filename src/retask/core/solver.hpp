// Abstract solver interface for the rejection-scheduling problem.
//
// Every algorithm in core/ implements this interface, so benches, examples
// and the experiment harness can iterate over algorithms uniformly (see
// core/algorithm_registry.hpp). Solvers are stateless with respect to the
// instance: solve() may be called repeatedly and concurrently on different
// problems.
#ifndef RETASK_CORE_SOLVER_HPP
#define RETASK_CORE_SOLVER_HPP

#include <string>
#include <vector>

#include "retask/core/solution.hpp"

namespace retask {

/// Interface of rejection-scheduling algorithms.
class RejectionSolver {
 public:
  virtual ~RejectionSolver() = default;

  /// Produces a validated solution; throws retask::Error when the instance
  /// violates the solver's preconditions (e.g. a single-processor algorithm
  /// given a multiprocessor instance).
  virtual RejectionSolution solve(const RejectionProblem& problem) const = 0;

  /// Stable display name used in experiment tables.
  virtual std::string name() const = 0;

  /// Batch entry point for sweep grids: solves every point and returns the
  /// solutions in point order. The contract is strict bit-identity — the
  /// result must equal calling solve() point by point — so overriders may
  /// only share work that provably cannot change any output (the exact DP
  /// reuses its knapsack table across points with identical task sets; see
  /// core/exact_dp.cpp). The default implementation is the per-point loop.
  virtual std::vector<RejectionSolution> solve_sweep(
      const std::vector<const RejectionProblem*>& points) const {
    std::vector<RejectionSolution> solutions;
    solutions.reserve(points.size());
    for (const RejectionProblem* point : points) solutions.push_back(solve(*point));
    return solutions;
  }

 protected:
  RejectionSolver() = default;
  RejectionSolver(const RejectionSolver&) = default;
  RejectionSolver& operator=(const RejectionSolver&) = default;
};

}  // namespace retask

#endif  // RETASK_CORE_SOLVER_HPP
