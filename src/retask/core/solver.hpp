// Abstract solver interface for the rejection-scheduling problem.
//
// Every algorithm in core/ implements this interface, so benches, examples
// and the experiment harness can iterate over algorithms uniformly (see
// core/algorithm_registry.hpp). Solvers are stateless with respect to the
// instance: solve() may be called repeatedly and concurrently on different
// problems.
#ifndef RETASK_CORE_SOLVER_HPP
#define RETASK_CORE_SOLVER_HPP

#include <string>

#include "retask/core/solution.hpp"

namespace retask {

/// Interface of rejection-scheduling algorithms.
class RejectionSolver {
 public:
  virtual ~RejectionSolver() = default;

  /// Produces a validated solution; throws retask::Error when the instance
  /// violates the solver's preconditions (e.g. a single-processor algorithm
  /// given a multiprocessor instance).
  virtual RejectionSolution solve(const RejectionProblem& problem) const = 0;

  /// Stable display name used in experiment tables.
  virtual std::string name() const = 0;

 protected:
  RejectionSolver() = default;
  RejectionSolver(const RejectionSolver&) = default;
  RejectionSolver& operator=(const RejectionSolver&) = default;
};

}  // namespace retask

#endif  // RETASK_CORE_SOLVER_HPP
