// Registry of rejection-scheduling algorithms by name.
//
// Benches, examples and tests iterate over the same algorithm lineup; the
// registry is the single place that lineup is defined, so adding an
// algorithm automatically adds it to every comparison.
#ifndef RETASK_CORE_ALGORITHM_REGISTRY_HPP
#define RETASK_CORE_ALGORITHM_REGISTRY_HPP

#include <memory>
#include <string>
#include <vector>

#include "retask/core/solver.hpp"

namespace retask {

/// Creates a solver by name. Known names: "opt-dp", "opt-exh", "fptas:<eps>"
/// (e.g. "fptas:0.1"), "greedy", "ls-greedy", "all-accept", "rand",
/// "mp-ltf-dp", "la-ltf-ff", "mp-greedy", "mp-rand", "mp-opt-exh". Throws
/// retask::Error for unknown names.
std::unique_ptr<RejectionSolver> make_solver(const std::string& name);

/// Every fixed registry name accepted by make_solver, in a stable order
/// (the parameterized family is listed as its standard instance
/// "fptas:0.1"). The verification harness iterates this list so that a
/// newly registered solver is automatically fuzzed.
std::vector<std::string> known_solver_names();

/// True for names of solvers that handle processor_count > 1 instances.
bool is_multiprocessor_solver(const std::string& name);

/// The standard single-processor comparison lineup used across the
/// reconstructed evaluation (exact DP, FPTAS(0.1), both greedies, both
/// baselines).
std::vector<std::unique_ptr<RejectionSolver>> standard_uniproc_lineup();

/// The standard multiprocessor lineup (LTF+DP, global greedy, RAND).
std::vector<std::unique_ptr<RejectionSolver>> standard_multiproc_lineup();

}  // namespace retask

#endif  // RETASK_CORE_ALGORITHM_REGISTRY_HPP
