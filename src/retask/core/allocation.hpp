// Allocation-cost minimization under an energy constraint.
//
// The synthesis-side sibling of the rejection problem: instead of a fixed
// platform, the designer buys processors (each at a fixed allocation cost)
// and must schedule the whole frame-based task set within both the timing
// constraint and a total energy budget. The knobs interact: fewer
// processors force higher speeds, which costs energy; a generous energy
// budget lets the workload squeeze onto fewer processors.
//
// Two allocators are provided, mirroring the source line's comparison:
//  * allocate_first_fit — the bin-packing baseline: first-fit decreasing at
//    the timing capacity, growing the processor count until the energy
//    budget holds. Packing bins full drives speeds up, so it wastes energy
//    and needs more processors when the budget is tight.
//  * allocate_balanced  — the RS-LEUF-style allocator: largest-task-first
//    onto the least-loaded processor (balances loads, hence speeds), again
//    growing the count until the budget holds.
// `allocation_lower_bound` gives the provable minimum processor count
// (timing: ceil(W / capacity); energy: the balanced relaxation
// m * E(W/m) <= budget, valid because sum E(W_p) >= m * E(W/m) by
// convexity), so results can be normalized the venue's way.
#ifndef RETASK_CORE_ALLOCATION_HPP
#define RETASK_CORE_ALLOCATION_HPP

#include <vector>

#include "retask/power/energy_curve.hpp"
#include "retask/task/task_set.hpp"

namespace retask {

/// An allocation-synthesis instance.
struct AllocationProblem {
  FrameTaskSet tasks;
  EnergyCurve curve;          ///< per-processor energy curve (one window)
  double work_per_cycle = 1;  ///< task cycles -> curve work units
  double energy_budget = 0;   ///< total energy allowed over the window
  double cost_per_processor = 1.0;
};

/// A validated allocation.
struct AllocationResult {
  int processors = 0;
  std::vector<int> processor_of;  ///< per task
  double energy = 0.0;            ///< sum over processors of E(load)
  double cost = 0.0;              ///< processors * cost_per_processor
};

/// Validates the instance (positive budget/cost, every task individually
/// schedulable on one processor); throws retask::Error.
void validate(const AllocationProblem& problem);

/// Energy of the ideal balanced relaxation with `m` processors,
/// m * E(W / m); infinity when W / m exceeds the per-processor capacity.
double balanced_energy(const AllocationProblem& problem, int m);

/// Provable minimum processor count (timing + balanced energy bound).
/// Throws when no processor count can satisfy the budget (budget below the
/// workload's minimum energy).
int allocation_lower_bound(const AllocationProblem& problem);

/// First-fit-decreasing baseline; returns the first processor count at or
/// above the lower bound whose packing meets the energy budget.
AllocationResult allocate_first_fit(const AllocationProblem& problem);

/// Balanced (largest-task-first) allocator in the RS-LEUF tradition.
AllocationResult allocate_balanced(const AllocationProblem& problem);

/// Recomputes and checks an allocation against the instance (loads within
/// capacity, energy within budget, every task placed); throws on mismatch
/// with the recorded energy/cost.
void check_allocation(const AllocationProblem& problem, const AllocationResult& result);

}  // namespace retask

#endif  // RETASK_CORE_ALLOCATION_HPP
