#include "retask/core/greedy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "retask/cache/scratch.hpp"
#include "retask/common/error.hpp"
#include "retask/common/rng.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/simd/kernels.hpp"

namespace retask {

/// Indices sorted by increasing penalty density rho_i / c_i (cheapest
/// rejection per saved cycle first); ties by index for determinism.
std::vector<std::size_t> density_order(const RejectionProblem& problem) {
  std::vector<std::size_t> order(problem.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const FrameTask& ta = problem.tasks()[a];
    const FrameTask& tb = problem.tasks()[b];
    return ta.penalty * static_cast<double>(tb.cycles) <
           tb.penalty * static_cast<double>(ta.cycles);
  });
  return order;
}

/// Rejects tasks from `accepted` in `order` until the load fits one
/// processor. Returns the remaining accepted cycle load.
Cycles reject_until_feasible(const RejectionProblem& problem,
                             const std::vector<std::size_t>& order, std::vector<bool>& accepted) {
  Cycles load = problem.accepted_cycles(accepted);
  for (const std::size_t i : order) {
    if (load <= problem.cycle_capacity()) break;
    if (accepted[i]) {
      accepted[i] = false;
      load -= problem.tasks()[i].cycles;
    }
  }
  require(load <= problem.cycle_capacity(),
          "reject_until_feasible: instance infeasible even with every task rejected");
  return load;
}

RejectionSolution AllAcceptSolver::solve(const RejectionProblem& problem) const {
  require(problem.processor_count() == 1, "AllAcceptSolver: single-processor algorithm");
  std::vector<bool> accepted(problem.size(), true);
  reject_until_feasible(problem, density_order(problem), accepted);
  return make_solution_on_one(problem, std::move(accepted));
}

RejectionSolution DensityGreedySolver::solve(const RejectionProblem& problem) const {
  RETASK_SCOPED_TIMER("greedy.density_solve_ns");
  require(problem.processor_count() == 1, "DensityGreedySolver: single-processor algorithm");
  const std::vector<std::size_t> order = density_order(problem);
  std::vector<bool> accepted(problem.size(), true);
  Cycles load = reject_until_feasible(problem, order, accepted);
  RETASK_COUNT("greedy.density_solves", 1);

  // One pass over the remaining tasks in density order: reject whenever the
  // exact energy saving at the current load beats the penalty.
  RETASK_OBS_ONLY(std::uint64_t rejections = 0;)
  for (const std::size_t i : order) {
    if (!accepted[i]) continue;
    const FrameTask& task = problem.tasks()[i];
    const double saving =
        problem.energy_of_cycles(load) - problem.energy_of_cycles(load - task.cycles);
    if (saving > task.penalty) {
      accepted[i] = false;
      load -= task.cycles;
      RETASK_OBS_ONLY(++rejections;)
    }
  }
  RETASK_COUNT("greedy.density_rejections", rejections);
  return make_solution_on_one(problem, std::move(accepted));
}

RejectionSolution MarginalGreedySolver::solve(const RejectionProblem& problem) const {
  RETASK_SCOPED_TIMER("greedy.marginal_solve_ns");
  require(problem.processor_count() == 1, "MarginalGreedySolver: single-processor algorithm");

  // Seed with the density-greedy solution, then steepest-descent over flips.
  RejectionSolution seed = DensityGreedySolver().solve(problem);
  std::vector<bool> accepted = seed.accepted;
  Cycles load = problem.accepted_cycles(accepted);
  RETASK_COUNT("greedy.marginal_solves", 1);

  const std::size_t n = problem.size();
  const std::size_t max_moves = 4 * n * n + 16;
  GreedyScratch& scratch = greedy_scratch();
  const simd::KernelTable& kernels = simd::kernels();
  RETASK_OBS_ONLY(std::uint64_t moves_made = 0;)
  for (std::size_t move = 0; move < max_moves; ++move) {
    // Recompute the objective from the current state each round: an
    // incrementally accumulated objective drifts across many flips, and the
    // strict-improvement threshold below is what prevents cycling.
    const double energy_at_load = problem.energy_of_cycles(load);
    const double objective = energy_at_load + problem.rejected_penalty(accepted);

    // Probe loads of every feasible flip (structure-of-arrays), batched
    // through the fused energy kernel; infeasible re-accepts keep an +inf
    // delta so the argmin scan never picks them — the exact effect of the
    // old `continue`. E is pure, so hoisting E(load) out of the flip loop
    // and batching the probes changes which call sites evaluate energies,
    // never a produced bit.
    std::vector<Cycles>& eval_cycles = scratch.eval_cycles;
    std::vector<double>& eval_energy = scratch.eval_energy;
    std::vector<double>& delta = scratch.delta;
    eval_cycles.clear();
    delta.assign(n, std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i) {
      const FrameTask& task = problem.tasks()[i];
      if (accepted[i]) {
        eval_cycles.push_back(load - task.cycles);
      } else if (load + task.cycles <= problem.cycle_capacity()) {
        eval_cycles.push_back(load + task.cycles);
      }
    }
    eval_energy.resize(eval_cycles.size());
    problem.energy_of_cycles_batch(eval_cycles.data(), eval_energy.data(), eval_cycles.size());
    std::size_t probe = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const FrameTask& task = problem.tasks()[i];
      if (accepted[i]) {
        // Reject i: pay penalty, save energy.
        delta[i] = task.penalty - (energy_at_load - eval_energy[probe++]);
      } else if (load + task.cycles <= problem.cycle_capacity()) {
        // Re-accept i when it fits: save penalty, pay energy.
        delta[i] = (eval_energy[probe++] - energy_at_load) - task.penalty;
      }
    }

    const double threshold = -1e-12 * std::max(objective, 1.0);  // strict improvement only
    const std::size_t best_index = kernels.argmin_strided_f64(delta.data(), n, 1, threshold);
    if (best_index == simd::kNpos) break;
    RETASK_OBS_ONLY(++moves_made;)
    if (accepted[best_index]) {
      accepted[best_index] = false;
      load -= problem.tasks()[best_index].cycles;
    } else {
      accepted[best_index] = true;
      load += problem.tasks()[best_index].cycles;
    }
  }
  RETASK_COUNT("greedy.local_search_moves", moves_made);
  return make_solution_on_one(problem, std::move(accepted));
}

RejectionSolution RandomRejectSolver::solve(const RejectionProblem& problem) const {
  require(problem.processor_count() == 1, "RandomRejectSolver: single-processor algorithm");
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (problem.size() + 1)));
  std::vector<bool> accepted(problem.size(), true);
  Cycles load = problem.accepted_cycles(accepted);

  std::vector<std::size_t> candidates(problem.size());
  std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  rng.shuffle(candidates);
  for (const std::size_t i : candidates) {
    if (load <= problem.cycle_capacity()) break;
    accepted[i] = false;
    load -= problem.tasks()[i].cycles;
  }
  require(load <= problem.cycle_capacity(),
          "RandomRejectSolver: instance infeasible even with every task rejected");
  return make_solution_on_one(problem, std::move(accepted));
}

}  // namespace retask
