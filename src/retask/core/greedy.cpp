#include "retask/core/greedy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/common/rng.hpp"
#include "retask/obs/metrics.hpp"

namespace retask {
namespace {

/// Indices sorted by increasing penalty density rho_i / c_i (cheapest
/// rejection per saved cycle first); ties by index for determinism.
std::vector<std::size_t> density_order(const RejectionProblem& problem) {
  std::vector<std::size_t> order(problem.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const FrameTask& ta = problem.tasks()[a];
    const FrameTask& tb = problem.tasks()[b];
    return ta.penalty * static_cast<double>(tb.cycles) <
           tb.penalty * static_cast<double>(ta.cycles);
  });
  return order;
}

/// Rejects tasks from `accepted` in `order` until the load fits one
/// processor. Returns the remaining accepted cycle load.
Cycles reject_until_feasible(const RejectionProblem& problem,
                             const std::vector<std::size_t>& order, std::vector<bool>& accepted) {
  Cycles load = problem.accepted_cycles(accepted);
  for (const std::size_t i : order) {
    if (load <= problem.cycle_capacity()) break;
    if (accepted[i]) {
      accepted[i] = false;
      load -= problem.tasks()[i].cycles;
    }
  }
  require(load <= problem.cycle_capacity(),
          "reject_until_feasible: instance infeasible even with every task rejected");
  return load;
}

}  // namespace

RejectionSolution AllAcceptSolver::solve(const RejectionProblem& problem) const {
  require(problem.processor_count() == 1, "AllAcceptSolver: single-processor algorithm");
  std::vector<bool> accepted(problem.size(), true);
  reject_until_feasible(problem, density_order(problem), accepted);
  return make_solution_on_one(problem, std::move(accepted));
}

RejectionSolution DensityGreedySolver::solve(const RejectionProblem& problem) const {
  RETASK_SCOPED_TIMER("greedy.density_solve_ns");
  require(problem.processor_count() == 1, "DensityGreedySolver: single-processor algorithm");
  const std::vector<std::size_t> order = density_order(problem);
  std::vector<bool> accepted(problem.size(), true);
  Cycles load = reject_until_feasible(problem, order, accepted);
  RETASK_COUNT("greedy.density_solves", 1);

  // One pass over the remaining tasks in density order: reject whenever the
  // exact energy saving at the current load beats the penalty.
  RETASK_OBS_ONLY(std::uint64_t rejections = 0;)
  for (const std::size_t i : order) {
    if (!accepted[i]) continue;
    const FrameTask& task = problem.tasks()[i];
    const double saving =
        problem.energy_of_cycles(load) - problem.energy_of_cycles(load - task.cycles);
    if (saving > task.penalty) {
      accepted[i] = false;
      load -= task.cycles;
      RETASK_OBS_ONLY(++rejections;)
    }
  }
  RETASK_COUNT("greedy.density_rejections", rejections);
  return make_solution_on_one(problem, std::move(accepted));
}

RejectionSolution MarginalGreedySolver::solve(const RejectionProblem& problem) const {
  RETASK_SCOPED_TIMER("greedy.marginal_solve_ns");
  require(problem.processor_count() == 1, "MarginalGreedySolver: single-processor algorithm");

  // Seed with the density-greedy solution, then steepest-descent over flips.
  RejectionSolution seed = DensityGreedySolver().solve(problem);
  std::vector<bool> accepted = seed.accepted;
  Cycles load = problem.accepted_cycles(accepted);
  RETASK_COUNT("greedy.marginal_solves", 1);

  const std::size_t n = problem.size();
  const std::size_t max_moves = 4 * n * n + 16;
  RETASK_OBS_ONLY(std::uint64_t moves_made = 0;)
  for (std::size_t move = 0; move < max_moves; ++move) {
    // Recompute the objective from the current state each round: an
    // incrementally accumulated objective drifts across many flips, and the
    // strict-improvement threshold below is what prevents cycling.
    const double objective =
        problem.energy_of_cycles(load) + problem.rejected_penalty(accepted);
    double best_delta = -1e-12 * std::max(objective, 1.0);  // strict improvement only
    std::size_t best_index = n;
    for (std::size_t i = 0; i < n; ++i) {
      const FrameTask& task = problem.tasks()[i];
      double delta = 0.0;
      if (accepted[i]) {
        // Reject i: pay penalty, save energy.
        delta = task.penalty - (problem.energy_of_cycles(load) -
                                problem.energy_of_cycles(load - task.cycles));
      } else {
        // Re-accept i when it fits: save penalty, pay energy.
        if (load + task.cycles > problem.cycle_capacity()) continue;
        delta = (problem.energy_of_cycles(load + task.cycles) - problem.energy_of_cycles(load)) -
                task.penalty;
      }
      if (delta < best_delta) {
        best_delta = delta;
        best_index = i;
      }
    }
    if (best_index == n) break;
    RETASK_OBS_ONLY(++moves_made;)
    if (accepted[best_index]) {
      accepted[best_index] = false;
      load -= problem.tasks()[best_index].cycles;
    } else {
      accepted[best_index] = true;
      load += problem.tasks()[best_index].cycles;
    }
  }
  RETASK_COUNT("greedy.local_search_moves", moves_made);
  return make_solution_on_one(problem, std::move(accepted));
}

RejectionSolution RandomRejectSolver::solve(const RejectionProblem& problem) const {
  require(problem.processor_count() == 1, "RandomRejectSolver: single-processor algorithm");
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (problem.size() + 1)));
  std::vector<bool> accepted(problem.size(), true);
  Cycles load = problem.accepted_cycles(accepted);

  std::vector<std::size_t> candidates(problem.size());
  std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  rng.shuffle(candidates);
  for (const std::size_t i : candidates) {
    if (load <= problem.cycle_capacity()) break;
    accepted[i] = false;
    load -= problem.tasks()[i].cycles;
  }
  require(load <= problem.cycle_capacity(),
          "RandomRejectSolver: instance infeasible even with every task rejected");
  return make_solution_on_one(problem, std::move(accepted));
}

}  // namespace retask
