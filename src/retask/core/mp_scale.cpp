#include "retask/core/mp_scale.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "retask/batch/lockstep.hpp"
#include "retask/cache/energy_memo.hpp"
#include "retask/common/error.hpp"
#include "retask/common/parallel.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/serve/delta_solver.hpp"

namespace retask {
namespace {

/// A screened commit applied while the PE had no DeltaSolver yet. Replayed
/// through the public admit/remove API after a table adoption, so the
/// adopted solver reaches exactly the state a cold admit_all over the
/// current member set would have reached.
struct PendingOp {
  bool admit = false;
  int id = 0;
  FrameTask task;  ///< only meaningful for admissions
};

/// Per-PE state of the local search. `member`/`accepted` mirror the PE's
/// resident set in order; once `delta` exists it is the source of truth and
/// refresh_from_delta re-derives both from it.
struct PeState {
  std::vector<std::size_t> member;  ///< global task indices, resident order
  std::vector<char> accepted;       ///< local accept mask, aligned with member
  double objective = 0.0;           ///< E(load) + locally rejected penalties
  Cycles accepted_load = 0;
  std::unique_ptr<DeltaSolver> delta;
  std::vector<PendingOp> ops;  ///< screened commits since phase 2 (export PEs only)
};

/// One lockstep chunk of the per-PE solve phase: PEs (by index) whose
/// subproblems share a shape.
struct PeChunk {
  std::vector<std::size_t> pes;
};

}  // namespace

RejectionSolution MultiProcScaleSolver::solve(const RejectionProblem& problem) const {
  const std::size_t n = problem.size();
  const auto m = static_cast<std::size_t>(problem.processor_count());
  const Cycles capacity = problem.cycle_capacity();
  RETASK_COUNT("mp.scale_solves", 1);

  // --- Phase 1: capacity pruning + O(n log m) placement -------------------
  // location[i]: PE index, or -1 for tasks entering the solve rejected
  // (oversized, or FFD overflow). Oversized tasks can never be accepted on
  // any PE, so they skip placement entirely instead of skewing bin loads.
  std::vector<int> location(n, -1);
  std::vector<char> oversized(n, 0);
  std::vector<std::size_t> placeable;
  placeable.reserve(n);
  std::uint64_t oversized_rejected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (problem.tasks()[i].cycles > capacity) {
      oversized[i] = 1;
      ++oversized_rejected;
    } else {
      placeable.push_back(i);
    }
  }
  RETASK_COUNT("mp.oversized_rejected", oversized_rejected);

  std::vector<PeState> pe(m);
  {
    RETASK_SCOPED_TIMER("mp.partition_ns");
    std::vector<double> weights(placeable.size());
    for (std::size_t k = 0; k < placeable.size(); ++k) {
      weights[k] = static_cast<double>(problem.tasks()[placeable[k]].cycles);
    }
    const bool capacity_policy = config_.partition == PartitionPolicy::kFirstFit ||
                                 config_.partition == PartitionPolicy::kBestFit ||
                                 config_.partition == PartitionPolicy::kFirstFitDecreasing;
    const Partition partition =
        partition_items(weights, problem.processor_count(), config_.partition,
                        capacity_policy ? static_cast<double>(capacity) : 0.0);
    std::uint64_t overflow_rejected = 0;
    for (std::size_t k = 0; k < placeable.size(); ++k) {
      const int b = partition.bin_of[k];
      if (b < 0) {
        ++overflow_rejected;  // FFD rejection: fits on no PE at current loads
        continue;
      }
      location[placeable[k]] = b;
    }
    RETASK_COUNT("mp.overflow_rejected", overflow_rejected);
    // Bucket by PE in one pass; global index order becomes resident order.
    for (std::size_t i = 0; i < n; ++i) {
      if (location[i] >= 0) pe[static_cast<std::size_t>(location[i])].member.push_back(i);
    }
  }

  // --- Phase 2: lockstep per-PE exact rejection ---------------------------
  // All subproblems share the platform, so same_shape reduces to equal task
  // counts; group PEs by size, cut groups into lane chunks, and shard the
  // chunks across the pool. Each PE's solution is bit-identical to a solo
  // ExactDpSolver solve, so chunking and job count cannot change a bit.
  const auto memo = std::make_shared<EnergyMemo>();
  // Every select sweep and probe evaluates E over loads in [0, capacity];
  // the dense mode turns those tens of millions of replays into indexed
  // loads instead of hash probes.
  memo->reserve_dense(std::min(capacity, problem.tasks().total_cycles()));
  std::vector<std::unique_ptr<RejectionProblem>> sub(m);
  for (std::size_t p = 0; p < m; ++p) {
    if (pe[p].member.empty()) continue;
    std::vector<FrameTask> local;
    local.reserve(pe[p].member.size());
    for (const std::size_t i : pe[p].member) local.push_back(problem.tasks()[i]);
    sub[p] = std::make_unique<RejectionProblem>(FrameTaskSet(std::move(local)), problem.curve(),
                                                problem.work_per_cycle(), 1);
    sub[p]->attach_energy_memo(memo);
  }

  const int lanes = config_.lanes < 0 ? lockstep_lanes() : config_.lanes;
  const std::size_t chunk_lanes = lanes < 2 ? std::size_t{1} : static_cast<std::size_t>(lanes);
  std::vector<PeChunk> chunks;
  {
    std::map<std::size_t, std::vector<std::size_t>> by_size;  // deterministic order
    for (std::size_t p = 0; p < m; ++p) {
      if (sub[p] != nullptr) by_size[pe[p].member.size()].push_back(p);
    }
    RETASK_COUNT("mp.pe_size_groups", by_size.size());
    for (const auto& [size, pes] : by_size) {
      (void)size;
      for (std::size_t pos = 0; pos < pes.size(); pos += chunk_lanes) {
        PeChunk chunk;
        const std::size_t end = std::min(pes.size(), pos + chunk_lanes);
        chunk.pes.assign(pes.begin() + static_cast<std::ptrdiff_t>(pos),
                         pes.begin() + static_cast<std::ptrdiff_t>(end));
        chunks.push_back(std::move(chunk));
      }
    }
  }

  std::vector<RejectionSolution> pe_solution(m);
  // Phase-2 lockstep tables captured per PE for phase 3: a PE's first exact
  // probe adopts its already-filled table instead of replaying the whole
  // fill through admit_all. Slots stay empty for per-instance fallbacks.
  std::vector<DpTableExport> pe_export(m);
  {
    RETASK_SCOPED_TIMER("mp.pe_solve_ns");
    const ExactDpSolver dp;
    const BatchRejectionSolver batch(dp, BatchConfig{lanes});
    parallel_for(
        chunks.size(),
        [&](std::size_t c) {
          std::vector<const RejectionProblem*> chunk_problems;
          chunk_problems.reserve(chunks[c].pes.size());
          for (const std::size_t p : chunks[c].pes) chunk_problems.push_back(sub[p].get());
          LockstepTables tables;
          std::vector<RejectionSolution> solved = batch.solve_batch(chunk_problems, &tables);
          for (std::size_t j = 0; j < chunks[c].pes.size(); ++j) {
            pe_solution[chunks[c].pes[j]] = std::move(solved[j]);
            pe_export[chunks[c].pes[j]] = std::move(tables.exports[j]);
          }
        },
        config_.jobs);
  }
  for (std::size_t p = 0; p < m; ++p) {
    if (sub[p] == nullptr) continue;
    const RejectionSolution& sol = pe_solution[p];
    pe[p].accepted.assign(pe[p].member.size(), 0);
    Cycles load = 0;
    for (std::size_t k = 0; k < pe[p].member.size(); ++k) {
      if (sol.accepted[k]) {
        pe[p].accepted[k] = 1;
        load += problem.tasks()[pe[p].member[k]].cycles;
      }
    }
    pe[p].objective = sol.energy + sol.penalty;
    pe[p].accepted_load = load;
  }

  // --- Phase 3: move/swap local search over per-PE DeltaSolvers -----------
  std::uint64_t move_probes = 0;
  std::uint64_t swap_probes = 0;
  std::uint64_t moves_applied = 0;
  std::uint64_t swaps_applied = 0;
  std::uint64_t delta_built = 0;
  if (config_.local_search_rounds > 0 && m >= 2 && n > 0) {
    RETASK_SCOPED_TIMER("mp.local_search_ns");
    std::unordered_map<int, std::size_t> index_of_id;
    index_of_id.reserve(n);
    for (std::size_t i = 0; i < n; ++i) index_of_id.emplace(problem.tasks()[i].id, i);

    const auto refresh_from_delta = [&](std::size_t p) {
      PeState& state = pe[p];
      const RejectionSolution& sol = state.delta->solution();
      state.member.clear();
      state.accepted.assign(state.delta->resident().size(), 0);
      for (std::size_t k = 0; k < state.delta->resident().size(); ++k) {
        const std::size_t gi = index_of_id.at(state.delta->resident()[k].id);
        state.member.push_back(gi);
        state.accepted[k] = sol.accepted[k] ? 1 : 0;
        location[gi] = static_cast<int>(p);
      }
      state.objective = sol.energy + sol.penalty;
      state.accepted_load = state.delta->accepted_load();
    };

    const auto ensure_delta = [&](std::size_t p) -> DeltaSolver& {
      PeState& state = pe[p];
      if (state.delta == nullptr) {
        DeltaSolver::Config delta_config;
        delta_config.shared_memo = memo;
        const bool adopt = !pe_export[p].value.empty();
        if (adopt) delta_config.checkpoint_stride = pe_export[p].checkpoint_stride;
        state.delta = std::make_unique<DeltaSolver>(problem.curve(), problem.work_per_cycle(),
                                                    delta_config);
        if (adopt) {
          // Seed from the phase-2 lockstep table: adoption is bit-identical
          // to admit_all over the phase-2 resident set, and the screened
          // commits recorded since are replayed through the public API, so
          // the solver reaches exactly the cold seed's state without
          // refilling a single DP cell.
          std::vector<FrameTask> resident;
          resident.reserve(sub[p]->size());
          for (std::size_t k = 0; k < sub[p]->size(); ++k) resident.push_back(sub[p]->tasks()[k]);
          state.delta->adopt_table(resident, std::move(pe_export[p]));
          for (const PendingOp& op : state.ops) {
            if (op.admit) {
              state.delta->admit(op.task);
            } else {
              state.delta->remove(op.id);
            }
          }
          state.ops.clear();
        } else {
          std::vector<FrameTask> resident;
          resident.reserve(state.member.size());
          for (const std::size_t i : state.member) resident.push_back(problem.tasks()[i]);
          state.delta->admit_all(resident);
        }
        // For untouched PEs the seed replays the phase-2 fill exactly; after
        // direct screened commits the tracked assignment is feasible but
        // not necessarily optimal for the member set, so the seed's optimum
        // may only ever be better (up to rounding in the tracked sum).
        RETASK_ASSERT(state.member.empty() ||
                      state.delta->solution().energy + state.delta->solution().penalty <=
                          state.objective + 1e-6 * std::max(1.0, std::abs(state.objective)));
        refresh_from_delta(p);
        ++delta_built;
      }
      return *state.delta;
    };

    // Marginal-energy screen through the shared (dense) memo: the same
    // E(cycles) evaluation the delta solvers perform, so screen loads feed
    // the same cache the probes hit.
    const auto screen_energy = [&](Cycles cycles) {
      return memo->get_or_compute(cycles, [&](Cycles c) {
        return problem.curve().energy(problem.work_per_cycle() * static_cast<double>(c));
      });
    };
    // Marginal cost of adding `extra` cycles to PE `target_pe` at its
    // current accepted load, +inf when it cannot fit. An exact delta probe
    // can beat this estimate (the DP may evict a cheaper task), but a
    // candidate whose marginal cost already exceeds its penalty almost
    // never survives one — screening those out keeps the O(W) probe +
    // select machinery for the candidates with a real chance.
    const auto marginal_cost = [&](std::size_t target_pe, Cycles removed, Cycles added) {
      const Cycles before = pe[target_pe].accepted_load;
      const Cycles after = before - removed + added;
      if (after > capacity) return std::numeric_limits<double>::infinity();
      return screen_energy(after) - screen_energy(before);
    };

    // Commit helpers. A screened commit is exact for its action (the accept
    // sets change only as stated, so the marginals ARE the objective
    // deltas) and needs no relaxation replay — direct O(1) state updates.
    // PEs that already own a DeltaSolver route through it instead so the
    // solver's resident set stays authoritative; its optimum can only
    // improve on the screened action.
    const auto accept_on = [&](std::size_t q, std::size_t gi, double gain) {
      PeState& state = pe[q];
      const FrameTask& t = problem.tasks()[gi];
      if (state.delta != nullptr) {
        state.delta->admit(t);
        refresh_from_delta(q);
      } else {
        if (!pe_export[q].value.empty()) state.ops.push_back({true, t.id, t});
        state.member.push_back(gi);
        state.accepted.push_back(1);
        state.accepted_load += t.cycles;
        state.objective += gain;
        location[gi] = static_cast<int>(q);
      }
    };
    const auto drop_rejected = [&](std::size_t p, std::size_t gi) {
      PeState& state = pe[p];
      if (state.delta != nullptr) {
        state.delta->remove(problem.tasks()[gi].id);
        refresh_from_delta(p);
      } else {
        if (!pe_export[p].value.empty()) {
          state.ops.push_back({false, problem.tasks()[gi].id, FrameTask{}});
        }
        const auto it = std::find(state.member.begin(), state.member.end(), gi);
        RETASK_ASSERT(it != state.member.end());
        const auto k = static_cast<std::size_t>(it - state.member.begin());
        RETASK_ASSERT(!state.accepted[k]);
        state.member.erase(it);
        state.accepted.erase(state.accepted.begin() + static_cast<std::ptrdiff_t>(k));
        state.objective -= problem.tasks()[gi].penalty;
      }
      location[gi] = -1;  // the caller re-places it immediately
    };
    const auto relocate_accepted = [&](std::size_t q, std::size_t r, std::size_t gj,
                                       double q_gain, double r_gain) {
      PeState& state = pe[q];
      const FrameTask& t = problem.tasks()[gj];
      if (state.delta != nullptr) {
        state.delta->remove(t.id);
        refresh_from_delta(q);
      } else {
        if (!pe_export[q].value.empty()) state.ops.push_back({false, t.id, FrameTask{}});
        const auto it = std::find(state.member.begin(), state.member.end(), gj);
        RETASK_ASSERT(it != state.member.end());
        const auto k = static_cast<std::size_t>(it - state.member.begin());
        RETASK_ASSERT(state.accepted[k]);
        state.member.erase(it);
        state.accepted.erase(state.accepted.begin() + static_cast<std::ptrdiff_t>(k));
        state.accepted_load -= t.cycles;
        state.objective += q_gain;
      }
      accept_on(r, gj, r_gain);
    };

    // Least-loaded target PE (ties: lowest index), excluding `skip`.
    const auto least_loaded_except = [&](int skip) -> int {
      int best = -1;
      for (std::size_t q = 0; q < m; ++q) {
        if (static_cast<int>(q) == skip) continue;
        if (best < 0 || pe[q].accepted_load < pe[static_cast<std::size_t>(best)].accepted_load) {
          best = static_cast<int>(q);
        }
      }
      return best;
    };

    std::vector<std::pair<double, std::size_t>> candidates;  // (-penalty, index)
    for (int round = 0; round < config_.local_search_rounds; ++round) {
      std::uint64_t applied_this_round = 0;
      // Candidates: every task currently paying its penalty (locally
      // rejected or unplaced), except the hopeless oversized ones; highest
      // penalty first — the most to gain from a better PE.
      candidates.clear();
      for (std::size_t p = 0; p < m; ++p) {
        for (std::size_t k = 0; k < pe[p].member.size(); ++k) {
          if (!pe[p].accepted[k]) candidates.emplace_back(-problem.tasks()[pe[p].member[k]].penalty,
                                                          pe[p].member[k]);
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (location[i] < 0 && !oversized[i]) candidates.emplace_back(-problem.tasks()[i].penalty, i);
      }
      std::sort(candidates.begin(), candidates.end());
      if (candidates.size() > static_cast<std::size_t>(config_.max_move_probes)) {
        candidates.resize(static_cast<std::size_t>(config_.max_move_probes));
      }

      std::uint64_t swap_budget = static_cast<std::uint64_t>(config_.max_swap_probes);
      std::uint64_t exact_budget = static_cast<std::uint64_t>(config_.max_exact_probes);
      for (const auto& [neg_penalty, gi] : candidates) {
        (void)neg_penalty;
        const FrameTask& task = problem.tasks()[gi];
        const int p = location[gi];
        if (p >= 0) {
          // The candidate list is a snapshot; a commit may have changed this
          // task's status since. Re-check against the live mask.
          const PeState& source = pe[static_cast<std::size_t>(p)];
          const auto it = std::find(source.member.begin(), source.member.end(), gi);
          RETASK_ASSERT(it != source.member.end());
          if (source.accepted[static_cast<std::size_t>(it - source.member.begin())]) continue;
        }
        const int q = least_loaded_except(p);
        if (q < 0) break;  // m == 1: nowhere to move
        const auto qs = static_cast<std::size_t>(q);

        // Screened move: accepting gi on q as-is changes the objective by
        // exactly marginal - penalty (removing a locally rejected task
        // cannot change its source's accept set, so that side is a pure
        // -penalty). A passing screen commits directly.
        if (marginal_cost(qs, 0, task.cycles) < task.penalty) {
          const Cycles q_load = pe[qs].accepted_load;
          const double gain = screen_energy(q_load + task.cycles) - screen_energy(q_load);
          if (p >= 0) drop_rejected(static_cast<std::size_t>(p), gi);
          accept_on(qs, gi, gain);
          ++moves_applied;
          ++applied_this_round;
          continue;
        }

        // Screened swap: make room on q by relocating its largest accepted
        // task j to the least-loaded third PE r, then accept gi on q. Both
        // marginals are exact for the as-is accept sets, so this commits
        // directly too.
        std::size_t j_local = pe[qs].member.size();
        Cycles j_cycles = -1;
        for (std::size_t k = 0; k < pe[qs].member.size(); ++k) {
          if (pe[qs].accepted[k] && problem.tasks()[pe[qs].member[k]].cycles > j_cycles) {
            j_local = k;
            j_cycles = problem.tasks()[pe[qs].member[k]].cycles;
          }
        }
        if (j_local != pe[qs].member.size()) {
          const std::size_t gj = pe[qs].member[j_local];
          const FrameTask& jtask = problem.tasks()[gj];
          const int r = least_loaded_except(q);
          if (r >= 0 && r != p &&
              marginal_cost(qs, jtask.cycles, task.cycles) +
                      marginal_cost(static_cast<std::size_t>(r), 0, jtask.cycles) <
                  task.penalty) {
            const auto rs = static_cast<std::size_t>(r);
            const Cycles q_load = pe[qs].accepted_load;
            const Cycles r_load = pe[rs].accepted_load;
            const double q_drop =
                screen_energy(q_load - jtask.cycles) - screen_energy(q_load);
            const double q_add = screen_energy(q_load - jtask.cycles + task.cycles) -
                                 screen_energy(q_load - jtask.cycles);
            const double r_add = screen_energy(r_load + jtask.cycles) - screen_energy(r_load);
            relocate_accepted(qs, rs, gj, q_drop, r_add);
            if (p >= 0) drop_rejected(static_cast<std::size_t>(p), gi);
            accept_on(qs, gi, q_add);
            ++swaps_applied;
            ++applied_this_round;
            continue;
          }
        }

        // Escalation: the exact relaxation can admit gi by rearranging q
        // (evicting cheaper tasks), which no marginal screen sees. The
        // first probe on a PE pays a full DeltaSolver seed, so only the
        // highest-penalty screen failures — the candidates with the most
        // to gain — get one.
        if (exact_budget == 0) continue;
        --exact_budget;
        ++move_probes;
        DeltaSolver& target = ensure_delta(qs);
        const double q_before = pe[qs].objective;
        const RejectionSolution& probed = target.admit(task);
        const double q_after = probed.energy + probed.penalty;
        const double move_delta = (q_after - q_before) - task.penalty;
        const double tol = -1e-12 * std::max(1.0, q_before + task.penalty);
        if (move_delta < tol) {
          if (p >= 0) drop_rejected(static_cast<std::size_t>(p), gi);
          refresh_from_delta(qs);
          ++moves_applied;
          ++applied_this_round;
          continue;
        }
        target.remove(task.id);  // undo: pops the appended task, replay is
                                 // checkpoint-local, state returns bitwise

        // Exact swap probe behind the same escalation gate.
        if (swap_budget == 0 || j_local == pe[qs].member.size()) continue;
        const std::size_t gj = pe[qs].member[j_local];
        const FrameTask& jtask = problem.tasks()[gj];
        const int r = least_loaded_except(q);
        if (r < 0 || r == p) continue;  // no third PE to absorb j
        const auto rs = static_cast<std::size_t>(r);
        --swap_budget;
        ++swap_probes;
        DeltaSolver& third = ensure_delta(rs);
        const double r_before = pe[rs].objective;
        target.remove(jtask.id);
        const RejectionSolution& q_probe = target.admit(task);
        const double q_swapped = q_probe.energy + q_probe.penalty;
        const RejectionSolution& r_probe = third.admit(jtask);
        const double r_after = r_probe.energy + r_probe.penalty;
        const double swap_delta =
            (q_swapped - q_before) + (r_after - r_before) - task.penalty;
        const double swap_tol = -1e-12 * std::max(1.0, q_before + r_before + task.penalty);
        if (swap_delta < swap_tol) {
          if (p >= 0) drop_rejected(static_cast<std::size_t>(p), gi);
          refresh_from_delta(qs);
          refresh_from_delta(rs);
          ++swaps_applied;
          ++applied_this_round;
          continue;
        }
        // Undo in reverse. Re-admitting j appends it at the end of q's
        // residual order — same set, same optimum value; the value row is
        // rebuilt deterministically, so the search stays reproducible.
        third.remove(jtask.id);
        target.remove(task.id);
        target.admit(jtask);
        refresh_from_delta(qs);
      }
      if (applied_this_round == 0) break;
    }
  }
  RETASK_COUNT("mp.move_probes", move_probes);
  RETASK_COUNT("mp.swap_probes", swap_probes);
  RETASK_COUNT("mp.moves_applied", moves_applied);
  RETASK_COUNT("mp.swaps_applied", swaps_applied);
  RETASK_COUNT("mp.delta_solvers_built", delta_built);

  // --- Final assembly -----------------------------------------------------
  std::vector<bool> accepted(n, false);
  std::vector<int> processor_of(n, -1);
  for (std::size_t p = 0; p < m; ++p) {
    for (std::size_t k = 0; k < pe[p].member.size(); ++k) {
      if (pe[p].accepted[k]) {
        accepted[pe[p].member[k]] = true;
        processor_of[pe[p].member[k]] = static_cast<int>(p);
      }
    }
  }
  RejectionSolution solution = make_solution(problem, std::move(accepted), std::move(processor_of));
  if (config_.record_bound_gap) {
    const double bound = multiproc_lower_bound(problem);
    if (bound > 0.0) {
      RETASK_RECORD("mp.bound_gap_permille",
                    std::max(0.0, (solution.objective() / bound - 1.0) * 1000.0));
    }
  }
  return solution;
}

}  // namespace retask
