#include "retask/core/exhaustive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/obs/trace.hpp"

namespace retask {

RejectionSolution ExhaustiveSolver::solve(const RejectionProblem& problem) const {
  RETASK_SCOPED_TIMER("exhaustive.solve_ns");
  RETASK_TRACE_SCOPE("exhaustive.solve");
  require(problem.processor_count() == 1, "ExhaustiveSolver: single-processor algorithm");
  const std::size_t n = problem.size();
  require(n <= 24, "ExhaustiveSolver: instance too large (n > 24)");

  std::unordered_map<Cycles, double> energy_memo;
  const auto energy_of = [&](Cycles load) {
    const auto it = energy_memo.find(load);
    if (it != energy_memo.end()) return it->second;
    const double e = problem.energy_of_cycles(load);
    energy_memo.emplace(load, e);
    return e;
  };

  double best_objective = std::numeric_limits<double>::infinity();
  std::uint32_t best_mask = 0;

  // Hot loop over 2^n masks: task fields hoisted into flat scratch arrays
  // (no per-bit indirection through the task set) and the accumulation
  // aborts as soon as the load exceeds capacity. Summation order matches
  // the naive loop bit for bit.
  std::vector<Cycles> cycles(n);
  std::vector<double> penalty(n);
  for (std::size_t i = 0; i < n; ++i) {
    cycles[i] = problem.tasks()[i].cycles;
    penalty[i] = problem.tasks()[i].penalty;
  }
  const Cycles capacity = problem.cycle_capacity();

  const auto mask_count = std::uint32_t{1} << n;
  RETASK_OBS_ONLY(std::uint64_t infeasible_masks = 0;)
  for (std::uint32_t mask = 0; mask < mask_count; ++mask) {
    Cycles load = 0;
    double rejected = 0.0;
    bool feasible = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::uint32_t{1} << i)) {
        load += cycles[i];
        if (load > capacity) {
          feasible = false;
          break;
        }
      } else {
        rejected += penalty[i];
      }
    }
    if (!feasible) {
      RETASK_OBS_ONLY(++infeasible_masks;)
      continue;
    }
    const double objective = energy_of(load) + rejected;
    if (objective < best_objective) {
      best_objective = objective;
      best_mask = mask;
    }
  }
  RETASK_COUNT("exhaustive.solves", 1);
  RETASK_COUNT("exhaustive.masks", mask_count);
  RETASK_COUNT("exhaustive.infeasible_masks", infeasible_masks);
  RETASK_COUNT("exhaustive.energy_memo_size", energy_memo.size());
  RETASK_ASSERT(best_objective < std::numeric_limits<double>::infinity());

  std::vector<bool> accepted(n, false);
  for (std::size_t i = 0; i < n; ++i) accepted[i] = (best_mask & (std::uint32_t{1} << i)) != 0;
  return make_solution_on_one(problem, std::move(accepted));
}

namespace {

/// DFS state for the multiprocessor enumeration.
struct MpSearch {
  const RejectionProblem* problem = nullptr;
  int proc_count = 0;
  std::vector<std::size_t> order;    // tasks by descending cycles
  std::vector<int> choice;           // per order position: -1 reject, else proc
  std::vector<Cycles> loads;         // per processor
  std::vector<double> load_energy;   // E(loads[p]), maintained incrementally
  double idle_energy_each = 0.0;     // E(0) per processor
  double best_objective = std::numeric_limits<double>::infinity();
  std::vector<int> best_choice;
  RETASK_OBS_ONLY(std::uint64_t nodes = 0; std::uint64_t bound_prunes = 0;)

  void run(std::size_t pos, double rejected_penalty, double busy_energy_sum, int used_procs) {
    RETASK_OBS_ONLY(++nodes;)
    // busy_energy_sum tracks sum over processors of E(load) - E(0); the full
    // energy is busy_energy_sum + M * E(0).
    const double committed =
        rejected_penalty + busy_energy_sum + idle_energy_each * static_cast<double>(proc_count);
    if (pos == order.size()) {
      if (committed < best_objective) {
        best_objective = committed;
        best_choice = choice;
      }
      return;
    }
    // Every remaining decision adds a non-negative amount (penalties are
    // non-negative and E is increasing), so the committed cost is a valid
    // lower bound on any completion.
    if (committed >= best_objective) {
      RETASK_OBS_ONLY(++bound_prunes;)
      return;
    }

    const std::size_t task_index = order[pos];
    const FrameTask& task = problem->tasks()[task_index];

    // Option 1: reject.
    choice[pos] = -1;
    run(pos + 1, rejected_penalty + task.penalty, busy_energy_sum, used_procs);

    // Option 2: one of the used processors, plus the first unused one
    // (identical processors: trying more than one empty processor only
    // repeats symmetric schedules).
    const int tryable = std::min(used_procs + 1, proc_count);
    for (int p = 0; p < tryable; ++p) {
      const auto pi = static_cast<std::size_t>(p);
      if (loads[pi] + task.cycles > problem->cycle_capacity()) continue;
      // load_energy caches E(loads[p]) so each placement evaluates the
      // energy curve once instead of twice (before + after).
      const double before = load_energy[pi];
      loads[pi] += task.cycles;
      const double after = problem->energy_of_cycles(loads[pi]);
      load_energy[pi] = after;
      choice[pos] = p;
      run(pos + 1, rejected_penalty, busy_energy_sum + (after - before),
          std::max(used_procs, p + 1));
      loads[pi] -= task.cycles;
      load_energy[pi] = before;
    }
    choice[pos] = -2;
  }
};

}  // namespace

RejectionSolution MultiProcExhaustiveSolver::solve(const RejectionProblem& problem) const {
  RETASK_SCOPED_TIMER("mp_exhaustive.solve_ns");
  RETASK_TRACE_SCOPE("mp_exhaustive.solve");
  const std::size_t n = problem.size();
  const int m = problem.processor_count();
  // Guard the state space (before symmetry pruning).
  double states = 1.0;
  for (std::size_t i = 0; i < n; ++i) states *= static_cast<double>(m + 1);
  require(states <= 64e6, "MultiProcExhaustiveSolver: instance too large ((M+1)^n > 64e6)");

  MpSearch search;
  search.problem = &problem;
  search.proc_count = m;
  search.order.resize(n);
  std::iota(search.order.begin(), search.order.end(), std::size_t{0});
  std::stable_sort(search.order.begin(), search.order.end(), [&](std::size_t a, std::size_t b) {
    return problem.tasks()[a].cycles > problem.tasks()[b].cycles;
  });
  search.choice.assign(n, -2);
  search.loads.assign(static_cast<std::size_t>(m), 0);
  search.idle_energy_each = problem.energy_of_cycles(0);
  search.load_energy.assign(static_cast<std::size_t>(m), search.idle_energy_each);

  search.run(0, 0.0, 0.0, 0);
  RETASK_COUNT("mp_exhaustive.solves", 1);
  RETASK_COUNT("mp_exhaustive.nodes", search.nodes);
  RETASK_COUNT("mp_exhaustive.bound_prunes", search.bound_prunes);
  RETASK_ASSERT(search.best_objective < std::numeric_limits<double>::infinity());

  std::vector<bool> accepted(n, false);
  std::vector<int> processor_of(n, -1);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const int c = search.best_choice[pos];
    const std::size_t task_index = search.order[pos];
    if (c >= 0) {
      accepted[task_index] = true;
      processor_of[task_index] = c;
    }
  }
  return make_solution(problem, std::move(accepted), std::move(processor_of));
}

}  // namespace retask
