#include "retask/core/problem.hpp"

#include <cmath>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {

Cycles cycle_capacity_for(const EnergyCurve& curve, double work_per_cycle) {
  require(work_per_cycle > 0.0, "cycle_capacity_for: work_per_cycle must be positive");
  // Tolerant floor so that "exactly full at top speed" instances keep their
  // analytic capacity.
  return static_cast<Cycles>(
      std::floor(curve.max_workload() / work_per_cycle * (1.0 + 1e-12) + 1e-9));
}

RejectionProblem::RejectionProblem(FrameTaskSet tasks, EnergyCurve curve, double work_per_cycle,
                                   int processor_count)
    : tasks_(std::move(tasks)),
      curve_(std::move(curve)),
      work_per_cycle_(work_per_cycle),
      processor_count_(processor_count) {
  require(work_per_cycle_ > 0.0, "RejectionProblem: work_per_cycle must be positive");
  require(processor_count_ >= 1, "RejectionProblem: processor_count must be at least 1");
  cycle_capacity_ = cycle_capacity_for(curve_, work_per_cycle_);
}

double RejectionProblem::work_of(std::size_t index) const {
  require(index < tasks_.size(), "RejectionProblem::work_of: index out of range");
  return work_per_cycle_ * static_cast<double>(tasks_[index].cycles);
}

double RejectionProblem::total_work() const {
  return work_per_cycle_ * static_cast<double>(tasks_.total_cycles());
}

double RejectionProblem::energy_of_cycles(Cycles cycles) const {
  require(cycles >= 0, "RejectionProblem::energy_of_cycles: negative cycles");
  if (energy_memo_ != nullptr) {
    return energy_memo_->get_or_compute(cycles, [this](Cycles c) {
      return curve_.energy(work_per_cycle_ * static_cast<double>(c));
    });
  }
  return curve_.energy(work_per_cycle_ * static_cast<double>(cycles));
}

void RejectionProblem::energy_of_cycles_batch(const Cycles* cycles, double* out,
                                              std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    require(cycles[i] >= 0, "RejectionProblem::energy_of_cycles: negative cycles");
  }
  if (energy_memo_ == nullptr) {
    curve_.energy_cycles_batch(work_per_cycle_, cycles, out, n);
    return;
  }
  // Partition into memo hits and misses; misses go through the batch kernel
  // and are recorded so later evaluations replay the same bits.
  std::vector<std::size_t> miss_index;
  std::vector<Cycles> miss_cycles;
  for (std::size_t i = 0; i < n; ++i) {
    if (!energy_memo_->lookup(cycles[i], out[i])) {
      miss_index.push_back(i);
      miss_cycles.push_back(cycles[i]);
    }
  }
  if (miss_index.empty()) return;
  std::vector<double> miss_out(miss_index.size());
  curve_.energy_cycles_batch(work_per_cycle_, miss_cycles.data(), miss_out.data(),
                             miss_index.size());
  for (std::size_t j = 0; j < miss_index.size(); ++j) {
    energy_memo_->record(miss_cycles[j], miss_out[j]);
    out[miss_index[j]] = miss_out[j];
  }
}

double RejectionProblem::rejected_penalty(const std::vector<bool>& accepted) const {
  require(accepted.size() == tasks_.size(), "RejectionProblem: accept mask size mismatch");
  double penalty = 0.0;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    if (!accepted[i]) penalty += tasks_[i].penalty;
  }
  return penalty;
}

Cycles RejectionProblem::accepted_cycles(const std::vector<bool>& accepted) const {
  require(accepted.size() == tasks_.size(), "RejectionProblem: accept mask size mismatch");
  Cycles cycles = 0;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    if (accepted[i]) cycles += tasks_[i].cycles;
  }
  return cycles;
}

bool RejectionProblem::feasible_on_one(const std::vector<bool>& accepted) const {
  require(processor_count_ == 1, "RejectionProblem: single-processor helper on M > 1 instance");
  return accepted_cycles(accepted) <= cycle_capacity_;
}

double RejectionProblem::objective_on_one(const std::vector<bool>& accepted) const {
  require(feasible_on_one(accepted),
          "RejectionProblem::objective_on_one: accept set exceeds the processor capacity");
  return energy_of_cycles(accepted_cycles(accepted)) + rejected_penalty(accepted);
}

}  // namespace retask
