// Heterogeneous processor-type allocation under an energy constraint.
//
// The synthesis problem of the source line's allocation-cost work,
// generalized to multiple processor types: a catalogue of non-ideal
// processor types (each with a cost and a finite speed/power table), tasks
// whose per-job cycle counts depend on the type, a common frame, and a
// global energy budget. Allocate processors and map every task to one
// processor at one speed so that per-processor utilization stays within 1
// and total energy within budget, minimizing the total allocation cost.
//
// The original approach solves 2m parametrically-restricted LP relaxations
// and rounds them. This implementation replaces the LP with a Lagrangian
// search (documented surrogate — no LP solver is shipped): under the
// restriction "types 1..m' only", each task picks the (type, speed) option
// minimizing cost-weighted utilization + lambda * energy; lambda is swept
// upward until the packed schedule meets the budget, and the cheapest
// feasible restriction wins. An exhaustive baseline and a fractional lower
// bound normalize the experiments, mirroring the venue's methodology.
#ifndef RETASK_CORE_HET_ALLOCATION_HPP
#define RETASK_CORE_HET_ALLOCATION_HPP

#include <string>
#include <vector>

#include "retask/power/table_power.hpp"
#include "retask/task/task.hpp"

namespace retask {

/// One purchasable processor type.
struct ProcessorType {
  std::string name;
  double cost = 1.0;      ///< allocation cost per processor
  TablePowerModel model;  ///< non-ideal speed/power table
};

/// A task with type-dependent worst-case cycles (one job per frame).
struct HetTask {
  int id = 0;
  std::vector<Cycles> cycles_per_type;  ///< one entry per processor type
};

/// An allocation-synthesis instance over heterogeneous types.
struct HetAllocationProblem {
  std::vector<ProcessorType> types;
  std::vector<HetTask> tasks;
  double window = 1.0;         ///< the common frame D
  double energy_budget = 0.0;  ///< total energy allowed per frame
};

/// Validates the instance (matching dimensions, positive budget/window,
/// every task schedulable on at least one type at top speed).
void validate(const HetAllocationProblem& problem);

/// One task's placement.
struct HetPlacement {
  int type = 0;       ///< processor type index
  int processor = 0;  ///< processor instance within the type
  int speed = 0;      ///< speed-table index on that type
};

/// A validated heterogeneous allocation.
struct HetAllocationResult {
  std::vector<HetPlacement> placement;   ///< per task
  std::vector<int> processors_per_type;  ///< allocated count per type
  double cost = 0.0;
  double energy = 0.0;
};

/// Utilization of task `task` on type `type` at speed index `speed`:
/// cycles / (speed * window).
double het_utilization(const HetAllocationProblem& problem, std::size_t task, std::size_t type,
                       std::size_t speed);

/// Energy of executing task `task` on type `type` at speed index `speed`
/// once per frame (busy power only; idle is accounted as dormant-enable
/// free sleep).
double het_energy(const HetAllocationProblem& problem, std::size_t task, std::size_t type,
                  std::size_t speed);

/// Lagrangian allocation heuristic (the ROUNDING surrogate). Throws when no
/// lambda within the search range yields a budget-feasible schedule.
HetAllocationResult allocate_het_lagrangian(const HetAllocationProblem& problem);

/// Exhaustive optimum over per-task (type, speed) choices with first-fit
/// packing per type; guarded to (total options)^n <= 1.5e6.
HetAllocationResult allocate_het_exhaustive(const HetAllocationProblem& problem);

/// Fractional lower bound on the allocation cost: sum over tasks of the
/// cheapest budget-ignoring cost-utilization product, and never below the
/// cheapest single processor. Valid for any feasible allocation.
double het_cost_lower_bound(const HetAllocationProblem& problem);

/// Recomputes and checks a result (utilizations within 1, energy within
/// budget, recorded cost/energy match); throws on mismatch.
void check_het_allocation(const HetAllocationProblem& problem,
                          const HetAllocationResult& result);

}  // namespace retask

#endif  // RETASK_CORE_HET_ALLOCATION_HPP
