// Leakage-aware multiprocessor rejection scheduling with dormant-mode
// overheads (the LA+LTF+FF lineage adapted to task rejection).
//
// With free sleeping, spreading accepted work across all processors is never
// penalized. With a per-wake overhead (SleepParams on the problem's energy
// curve), every processor that executes anything pays its idle-tail lump
// min(Pind * tail, Esw), so a schedule that wakes many lightly loaded
// processors wastes energy that consolidation can reclaim: tasks running at
// the critical speed can be packed onto fewer processors (first-fit at the
// critical-rate capacity) without raising their execution energy, letting
// the vacated processors stay dormant for the whole window.
//
// LeakageAwareLtfFfSolver therefore runs the LTF + per-processor-DP pipeline
// first and then attempts the consolidation, returning whichever schedule
// the (sleep-aware) energy accounting scores lower. On free-sleep problems
// the consolidation is energy-neutral and the solver reduces to LTF + DP.
#ifndef RETASK_CORE_LEAKAGE_AWARE_HPP
#define RETASK_CORE_LEAKAGE_AWARE_HPP

#include "retask/core/solver.hpp"

namespace retask {

/// LTF partition + per-processor optimal rejection + critical-speed
/// first-fit consolidation of lightly loaded processors.
class LeakageAwareLtfFfSolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "LA-LTF+FF"; }
};

/// The same problem with free sleeping (overheads stripped). Useful as a
/// valid lower-bound substrate: removing overheads can only lower energy, so
/// any lower bound for the stripped problem lower-bounds the original.
RejectionProblem strip_sleep_overheads(const RejectionProblem& problem);

}  // namespace retask

#endif  // RETASK_CORE_LEAKAGE_AWARE_HPP
