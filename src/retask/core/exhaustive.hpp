// Exhaustive optimal solvers, used as the normalization baseline for the
// small instances of the evaluation (the venue's standard methodology:
// "relative ratio to the optimal solution obtained by exhaustive search")
// and as an independent oracle for testing the DP/FPTAS.
#ifndef RETASK_CORE_EXHAUSTIVE_HPP
#define RETASK_CORE_EXHAUSTIVE_HPP

#include "retask/core/solver.hpp"

namespace retask {

/// Optimal single-processor solver by subset enumeration with per-load
/// energy memoization. Guarded to n <= 24.
class ExhaustiveSolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "OPT-EXH"; }
};

/// Optimal multiprocessor solver: depth-first enumeration of per-task
/// choices (reject, or one of the processors) with processor-symmetry
/// breaking and a lower-bound prune. Guarded to (M+1)^n <= 64e6 states.
class MultiProcExhaustiveSolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "MP-OPT-EXH"; }
};

}  // namespace retask

#endif  // RETASK_CORE_EXHAUSTIVE_HPP
