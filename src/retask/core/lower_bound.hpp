// Fractional (continuous-relaxation) lower bound on the rejection objective.
//
// Allowing tasks to be accepted fractionally — and, for M > 1, allowing
// accepted work to be split arbitrarily across the identical processors —
// yields a convex program whose optimum lower-bounds every integral
// partitioned solution:
//
//     minimize  M * E(W / M) + sum_i (1 - x_i) * rho_i
//     s.t.      W = sum_i x_i * w_i <= M * Wmax,   x_i in [0, 1],
//
// (Jensen's inequality gives sum_p E(W_p) >= M * E(W / M) for any split.)
// By convexity of E the optimum accepts tasks in decreasing penalty density
// rho_i / w_i down to the point where the marginal energy per unit work
// exceeds the density, with at most one fractional task. The bound is the
// venue-standard normalizer for instances too large for exhaustive search
// (the group's "relaxed relative ratio").
#ifndef RETASK_CORE_LOWER_BOUND_HPP
#define RETASK_CORE_LOWER_BOUND_HPP

#include "retask/core/problem.hpp"

namespace retask {

/// Value of the fractional relaxation (a valid lower bound on the optimal
/// objective of `problem`, for any processor count).
double fractional_lower_bound(const RejectionProblem& problem);

}  // namespace retask

#endif  // RETASK_CORE_LOWER_BOUND_HPP
