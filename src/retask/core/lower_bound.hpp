// Fractional (continuous-relaxation) lower bounds on the rejection objective.
//
// Allowing tasks to be accepted fractionally — and, for M > 1, allowing
// accepted work to be split arbitrarily across the identical processors —
// yields a convex program whose optimum lower-bounds every integral
// partitioned solution:
//
//     minimize  M * E(W / M) + sum_i (1 - x_i) * rho_i
//     s.t.      W = sum_i x_i * w_i <= M * Wmax,   x_i in [0, 1],
//
// (Jensen's inequality gives sum_p E(W_p) >= M * E(W / M) for any split.)
// By convexity of E the optimum accepts tasks in decreasing penalty density
// rho_i / w_i down to the point where the marginal energy per unit work
// exceeds the density, with at most one fractional task. The bound is the
// venue-standard normalizer for instances too large for exhaustive search
// (the group's "relaxed relative ratio").
//
// Both the Jensen step and the one-dimensional minimization over W require
// E to be convex, which fails under dormant-enable switch overheads (the
// wake-up jump at W = 0+). The implementation therefore evaluates E through
// EnergyCurve::convex_floor — energy() itself on convex curves, and the
// execution-only LP relaxation (busy energy at the cheapest feasible
// average speed, idle and switch costs dropped) otherwise — so the bound
// stays valid for every idle discipline and overhead setting, merely a
// little looser where the true curve is non-convex.
//
// The multiprocessor bound strengthens this for partitioned placement. The
// plain relaxation only caps the total work at M * Wmax, so a task larger
// than one processor's window can still be "accepted" by splitting it across
// processors — something no partitioned solution can do. Dualizing the
// per-task placement constraint (x_i > 0 requires w_i <= Wmax) is free: the
// Lagrangian term lambda_i * x_i with lambda_i -> infinity forces x_i = 0
// for every oversized task, its penalty becomes a constant of the dual, and
// the remaining convex program is the relaxation above over the reduced set.
// Because that program is convex in (x, W) the dual has no gap, so the bound
// equals the LP/Lagrangian relaxation value:
//
//     MP-LB = sum_{w_i > Wmax} rho_i  +  min over the remaining tasks of
//             M * E(W / M) + sum (1 - x_i) rho_i,  W <= M * Wmax.
//
// MP-LB >= the plain fractional bound (equal when no task is oversized) and
// never exceeds the partitioned optimum; test_lower_bound pins both against
// the exhaustive multiprocessor oracle.
#ifndef RETASK_CORE_LOWER_BOUND_HPP
#define RETASK_CORE_LOWER_BOUND_HPP

#include <cstddef>

#include "retask/core/problem.hpp"

namespace retask {

/// Value of the fractional relaxation (a valid lower bound on the optimal
/// objective of `problem`, for any processor count).
double fractional_lower_bound(const RejectionProblem& problem);

/// The multiprocessor (Lagrangian/LP) bound with its certificate pieces.
struct MultiProcBound {
  double value = 0.0;           ///< forced_penalty + relaxed remainder
  double forced_penalty = 0.0;  ///< penalties of tasks no processor can hold
  std::size_t forced_count = 0;
};

/// Strengthened lower bound for the partitioned multiprocessor objective:
/// tasks whose cycle demand exceeds one processor's cycle capacity are
/// rejected in every feasible partitioned solution, so their penalties are a
/// certain cost; the fractional relaxation runs over the remaining tasks.
/// Coincides bitwise with fractional_lower_bound when no task is oversized.
MultiProcBound multiproc_lower_bound_detail(const RejectionProblem& problem);

/// multiproc_lower_bound_detail(problem).value.
double multiproc_lower_bound(const RejectionProblem& problem);

}  // namespace retask

#endif  // RETASK_CORE_LOWER_BOUND_HPP
