#include "retask/core/multiproc.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/sched/partition.hpp"

namespace retask {
namespace {

std::vector<std::size_t> by_descending_cycles(const RejectionProblem& problem) {
  std::vector<std::size_t> order(problem.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return problem.tasks()[a].cycles > problem.tasks()[b].cycles;
  });
  return order;
}

}  // namespace

RejectionSolution MultiProcLtfRejectSolver::solve(const RejectionProblem& problem) const {
  const auto m = static_cast<std::size_t>(problem.processor_count());

  // Largest-Task-First pre-partition of every task (rejection comes later).
  std::vector<double> weights(problem.size());
  for (std::size_t i = 0; i < problem.size(); ++i) {
    weights[i] = static_cast<double>(problem.tasks()[i].cycles);
  }
  const Partition partition = partition_items(weights, problem.processor_count(),
                                              PartitionPolicy::kLargestFirst);

  // Optimal rejection per processor via the exact DP on the subproblem.
  std::vector<bool> accepted(problem.size(), false);
  std::vector<int> processor_of(problem.size(), -1);
  const ExactDpSolver dp;
  for (std::size_t p = 0; p < m; ++p) {
    std::vector<FrameTask> local;
    std::vector<std::size_t> local_index;
    for (std::size_t i = 0; i < problem.size(); ++i) {
      if (partition.bin_of[i] == static_cast<int>(p)) {
        local.push_back(problem.tasks()[i]);
        local_index.push_back(i);
      }
    }
    if (local.empty()) continue;
    const RejectionProblem sub(FrameTaskSet(std::move(local)), problem.curve(),
                               problem.work_per_cycle(), 1);
    const RejectionSolution sub_solution = dp.solve(sub);
    for (std::size_t k = 0; k < local_index.size(); ++k) {
      if (sub_solution.accepted[k]) {
        accepted[local_index[k]] = true;
        processor_of[local_index[k]] = static_cast<int>(p);
      }
    }
  }
  return make_solution(problem, std::move(accepted), std::move(processor_of));
}

RejectionSolution MultiProcGreedySolver::solve(const RejectionProblem& problem) const {
  const auto m = static_cast<std::size_t>(problem.processor_count());
  std::vector<Cycles> loads(m, 0);
  std::vector<bool> accepted(problem.size(), false);
  std::vector<int> processor_of(problem.size(), -1);

  // Greedy placement in descending size: cheapest of {reject, best proc}.
  for (const std::size_t i : by_descending_cycles(problem)) {
    const FrameTask& task = problem.tasks()[i];
    double best_cost = task.penalty;
    int best_proc = -1;
    for (std::size_t p = 0; p < m; ++p) {
      if (loads[p] + task.cycles > problem.cycle_capacity()) continue;
      const double delta = problem.energy_of_cycles(loads[p] + task.cycles) -
                           problem.energy_of_cycles(loads[p]);
      if (delta < best_cost) {
        best_cost = delta;
        best_proc = static_cast<int>(p);
      }
    }
    if (best_proc >= 0) {
      accepted[i] = true;
      processor_of[i] = best_proc;
      loads[static_cast<std::size_t>(best_proc)] += task.cycles;
    }
  }

  // Improvement passes: re-place each task where it is cheapest now.
  for (int pass = 0; pass < 3; ++pass) {
    bool changed = false;
    for (std::size_t i = 0; i < problem.size(); ++i) {
      const FrameTask& task = problem.tasks()[i];
      // Remove i from its current location.
      double current_cost = task.penalty;
      if (accepted[i]) {
        const auto p = static_cast<std::size_t>(processor_of[i]);
        loads[p] -= task.cycles;
        current_cost = problem.energy_of_cycles(loads[p] + task.cycles) -
                       problem.energy_of_cycles(loads[p]);
      }
      double best_cost = task.penalty;
      int best_proc = -1;
      for (std::size_t p = 0; p < m; ++p) {
        if (loads[p] + task.cycles > problem.cycle_capacity()) continue;
        const double delta = problem.energy_of_cycles(loads[p] + task.cycles) -
                             problem.energy_of_cycles(loads[p]);
        if (delta < best_cost) {
          best_cost = delta;
          best_proc = static_cast<int>(p);
        }
      }
      if (best_cost + 1e-12 < current_cost) changed = true;
      accepted[i] = best_proc >= 0;
      processor_of[i] = best_proc;
      if (best_proc >= 0) loads[static_cast<std::size_t>(best_proc)] += task.cycles;
    }
    if (!changed) break;
  }
  return make_solution(problem, std::move(accepted), std::move(processor_of));
}

RejectionSolution MultiProcRandSolver::solve(const RejectionProblem& problem) const {
  const auto m = static_cast<std::size_t>(problem.processor_count());
  std::vector<Cycles> loads(m, 0);
  std::vector<bool> accepted(problem.size(), false);
  std::vector<int> processor_of(problem.size(), -1);

  for (std::size_t i = 0; i < problem.size(); ++i) {
    const FrameTask& task = problem.tasks()[i];
    const auto lightest = std::min_element(loads.begin(), loads.end());
    const auto p = static_cast<std::size_t>(lightest - loads.begin());
    if (loads[p] + task.cycles <= problem.cycle_capacity()) {
      accepted[i] = true;
      processor_of[i] = static_cast<int>(p);
      loads[p] += task.cycles;
    }
  }
  return make_solution(problem, std::move(accepted), std::move(processor_of));
}

}  // namespace retask
