#include "retask/core/multiproc.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "retask/cache/energy_memo.hpp"
#include "retask/common/error.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/sched/partition.hpp"

namespace retask {
namespace {

std::vector<std::size_t> by_descending_cycles(const RejectionProblem& problem) {
  std::vector<std::size_t> order(problem.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return problem.tasks()[a].cycles > problem.tasks()[b].cycles;
  });
  return order;
}

}  // namespace

RejectionSolution MultiProcLtfRejectSolver::solve(const RejectionProblem& problem) const {
  const auto m = static_cast<std::size_t>(problem.processor_count());

  // Largest-Task-First pre-partition of every task (rejection comes later).
  std::vector<double> weights(problem.size());
  for (std::size_t i = 0; i < problem.size(); ++i) {
    weights[i] = static_cast<double>(problem.tasks()[i].cycles);
  }
  const Partition partition = partition_items(weights, problem.processor_count(),
                                              PartitionPolicy::kLargestFirst);

  // Bucket the task indices by bin in one pass (index order preserved per
  // bin, the order the per-bin scan used to produce).
  std::vector<std::vector<std::size_t>> bin_tasks(m);
  for (std::size_t i = 0; i < problem.size(); ++i) {
    if (partition.bin_of[i] >= 0) {
      bin_tasks[static_cast<std::size_t>(partition.bin_of[i])].push_back(i);
    }
  }

  // Optimal rejection per processor via the exact DP on the subproblem.
  std::vector<bool> accepted(problem.size(), false);
  std::vector<int> processor_of(problem.size(), -1);
  const ExactDpSolver dp;
  for (std::size_t p = 0; p < m; ++p) {
    if (bin_tasks[p].empty()) continue;
    std::vector<FrameTask> local;
    local.reserve(bin_tasks[p].size());
    for (const std::size_t i : bin_tasks[p]) local.push_back(problem.tasks()[i]);
    const RejectionProblem sub(FrameTaskSet(std::move(local)), problem.curve(),
                               problem.work_per_cycle(), 1);
    const RejectionSolution sub_solution = dp.solve(sub);
    for (std::size_t k = 0; k < bin_tasks[p].size(); ++k) {
      if (sub_solution.accepted[k]) {
        accepted[bin_tasks[p][k]] = true;
        processor_of[bin_tasks[p][k]] = static_cast<int>(p);
      }
    }
  }
  return make_solution(problem, std::move(accepted), std::move(processor_of));
}

RejectionSolution MultiProcGreedySolver::solve(const RejectionProblem& problem) const {
  const auto m = static_cast<std::size_t>(problem.processor_count());
  std::vector<Cycles> loads(m, 0);
  std::vector<bool> accepted(problem.size(), false);
  std::vector<int> processor_of(problem.size(), -1);

  // All probe energies go through one solver-local memo: the placement and
  // improvement passes re-evaluate the same per-processor loads over and
  // over (E(load_p) is probed for every task until load_p changes), and the
  // memo replays the recorded bits, so caching cannot change a solution bit.
  EnergyMemo memo;
  std::uint64_t probe_evals = 0;
  std::uint64_t probe_misses = 0;
  const auto energy_at = [&](Cycles cycles) {
    ++probe_evals;
    return memo.get_or_compute(cycles, [&](Cycles c) {
      ++probe_misses;
      return problem.curve().energy(problem.work_per_cycle() * static_cast<double>(c));
    });
  };

  // Greedy placement in descending size: cheapest of {reject, best proc}.
  for (const std::size_t i : by_descending_cycles(problem)) {
    const FrameTask& task = problem.tasks()[i];
    double best_cost = task.penalty;
    int best_proc = -1;
    for (std::size_t p = 0; p < m; ++p) {
      if (loads[p] + task.cycles > problem.cycle_capacity()) continue;
      const double delta = energy_at(loads[p] + task.cycles) - energy_at(loads[p]);
      if (delta < best_cost) {
        best_cost = delta;
        best_proc = static_cast<int>(p);
      }
    }
    if (best_proc >= 0) {
      accepted[i] = true;
      processor_of[i] = best_proc;
      loads[static_cast<std::size_t>(best_proc)] += task.cycles;
    }
  }

  // Improvement passes: re-place each task where it is cheapest now.
  std::uint64_t moves_applied = 0;
  for (int pass = 0; pass < 3; ++pass) {
    bool changed = false;
    for (std::size_t i = 0; i < problem.size(); ++i) {
      const FrameTask& task = problem.tasks()[i];
      // Remove i from its current location.
      double current_cost = task.penalty;
      if (accepted[i]) {
        const auto p = static_cast<std::size_t>(processor_of[i]);
        loads[p] -= task.cycles;
        current_cost = energy_at(loads[p] + task.cycles) - energy_at(loads[p]);
      }
      double best_cost = task.penalty;
      int best_proc = -1;
      for (std::size_t p = 0; p < m; ++p) {
        if (loads[p] + task.cycles > problem.cycle_capacity()) continue;
        const double delta = energy_at(loads[p] + task.cycles) - energy_at(loads[p]);
        if (delta < best_cost) {
          best_cost = delta;
          best_proc = static_cast<int>(p);
        }
      }
      if (best_cost + 1e-12 < current_cost) {
        changed = true;
        ++moves_applied;
      }
      accepted[i] = best_proc >= 0;
      processor_of[i] = best_proc;
      if (best_proc >= 0) loads[static_cast<std::size_t>(best_proc)] += task.cycles;
    }
    if (!changed) break;
  }
  RETASK_COUNT("mp.probe_evals", probe_evals);
  RETASK_COUNT("mp.probe_misses", probe_misses);
  RETASK_COUNT("mp.moves_applied", moves_applied);
  return make_solution(problem, std::move(accepted), std::move(processor_of));
}

RejectionSolution MultiProcRandSolver::solve(const RejectionProblem& problem) const {
  const auto m = static_cast<std::size_t>(problem.processor_count());
  std::vector<Cycles> loads(m, 0);
  std::vector<bool> accepted(problem.size(), false);
  std::vector<int> processor_of(problem.size(), -1);

  for (std::size_t i = 0; i < problem.size(); ++i) {
    const FrameTask& task = problem.tasks()[i];
    const auto lightest = std::min_element(loads.begin(), loads.end());
    const auto p = static_cast<std::size_t>(lightest - loads.begin());
    if (loads[p] + task.cycles <= problem.cycle_capacity()) {
      accepted[i] = true;
      processor_of[i] = static_cast<int>(p);
      loads[p] += task.cycles;
    }
  }
  return make_solution(problem, std::move(accepted), std::move(processor_of));
}

}  // namespace retask
