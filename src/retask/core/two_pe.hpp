// Heterogeneous two-PE rejection scheduling: one DVS processor plus one
// non-DVS processing element (e.g. an FPGA region or fixed-function
// accelerator), with task rejection.
//
// Each task runs on the DVS PE (costing execution cycles shaped by the
// energy curve), on the non-DVS PE (consuming a share of its unit capacity),
// or is rejected at its penalty. The non-DVS PE has two energy models,
// following the source line of work:
//   * workload-independent — the PE draws its full power for the whole
//     window whenever anything is assigned to it (P2 * D, else 0);
//   * workload-dependent   — the PE draws power in proportion to the total
//     utilization assigned (P2 * D * U2).
// The objective is DVS energy + PE2 energy + rejected penalties, subject to
// the DVS capacity (smax * D) and the PE2 capacity (U2 <= 1).
#ifndef RETASK_CORE_TWO_PE_HPP
#define RETASK_CORE_TWO_PE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "retask/power/energy_curve.hpp"
#include "retask/task/task.hpp"

namespace retask {

/// Energy behaviour of the non-DVS PE.
enum class Pe2EnergyModel {
  kWorkloadIndependent,
  kWorkloadDependent,
};

/// Where a task ended up.
enum class TwoPePlacement : std::int8_t {
  kRejected = -1,
  kDvs = 0,
  kNonDvs = 1,
};

/// An instance of the two-PE rejection problem.
class TwoPeProblem {
 public:
  /// `work_per_cycle` converts DVS cycles into the curve's work units;
  /// `pe2_power` is the non-DVS PE's (full-capacity) power draw.
  TwoPeProblem(std::vector<TwoPeTask> tasks, EnergyCurve dvs_curve, double work_per_cycle,
               double pe2_power, Pe2EnergyModel pe2_model);

  const std::vector<TwoPeTask>& tasks() const { return tasks_; }
  std::size_t size() const { return tasks_.size(); }
  const EnergyCurve& dvs_curve() const { return dvs_curve_; }
  double work_per_cycle() const { return work_per_cycle_; }
  double pe2_power() const { return pe2_power_; }
  Pe2EnergyModel pe2_model() const { return pe2_model_; }

  /// DVS cycle capacity of the window.
  Cycles dvs_cycle_capacity() const { return dvs_cycle_capacity_; }

  /// DVS energy for a cycle load.
  double dvs_energy(Cycles cycles) const;

  /// Non-DVS PE energy for total utilization `u2` in [0, 1].
  double pe2_energy(double u2) const;

  /// Sum of penalties over all tasks.
  double total_penalty() const { return total_penalty_; }

 private:
  std::vector<TwoPeTask> tasks_;
  EnergyCurve dvs_curve_;
  double work_per_cycle_;
  double pe2_power_;
  Pe2EnergyModel pe2_model_;
  Cycles dvs_cycle_capacity_ = 0;
  double total_penalty_ = 0.0;
};

/// A validated placement with its energy/penalty decomposition.
struct TwoPeSolution {
  std::vector<TwoPePlacement> placement;
  double dvs_energy = 0.0;
  double pe2_energy = 0.0;
  double penalty = 0.0;

  double objective() const { return dvs_energy + pe2_energy + penalty; }

  /// Number of tasks with the given placement.
  std::size_t count(TwoPePlacement where) const;
};

/// Builds and validates a solution (throws on capacity violations or size
/// mismatch), recomputing all energy terms from scratch.
TwoPeSolution make_two_pe_solution(const TwoPeProblem& problem,
                                   std::vector<TwoPePlacement> placement);

/// Abstract two-PE solver.
class TwoPeSolver {
 public:
  virtual ~TwoPeSolver() = default;
  virtual TwoPeSolution solve(const TwoPeProblem& problem) const = 0;
  virtual std::string name() const = 0;

 protected:
  TwoPeSolver() = default;
  TwoPeSolver(const TwoPeSolver&) = default;
  TwoPeSolver& operator=(const TwoPeSolver&) = default;
};

/// The GREEDY lineage: offload tasks with the best DVS-relief per PE2
/// utilization (largest work / u ratio first) while it fits and pays, then
/// optimally reject on the DVS side (exact DP) and prune the PE2 side.
class TwoPeGreedySolver final : public TwoPeSolver {
 public:
  TwoPeSolution solve(const TwoPeProblem& problem) const override;
  std::string name() const override { return "2PE-GREEDY"; }
};

/// Steepest-descent local search over single-task re-placements
/// (reject/DVS/PE2), seeded by the greedy solution.
class TwoPeLocalSearchSolver final : public TwoPeSolver {
 public:
  TwoPeSolution solve(const TwoPeProblem& problem) const override;
  std::string name() const override { return "2PE-LS"; }
};

/// Optimal by 3^n enumeration with committed-cost pruning; guarded to
/// 3^n <= 5e6 (n <= 14).
class TwoPeExhaustiveSolver final : public TwoPeSolver {
 public:
  TwoPeSolution solve(const TwoPeProblem& problem) const override;
  std::string name() const override { return "2PE-OPT"; }
};

/// Baseline: ignore the non-DVS PE entirely and solve single-PE rejection on
/// the DVS processor (exact DP). Quantifies the value of the second PE.
class TwoPeDvsOnlySolver final : public TwoPeSolver {
 public:
  TwoPeSolution solve(const TwoPeProblem& problem) const override;
  std::string name() const override { return "DVS-ONLY"; }
};

/// The E-GREEDY lineage (minimum-knapsack eviction): tasks sorted by DVS
/// demand per unit of PE2 utilization; prefixes of the sorted order are
/// offloaded just past the point where the remainder fits the DVS side, and
/// the scan keeps evicting the pivot to enumerate the candidate "best
/// solutions so far". Rejection is applied afterwards per side (exact DP on
/// the DVS side, worth-its-power pruning on the PE2 side), so the solver is
/// total even on overloaded instances.
class TwoPeEGreedySolver final : public TwoPeSolver {
 public:
  TwoPeSolution solve(const TwoPeProblem& problem) const override;
  std::string name() const override { return "2PE-E-GREEDY"; }
};

/// The (1+delta) offload DP of the lineage: scale DVS cycles by a grid
/// chosen from delta, run a knapsack over scaled offloaded work that tracks
/// the minimum PE2 utilization needed, and pick the offload volume
/// minimizing the true objective. Exact when delta makes the grid finer
/// than one cycle; polynomial in n and 1/delta otherwise. Rejection is
/// handled the same way as in TwoPeEGreedySolver.
class TwoPeOffloadDpSolver final : public TwoPeSolver {
 public:
  /// Requires delta > 0. The scaled-cycle grid has ~n/delta buckets.
  explicit TwoPeOffloadDpSolver(double delta);
  TwoPeSolution solve(const TwoPeProblem& problem) const override;
  std::string name() const override;

 private:
  double delta_;
};

}  // namespace retask

#endif  // RETASK_CORE_TWO_PE_HPP
