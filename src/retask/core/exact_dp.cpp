#include "retask/core/exact_dp.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "retask/common/bit_matrix.hpp"
#include "retask/common/error.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/obs/trace.hpp"

namespace retask {

RejectionSolution ExactDpSolver::solve(const RejectionProblem& problem) const {
  RETASK_SCOPED_TIMER("exact_dp.solve_ns");
  RETASK_TRACE_SCOPE("exact_dp.solve");
  require(problem.processor_count() == 1, "ExactDpSolver: single-processor algorithm");
  const std::size_t n = problem.size();
  const Cycles cap = std::min(problem.cycle_capacity(), problem.tasks().total_cycles());
  require(cap >= 0, "ExactDpSolver: negative capacity");

  const auto width = static_cast<std::size_t>(cap) + 1;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  // kept[w]: maximum total penalty of accepted tasks whose cycles sum to
  // exactly w. take(i, w): the update at task i improved state w. The
  // choice table is bit-packed into one contiguous buffer.
  std::vector<double> kept(width, kNegInf);
  kept[0] = 0.0;
  BitMatrix take;
  take.reset(n, width);

  // reachable: largest w with kept[w] > -inf so far; rows above it cannot
  // produce candidates, so the inner loop never visits them.
  std::size_t reachable = 0;
  RETASK_OBS_ONLY(std::uint64_t cells_touched = 0; std::uint64_t cells_skipped = 0;
                  std::uint64_t tasks_pruned = 0;)
  for (std::size_t i = 0; i < n; ++i) {
    const FrameTask& task = problem.tasks()[i];
    if (task.cycles > cap) {  // can never be accepted
      RETASK_OBS_ONLY(++tasks_pruned; cells_skipped += width;)
      continue;
    }
    const auto ci = static_cast<std::size_t>(task.cycles);
    const std::size_t top = std::min(width - 1, reachable + ci);
    // The reachability bound prunes the row to [ci, top]; the cell counts
    // follow arithmetically so the inner loop stays untouched.
    RETASK_OBS_ONLY(cells_touched += top + 1 - ci; cells_skipped += width - (top + 1 - ci);)
    for (std::size_t w = top + 1; w-- > ci;) {
      const double candidate = kept[w - ci] == kNegInf ? kNegInf : kept[w - ci] + task.penalty;
      if (candidate > kept[w]) {
        kept[w] = candidate;
        take.set(i, w);
      }
    }
    reachable = top;
  }
  RETASK_COUNT("exact_dp.solves", 1);
  RETASK_COUNT("exact_dp.cells_touched", cells_touched);
  RETASK_COUNT("exact_dp.cells_skipped", cells_skipped);
  RETASK_COUNT("exact_dp.tasks_pruned", tasks_pruned);
  RETASK_RECORD("exact_dp.table_width", width);

  // Sweep achievable accepted-cycle totals for the best objective. The
  // energy evaluation is the expensive part (it optimizes the speed
  // schedule), so rows that cannot win are pruned before touching it: the
  // penalty term alone already losing skips the row, and E non-decreasing
  // in the load (the invariant the budgeted binary search and the
  // exhaustive bound also rely on) ends the sweep once the energy term
  // alone loses. Both prunes only drop rows with objective >= the current
  // best, so the selected row is exactly the naive sweep's.
  const double total_penalty = problem.tasks().total_penalty();
  double best_objective = std::numeric_limits<double>::infinity();
  std::size_t best_w = 0;
  RETASK_OBS_ONLY(std::uint64_t energy_evals = 0;)
  for (std::size_t w = 0; w < width; ++w) {
    if (kept[w] == kNegInf) continue;
    const double penalty = total_penalty - kept[w];
    if (penalty >= best_objective) continue;
    RETASK_OBS_ONLY(++energy_evals;)
    const double energy = problem.energy_of_cycles(static_cast<Cycles>(w));
    if (energy >= best_objective) break;
    const double objective = energy + penalty;
    if (objective < best_objective) {
      best_objective = objective;
      best_w = w;
    }
  }
  RETASK_COUNT("exact_dp.energy_evals", energy_evals);
  RETASK_ASSERT(best_objective < std::numeric_limits<double>::infinity());

  // Reconstruct the accept set backwards through the per-task choice bits.
  std::vector<bool> accepted(n, false);
  std::size_t w = best_w;
  for (std::size_t i = n; i-- > 0;) {
    if (take.test(i, w)) {
      accepted[i] = true;
      w -= static_cast<std::size_t>(problem.tasks()[i].cycles);
    }
  }
  RETASK_ASSERT(w == 0);
  return make_solution_on_one(problem, std::move(accepted));
}

}  // namespace retask
