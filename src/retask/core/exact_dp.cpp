#include "retask/core/exact_dp.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "retask/batch/wavefront.hpp"
#include "retask/cache/scratch.hpp"
#include "retask/core/dp_select.hpp"
#include "retask/cache/sweep.hpp"
#include "retask/common/bit_matrix.hpp"
#include "retask/common/error.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/obs/trace.hpp"
#include "retask/simd/kernels.hpp"

namespace retask {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Fills the knapsack table for `problem`'s task set at capacity `cap` into
/// the scratch arena: kept[w] = maximum total penalty of accepted tasks
/// whose cycles sum to exactly w, take(i, w) = the update at task i improved
/// state w (bit-packed). The table has a prefix property the sweep entry
/// point exploits: rows w <= c are identical for every fill capacity >= c,
/// because tasks with cycles > c only ever write rows >= their own cycle
/// count and rows <= c are reachable only through tasks that both fills
/// process identically.
void fill_table(const RejectionProblem& problem, Cycles cap, DpScratch& scratch) {
  const std::size_t n = problem.size();
  const auto width = static_cast<std::size_t>(cap) + 1;

  // Large single fills tile across the pool (bit-identical result; see
  // batch/wavefront.hpp). The gate declines small tables, jobs=1 and nested
  // parallelism, in which case the serial loop below runs as before.
  if (wavefront_fill(problem.tasks(), cap, scratch)) {
    // The tiled fill produced the same table; record the serial fill's cell
    // accounting anyway — the exact_dp.* counters are a pure function of the
    // task cycles (the reach recurrence below), so reports stay comparable
    // across wavefront modes. The tiling's own work lands under wavefront.*.
    RETASK_OBS_ONLY({
      std::uint64_t cells_touched = 0;
      std::uint64_t cells_skipped = 0;
      std::uint64_t tasks_pruned = 0;
      std::size_t reachable = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const FrameTask& task = problem.tasks()[i];
        if (task.cycles > cap) {
          ++tasks_pruned;
          cells_skipped += width;
          continue;
        }
        const auto ci = static_cast<std::size_t>(task.cycles);
        const std::size_t top = std::min(width - 1, reachable + ci);
        cells_touched += top + 1 - ci;
        cells_skipped += width - (top + 1 - ci);
        reachable = top;
      }
      RETASK_COUNT("exact_dp.cells_touched", cells_touched);
      RETASK_COUNT("exact_dp.cells_skipped", cells_skipped);
      RETASK_COUNT("exact_dp.tasks_pruned", tasks_pruned);
    })
    RETASK_RECORD("exact_dp.table_width", width);
    return;
  }

  std::vector<double>& kept = scratch.value;
  kept.assign(width, kNegInf);
  kept[0] = 0.0;
  BitMatrix& take = scratch.take;
  take.reset(n, width);

  // reachable: largest w with kept[w] > -inf so far; rows above it cannot
  // produce candidates, so the relaxation never visits them.
  std::size_t reachable = 0;
  const simd::KernelTable& kernels = simd::kernels();
  RETASK_OBS_ONLY(std::uint64_t cells_touched = 0; std::uint64_t cells_skipped = 0;
                  std::uint64_t tasks_pruned = 0;)
  for (std::size_t i = 0; i < n; ++i) {
    const FrameTask& task = problem.tasks()[i];
    if (task.cycles > cap) {  // can never be accepted
      RETASK_OBS_ONLY(++tasks_pruned; cells_skipped += width;)
      continue;
    }
    const auto ci = static_cast<std::size_t>(task.cycles);
    const std::size_t top = std::min(width - 1, reachable + ci);
    // The reachability bound prunes the row to [ci, top]; the cell counts
    // follow arithmetically so the relaxation stays untouched.
    RETASK_OBS_ONLY(cells_touched += top + 1 - ci; cells_skipped += width - (top + 1 - ci);)
    // Vectorized descending relaxation; kept[w - ci] == -inf stays -inf
    // after the add, so the explicit sentinel test of the old scalar loop
    // is subsumed (IEEE: -inf + finite == -inf, and -inf > x never holds).
    kernels.relax_desc_f64(kept.data(), take.row_words(i), ci, ci, top, task.penalty);
    reachable = top;
  }
  RETASK_COUNT("exact_dp.cells_touched", cells_touched);
  RETASK_COUNT("exact_dp.cells_skipped", cells_skipped);
  RETASK_COUNT("exact_dp.tasks_pruned", tasks_pruned);
  RETASK_RECORD("exact_dp.table_width", width);
}

/// Reads the best solution for `problem` off a table filled at capacity
/// >= `cap`: sweeps rows [0, cap] for the best objective and reconstructs
/// the accept set through the choice bits. Only rows <= cap are touched, so
/// a table filled at a larger capacity yields bit-identical results.
RejectionSolution select_best(const RejectionProblem& problem, Cycles cap, DpScratch& scratch) {
  const std::size_t n = problem.size();
  const BitMatrix& take = scratch.take;

  // Sweep achievable accepted-cycle totals for the best objective. The
  // energy evaluation is the expensive part (it optimizes the speed
  // schedule), so rows that cannot win are pruned before touching it: the
  // penalty term alone already losing skips the row, and E non-decreasing
  // in the load (the invariant the budgeted binary search and the
  // exhaustive bound also rely on; asserted for every registered power
  // model in tests/test_solve_cache.cpp) ends the sweep once the energy
  // term alone loses. The chunked helper batches the surviving rows
  // through the fused cycles->energy kernel while replaying exactly these
  // serial prunes, so the selected row is bit-identical to the naive
  // sweep's (see core/dp_select.hpp for the superset argument).
  const double total_penalty = problem.tasks().total_penalty();
  const DpSelectResult sel = select_best_row(
      scratch.value, static_cast<std::size_t>(cap), total_penalty,
      [&problem](const Cycles* cycles, double* out, std::size_t m) {
        problem.energy_of_cycles_batch(cycles, out, m);
      },
      scratch.select_cycles, scratch.select_energy);
  RETASK_COUNT("exact_dp.energy_evals", sel.energy_evals);
  RETASK_ASSERT(sel.best_objective < std::numeric_limits<double>::infinity());

  // Reconstruct the accept set backwards through the per-task choice bits.
  std::vector<bool> accepted(n, false);
  std::size_t w = sel.best_w;
  for (std::size_t i = n; i-- > 0;) {
    if (take.test(i, w)) {
      accepted[i] = true;
      w -= static_cast<std::size_t>(problem.tasks()[i].cycles);
    }
  }
  RETASK_ASSERT(w == 0);
  return make_solution_on_one(problem, std::move(accepted));
}

Cycles fill_capacity(const RejectionProblem& problem) {
  require(problem.processor_count() == 1, "ExactDpSolver: single-processor algorithm");
  const Cycles cap = std::min(problem.cycle_capacity(), problem.tasks().total_cycles());
  require(cap >= 0, "ExactDpSolver: negative capacity");
  return cap;
}

}  // namespace

RejectionSolution ExactDpSolver::solve(const RejectionProblem& problem) const {
  RETASK_SCOPED_TIMER("exact_dp.solve_ns");
  RETASK_TRACE_SCOPE("exact_dp.solve");
  const Cycles cap = fill_capacity(problem);
  DpScratch& scratch = exact_dp_scratch();
  fill_table(problem, cap, scratch);
  RETASK_COUNT("exact_dp.solves", 1);
  return select_best(problem, cap, scratch);
}

std::vector<RejectionSolution> ExactDpSolver::solve_sweep(
    const std::vector<const RejectionProblem*>& points) const {
  if (points.empty()) return {};

  // The warm start requires every point to share the task set (the table is
  // a function of nothing else); a mixed sweep falls back to per-point
  // solves so callers never have to pre-check.
  bool shared_tasks = true;
  for (std::size_t p = 1; p < points.size() && shared_tasks; ++p) {
    shared_tasks = same_task_sets(points[0]->tasks(), points[p]->tasks());
  }
  if (!shared_tasks || points.size() == 1) {
    RETASK_COUNT("dp.sweep_fallbacks", shared_tasks ? 0 : 1);
    return RejectionSolver::solve_sweep(points);
  }

  RETASK_SCOPED_TIMER("exact_dp.solve_sweep_ns");
  RETASK_TRACE_SCOPE("exact_dp.solve_sweep");
  std::vector<Cycles> caps(points.size());
  Cycles max_cap = 0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    caps[p] = fill_capacity(*points[p]);
    max_cap = std::max(max_cap, caps[p]);
  }

  // One fill at the largest capacity; every point reads its answer off the
  // shared prefix (see fill_table's prefix property for why rows <= cap_p
  // are bit-identical to a dedicated fill at cap_p).
  DpScratch& scratch = exact_dp_scratch();
  fill_table(*points[0], max_cap, scratch);
  RETASK_COUNT("exact_dp.solves", 1);
  RETASK_COUNT("dp.warm_starts", points.size() - 1);

  std::vector<RejectionSolution> solutions;
  solutions.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    solutions.push_back(select_best(*points[p], caps[p], scratch));
  }
  return solutions;
}

}  // namespace retask
