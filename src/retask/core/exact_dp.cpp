#include "retask/core/exact_dp.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "retask/common/bit_matrix.hpp"
#include "retask/common/error.hpp"

namespace retask {

RejectionSolution ExactDpSolver::solve(const RejectionProblem& problem) const {
  require(problem.processor_count() == 1, "ExactDpSolver: single-processor algorithm");
  const std::size_t n = problem.size();
  const Cycles cap = std::min(problem.cycle_capacity(), problem.tasks().total_cycles());
  require(cap >= 0, "ExactDpSolver: negative capacity");

  const auto width = static_cast<std::size_t>(cap) + 1;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  // kept[w]: maximum total penalty of accepted tasks whose cycles sum to
  // exactly w. take(i, w): the update at task i improved state w. The
  // choice table is bit-packed into one contiguous buffer.
  std::vector<double> kept(width, kNegInf);
  kept[0] = 0.0;
  BitMatrix take;
  take.reset(n, width);

  // reachable: largest w with kept[w] > -inf so far; rows above it cannot
  // produce candidates, so the inner loop never visits them.
  std::size_t reachable = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const FrameTask& task = problem.tasks()[i];
    if (task.cycles > cap) continue;  // can never be accepted
    const auto ci = static_cast<std::size_t>(task.cycles);
    const std::size_t top = std::min(width - 1, reachable + ci);
    for (std::size_t w = top + 1; w-- > ci;) {
      const double candidate = kept[w - ci] == kNegInf ? kNegInf : kept[w - ci] + task.penalty;
      if (candidate > kept[w]) {
        kept[w] = candidate;
        take.set(i, w);
      }
    }
    reachable = top;
  }

  // Sweep achievable accepted-cycle totals for the best objective. The
  // energy evaluation is the expensive part (it optimizes the speed
  // schedule), so rows that cannot win are pruned before touching it: the
  // penalty term alone already losing skips the row, and E non-decreasing
  // in the load (the invariant the budgeted binary search and the
  // exhaustive bound also rely on) ends the sweep once the energy term
  // alone loses. Both prunes only drop rows with objective >= the current
  // best, so the selected row is exactly the naive sweep's.
  const double total_penalty = problem.tasks().total_penalty();
  double best_objective = std::numeric_limits<double>::infinity();
  std::size_t best_w = 0;
  for (std::size_t w = 0; w < width; ++w) {
    if (kept[w] == kNegInf) continue;
    const double penalty = total_penalty - kept[w];
    if (penalty >= best_objective) continue;
    const double energy = problem.energy_of_cycles(static_cast<Cycles>(w));
    if (energy >= best_objective) break;
    const double objective = energy + penalty;
    if (objective < best_objective) {
      best_objective = objective;
      best_w = w;
    }
  }
  RETASK_ASSERT(best_objective < std::numeric_limits<double>::infinity());

  // Reconstruct the accept set backwards through the per-task choice bits.
  std::vector<bool> accepted(n, false);
  std::size_t w = best_w;
  for (std::size_t i = n; i-- > 0;) {
    if (take.test(i, w)) {
      accepted[i] = true;
      w -= static_cast<std::size_t>(problem.tasks()[i].cycles);
    }
  }
  RETASK_ASSERT(w == 0);
  return make_solution_on_one(problem, std::move(accepted));
}

}  // namespace retask
