#include "retask/core/leakage_aware.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/core/multiproc.hpp"
#include "retask/power/critical_speed.hpp"

namespace retask {

RejectionProblem strip_sleep_overheads(const RejectionProblem& problem) {
  const EnergyCurve& curve = problem.curve();
  return RejectionProblem(problem.tasks(),
                          EnergyCurve(curve.model(), curve.window(), curve.idle()),
                          problem.work_per_cycle(), problem.processor_count());
}

RejectionSolution LeakageAwareLtfFfSolver::solve(const RejectionProblem& problem) const {
  const RejectionSolution base = MultiProcLtfRejectSolver().solve(problem);

  // Consolidation targets: processors whose load fits under the critical
  // rate (their tasks execute at the critical speed, so moving them between
  // processors does not change execution energy — only wake/idle costs).
  const EnergyCurve& curve = problem.curve();
  const double s_crit = critical_speed(curve.model());
  const double crit_capacity_work = std::min(s_crit * curve.window(), curve.max_workload());
  const auto crit_capacity =
      static_cast<Cycles>(std::floor(crit_capacity_work / problem.work_per_cycle() + 1e-9));

  const std::vector<Cycles> loads = processor_loads(problem, base);
  std::vector<bool> light(loads.size(), false);
  std::vector<std::size_t> movable_tasks;
  for (std::size_t p = 0; p < loads.size(); ++p) light[p] = loads[p] <= crit_capacity;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    if (!base.accepted[i]) continue;
    const auto p = static_cast<std::size_t>(base.processor_of[i]);
    if (light[p]) movable_tasks.push_back(i);
  }
  if (movable_tasks.size() < 2) return base;

  // First-fit decreasing at the critical-rate capacity over the light
  // processors (kept in index order so the tail processors empty out).
  std::vector<std::size_t> light_procs;
  for (std::size_t p = 0; p < loads.size(); ++p) {
    if (light[p]) light_procs.push_back(p);
  }
  std::stable_sort(movable_tasks.begin(), movable_tasks.end(), [&](std::size_t a, std::size_t b) {
    return problem.tasks()[a].cycles > problem.tasks()[b].cycles;
  });

  std::vector<int> new_processor_of = base.processor_of;
  std::vector<Cycles> bin_load(light_procs.size(), 0);
  for (const std::size_t i : movable_tasks) {
    const Cycles c = problem.tasks()[i].cycles;
    bool placed = false;
    for (std::size_t b = 0; b < light_procs.size(); ++b) {
      if (bin_load[b] + c <= crit_capacity) {
        bin_load[b] += c;
        new_processor_of[i] = static_cast<int>(light_procs[b]);
        placed = true;
        break;
      }
    }
    // First-fit can in principle need more bins than the packing the base
    // schedule proves exists; in that case skip the consolidation.
    if (!placed) return base;
  }

  const RejectionSolution packed = make_solution(problem, base.accepted, new_processor_of);
  return packed.objective() < base.objective() ? packed : base;
}

}  // namespace retask
