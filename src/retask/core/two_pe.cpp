#include "retask/core/two_pe.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/problem.hpp"

namespace retask {

TwoPeProblem::TwoPeProblem(std::vector<TwoPeTask> tasks, EnergyCurve dvs_curve,
                           double work_per_cycle, double pe2_power, Pe2EnergyModel pe2_model)
    : tasks_(std::move(tasks)),
      dvs_curve_(std::move(dvs_curve)),
      work_per_cycle_(work_per_cycle),
      pe2_power_(pe2_power),
      pe2_model_(pe2_model) {
  require(work_per_cycle_ > 0.0, "TwoPeProblem: work_per_cycle must be positive");
  require(pe2_power_ >= 0.0, "TwoPeProblem: pe2_power must be non-negative");
  for (const TwoPeTask& task : tasks_) {
    validate(task);
    total_penalty_ += task.penalty;
  }
  dvs_cycle_capacity_ = static_cast<Cycles>(
      std::floor(dvs_curve_.max_workload() / work_per_cycle_ * (1.0 + 1e-12) + 1e-9));
}

double TwoPeProblem::dvs_energy(Cycles cycles) const {
  require(cycles >= 0, "TwoPeProblem::dvs_energy: negative cycles");
  return dvs_curve_.energy(work_per_cycle_ * static_cast<double>(cycles));
}

double TwoPeProblem::pe2_energy(double u2) const {
  require(u2 >= 0.0 && leq_tol(u2, 1.0), "TwoPeProblem::pe2_energy: utilization out of range");
  if (pe2_model_ == Pe2EnergyModel::kWorkloadDependent) {
    return pe2_power_ * dvs_curve_.window() * u2;
  }
  return u2 > 0.0 ? pe2_power_ * dvs_curve_.window() : 0.0;
}

std::size_t TwoPeSolution::count(TwoPePlacement where) const {
  std::size_t n = 0;
  for (const TwoPePlacement p : placement) n += (p == where) ? 1 : 0;
  return n;
}

TwoPeSolution make_two_pe_solution(const TwoPeProblem& problem,
                                   std::vector<TwoPePlacement> placement) {
  require(placement.size() == problem.size(), "make_two_pe_solution: placement size mismatch");
  Cycles dvs_cycles = 0;
  double u2 = 0.0;
  double penalty = 0.0;
  for (std::size_t i = 0; i < placement.size(); ++i) {
    switch (placement[i]) {
      case TwoPePlacement::kDvs:
        dvs_cycles += problem.tasks()[i].cycles;
        break;
      case TwoPePlacement::kNonDvs:
        u2 += problem.tasks()[i].pe2_utilization;
        break;
      case TwoPePlacement::kRejected:
        penalty += problem.tasks()[i].penalty;
        break;
    }
  }
  require(dvs_cycles <= problem.dvs_cycle_capacity(),
          "make_two_pe_solution: DVS capacity exceeded");
  require(leq_tol(u2, 1.0), "make_two_pe_solution: non-DVS PE capacity exceeded");

  TwoPeSolution solution;
  solution.placement = std::move(placement);
  solution.dvs_energy = problem.dvs_energy(dvs_cycles);
  solution.pe2_energy = problem.pe2_energy(std::min(u2, 1.0));
  solution.penalty = penalty;
  return solution;
}

namespace {

/// Objective of aggregates (no placement materialization).
double aggregate_objective(const TwoPeProblem& problem, Cycles dvs_cycles, double u2,
                           double penalty) {
  return problem.dvs_energy(dvs_cycles) + problem.pe2_energy(std::min(u2, 1.0)) + penalty;
}

/// Runs the exact single-processor rejection DP on the DVS-assigned tasks
/// and applies its verdicts to `placement`.
void reject_optimally_on_dvs(const TwoPeProblem& problem,
                             std::vector<TwoPePlacement>& placement) {
  std::vector<FrameTask> dvs_tasks;
  std::vector<std::size_t> index;
  for (std::size_t i = 0; i < placement.size(); ++i) {
    if (placement[i] == TwoPePlacement::kDvs) {
      const TwoPeTask& t = problem.tasks()[i];
      dvs_tasks.push_back({t.id, t.cycles, t.penalty});
      index.push_back(i);
    }
  }
  if (dvs_tasks.empty()) return;
  const RejectionProblem sub(FrameTaskSet(std::move(dvs_tasks)), problem.dvs_curve(),
                             problem.work_per_cycle(), 1);
  const RejectionSolution verdict = ExactDpSolver().solve(sub);
  for (std::size_t k = 0; k < index.size(); ++k) {
    placement[index[k]] =
        verdict.accepted[k] ? TwoPePlacement::kDvs : TwoPePlacement::kRejected;
  }
}

/// Shared epilogue of the constructive solvers: optimal rejection on the DVS
/// side, worth-its-power pruning on a workload-dependent PE2, and the
/// "shutdown alternative" (move PE2 work back / reject it, power the PE off)
/// — the source papers' best-solution-so-far discipline.
TwoPeSolution finalize_placement(const TwoPeProblem& problem,
                                 std::vector<TwoPePlacement> placement) {
  const std::size_t n = problem.size();
  reject_optimally_on_dvs(problem, placement);

  if (problem.pe2_model() == Pe2EnergyModel::kWorkloadDependent) {
    for (std::size_t i = 0; i < n; ++i) {
      if (placement[i] != TwoPePlacement::kNonDvs) continue;
      const TwoPeTask& t = problem.tasks()[i];
      if (t.penalty < problem.pe2_energy(t.pe2_utilization)) {
        placement[i] = TwoPePlacement::kRejected;
      }
    }
  }
  TwoPeSolution best = make_two_pe_solution(problem, placement);

  if (best.count(TwoPePlacement::kNonDvs) > 0) {
    std::vector<TwoPePlacement> off = placement;
    Cycles dvs_load = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (off[i] == TwoPePlacement::kDvs) dvs_load += problem.tasks()[i].cycles;
    }
    std::vector<std::size_t> pe2_tasks;
    for (std::size_t i = 0; i < n; ++i) {
      if (off[i] == TwoPePlacement::kNonDvs) pe2_tasks.push_back(i);
    }
    // Most valuable work per DVS cycle claims the DVS capacity first.
    std::stable_sort(pe2_tasks.begin(), pe2_tasks.end(), [&](std::size_t a, std::size_t b) {
      const TwoPeTask& ta = problem.tasks()[a];
      const TwoPeTask& tb = problem.tasks()[b];
      return ta.penalty * static_cast<double>(tb.cycles) >
             tb.penalty * static_cast<double>(ta.cycles);
    });
    for (const std::size_t i : pe2_tasks) {
      if (dvs_load + problem.tasks()[i].cycles <= problem.dvs_cycle_capacity()) {
        off[i] = TwoPePlacement::kDvs;
        dvs_load += problem.tasks()[i].cycles;
      } else {
        off[i] = TwoPePlacement::kRejected;
      }
    }
    reject_optimally_on_dvs(problem, off);
    const TwoPeSolution shutdown = make_two_pe_solution(problem, std::move(off));
    if (shutdown.objective() < best.objective()) best = shutdown;
  }
  return best;
}

/// Cheap candidate evaluation used by the scanning solvers: energy of the
/// placement after a density-greedy (not DP) rejection pass on an overloaded
/// DVS side. Monotone enough to rank candidates; the winner gets the full
/// finalize_placement treatment.
double quick_objective(const TwoPeProblem& problem, const std::vector<TwoPePlacement>& placement) {
  Cycles dvs_cycles = 0;
  double u2 = 0.0;
  double penalty = 0.0;
  std::vector<std::size_t> dvs_index;
  for (std::size_t i = 0; i < placement.size(); ++i) {
    const TwoPeTask& t = problem.tasks()[i];
    switch (placement[i]) {
      case TwoPePlacement::kDvs:
        dvs_cycles += t.cycles;
        dvs_index.push_back(i);
        break;
      case TwoPePlacement::kNonDvs:
        u2 += t.pe2_utilization;
        break;
      case TwoPePlacement::kRejected:
        penalty += t.penalty;
        break;
    }
  }
  if (!leq_tol(u2, 1.0)) return std::numeric_limits<double>::infinity();
  // Density-greedy shed until the DVS side fits.
  std::stable_sort(dvs_index.begin(), dvs_index.end(), [&](std::size_t a, std::size_t b) {
    const TwoPeTask& ta = problem.tasks()[a];
    const TwoPeTask& tb = problem.tasks()[b];
    return ta.penalty * static_cast<double>(tb.cycles) <
           tb.penalty * static_cast<double>(ta.cycles);
  });
  for (const std::size_t i : dvs_index) {
    if (dvs_cycles <= problem.dvs_cycle_capacity()) break;
    dvs_cycles -= problem.tasks()[i].cycles;
    penalty += problem.tasks()[i].penalty;
  }
  if (dvs_cycles > problem.dvs_cycle_capacity()) return std::numeric_limits<double>::infinity();
  return problem.dvs_energy(dvs_cycles) + problem.pe2_energy(std::min(u2, 1.0)) + penalty;
}

}  // namespace

TwoPeSolution TwoPeGreedySolver::solve(const TwoPeProblem& problem) const {
  const std::size_t n = problem.size();
  std::vector<TwoPePlacement> placement(n, TwoPePlacement::kDvs);

  // Offload pass: tasks with the most DVS work per unit of PE2 capacity
  // first (the venue's "good candidates" rule), moved while the PE2 fits and
  // the exact energy trade pays.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const TwoPeTask& ta = problem.tasks()[a];
    const TwoPeTask& tb = problem.tasks()[b];
    return static_cast<double>(ta.cycles) * tb.pe2_utilization >
           static_cast<double>(tb.cycles) * ta.pe2_utilization;
  });

  Cycles dvs_cycles = 0;
  for (const TwoPeTask& t : problem.tasks()) dvs_cycles += t.cycles;
  double u2 = 0.0;
  const Cycles cap = problem.dvs_cycle_capacity();

  for (const std::size_t i : order) {
    const TwoPeTask& t = problem.tasks()[i];
    if (!leq_tol(u2 + t.pe2_utilization, 1.0)) continue;
    // While the DVS side is overloaded, offloading is about feasibility;
    // afterwards it must pay for itself.
    const bool overloaded = dvs_cycles > cap;
    if (!overloaded) {
      const double saving = problem.dvs_energy(dvs_cycles) -
                            problem.dvs_energy(dvs_cycles - t.cycles);
      const double cost =
          problem.pe2_energy(std::min(u2 + t.pe2_utilization, 1.0)) - problem.pe2_energy(u2);
      if (saving <= cost) continue;
    }
    placement[i] = TwoPePlacement::kNonDvs;
    dvs_cycles -= t.cycles;
    u2 += t.pe2_utilization;
  }

  return finalize_placement(problem, std::move(placement));
}

TwoPeSolution TwoPeLocalSearchSolver::solve(const TwoPeProblem& problem) const {
  TwoPeSolution seed = TwoPeGreedySolver().solve(problem);
  std::vector<TwoPePlacement> placement = seed.placement;
  const std::size_t n = problem.size();

  Cycles dvs_cycles = 0;
  double u2 = 0.0;
  double penalty = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    switch (placement[i]) {
      case TwoPePlacement::kDvs: dvs_cycles += problem.tasks()[i].cycles; break;
      case TwoPePlacement::kNonDvs: u2 += problem.tasks()[i].pe2_utilization; break;
      case TwoPePlacement::kRejected: penalty += problem.tasks()[i].penalty; break;
    }
  }
  double objective = aggregate_objective(problem, dvs_cycles, u2, penalty);

  const std::size_t max_moves = 3 * n * n + 20;
  for (std::size_t move = 0; move < max_moves; ++move) {
    double best_objective = objective - 1e-12 * std::max(objective, 1.0);
    std::size_t best_task = n;
    TwoPePlacement best_target = TwoPePlacement::kRejected;

    for (std::size_t i = 0; i < n; ++i) {
      const TwoPeTask& t = problem.tasks()[i];
      // Aggregates with task i removed from its current spot.
      Cycles base_cycles = dvs_cycles;
      double base_u2 = u2;
      double base_penalty = penalty;
      switch (placement[i]) {
        case TwoPePlacement::kDvs: base_cycles -= t.cycles; break;
        case TwoPePlacement::kNonDvs: base_u2 -= t.pe2_utilization; break;
        case TwoPePlacement::kRejected: base_penalty -= t.penalty; break;
      }
      for (const TwoPePlacement target :
           {TwoPePlacement::kRejected, TwoPePlacement::kDvs, TwoPePlacement::kNonDvs}) {
        if (target == placement[i]) continue;
        Cycles c = base_cycles;
        double u = base_u2;
        double r = base_penalty;
        switch (target) {
          case TwoPePlacement::kDvs: c += t.cycles; break;
          case TwoPePlacement::kNonDvs: u += t.pe2_utilization; break;
          case TwoPePlacement::kRejected: r += t.penalty; break;
        }
        if (c > problem.dvs_cycle_capacity() || !leq_tol(u, 1.0)) continue;
        const double candidate = aggregate_objective(problem, c, u, r);
        if (candidate < best_objective) {
          best_objective = candidate;
          best_task = i;
          best_target = target;
        }
      }
    }
    if (best_task == n) break;
    const TwoPeTask& t = problem.tasks()[best_task];
    switch (placement[best_task]) {
      case TwoPePlacement::kDvs: dvs_cycles -= t.cycles; break;
      case TwoPePlacement::kNonDvs: u2 -= t.pe2_utilization; break;
      case TwoPePlacement::kRejected: penalty -= t.penalty; break;
    }
    switch (best_target) {
      case TwoPePlacement::kDvs: dvs_cycles += t.cycles; break;
      case TwoPePlacement::kNonDvs: u2 += t.pe2_utilization; break;
      case TwoPePlacement::kRejected: penalty += t.penalty; break;
    }
    placement[best_task] = best_target;
    objective = best_objective;
  }
  return make_two_pe_solution(problem, std::move(placement));
}

namespace {

struct TwoPeSearch {
  const TwoPeProblem* problem = nullptr;
  std::vector<std::size_t> order;
  std::vector<TwoPePlacement> choice;
  double best_objective = std::numeric_limits<double>::infinity();
  std::vector<TwoPePlacement> best_choice;

  void run(std::size_t pos, Cycles dvs_cycles, double u2, double penalty) {
    const double committed = aggregate_objective(*problem, dvs_cycles, u2, penalty);
    if (pos == order.size()) {
      if (committed < best_objective) {
        best_objective = committed;
        best_choice = choice;
      }
      return;
    }
    // Every completion only adds energy or penalty.
    if (committed >= best_objective) return;

    const std::size_t i = order[pos];
    const TwoPeTask& t = problem->tasks()[i];
    if (dvs_cycles + t.cycles <= problem->dvs_cycle_capacity()) {
      choice[pos] = TwoPePlacement::kDvs;
      run(pos + 1, dvs_cycles + t.cycles, u2, penalty);
    }
    if (leq_tol(u2 + t.pe2_utilization, 1.0)) {
      choice[pos] = TwoPePlacement::kNonDvs;
      run(pos + 1, dvs_cycles, u2 + t.pe2_utilization, penalty);
    }
    choice[pos] = TwoPePlacement::kRejected;
    run(pos + 1, dvs_cycles, u2, penalty + t.penalty);
  }
};

}  // namespace

TwoPeSolution TwoPeExhaustiveSolver::solve(const TwoPeProblem& problem) const {
  const std::size_t n = problem.size();
  double states = 1.0;
  for (std::size_t i = 0; i < n; ++i) states *= 3.0;
  require(states <= 5e6, "TwoPeExhaustiveSolver: instance too large (3^n > 5e6)");

  TwoPeSearch search;
  search.problem = &problem;
  search.order.resize(n);
  std::iota(search.order.begin(), search.order.end(), std::size_t{0});
  std::stable_sort(search.order.begin(), search.order.end(), [&](std::size_t a, std::size_t b) {
    return problem.tasks()[a].cycles > problem.tasks()[b].cycles;
  });
  search.choice.assign(n, TwoPePlacement::kRejected);
  search.run(0, 0, 0.0, 0.0);
  RETASK_ASSERT(search.best_objective < std::numeric_limits<double>::infinity());

  std::vector<TwoPePlacement> placement(n, TwoPePlacement::kRejected);
  for (std::size_t pos = 0; pos < n; ++pos) placement[search.order[pos]] = search.best_choice[pos];
  return make_two_pe_solution(problem, std::move(placement));
}

TwoPeSolution TwoPeDvsOnlySolver::solve(const TwoPeProblem& problem) const {
  std::vector<TwoPePlacement> placement(problem.size(), TwoPePlacement::kDvs);
  reject_optimally_on_dvs(problem, placement);
  return make_two_pe_solution(problem, std::move(placement));
}

TwoPeSolution TwoPeEGreedySolver::solve(const TwoPeProblem& problem) const {
  const std::size_t n = problem.size();
  // Candidates: offload the first k tasks (in decreasing DVS-demand per PE2
  // utilization) that still fit the PE2, for every k — the eviction scan of
  // the minimum-knapsack E-GREEDY, generalized so every prefix is a "best
  // solution so far" candidate.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const TwoPeTask& ta = problem.tasks()[a];
    const TwoPeTask& tb = problem.tasks()[b];
    return static_cast<double>(ta.cycles) * tb.pe2_utilization >
           static_cast<double>(tb.cycles) * ta.pe2_utilization;
  });

  double best_quick = std::numeric_limits<double>::infinity();
  std::vector<TwoPePlacement> best_placement(n, TwoPePlacement::kDvs);

  std::vector<TwoPePlacement> placement(n, TwoPePlacement::kDvs);
  double u2 = 0.0;
  for (std::size_t k = 0; k <= n; ++k) {
    const double quick = quick_objective(problem, placement);
    if (quick < best_quick) {
      best_quick = quick;
      best_placement = placement;
    }
    if (k == n) break;
    const TwoPeTask& t = problem.tasks()[order[k]];
    if (leq_tol(u2 + t.pe2_utilization, 1.0)) {
      placement[order[k]] = TwoPePlacement::kNonDvs;
      u2 += t.pe2_utilization;
    }
  }
  return finalize_placement(problem, std::move(best_placement));
}

TwoPeOffloadDpSolver::TwoPeOffloadDpSolver(double delta) : delta_(delta) {
  require(delta > 0.0, "TwoPeOffloadDpSolver: delta must be positive");
}

std::string TwoPeOffloadDpSolver::name() const {
  std::ostringstream os;
  os << "2PE-DP(" << delta_ << ")";
  return os.str();
}

TwoPeSolution TwoPeOffloadDpSolver::solve(const TwoPeProblem& problem) const {
  const std::size_t n = problem.size();
  Cycles total = 0;
  for (const TwoPeTask& t : problem.tasks()) total += t.cycles;

  // Scaled-cycle grid: bucket size ~ delta * total / n keeps the table at
  // ~n/delta entries; bucket 1 makes the DP exact.
  const auto bucket = std::max<Cycles>(
      1, static_cast<Cycles>(delta_ * static_cast<double>(total) / static_cast<double>(n)));
  std::vector<Cycles> scaled(n);
  Cycles scaled_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = problem.tasks()[i].cycles / bucket;  // floor
    scaled_total += scaled[i];
  }

  // dp[s] = minimum PE2 utilization to offload scaled volume exactly s.
  const auto width = static_cast<std::size_t>(scaled_total) + 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(width, kInf);
  dp[0] = 0.0;
  std::vector<std::vector<bool>> take(n, std::vector<bool>(width, false));
  for (std::size_t i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(scaled[i]);
    const double ui = problem.tasks()[i].pe2_utilization;
    for (std::size_t s = width; s-- > si;) {
      if (dp[s - si] == kInf) continue;
      const double candidate = dp[s - si] + ui;
      if (candidate < dp[s]) {
        dp[s] = candidate;
        take[i][s] = true;
      }
    }
  }

  // Evaluate every offload volume whose utilization fits; keep the best by
  // the quick objective, then finalize the winner.
  double best_quick = kInf;
  std::vector<TwoPePlacement> best_placement(n, TwoPePlacement::kDvs);
  for (std::size_t s = 0; s < width; ++s) {
    if (!leq_tol(dp[s], 1.0)) continue;
    std::vector<TwoPePlacement> placement(n, TwoPePlacement::kDvs);
    std::size_t w = s;
    for (std::size_t i = n; i-- > 0;) {
      if (take[i][w]) {
        placement[i] = TwoPePlacement::kNonDvs;
        w -= static_cast<std::size_t>(scaled[i]);
      }
    }
    RETASK_ASSERT(w == 0);
    const double quick = quick_objective(problem, placement);
    if (quick < best_quick) {
      best_quick = quick;
      best_placement = std::move(placement);
    }
  }
  return finalize_placement(problem, std::move(best_placement));
}

}  // namespace retask
