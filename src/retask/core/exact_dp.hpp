// Pseudo-polynomial exact algorithm for single-processor task rejection.
//
// Hardness note (the paper's "hardness analysis"): with a linear energy
// curve E(W) = e * W the problem reads
//
//     min over R subset of T:  e * (W(T) - W(R)) + rho(R)
//     s.t.  W(T) - W(R) <= Wmax
//
// i.e. "pick rejected tasks maximizing saved energy minus paid penalty under
// a knapsack capacity" — exactly 0/1 knapsack, so the rejection problem is
// NP-hard, and a convex curve only generalizes the objective. NP-hardness in
// the ordinary sense is matched by this pseudo-polynomial DP, which is why
// the problem is NOT strongly NP-hard and admits the FPTAS in fptas.hpp.
//
// The DP: because the objective depends on the accept set only through its
// total cycles W and its rejected penalty, it suffices to know, for every
// achievable accepted cycle count w <= Wcap, the maximum total penalty that
// can be kept accepted. That is a 0/1-knapsack table over cycles,
// O(n * Wcap) time, after which one sweep over w picks
// min E(w) + (rho_total - kept(w)).
#ifndef RETASK_CORE_EXACT_DP_HPP
#define RETASK_CORE_EXACT_DP_HPP

#include "retask/core/solver.hpp"

namespace retask {

/// Optimal single-processor solver, O(n * Wcap) time and O(n * Wcap / 8)
/// bytes for choice reconstruction.
class ExactDpSolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "OPT-DP"; }

  /// Warm-started sweep: when every point shares one task set (capacity /
  /// work_per_cycle sweeps), the knapsack table is filled once at the
  /// largest capacity and each point's answer is read off the shared
  /// prefix — the table rows w <= cap are bit-identical to a dedicated
  /// fill at cap, so results match per-point solve() exactly. Points with
  /// differing task sets fall back to the per-point loop.
  std::vector<RejectionSolution> solve_sweep(
      const std::vector<const RejectionProblem*>& points) const override;
};

}  // namespace retask

#endif  // RETASK_CORE_EXACT_DP_HPP
