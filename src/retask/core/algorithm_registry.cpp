#include "retask/core/algorithm_registry.hpp"

#include <cmath>
#include <cstdlib>

#include "retask/common/error.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/exhaustive.hpp"
#include "retask/core/fptas.hpp"
#include "retask/core/greedy.hpp"
#include "retask/core/leakage_aware.hpp"
#include "retask/core/mp_scale.hpp"
#include "retask/core/multiproc.hpp"

namespace retask {

std::unique_ptr<RejectionSolver> make_solver(const std::string& name) {
  if (name == "opt-dp") return std::make_unique<ExactDpSolver>();
  if (name == "opt-exh") return std::make_unique<ExhaustiveSolver>();
  if (name == "greedy") return std::make_unique<DensityGreedySolver>();
  if (name == "ls-greedy") return std::make_unique<MarginalGreedySolver>();
  if (name == "all-accept") return std::make_unique<AllAcceptSolver>();
  if (name == "rand") return std::make_unique<RandomRejectSolver>();
  if (name == "mp-ltf-dp") return std::make_unique<MultiProcLtfRejectSolver>();
  if (name == "la-ltf-ff") return std::make_unique<LeakageAwareLtfFfSolver>();
  if (name == "mp-greedy") return std::make_unique<MultiProcGreedySolver>();
  if (name == "mp-rand") return std::make_unique<MultiProcRandSolver>();
  if (name == "mp-opt-exh") return std::make_unique<MultiProcExhaustiveSolver>();
  if (name == "mp-scale") return std::make_unique<MultiProcScaleSolver>();
  if (name.rfind("fptas:", 0) == 0) {
    const std::string arg = name.substr(6);
    char* end = nullptr;
    const double eps = std::strtod(arg.c_str(), &end);
    require(end != nullptr && *end == '\0' && std::isfinite(eps) && eps > 0.0,
            "make_solver: fptas epsilon must be a positive finite number, e.g. fptas:0.1");
    return std::make_unique<FptasSolver>(eps);
  }
  throw Error("make_solver: unknown solver name '" + name + "'");
}

std::vector<std::string> known_solver_names() {
  return {"opt-dp",   "opt-exh",   "fptas:0.1", "greedy",   "ls-greedy", "all-accept", "rand",
          "mp-ltf-dp", "la-ltf-ff", "mp-greedy", "mp-rand", "mp-opt-exh", "mp-scale"};
}

bool is_multiprocessor_solver(const std::string& name) {
  return name.rfind("mp-", 0) == 0 || name == "la-ltf-ff";
}

std::vector<std::unique_ptr<RejectionSolver>> standard_uniproc_lineup() {
  std::vector<std::unique_ptr<RejectionSolver>> lineup;
  lineup.push_back(make_solver("opt-dp"));
  lineup.push_back(make_solver("fptas:0.1"));
  lineup.push_back(make_solver("ls-greedy"));
  lineup.push_back(make_solver("greedy"));
  lineup.push_back(make_solver("all-accept"));
  lineup.push_back(make_solver("rand"));
  return lineup;
}

std::vector<std::unique_ptr<RejectionSolver>> standard_multiproc_lineup() {
  std::vector<std::unique_ptr<RejectionSolver>> lineup;
  lineup.push_back(make_solver("mp-ltf-dp"));
  lineup.push_back(make_solver("mp-scale"));
  lineup.push_back(make_solver("mp-greedy"));
  lineup.push_back(make_solver("mp-rand"));
  return lineup;
}

}  // namespace retask
