#include "retask/core/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/power/critical_speed.hpp"
#include "retask/sched/partition.hpp"

namespace retask {
namespace {

double capacity_work(const AllocationProblem& problem) { return problem.curve.max_workload(); }

double task_work(const AllocationProblem& problem, std::size_t i) {
  return problem.work_per_cycle * static_cast<double>(problem.tasks[i].cycles);
}

double total_work(const AllocationProblem& problem) {
  return problem.work_per_cycle * static_cast<double>(problem.tasks.total_cycles());
}

/// Energy of a concrete partition; infinity when any bin overflows.
double partition_energy(const AllocationProblem& problem, const Partition& partition) {
  for (const double load : partition.loads) {
    if (!problem.curve.feasible(load)) return std::numeric_limits<double>::infinity();
  }
  double energy = 0.0;
  for (const double load : partition.loads) energy += problem.curve.energy(load);
  return energy;
}

/// Grows the processor count from the lower bound until `make_partition`
/// yields a packing within budget. The count is capped at one processor per
/// task plus slack processors for energy (idle processors cost E(0), which
/// can matter for dormant-disable curves, so growth stops when adding
/// processors stops helping).
template <typename MakePartition>
AllocationResult grow_until_within_budget(const AllocationProblem& problem,
                                          MakePartition make_partition) {
  const int lb = allocation_lower_bound(problem);
  const int hard_cap = static_cast<int>(problem.tasks.size()) + lb + 4;
  for (int m = lb; m <= hard_cap; ++m) {
    const Partition partition = make_partition(m);
    bool all_placed = true;
    for (const int b : partition.bin_of) all_placed = all_placed && b >= 0;
    if (!all_placed) continue;
    const double energy = partition_energy(problem, partition);
    if (leq_tol(energy, problem.energy_budget)) {
      AllocationResult result;
      result.processors = m;
      result.processor_of = partition.bin_of;
      result.energy = energy;
      result.cost = m * problem.cost_per_processor;
      return result;
    }
  }
  throw Error("allocation: no processor count within the search cap meets the energy budget");
}

}  // namespace

void validate(const AllocationProblem& problem) {
  require(problem.work_per_cycle > 0.0, "AllocationProblem: work_per_cycle must be positive");
  require(problem.energy_budget > 0.0, "AllocationProblem: energy budget must be positive");
  require(problem.cost_per_processor > 0.0,
          "AllocationProblem: processor cost must be positive");
  require(!problem.tasks.empty(), "AllocationProblem: task set must not be empty");
  for (std::size_t i = 0; i < problem.tasks.size(); ++i) {
    require(leq_tol(task_work(problem, i), capacity_work(problem)),
            "AllocationProblem: a task exceeds one processor's capacity");
  }
}

double balanced_energy(const AllocationProblem& problem, int m) {
  require(m >= 1, "balanced_energy: processor count must be positive");
  const double share = total_work(problem) / m;
  if (!problem.curve.feasible(share)) return std::numeric_limits<double>::infinity();
  return m * problem.curve.energy(share);
}

int allocation_lower_bound(const AllocationProblem& problem) {
  validate(problem);
  const auto m_timing = static_cast<int>(
      std::ceil(total_work(problem) / capacity_work(problem) - 1e-9));
  int m = std::max(1, m_timing);
  // Balanced energy is non-increasing in m for dormant-enable curves but can
  // grow again for dormant-disable ones (idle processors leak); scan up to a
  // generous cap and keep the first m within budget.
  const int hard_cap = static_cast<int>(problem.tasks.size()) + m + 4;
  while (m <= hard_cap && !leq_tol(balanced_energy(problem, m), problem.energy_budget)) {
    ++m;
  }
  require(m <= hard_cap,
          "allocation_lower_bound: the energy budget is below the workload's minimum energy");
  return m;
}

AllocationResult allocate_first_fit(const AllocationProblem& problem) {
  validate(problem);
  std::vector<double> weights(problem.tasks.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = task_work(problem, i);
  }
  // First-fit decreasing: sort once, let first-fit scan in that order.
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return weights[a] > weights[b]; });
  std::vector<double> sorted(weights.size());
  for (std::size_t k = 0; k < order.size(); ++k) sorted[k] = weights[order[k]];

  // Estimated-utilization packing (the RS-LEUF baseline's first-fit): for a
  // candidate count m, the relaxation speed is max(W/(m*D), s*) per window,
  // each task's estimated utilization is its work over the larger of that
  // relaxation budget and its own single-processor demand, and bins have
  // unit utilization capacity. Small m -> high speeds -> small utilizations
  // -> few bins; large m -> critical-speed bins -> minimum energy.
  const double crit_cap = std::min(
      critical_speed(problem.curve.model()) * problem.curve.window(), capacity_work(problem));
  const double total = total_work(problem);

  AllocationResult result = grow_until_within_budget(problem, [&](int m) {
    // One bin of headroom: sizing utilizations for the (m-1)-relaxation
    // leaves first-fit the slack it needs to actually place everything in m
    // bins (with exact-fit sizing the packing degenerates and first-fit
    // always overflows into the critical-speed regime).
    const double relax_budget = clamp(std::max(total / std::max(1, m - 1), crit_cap), crit_cap,
                                      capacity_work(problem));
    std::vector<double> util(sorted.size());
    for (std::size_t k = 0; k < sorted.size(); ++k) {
      util[k] = sorted[k] / std::max(relax_budget, sorted[k]);
    }
    const Partition util_partition =
        partition_items(util, m, PartitionPolicy::kFirstFit, 1.0);
    Partition partition;
    partition.loads.assign(static_cast<std::size_t>(m), 0.0);
    partition.bin_of.assign(weights.size(), -1);
    for (std::size_t k = 0; k < order.size(); ++k) {
      partition.bin_of[order[k]] = util_partition.bin_of[k];
      if (util_partition.bin_of[k] >= 0) {
        partition.loads[static_cast<std::size_t>(util_partition.bin_of[k])] += sorted[k];
      }
    }
    return partition;
  });
  return result;
}

AllocationResult allocate_balanced(const AllocationProblem& problem) {
  validate(problem);
  std::vector<double> weights(problem.tasks.size());
  for (std::size_t i = 0; i < weights.size(); ++i) weights[i] = task_work(problem, i);
  return grow_until_within_budget(problem, [&](int m) {
    return partition_items(weights, m, PartitionPolicy::kLargestFirst);
  });
}

void check_allocation(const AllocationProblem& problem, const AllocationResult& result) {
  validate(problem);
  require(result.processors >= 1, "check_allocation: no processors allocated");
  require(result.processor_of.size() == problem.tasks.size(),
          "check_allocation: assignment size mismatch");
  std::vector<double> loads(static_cast<std::size_t>(result.processors), 0.0);
  for (std::size_t i = 0; i < result.processor_of.size(); ++i) {
    const int p = result.processor_of[i];
    require(p >= 0 && p < result.processors, "check_allocation: task placed out of range");
    loads[static_cast<std::size_t>(p)] += task_work(problem, i);
  }
  double energy = 0.0;
  for (const double load : loads) {
    require(problem.curve.feasible(load), "check_allocation: a processor exceeds capacity");
    energy += problem.curve.energy(load);
  }
  require(leq_tol(energy, problem.energy_budget), "check_allocation: energy budget exceeded");
  require(almost_equal(energy, result.energy, 1e-6),
          "check_allocation: recorded energy does not match recomputation");
  require(almost_equal(result.cost, result.processors * problem.cost_per_processor, 1e-9),
          "check_allocation: recorded cost does not match processor count");
}

}  // namespace retask
