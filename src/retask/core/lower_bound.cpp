#include "retask/core/lower_bound.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {
namespace {

/// Minimum of M * E(W / M) + cheapest fractional rejection over the tasks in
/// `candidates` (problem task indices, any order), with accepted work capped
/// at `cap`. The shared body of both public bounds: fractional_lower_bound
/// passes every index, the multiprocessor bound the non-oversized subset.
double relaxed_objective_min(const RejectionProblem& problem,
                             const std::vector<std::size_t>& candidates, double cap) {
  const std::size_t n = candidates.size();
  const double m = static_cast<double>(problem.processor_count());

  // Density order (keep the highest penalty-per-work first).
  std::vector<std::size_t> order = candidates;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const FrameTask& ta = problem.tasks()[a];
    const FrameTask& tb = problem.tasks()[b];
    return ta.penalty * static_cast<double>(tb.cycles) >
           tb.penalty * static_cast<double>(ta.cycles);
  });

  // Prefix accepted work and suffix rejected penalty along the density order.
  std::vector<double> prefix_work(n + 1, 0.0);
  std::vector<double> suffix_penalty(n + 1, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    prefix_work[k + 1] = prefix_work[k] + problem.work_of(order[k]);
  }
  for (std::size_t k = n; k-- > 0;) {
    suffix_penalty[k] = suffix_penalty[k + 1] + problem.tasks()[order[k]].penalty;
  }

  // Cheapest fractional rejection cost at accepted work W.
  const auto rejected_at = [&](double w) {
    w = clamp(w, 0.0, prefix_work[n]);
    const auto it = std::upper_bound(prefix_work.begin(), prefix_work.end(), w);
    auto k = static_cast<std::size_t>(it - prefix_work.begin());
    if (k > 0) --k;  // segment [prefix_work[k], prefix_work[k+1]]
    if (k >= n) return 0.0;
    const double seg_work = prefix_work[k + 1] - prefix_work[k];
    RETASK_ASSERT(seg_work > 0.0);
    const double fraction_rejected = (prefix_work[k + 1] - w) / seg_work;
    return suffix_penalty[k + 1] + problem.tasks()[order[k]].penalty * fraction_rejected;
  };

  // Energy through the certified convex minorant: the Jensen step
  // sum_p E(W_p) >= M * E(W / M) and the golden-section minimization below
  // both require convexity, which energy() itself lacks under dormant-enable
  // switch overheads (convex_floor falls back to the execution-only LP
  // relaxation there and equals energy() everywhere else).
  const auto objective = [&](double w) {
    return m * problem.curve().convex_floor(w / m) + rejected_at(w);
  };

  const double w_star = minimize_unimodal(objective, 0.0, cap, 1e-10 * std::max(cap, 1.0));
  return std::min({objective(w_star), objective(0.0), objective(cap)});
}

}  // namespace

double fractional_lower_bound(const RejectionProblem& problem) {
  const double m = static_cast<double>(problem.processor_count());
  const double cap = std::min(problem.total_work(), m * problem.curve().max_workload());
  std::vector<std::size_t> candidates(problem.size());
  std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  return relaxed_objective_min(problem, candidates, cap);
}

MultiProcBound multiproc_lower_bound_detail(const RejectionProblem& problem) {
  const double m = static_cast<double>(problem.processor_count());
  const Cycles per_pe_capacity = problem.cycle_capacity();

  // Placement constraint, dualized away: a task with more cycles than one
  // processor's capacity is rejected in every partitioned solution (the same
  // integral predicate the exact DP uses to prune it), so its penalty is a
  // certain cost and it leaves the relaxation.
  MultiProcBound bound;
  std::vector<std::size_t> candidates;
  candidates.reserve(problem.size());
  double candidate_work = 0.0;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    if (problem.tasks()[i].cycles > per_pe_capacity) {
      bound.forced_penalty += problem.tasks()[i].penalty;
      ++bound.forced_count;
    } else {
      candidates.push_back(i);
      candidate_work += problem.work_of(i);
    }
  }

  const double cap = std::min(candidate_work, m * problem.curve().max_workload());
  bound.value = bound.forced_penalty + relaxed_objective_min(problem, candidates, cap);
  return bound;
}

double multiproc_lower_bound(const RejectionProblem& problem) {
  return multiproc_lower_bound_detail(problem).value;
}

}  // namespace retask
