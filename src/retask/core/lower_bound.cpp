#include "retask/core/lower_bound.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {

double fractional_lower_bound(const RejectionProblem& problem) {
  const std::size_t n = problem.size();
  const double m = static_cast<double>(problem.processor_count());
  const double cap = std::min(problem.total_work(), m * problem.curve().max_workload());

  // Density order (keep the highest penalty-per-work first).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const FrameTask& ta = problem.tasks()[a];
    const FrameTask& tb = problem.tasks()[b];
    return ta.penalty * static_cast<double>(tb.cycles) >
           tb.penalty * static_cast<double>(ta.cycles);
  });

  // Prefix accepted work and suffix rejected penalty along the density order.
  std::vector<double> prefix_work(n + 1, 0.0);
  std::vector<double> suffix_penalty(n + 1, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    prefix_work[k + 1] = prefix_work[k] + problem.work_of(order[k]);
  }
  for (std::size_t k = n; k-- > 0;) {
    suffix_penalty[k] = suffix_penalty[k + 1] + problem.tasks()[order[k]].penalty;
  }

  // Cheapest fractional rejection cost at accepted work W.
  const auto rejected_at = [&](double w) {
    w = clamp(w, 0.0, prefix_work[n]);
    const auto it = std::upper_bound(prefix_work.begin(), prefix_work.end(), w);
    auto k = static_cast<std::size_t>(it - prefix_work.begin());
    if (k > 0) --k;  // segment [prefix_work[k], prefix_work[k+1]]
    if (k >= n) return 0.0;
    const double seg_work = prefix_work[k + 1] - prefix_work[k];
    RETASK_ASSERT(seg_work > 0.0);
    const double fraction_rejected = (prefix_work[k + 1] - w) / seg_work;
    return suffix_penalty[k + 1] + problem.tasks()[order[k]].penalty * fraction_rejected;
  };

  const auto objective = [&](double w) {
    return m * problem.curve().energy(w / m) + rejected_at(w);
  };

  const double w_star = minimize_unimodal(objective, 0.0, cap, 1e-10 * std::max(cap, 1.0));
  return std::min({objective(w_star), objective(0.0), objective(cap)});
}

}  // namespace retask
