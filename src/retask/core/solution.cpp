#include "retask/core/solution.hpp"

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {

std::size_t RejectionSolution::accepted_count() const {
  std::size_t count = 0;
  for (const bool a : accepted) count += a ? 1 : 0;
  return count;
}

double RejectionSolution::acceptance_ratio() const {
  if (accepted.empty()) return 1.0;
  return static_cast<double>(accepted_count()) / static_cast<double>(accepted.size());
}

std::vector<Cycles> processor_loads(const RejectionProblem& problem,
                                    const RejectionSolution& solution) {
  std::vector<Cycles> loads(static_cast<std::size_t>(problem.processor_count()), 0);
  for (std::size_t i = 0; i < solution.accepted.size(); ++i) {
    if (solution.accepted[i]) {
      loads[static_cast<std::size_t>(solution.processor_of[i])] += problem.tasks()[i].cycles;
    }
  }
  return loads;
}

RejectionSolution make_solution(const RejectionProblem& problem, std::vector<bool> accepted,
                                std::vector<int> processor_of) {
  require(accepted.size() == problem.size(), "make_solution: accept mask size mismatch");
  require(processor_of.size() == problem.size(), "make_solution: processor binding size mismatch");

  RejectionSolution solution;
  solution.accepted = std::move(accepted);
  solution.processor_of = std::move(processor_of);

  std::vector<Cycles> loads(static_cast<std::size_t>(problem.processor_count()), 0);
  double penalty = 0.0;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    if (solution.accepted[i]) {
      const int proc = solution.processor_of[i];
      require(proc >= 0 && proc < problem.processor_count(),
              "make_solution: accepted task bound to an invalid processor");
      loads[static_cast<std::size_t>(proc)] += problem.tasks()[i].cycles;
    } else {
      require(solution.processor_of[i] == -1,
              "make_solution: rejected task must not be bound to a processor");
      penalty += problem.tasks()[i].penalty;
    }
  }

  double energy = 0.0;
  for (const Cycles load : loads) {
    require(load <= problem.cycle_capacity(),
            "make_solution: a processor exceeds its cycle capacity");
    energy += problem.energy_of_cycles(load);
  }
  solution.energy = energy;
  solution.penalty = penalty;
  return solution;
}

RejectionSolution make_solution_on_one(const RejectionProblem& problem,
                                       std::vector<bool> accepted) {
  require(problem.processor_count() == 1,
          "make_solution_on_one: problem has more than one processor");
  std::vector<int> processor_of(problem.size(), -1);
  for (std::size_t i = 0; i < accepted.size() && i < processor_of.size(); ++i) {
    if (accepted[i]) processor_of[i] = 0;
  }
  return make_solution(problem, std::move(accepted), std::move(processor_of));
}

void check_solution(const RejectionProblem& problem, const RejectionSolution& solution) {
  const RejectionSolution rebuilt =
      make_solution(problem, solution.accepted, solution.processor_of);
  require(almost_equal(rebuilt.energy, solution.energy, 1e-6),
          "check_solution: reported energy does not match recomputation");
  require(almost_equal(rebuilt.penalty, solution.penalty, 1e-6),
          "check_solution: reported penalty does not match recomputation");
}

}  // namespace retask
