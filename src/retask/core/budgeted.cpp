#include "retask/core/budgeted.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "retask/batch/wavefront.hpp"
#include "retask/cache/energy_memo.hpp"
#include "retask/cache/scratch.hpp"
#include "retask/common/bit_matrix.hpp"
#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/simd/kernels.hpp"

namespace retask {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

Cycles cycle_capacity(const BudgetedProblem& problem) {
  return static_cast<Cycles>(
      std::floor(problem.curve.max_workload() / problem.work_per_cycle * (1.0 + 1e-12) + 1e-9));
}

double energy_of(const BudgetedProblem& problem, Cycles cycles) {
  return problem.curve.energy(problem.work_per_cycle * static_cast<double>(cycles));
}

/// Largest cycle count whose energy fits the budget (E is increasing).
/// `energy` must return energy_of(problem, cycles) bits; the sweep entry
/// point passes a memoized wrapper, which preserves the search because the
/// memo replays exact values.
template <typename EnergyFn>
Cycles budget_cycle_cap_impl(const BudgetedProblem& problem, const EnergyFn& energy) {
  Cycles lo = 0;
  Cycles hi = std::min(cycle_capacity(problem), problem.tasks.total_cycles());
  if (!leq_tol(energy(Cycles{0}), problem.energy_budget)) return -1;
  while (lo < hi) {
    const Cycles mid = lo + (hi - lo + 1) / 2;
    if (leq_tol(energy(mid), problem.energy_budget)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

Cycles budget_cycle_cap(const BudgetedProblem& problem) {
  return budget_cycle_cap_impl(problem, [&](Cycles c) { return energy_of(problem, c); });
}

/// Knapsack-over-cycles fill into the scratch arena, mirroring the exact-DP
/// hot loop (see core/exact_dp.cpp, including the prefix property that makes
/// one fill at the largest cap serve every smaller cap bit-identically).
void fill_budgeted_table(const BudgetedProblem& problem, Cycles cap, DpScratch& scratch) {
  // Same wavefront hook as the exact DP: the two fills share the relaxation
  // kernel, so the tiled path serves both bit-identically.
  if (wavefront_fill(problem.tasks, cap, scratch)) return;

  const std::size_t n = problem.tasks.size();
  const auto width = static_cast<std::size_t>(cap) + 1;
  std::vector<double>& best = scratch.value;
  best.assign(width, kNegInf);
  best[0] = 0.0;
  BitMatrix& take = scratch.take;
  take.reset(n, width);

  std::size_t reachable = 0;
  const simd::KernelTable& kernels = simd::kernels();
  for (std::size_t i = 0; i < n; ++i) {
    const FrameTask& task = problem.tasks[i];
    if (task.cycles > cap) continue;
    const auto ci = static_cast<std::size_t>(task.cycles);
    const std::size_t top = std::min(width - 1, reachable + ci);
    // -inf source cells stay -inf through the add and never beat a row
    // value, so the kernel subsumes the old explicit sentinel test.
    kernels.relax_desc_f64(best.data(), take.row_words(i), ci, ci, top, task.penalty);
    reachable = top;
  }
}

/// Reads the best accept set for cycle cap `cap` off a table filled at
/// capacity >= cap. Only rows <= cap are touched, so a table filled at a
/// larger capacity yields bit-identical results.
BudgetedSolution select_budgeted(const BudgetedProblem& problem, Cycles cap,
                                 const DpScratch& scratch) {
  const std::size_t n = problem.tasks.size();
  const std::vector<double>& best = scratch.value;
  const BitMatrix& take = scratch.take;

  // First row attaining the maximum kept value (strict-improvement scan);
  // kNpos means nothing beats the empty accept set.
  const std::size_t hit =
      simd::kernels().argmax_f64(best.data(), static_cast<std::size_t>(cap) + 1, 0.0);
  const std::size_t best_w = hit == simd::kNpos ? 0 : hit;

  std::vector<bool> accepted(n, false);
  std::size_t w = best_w;
  for (std::size_t i = n; i-- > 0;) {
    if (take.test(i, w)) {
      accepted[i] = true;
      w -= static_cast<std::size_t>(problem.tasks[i].cycles);
    }
  }
  RETASK_ASSERT(w == 0);
  return make_budgeted_solution(problem, std::move(accepted));
}

std::vector<std::size_t> by_density_desc(const BudgetedProblem& problem) {
  std::vector<std::size_t> order(problem.tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const FrameTask& ta = problem.tasks[a];
    const FrameTask& tb = problem.tasks[b];
    return ta.penalty * static_cast<double>(tb.cycles) >
           tb.penalty * static_cast<double>(ta.cycles);
  });
  return order;
}

}  // namespace

void validate(const BudgetedProblem& problem) {
  require(problem.work_per_cycle > 0.0, "BudgetedProblem: work_per_cycle must be positive");
  require(problem.energy_budget > 0.0, "BudgetedProblem: energy budget must be positive");
}

BudgetedSolution make_budgeted_solution(const BudgetedProblem& problem,
                                        std::vector<bool> accepted) {
  validate(problem);
  require(accepted.size() == problem.tasks.size(),
          "make_budgeted_solution: accept mask size mismatch");
  Cycles cycles = 0;
  double value = 0.0;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    if (accepted[i]) {
      cycles += problem.tasks[i].cycles;
      value += problem.tasks[i].penalty;
    }
  }
  require(cycles <= cycle_capacity(problem), "make_budgeted_solution: capacity exceeded");
  const double energy = energy_of(problem, cycles);
  require(leq_tol(energy, problem.energy_budget), "make_budgeted_solution: budget exceeded");

  BudgetedSolution solution;
  solution.accepted = std::move(accepted);
  solution.value = value;
  solution.energy = energy;
  return solution;
}

BudgetedSolution solve_budgeted_dp(const BudgetedProblem& problem) {
  validate(problem);
  const Cycles cap = budget_cycle_cap(problem);
  require(cap >= 0, "solve_budgeted_dp: even an empty accept set exceeds the budget");
  DpScratch& scratch = budgeted_scratch();
  fill_budgeted_table(problem, cap, scratch);
  return select_budgeted(problem, cap, scratch);
}

std::vector<BudgetedSolution> solve_budgeted_dp_sweep(const BudgetedProblem& problem,
                                                      const std::vector<double>& budgets) {
  if (budgets.empty()) return {};

  // One memo serves every budget's binary search: the curve and
  // work_per_cycle are fixed across the sweep, only the budget threshold
  // moves, so the searches probe overlapping cycle counts.
  EnergyMemo memo;
  const auto memo_energy = [&](Cycles c) {
    return memo.get_or_compute(c, [&](Cycles cc) { return energy_of(problem, cc); });
  };

  BudgetedProblem local = problem;
  std::vector<Cycles> caps(budgets.size());
  Cycles max_cap = 0;
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    local.energy_budget = budgets[b];
    validate(local);
    caps[b] = budget_cycle_cap_impl(local, memo_energy);
    require(caps[b] >= 0,
            "solve_budgeted_dp_sweep: even an empty accept set exceeds a budget");
    max_cap = std::max(max_cap, caps[b]);
  }

  // One fill at the largest budget's cycle cap; each budget's answer is the
  // value sweep over its own prefix of the shared table.
  DpScratch& scratch = budgeted_scratch();
  fill_budgeted_table(problem, max_cap, scratch);
  RETASK_COUNT("dp.warm_starts", budgets.size() - 1);

  std::vector<BudgetedSolution> solutions;
  solutions.reserve(budgets.size());
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    local.energy_budget = budgets[b];
    solutions.push_back(select_budgeted(local, caps[b], scratch));
  }
  return solutions;
}

BudgetedSolution solve_budgeted_greedy(const BudgetedProblem& problem) {
  validate(problem);
  const Cycles cap = budget_cycle_cap(problem);
  require(cap >= 0, "solve_budgeted_greedy: even an empty accept set exceeds the budget");
  std::vector<bool> accepted(problem.tasks.size(), false);
  Cycles load = 0;
  for (const std::size_t i : by_density_desc(problem)) {
    const Cycles c = problem.tasks[i].cycles;
    if (load + c <= cap) {
      accepted[i] = true;
      load += c;
    }
  }
  return make_budgeted_solution(problem, std::move(accepted));
}

double budgeted_fractional_upper_bound(const BudgetedProblem& problem) {
  validate(problem);
  const Cycles cap = budget_cycle_cap(problem);
  require(cap >= 0, "budgeted_fractional_upper_bound: budget below the idle energy");
  double remaining = static_cast<double>(cap);
  double value = 0.0;
  for (const std::size_t i : by_density_desc(problem)) {
    if (remaining <= 0.0) break;
    const FrameTask& task = problem.tasks[i];
    const double used = std::min(remaining, static_cast<double>(task.cycles));
    value += task.penalty * used / static_cast<double>(task.cycles);
    remaining -= used;
  }
  return value;
}

}  // namespace retask
