#include "retask/core/budgeted.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "retask/common/bit_matrix.hpp"
#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {
namespace {

Cycles cycle_capacity(const BudgetedProblem& problem) {
  return static_cast<Cycles>(
      std::floor(problem.curve.max_workload() / problem.work_per_cycle * (1.0 + 1e-12) + 1e-9));
}

double energy_of(const BudgetedProblem& problem, Cycles cycles) {
  return problem.curve.energy(problem.work_per_cycle * static_cast<double>(cycles));
}

/// Largest cycle count whose energy fits the budget (E is increasing).
Cycles budget_cycle_cap(const BudgetedProblem& problem) {
  Cycles lo = 0;
  Cycles hi = std::min(cycle_capacity(problem), problem.tasks.total_cycles());
  if (!leq_tol(energy_of(problem, 0), problem.energy_budget)) return -1;
  while (lo < hi) {
    const Cycles mid = lo + (hi - lo + 1) / 2;
    if (leq_tol(energy_of(problem, mid), problem.energy_budget)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::vector<std::size_t> by_density_desc(const BudgetedProblem& problem) {
  std::vector<std::size_t> order(problem.tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const FrameTask& ta = problem.tasks[a];
    const FrameTask& tb = problem.tasks[b];
    return ta.penalty * static_cast<double>(tb.cycles) >
           tb.penalty * static_cast<double>(ta.cycles);
  });
  return order;
}

}  // namespace

void validate(const BudgetedProblem& problem) {
  require(problem.work_per_cycle > 0.0, "BudgetedProblem: work_per_cycle must be positive");
  require(problem.energy_budget > 0.0, "BudgetedProblem: energy budget must be positive");
}

BudgetedSolution make_budgeted_solution(const BudgetedProblem& problem,
                                        std::vector<bool> accepted) {
  validate(problem);
  require(accepted.size() == problem.tasks.size(),
          "make_budgeted_solution: accept mask size mismatch");
  Cycles cycles = 0;
  double value = 0.0;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    if (accepted[i]) {
      cycles += problem.tasks[i].cycles;
      value += problem.tasks[i].penalty;
    }
  }
  require(cycles <= cycle_capacity(problem), "make_budgeted_solution: capacity exceeded");
  const double energy = energy_of(problem, cycles);
  require(leq_tol(energy, problem.energy_budget), "make_budgeted_solution: budget exceeded");

  BudgetedSolution solution;
  solution.accepted = std::move(accepted);
  solution.value = value;
  solution.energy = energy;
  return solution;
}

BudgetedSolution solve_budgeted_dp(const BudgetedProblem& problem) {
  validate(problem);
  const std::size_t n = problem.tasks.size();
  const Cycles cap = budget_cycle_cap(problem);
  require(cap >= 0, "solve_budgeted_dp: even an empty accept set exceeds the budget");

  const auto width = static_cast<std::size_t>(cap) + 1;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> best(width, kNegInf);
  best[0] = 0.0;
  // Bit-packed choice table plus a reachable-row bound, mirroring the
  // exact-DP hot loop (see core/exact_dp.cpp).
  BitMatrix take;
  take.reset(n, width);

  std::size_t reachable = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const FrameTask& task = problem.tasks[i];
    if (task.cycles > cap) continue;
    const auto ci = static_cast<std::size_t>(task.cycles);
    const std::size_t top = std::min(width - 1, reachable + ci);
    for (std::size_t w = top + 1; w-- > ci;) {
      const double candidate = best[w - ci] == kNegInf ? kNegInf : best[w - ci] + task.penalty;
      if (candidate > best[w]) {
        best[w] = candidate;
        take.set(i, w);
      }
    }
    reachable = top;
  }

  double best_value = 0.0;
  std::size_t best_w = 0;
  for (std::size_t w = 0; w < width; ++w) {
    if (best[w] > best_value) {
      best_value = best[w];
      best_w = w;
    }
  }

  std::vector<bool> accepted(n, false);
  std::size_t w = best_w;
  for (std::size_t i = n; i-- > 0;) {
    if (take.test(i, w)) {
      accepted[i] = true;
      w -= static_cast<std::size_t>(problem.tasks[i].cycles);
    }
  }
  RETASK_ASSERT(w == 0);
  return make_budgeted_solution(problem, std::move(accepted));
}

BudgetedSolution solve_budgeted_greedy(const BudgetedProblem& problem) {
  validate(problem);
  const Cycles cap = budget_cycle_cap(problem);
  require(cap >= 0, "solve_budgeted_greedy: even an empty accept set exceeds the budget");
  std::vector<bool> accepted(problem.tasks.size(), false);
  Cycles load = 0;
  for (const std::size_t i : by_density_desc(problem)) {
    const Cycles c = problem.tasks[i].cycles;
    if (load + c <= cap) {
      accepted[i] = true;
      load += c;
    }
  }
  return make_budgeted_solution(problem, std::move(accepted));
}

double budgeted_fractional_upper_bound(const BudgetedProblem& problem) {
  validate(problem);
  const Cycles cap = budget_cycle_cap(problem);
  require(cap >= 0, "budgeted_fractional_upper_bound: budget below the idle energy");
  double remaining = static_cast<double>(cap);
  double value = 0.0;
  for (const std::size_t i : by_density_desc(problem)) {
    if (remaining <= 0.0) break;
    const FrameTask& task = problem.tasks[i];
    const double used = std::min(remaining, static_cast<double>(task.cycles));
    value += task.penalty * used / static_cast<double>(task.cycles);
    remaining -= used;
  }
  return value;
}

}  // namespace retask
