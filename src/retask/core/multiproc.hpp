// Multiprocessor rejection scheduling (partitioned, identical processors).
//
// The contextual anchor for the target paper places task rejection in the
// frame-based multiprocessor setting with a bounded top speed: when LTF-style
// partitioning cannot make the workload fit M processors, tasks must be
// rejected. Two heuristics are provided:
//
// * MultiProcLtfRejectSolver — the natural composition of the group's
//   machinery: Largest-Task-First partition of all tasks (sort by cycles
//   descending, assign to the least-loaded processor), then solve the
//   single-processor rejection subproblem optimally (exact DP) on each
//   processor independently.
// * MultiProcGreedySolver — globally greedy: tasks in descending cycles are
//   either rejected or placed on the processor where the exact marginal
//   energy increase is smallest, whichever is cheaper; followed by a
//   single-flip improvement pass.
#ifndef RETASK_CORE_MULTIPROC_HPP
#define RETASK_CORE_MULTIPROC_HPP

#include "retask/core/solver.hpp"

namespace retask {

/// LTF partition + optimal per-processor rejection.
class MultiProcLtfRejectSolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "MP-LTF+DP"; }
};

/// Globally greedy placement/rejection with a local improvement pass.
class MultiProcGreedySolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "MP-GREEDY"; }
};

/// RAND-style multiprocessor baseline: tasks in input order go to the
/// least-loaded processor; overflowing tasks are rejected.
class MultiProcRandSolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "MP-RAND"; }
};

}  // namespace retask

#endif  // RETASK_CORE_MULTIPROC_HPP
