// Periodic-task adapter: reduces periodic rejection to the frame problem.
//
// For implicit-deadline periodic tasks under EDF at a constant speed s, a
// selected set is schedulable iff its demanded rate U = sum ci/pi satisfies
// U <= s (Liu & Layland). Over one hyper-period L the processor therefore
// executes W = U * L work units, idles the rest, and the minimum energy of
// accepting the set is exactly the frame energy curve at W with window L —
// so the periodic rejection problem IS the frame rejection problem with
//
//     per-task work = ci * (L / pi)   (an integer: L is a multiple of pi),
//     window = L,  penalty unchanged (charged per hyper-period).
//
// The adapter builds that instance, maps solutions back, and exposes the
// per-processor constant EDF speed implied by a solution so that the EDF
// simulator can re-execute and verify it job by job.
#ifndef RETASK_CORE_PERIODIC_HPP
#define RETASK_CORE_PERIODIC_HPP

#include <vector>

#include "retask/core/problem.hpp"
#include "retask/core/solution.hpp"
#include "retask/power/power_model.hpp"
#include "retask/task/task_set.hpp"

namespace retask {

/// Frame-reduction of a periodic rejection instance.
class PeriodicRejectionAdapter {
 public:
  /// Builds the frame instance over one hyper-period of `tasks` on
  /// `processor_count` processors of `model` under `idle`. Task order (and
  /// hence accept-mask indexing) is preserved.
  PeriodicRejectionAdapter(PeriodicTaskSet tasks, const PowerModel& model, IdleDiscipline idle,
                           int processor_count = 1);

  const PeriodicTaskSet& periodic_tasks() const { return tasks_; }
  const RejectionProblem& frame_problem() const { return problem_; }

  /// Hyper-period (the frame window).
  double hyper_period() const { return problem_.curve().window(); }

  /// Demanded rate (work units per time) of the tasks accepted on
  /// `processor` by `solution` — the minimum constant EDF speed for that
  /// processor.
  double demanded_rate_on(const RejectionSolution& solution, int processor) const;

  /// The constant execution speed the energy curve would use for the load on
  /// `processor` (>= demanded rate; e.g. lifted to the critical speed on
  /// lightly loaded dormant-enable processors, clamped into the model's
  /// range). Returns 0 when nothing is assigned to an always-sleepable
  /// processor.
  double execution_speed_on(const RejectionSolution& solution, int processor) const;

 private:
  PeriodicTaskSet tasks_;
  RejectionProblem problem_;
};

}  // namespace retask

#endif  // RETASK_CORE_PERIODIC_HPP
