// Many-core partitioned rejection solver (the scale path of ROADMAP item 2).
//
// The toy-scale composition (MultiProcLtfRejectSolver) re-sorts, linearly
// scans m bins per task, and cold-solves every per-processor subproblem one
// after another. This solver keeps the same three-phase structure — place,
// solve each PE's rejection subproblem optimally, improve — but every phase
// is built for m in the hundreds and n in the tens of thousands:
//
//  1. Placement is O(n log m): the heap-based least-loaded partitioner
//     (sched/partition.hpp) for LTF, or FFD-with-rejection under the per-PE
//     cycle capacity. Tasks no processor can ever hold (cycles > capacity)
//     are pruned before placement — they are rejected in every feasible
//     solution, so carrying their weight through the partition only skews
//     the balance (the Lagrangian bound prices them the same way).
//  2. The m independent per-PE exact-DP solves run through the lockstep
//     batch solver (batch/lockstep.hpp): same-size subproblems share lanes
//     (fused select energy evaluations), and the lane chunks are sharded
//     across the parallel_for pool. Every PE's solution is bit-identical to
//     a solo ExactDpSolver solve of its subproblem, so the phase is
//     invariant to RETASK_JOBS, RETASK_BATCH, and the SIMD backend.
//  3. A move/swap local search re-seats locally-rejected tasks on the
//     least-loaded PE. Probes go through per-PE DeltaSolver instances
//     (serve/delta_solver.hpp): one O(W) admit-relaxation per probe and a
//     checkpointed-replay undo, instead of a cold O(n_p * W) re-solve. The
//     solvers are built lazily (only PEs the search touches pay the table
//     fill) and share one EnergyMemo — all PEs of one instance are the same
//     platform, so their probe loads hit one cache.
//
// The search is serial and deterministic; all parallelism lives in phase 2,
// whose lanes are bit-exact. Counters: the mp.* family (probes, moves,
// swaps, delta solvers built, oversized/overflow rejections, bound gap).
#ifndef RETASK_CORE_MP_SCALE_HPP
#define RETASK_CORE_MP_SCALE_HPP

#include "retask/core/solver.hpp"
#include "retask/sched/partition.hpp"

namespace retask {

/// Knobs of the many-core solve. Defaults are the benchmarked configuration.
struct MpScaleConfig {
  /// Placement policy: kLargestFirst (balance-driven LTF, the paper's
  /// pedigree) or kFirstFitDecreasing (feasibility-driven FFD with
  /// rejection). Other policies are accepted but unusual.
  PartitionPolicy partition = PartitionPolicy::kLargestFirst;
  /// Move/swap local-search rounds; 0 disables the improvement phase.
  int local_search_rounds = 2;
  /// Per-round cap on move probes (the highest-penalty locally-rejected
  /// tasks are probed first) and on the more expensive two-PE swap probes.
  int max_move_probes = 4096;
  int max_swap_probes = 256;
  /// Per-round cap on escalated exact probes. A screened-out candidate can
  /// still be admittable by rearranging the target PE — the relaxation sees
  /// evictions the marginal screen cannot — but the first probe on a PE
  /// pays a full DeltaSolver seed, so only the highest-penalty screen
  /// failures get one.
  int max_exact_probes = 16;
  /// Lockstep lanes for the per-PE solves; -1 resolves RETASK_BATCH.
  int lanes = -1;
  /// parallel_for jobs for the per-PE solves; 0 resolves RETASK_JOBS.
  int jobs = 0;
  /// Also compute the multiprocessor Lagrangian bound and record the
  /// relative gap as mp.bound_gap_permille (one extra O(n log n) pass).
  bool record_bound_gap = false;
};

/// O(n log m) partition + lockstep per-PE exact rejection + delta-driven
/// move/swap local search. Registry name "mp-scale".
class MultiProcScaleSolver final : public RejectionSolver {
 public:
  MultiProcScaleSolver() = default;
  explicit MultiProcScaleSolver(MpScaleConfig config) : config_(config) {}

  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "MP-SCALE"; }

  const MpScaleConfig& config() const { return config_; }

 private:
  MpScaleConfig config_;
};

}  // namespace retask

#endif  // RETASK_CORE_MP_SCALE_HPP
