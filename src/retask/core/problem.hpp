// The task-rejection scheduling problem.
//
// Given frame-based tasks with worst-case cycles and rejection penalties, M
// identical DVS processors whose energy behaviour over the frame is captured
// by one EnergyCurve, choose an accept set, a partition of the accepted
// tasks onto the processors, and (implicitly, through the curve) execution
// speeds, minimizing
//
//     sum over processors of E(assigned work) + sum of rejected penalties.
//
// The bounded top speed makes the feasibility constraint real: a processor
// can carry at most smax * D work, so overloaded instances force rejections.
// The problem is NP-hard already on one processor: with a linear energy
// curve E(W) = e * W it reads "choose the rejected set R maximizing saved
// energy e * W(R) minus paid penalty rho(R) subject to the knapsack-style
// capacity W(T) - W(R) <= Wmax", i.e. 0/1 knapsack; convex E only
// generalizes it (hardness analysis is the paper's first deliverable).
#ifndef RETASK_CORE_PROBLEM_HPP
#define RETASK_CORE_PROBLEM_HPP

#include <memory>
#include <vector>

#include "retask/cache/energy_memo.hpp"
#include "retask/power/energy_curve.hpp"
#include "retask/task/task_set.hpp"

namespace retask {

/// Largest per-processor cycle load that fits `curve`'s window at top speed
/// for the given cycle scale — the capacity RejectionProblem computes at
/// construction, exposed so task-set-free callers (the serve-mode delta
/// solver sizes its retained DP table before any task exists) derive the
/// same bits.
Cycles cycle_capacity_for(const EnergyCurve& curve, double work_per_cycle);

/// An instance of the rejection-scheduling problem.
class RejectionProblem {
 public:
  /// `work_per_cycle` converts task cycles into the curve's work units
  /// (speed x time); it must be positive. `processor_count` identical
  /// processors each follow `curve`.
  RejectionProblem(FrameTaskSet tasks, EnergyCurve curve, double work_per_cycle,
                   int processor_count = 1);

  const FrameTaskSet& tasks() const { return tasks_; }
  const EnergyCurve& curve() const { return curve_; }
  double work_per_cycle() const { return work_per_cycle_; }
  int processor_count() const { return processor_count_; }
  std::size_t size() const { return tasks_.size(); }

  /// Work units of task `index`.
  double work_of(std::size_t index) const;

  /// Largest per-processor cycle load that fits the window at top speed.
  Cycles cycle_capacity() const { return cycle_capacity_; }

  /// Total work units if every task were accepted.
  double total_work() const;

  /// Energy of a processor loaded with `cycles` accepted cycles. When a
  /// memo is attached, evaluations are served from / recorded into it; the
  /// memo only replays values this exact computation produced, so cached
  /// and cold calls return identical bits.
  double energy_of_cycles(Cycles cycles) const;

  /// Batched energy_of_cycles: out[i] == energy_of_cycles(cycles[i]) bit for
  /// bit. Attached-memo hits are replayed; misses run through the curve's
  /// fused SIMD batch kernel and are recorded. Duplicate misses inside one
  /// batch are recomputed identically (E is pure), so only the hit/miss
  /// counters — never a value — can differ from the one-at-a-time path.
  void energy_of_cycles_batch(const Cycles* cycles, double* out, std::size_t n) const;

  /// Shares `memo` for energy_of_cycles lookups. The caller asserts that
  /// every problem attached to one memo has an identical (EnergyCurve,
  /// work_per_cycle) pair — the memo is keyed by cycles alone. Pass nullptr
  /// to detach. Copies of this problem share the attached memo.
  void attach_energy_memo(std::shared_ptr<EnergyMemo> memo) { energy_memo_ = std::move(memo); }

  /// The attached memo, or nullptr when evaluations are uncached.
  const std::shared_ptr<EnergyMemo>& energy_memo() const { return energy_memo_; }

  /// Sum of penalties of tasks with accepted[i] == false; `accepted` must
  /// have one entry per task.
  double rejected_penalty(const std::vector<bool>& accepted) const;

  /// Single-processor helpers (require processor_count() == 1):
  /// total accepted cycles, feasibility, and the full objective.
  Cycles accepted_cycles(const std::vector<bool>& accepted) const;
  bool feasible_on_one(const std::vector<bool>& accepted) const;
  double objective_on_one(const std::vector<bool>& accepted) const;

 private:
  FrameTaskSet tasks_;
  EnergyCurve curve_;
  double work_per_cycle_;
  int processor_count_;
  Cycles cycle_capacity_ = 0;
  std::shared_ptr<EnergyMemo> energy_memo_;
};

}  // namespace retask

#endif  // RETASK_CORE_PROBLEM_HPP
