// The task-rejection scheduling problem.
//
// Given frame-based tasks with worst-case cycles and rejection penalties, M
// identical DVS processors whose energy behaviour over the frame is captured
// by one EnergyCurve, choose an accept set, a partition of the accepted
// tasks onto the processors, and (implicitly, through the curve) execution
// speeds, minimizing
//
//     sum over processors of E(assigned work) + sum of rejected penalties.
//
// The bounded top speed makes the feasibility constraint real: a processor
// can carry at most smax * D work, so overloaded instances force rejections.
// The problem is NP-hard already on one processor: with a linear energy
// curve E(W) = e * W it reads "choose the rejected set R maximizing saved
// energy e * W(R) minus paid penalty rho(R) subject to the knapsack-style
// capacity W(T) - W(R) <= Wmax", i.e. 0/1 knapsack; convex E only
// generalizes it (hardness analysis is the paper's first deliverable).
#ifndef RETASK_CORE_PROBLEM_HPP
#define RETASK_CORE_PROBLEM_HPP

#include <vector>

#include "retask/power/energy_curve.hpp"
#include "retask/task/task_set.hpp"

namespace retask {

/// An instance of the rejection-scheduling problem.
class RejectionProblem {
 public:
  /// `work_per_cycle` converts task cycles into the curve's work units
  /// (speed x time); it must be positive. `processor_count` identical
  /// processors each follow `curve`.
  RejectionProblem(FrameTaskSet tasks, EnergyCurve curve, double work_per_cycle,
                   int processor_count = 1);

  const FrameTaskSet& tasks() const { return tasks_; }
  const EnergyCurve& curve() const { return curve_; }
  double work_per_cycle() const { return work_per_cycle_; }
  int processor_count() const { return processor_count_; }
  std::size_t size() const { return tasks_.size(); }

  /// Work units of task `index`.
  double work_of(std::size_t index) const;

  /// Largest per-processor cycle load that fits the window at top speed.
  Cycles cycle_capacity() const { return cycle_capacity_; }

  /// Total work units if every task were accepted.
  double total_work() const;

  /// Energy of a processor loaded with `cycles` accepted cycles.
  double energy_of_cycles(Cycles cycles) const;

  /// Sum of penalties of tasks with accepted[i] == false; `accepted` must
  /// have one entry per task.
  double rejected_penalty(const std::vector<bool>& accepted) const;

  /// Single-processor helpers (require processor_count() == 1):
  /// total accepted cycles, feasibility, and the full objective.
  Cycles accepted_cycles(const std::vector<bool>& accepted) const;
  bool feasible_on_one(const std::vector<bool>& accepted) const;
  double objective_on_one(const std::vector<bool>& accepted) const;

 private:
  FrameTaskSet tasks_;
  EnergyCurve curve_;
  double work_per_cycle_;
  int processor_count_;
  Cycles cycle_capacity_ = 0;
};

}  // namespace retask

#endif  // RETASK_CORE_PROBLEM_HPP
