// Chunked row selection over a filled knapsack value table.
//
// Reading a solution off the exact-DP table means sweeping every reachable
// accepted-cycle total w for the best objective E(w) + (total_penalty -
// kept[w]). The energy evaluation dominates that sweep, and evaluating it
// row by row wastes the fused cycles->energy batch kernel (simd/kernels.hpp)
// that batch/lockstep.cpp already exploits across lanes. This header applies
// the same predict/batch/replay idiom to a single table so the sweep-reuse
// warm path (ExactDpSolver::solve_sweep) and the serve-mode delta solver
// batch their per-point energy evaluations too:
//
//   1. predict — per 64-row chunk, keep the rows that survive the penalty
//      prune against the best objective at chunk entry. The live best only
//      ever decreases, so this snapshot keeps a superset of the rows the
//      serial sweep would evaluate; E is a pure function of the row, so the
//      extra evaluations cannot change the outcome.
//   2. batch — one BatchEnergyFn call per chunk over the predicted rows.
//      The callback must be bit-identical to one-at-a-time evaluation
//      (RejectionProblem::energy_of_cycles_batch guarantees exactly that).
//   3. replay — scan the predicted rows with the serial loop's live prunes:
//      the penalty prune re-checked against the current best, and the
//      energy early-exit (E non-decreasing in the load) ending the whole
//      sweep. The replay makes the same decisions in the same order as the
//      serial sweep, so the selected row is bit-identical.
#ifndef RETASK_CORE_DP_SELECT_HPP
#define RETASK_CORE_DP_SELECT_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "retask/simd/kernels.hpp"
#include "retask/task/task.hpp"

namespace retask {

/// Outcome of one chunked select sweep.
struct DpSelectResult {
  std::size_t best_w = 0;
  double best_objective = std::numeric_limits<double>::infinity();
  std::uint64_t energy_evals = 0;  ///< rows sent through the batch callback
};

/// Sweeps rows [0, cap] of `kept` (the exact-DP value table: maximum total
/// penalty of accepted tasks at exactly w cycles, -inf when unreachable) for
/// the row minimizing E(w) + (total_penalty - kept[w]), batching energy
/// evaluations through `energy_batch(cycles, out, n)` in 64-row chunks.
/// `batch_cycles` / `batch_energy` are caller-owned reusable buffers (see
/// DpScratch in cache/scratch.hpp); the result is bit-identical to the
/// serial row-by-row sweep with the penalty prune and energy early-exit.
template <class BatchEnergyFn>
DpSelectResult select_best_row(const std::vector<double>& kept, std::size_t cap,
                               double total_penalty, BatchEnergyFn&& energy_batch,
                               std::vector<Cycles>& batch_cycles,
                               std::vector<double>& batch_energy) {
  constexpr std::size_t kChunk = 64;
  const simd::KernelTable& kernels = simd::kernels();
  DpSelectResult result;
  double energy_at[kChunk] = {0.0};  // dense per-chunk view; stale rows are never walked
  bool done = false;
  for (std::size_t chunk = 0; chunk <= cap && !done; chunk += kChunk) {
    const std::size_t end = std::min(cap, chunk + kChunk - 1);
    // One vector mask per chunk instead of a scalar row loop; the kernel's
    // total - kept[w] < best predicate folds the -inf reachability skip in
    // (total - (-inf) == +inf never beats the bound).
    const std::uint64_t mask =
        kernels.select_mask_f64(kept.data() + chunk, end - chunk + 1, total_penalty,
                                result.best_objective);
    batch_cycles.clear();
    for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
      const auto bit = static_cast<std::size_t>(__builtin_ctzll(bits));
      batch_cycles.push_back(static_cast<Cycles>(chunk + bit));
    }
    if (batch_cycles.empty()) continue;
    batch_energy.resize(batch_cycles.size());
    energy_batch(batch_cycles.data(), batch_energy.data(), batch_cycles.size());
    result.energy_evals += batch_cycles.size();
    std::size_t j = 0;
    for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
      energy_at[static_cast<std::size_t>(__builtin_ctzll(bits))] = batch_energy[j++];
    }
    // Kernelized replay of the serial sweep's decision walk over the masked
    // rows (same prunes, same early-exit, same improvement order).
    done = kernels.select_scan_f64(kept.data() + chunk, energy_at, end - chunk + 1, mask,
                                   total_penalty, chunk, &result.best_objective,
                                   &result.best_w) != 0;
  }
  return result;
}

}  // namespace retask

#endif  // RETASK_CORE_DP_SELECT_HPP
