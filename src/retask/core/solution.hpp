// Solutions of the rejection-scheduling problem, plus an independent
// validator.
//
// A solution records the accept/reject decision and the processor binding of
// every accepted task, together with the resulting energy/penalty split.
// `make_solution` is the only way solvers produce solutions: it recomputes
// energy and penalty from scratch and checks per-processor feasibility, so a
// buggy solver cannot report an objective its schedule does not achieve.
#ifndef RETASK_CORE_SOLUTION_HPP
#define RETASK_CORE_SOLUTION_HPP

#include <string>
#include <vector>

#include "retask/core/problem.hpp"

namespace retask {

/// A validated solution.
struct RejectionSolution {
  std::vector<bool> accepted;     ///< one entry per task
  std::vector<int> processor_of;  ///< processor of each task; -1 when rejected
  double energy = 0.0;            ///< sum over processors of E(load)
  double penalty = 0.0;           ///< sum of rejected penalties

  double objective() const { return energy + penalty; }

  /// Number of accepted tasks.
  std::size_t accepted_count() const;

  /// Acceptance ratio in [0, 1] (1 for an empty instance).
  double acceptance_ratio() const;
};

/// Builds and validates a solution from an accept mask and processor
/// binding. Throws retask::Error when sizes mismatch, a rejected task has a
/// processor, an accepted task lacks one, a processor index is out of range,
/// or any processor exceeds its cycle capacity.
RejectionSolution make_solution(const RejectionProblem& problem, std::vector<bool> accepted,
                                std::vector<int> processor_of);

/// Single-processor convenience: every accepted task lands on processor 0.
RejectionSolution make_solution_on_one(const RejectionProblem& problem,
                                       std::vector<bool> accepted);

/// Re-validates an existing solution against a problem (used by tests to
/// confirm solver outputs are internally consistent). Throws on any
/// inconsistency, including energy/penalty fields that do not match a fresh
/// recomputation.
void check_solution(const RejectionProblem& problem, const RejectionSolution& solution);

/// Per-processor accepted cycles of a solution.
std::vector<Cycles> processor_loads(const RejectionProblem& problem,
                                    const RejectionSolution& solution);

}  // namespace retask

#endif  // RETASK_CORE_SOLUTION_HPP
