// Heuristic and baseline algorithms for single-processor task rejection.
//
// These are the "heuristic algorithms" half of the paper's contribution:
// * AllAcceptSolver   — the conservative baseline: keep everything, reject
//                       only what must go to regain feasibility.
// * DensityGreedySolver — one pass over tasks in increasing penalty density
//                       rho_i / c_i: cheap-per-cycle tasks are rejected
//                       whenever the exact energy saving exceeds the
//                       penalty; the natural O(n log n) heuristic.
// * MarginalGreedySolver — steepest-descent local search over single flips
//                       (reject an accepted task / re-accept a rejected
//                       one), seeded with the density-greedy solution.
// * RandomRejectSolver — the RAND-style reference baseline: rejects
//                       uniformly random tasks until feasible, with no
//                       objective awareness.
#ifndef RETASK_CORE_GREEDY_HPP
#define RETASK_CORE_GREEDY_HPP

#include <cstdint>
#include <vector>

#include "retask/core/solver.hpp"

namespace retask {

/// Task indices sorted by increasing penalty density rho_i / c_i (cheapest
/// rejection per saved cycle first); ties broken by index for determinism.
/// The shared ordering of the greedy family, exposed so the lockstep batch
/// solver (batch/lockstep.hpp) replays the exact single-instance decisions.
std::vector<std::size_t> density_order(const RejectionProblem& problem);

/// Rejects tasks from `accepted` in `order` until the load fits one
/// processor; returns the remaining accepted cycle load. Throws when the
/// instance stays infeasible with every task rejected.
Cycles reject_until_feasible(const RejectionProblem& problem,
                             const std::vector<std::size_t>& order, std::vector<bool>& accepted);

/// Accept-everything baseline; rejects in increasing penalty density only
/// while the instance is infeasible.
class AllAcceptSolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "ALL-ACCEPT"; }
};

/// Single-pass greedy over increasing penalty density with exact marginal
/// energy evaluation.
class DensityGreedySolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "GREEDY"; }
};

/// Local search over single accept/reject flips (steepest descent). The
/// iteration budget is quadratic in n, which in practice is never reached:
/// each move strictly lowers the objective.
class MarginalGreedySolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "LS-GREEDY"; }
};

/// Random rejection until feasible; deterministic for a fixed seed.
class RandomRejectSolver final : public RejectionSolver {
 public:
  explicit RandomRejectSolver(std::uint64_t seed = 1) : seed_(seed) {}
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "RAND"; }

 private:
  std::uint64_t seed_;
};

}  // namespace retask

#endif  // RETASK_CORE_GREEDY_HPP
