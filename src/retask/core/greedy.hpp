// Heuristic and baseline algorithms for single-processor task rejection.
//
// These are the "heuristic algorithms" half of the paper's contribution:
// * AllAcceptSolver   — the conservative baseline: keep everything, reject
//                       only what must go to regain feasibility.
// * DensityGreedySolver — one pass over tasks in increasing penalty density
//                       rho_i / c_i: cheap-per-cycle tasks are rejected
//                       whenever the exact energy saving exceeds the
//                       penalty; the natural O(n log n) heuristic.
// * MarginalGreedySolver — steepest-descent local search over single flips
//                       (reject an accepted task / re-accept a rejected
//                       one), seeded with the density-greedy solution.
// * RandomRejectSolver — the RAND-style reference baseline: rejects
//                       uniformly random tasks until feasible, with no
//                       objective awareness.
#ifndef RETASK_CORE_GREEDY_HPP
#define RETASK_CORE_GREEDY_HPP

#include <cstdint>

#include "retask/core/solver.hpp"

namespace retask {

/// Accept-everything baseline; rejects in increasing penalty density only
/// while the instance is infeasible.
class AllAcceptSolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "ALL-ACCEPT"; }
};

/// Single-pass greedy over increasing penalty density with exact marginal
/// energy evaluation.
class DensityGreedySolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "GREEDY"; }
};

/// Local search over single accept/reject flips (steepest descent). The
/// iteration budget is quadratic in n, which in practice is never reached:
/// each move strictly lowers the objective.
class MarginalGreedySolver final : public RejectionSolver {
 public:
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "LS-GREEDY"; }
};

/// Random rejection until feasible; deterministic for a fixed seed.
class RandomRejectSolver final : public RejectionSolver {
 public:
  explicit RandomRejectSolver(std::uint64_t seed = 1) : seed_(seed) {}
  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override { return "RAND"; }

 private:
  std::uint64_t seed_;
};

}  // namespace retask

#endif  // RETASK_CORE_GREEDY_HPP
