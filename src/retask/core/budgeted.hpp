// Energy-budgeted acceptance: the dual of the rejection problem.
//
// Instead of minimizing energy + rejection penalties, a battery-constrained
// system maximizes the value of the work it accepts under a hard energy
// budget:
//
//     maximize  sum of accepted values
//     s.t.      E(accepted work) <= budget,  accepted work <= smax * D.
//
// The two formulations share their machinery (the same energy curve and the
// same knapsack-over-cycles table); the budgeted DP is exact and
// pseudo-polynomial, the density greedy is the fast heuristic, and the
// fractional relaxation gives the venue-standard upper bound for
// normalizing large instances. Tasks reuse FrameTask with `penalty` read as
// the task's VALUE.
#ifndef RETASK_CORE_BUDGETED_HPP
#define RETASK_CORE_BUDGETED_HPP

#include <vector>

#include "retask/power/energy_curve.hpp"
#include "retask/task/task_set.hpp"

namespace retask {

/// A budgeted-acceptance instance.
struct BudgetedProblem {
  FrameTaskSet tasks;  ///< FrameTask::penalty is the task's value
  EnergyCurve curve;
  double work_per_cycle = 1.0;
  double energy_budget = 0.0;
};

/// Validates the instance (positive budget and scale); throws retask::Error.
void validate(const BudgetedProblem& problem);

/// A validated accept set with its value/energy bookkeeping.
struct BudgetedSolution {
  std::vector<bool> accepted;
  double value = 0.0;
  double energy = 0.0;
};

/// Builds and validates a solution (recomputes value and energy; throws when
/// the accept set violates the capacity or the budget).
BudgetedSolution make_budgeted_solution(const BudgetedProblem& problem,
                                        std::vector<bool> accepted);

/// Exact pseudo-polynomial DP, O(n * Wcap).
BudgetedSolution solve_budgeted_dp(const BudgetedProblem& problem);

/// Exact DP at every budget of a sweep over one instance. The knapsack table
/// is filled once at the largest budget's cycle cap and each budget's answer
/// is read off the shared prefix; the per-budget binary searches share one
/// energy memo (the curve and work_per_cycle are fixed across the sweep).
/// Bit-identical to calling solve_budgeted_dp with energy_budget = b for
/// each b, in order. `problem.energy_budget` is ignored; every entry of
/// `budgets` must be positive.
std::vector<BudgetedSolution> solve_budgeted_dp_sweep(const BudgetedProblem& problem,
                                                      const std::vector<double>& budgets);

/// Density greedy: accept in decreasing value per cycle while the budget and
/// capacity hold.
BudgetedSolution solve_budgeted_greedy(const BudgetedProblem& problem);

/// Fractional upper bound on the achievable value (continuous relaxation:
/// tasks divisible; valid for normalization of large instances — needs only
/// an increasing energy curve).
double budgeted_fractional_upper_bound(const BudgetedProblem& problem);

}  // namespace retask

#endif  // RETASK_CORE_BUDGETED_HPP
