// Fully polynomial-time approximation scheme for single-processor task
// rejection.
//
// The exact DP of exact_dp.hpp is pseudo-polynomial in the cycle capacity;
// this FPTAS is polynomial in n and 1/epsilon regardless of the magnitudes:
//
//  1. Take a guess G >= OPT (initially the best heuristic objective, which
//     is a genuine feasible solution, hence an upper bound).
//  2. Scale penalties with delta = eps_int * G / n and run a knapsack DP
//     over scaled REJECTED penalty: rej[r] = max cycles rejectable with
//     scaled penalty exactly r, r <= ceil(G/delta) + n = ceil(n/eps_int)+n.
//     Tasks with penalty > G are never rejected by any solution of value
//     <= G, so they are force-accepted and excluded from the table.
//  3. Every table entry is a genuine solution (true penalties are carried
//     alongside), so the sweep returns a feasible solution whose true
//     objective is at most OPT + n * delta = OPT + eps_int * G.
//  4. Iterate with G := (objective just found) until the fixpoint; with
//     eps_int = eps / (1 + eps) the fixpoint satisfies
//     objective <= OPT / (1 - eps_int) = (1 + eps) * OPT.
//
// Time O(rounds * n^2 / eps), space O(n^2 / eps) bits for reconstruction;
// the round count is logarithmic in UB/OPT and capped.
#ifndef RETASK_CORE_FPTAS_HPP
#define RETASK_CORE_FPTAS_HPP

#include "retask/core/solver.hpp"

namespace retask {

/// (1+epsilon)-approximation for single-processor rejection.
class FptasSolver final : public RejectionSolver {
 public:
  /// Requires epsilon > 0. Smaller epsilon: closer to optimal, larger DP.
  explicit FptasSolver(double epsilon);

  RejectionSolution solve(const RejectionProblem& problem) const override;
  std::string name() const override;

  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
};

}  // namespace retask

#endif  // RETASK_CORE_FPTAS_HPP
