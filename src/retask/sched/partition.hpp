// Partition heuristics for multiprocessor scheduling.
//
// The source papers schedule partitioned task sets: each task is bound to
// one processor and EDF runs locally. The Largest-Task-First strategy (sort
// by size descending, assign to the least-loaded processor) is the group's
// flagship heuristic; RAND (same assignment rule without the sort) is their
// standard baseline; first-fit with a capacity is the bin-packing step of
// the leakage-aware and allocation-cost algorithms, and first-fit-decreasing
// (FFD) with rejection is the feasibility-driven placement of the many-core
// scale path.
//
// Placement is O(n log m): the least-loaded policies run on a 4-ary min-heap
// keyed (load, bin) — the lexicographic tie-break reproduces exactly the bin
// a left-to-right linear scan (std::min_element) would pick — and the
// first-fit policies descend a tournament tree holding the minimum load per
// bin range, which finds the leftmost bin passing the same leq_tol capacity
// predicate the linear scan applies. `partition_items_reference` keeps the
// O(n * m) linear scans; tests pin the two bit-identical.
#ifndef RETASK_SCHED_PARTITION_HPP
#define RETASK_SCHED_PARTITION_HPP

#include <vector>

#include "retask/common/rng.hpp"

namespace retask {

/// Partition policy over item weights.
enum class PartitionPolicy {
  kLargestFirst,  ///< LTF: sort descending, then least-loaded bin
  kInOrder,       ///< RAND baseline: input order, least-loaded bin
  kShuffled,      ///< random order, least-loaded bin
  kFirstFit,      ///< input order, first bin whose load stays within capacity
  kBestFit,       ///< input order, tightest bin whose load stays within capacity
  kFirstFitDecreasing,  ///< FFD with rejection: sort descending, first fitting bin
};

/// Result of a partition: `bin_of[i]` is the bin of item i; `loads[b]` the
/// total weight in bin b.
struct Partition {
  std::vector<int> bin_of;
  std::vector<double> loads;

  /// Largest bin load (0 for no bins... requires at least one bin).
  double max_load() const;
};

/// Partitions `weights` into `bin_count` bins under `policy`.
/// * Least-loaded policies always succeed (no capacity).
/// * kFirstFit/kBestFit/kFirstFitDecreasing use `capacity`; items that fit
///   nowhere get bin -1 (FFD's rejection).
/// * `rng` is only used by kShuffled (may be null for the others).
/// Requires bin_count >= 1 and non-negative weights.
Partition partition_items(const std::vector<double>& weights, int bin_count,
                          PartitionPolicy policy, double capacity = 0.0, Rng* rng = nullptr);

/// The O(n * m) linear-scan implementation the heap/tournament-tree paths
/// replaced. Same semantics bit for bit (tests and retask_fuzz --mp-diff
/// compare the two); kept as the normative reference, not for production
/// use. kBestFit always runs through this path.
Partition partition_items_reference(const std::vector<double>& weights, int bin_count,
                                    PartitionPolicy policy, double capacity = 0.0,
                                    Rng* rng = nullptr);

}  // namespace retask

#endif  // RETASK_SCHED_PARTITION_HPP
