// Partition heuristics for multiprocessor scheduling.
//
// The source papers schedule partitioned task sets: each task is bound to
// one processor and EDF runs locally. The Largest-Task-First strategy (sort
// by size descending, assign to the least-loaded processor) is the group's
// flagship heuristic; RAND (same assignment rule without the sort) is their
// standard baseline; first-fit with a capacity is the bin-packing step of
// the leakage-aware and allocation-cost algorithms.
#ifndef RETASK_SCHED_PARTITION_HPP
#define RETASK_SCHED_PARTITION_HPP

#include <vector>

#include "retask/common/rng.hpp"

namespace retask {

/// Partition policy over item weights.
enum class PartitionPolicy {
  kLargestFirst,  ///< LTF: sort descending, then least-loaded bin
  kInOrder,       ///< RAND baseline: input order, least-loaded bin
  kShuffled,      ///< random order, least-loaded bin
  kFirstFit,      ///< input order, first bin whose load stays within capacity
  kBestFit,       ///< input order, tightest bin whose load stays within capacity
};

/// Result of a partition: `bin_of[i]` is the bin of item i; `loads[b]` the
/// total weight in bin b.
struct Partition {
  std::vector<int> bin_of;
  std::vector<double> loads;

  /// Largest bin load (0 for no bins... requires at least one bin).
  double max_load() const;
};

/// Partitions `weights` into `bin_count` bins under `policy`.
/// * Least-loaded policies always succeed (no capacity).
/// * kFirstFit/kBestFit use `capacity`; items that fit nowhere get bin -1.
/// * `rng` is only used by kShuffled (may be null for the others).
/// Requires bin_count >= 1 and non-negative weights.
Partition partition_items(const std::vector<double>& weights, int bin_count,
                          PartitionPolicy policy, double capacity = 0.0, Rng* rng = nullptr);

}  // namespace retask

#endif  // RETASK_SCHED_PARTITION_HPP
