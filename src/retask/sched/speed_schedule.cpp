#include "retask/sched/speed_schedule.hpp"

#include <algorithm>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {

SpeedSchedule SpeedSchedule::from_plan(const ExecutionPlan& plan) {
  std::vector<PlanSegment> ordered = plan.segments;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const PlanSegment& a, const PlanSegment& b) { return a.speed > b.speed; });
  SpeedSchedule schedule;
  for (const PlanSegment& seg : ordered) schedule.append(seg.speed, seg.duration);
  return schedule;
}

void SpeedSchedule::append(double speed, double duration) {
  require(speed >= 0.0, "SpeedSchedule::append: negative speed");
  require(duration >= 0.0, "SpeedSchedule::append: negative duration");
  if (duration == 0.0) return;
  segments_.push_back({speed, duration});
}

double SpeedSchedule::end_time() const {
  double t = 0.0;
  for (const PlanSegment& seg : segments_) t += seg.duration;
  return t;
}

double SpeedSchedule::cycles_by(double t) const {
  double cycles = 0.0;
  double clock = 0.0;
  for (const PlanSegment& seg : segments_) {
    if (t <= clock) break;
    const double span = std::min(seg.duration, t - clock);
    cycles += seg.speed * span;
    clock += seg.duration;
  }
  return cycles;
}

double SpeedSchedule::time_to_cycles(double cycles) const {
  require(cycles >= 0.0, "SpeedSchedule::time_to_cycles: negative cycle count");
  if (cycles == 0.0) return 0.0;
  double remaining = cycles;
  double clock = 0.0;
  for (const PlanSegment& seg : segments_) {
    const double available = seg.speed * seg.duration;
    if (available >= remaining && seg.speed > 0.0) {
      return clock + remaining / seg.speed;
    }
    remaining -= available;
    clock += seg.duration;
  }
  require(leq_tol(remaining, 0.0) || almost_equal(remaining, 0.0, 1e-6),
          "SpeedSchedule::time_to_cycles: schedule executes fewer cycles than requested");
  return clock;
}

double SpeedSchedule::energy(const EnergyCurve& curve) const {
  ExecutionPlan plan;
  plan.segments = segments_;
  return curve.plan_energy(plan);
}

}  // namespace retask
