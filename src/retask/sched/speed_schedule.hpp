// Piecewise-constant speed schedules over absolute time.
//
// Solvers emit ExecutionPlans (bags of constant-speed segments); the
// simulators need the same information pinned to a timeline so that task
// completions can be located. SpeedSchedule is that timeline: consecutive
// segments starting at time 0, with queries for the cycles executed up to a
// time and the earliest time a cycle count is reached.
#ifndef RETASK_SCHED_SPEED_SCHEDULE_HPP
#define RETASK_SCHED_SPEED_SCHEDULE_HPP

#include <vector>

#include "retask/power/energy_curve.hpp"

namespace retask {

/// Timeline of constant-speed intervals starting at time 0.
class SpeedSchedule {
 public:
  SpeedSchedule() = default;

  /// Builds a timeline from a plan, keeping segment order. Execution
  /// segments are sorted fastest-first ahead of idle so that work finishes
  /// as early as possible (any order is energy-equivalent; earliest-finish
  /// is the canonical choice and keeps deadline checks conservative-free).
  static SpeedSchedule from_plan(const ExecutionPlan& plan);

  /// Appends a segment (duration >= 0, speed >= 0).
  void append(double speed, double duration);

  const std::vector<PlanSegment>& segments() const { return segments_; }

  /// Timeline end.
  double end_time() const;

  /// Cycles executed in [0, t] (t clamped to the timeline).
  double cycles_by(double t) const;

  /// Earliest time at which `cycles` cycles have been executed; requires the
  /// schedule to execute at least that many in total.
  double time_to_cycles(double cycles) const;

  /// Total cycles executed by the whole timeline.
  double total_cycles() const { return cycles_by(end_time()); }

  /// Energy drawn under `curve`'s model and idle discipline.
  double energy(const EnergyCurve& curve) const;

 private:
  std::vector<PlanSegment> segments_;
};

}  // namespace retask

#endif  // RETASK_SCHED_SPEED_SCHEDULE_HPP
