#include "retask/sched/reclaim.hpp"

#include <algorithm>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/common/rng.hpp"
#include "retask/power/critical_speed.hpp"

namespace retask {

double reclaim_speed_floor(const EnergyCurve& curve) {
  if (curve.idle() == IdleDiscipline::kDormantEnable) return critical_speed(curve.model());
  return curve.model().min_speed();
}

double reclaim_speed_for(const EnergyCurve& curve, double work, double window) {
  const double smax = curve.model().max_speed();
  require(window > 0.0, "reclaim: no time left in the window");
  const double demanded = work / window;
  require(leq_tol(demanded, smax), "reclaim: remaining work no longer fits the window");
  return clamp(std::max(demanded, reclaim_speed_floor(curve)), std::max(smax * 1e-12, 1e-300),
               smax);
}

ReclaimResult simulate_frame_reclaim(const std::vector<FrameTask>& accepted,
                                     const std::vector<Cycles>& actual_cycles,
                                     double work_per_cycle, const EnergyCurve& curve,
                                     ReclaimPolicy policy) {
  require(curve.model().is_continuous(),
          "simulate_frame_reclaim: continuous (ideal) power models only");
  require(accepted.size() == actual_cycles.size(),
          "simulate_frame_reclaim: actual-cycle vector size mismatch");
  require(work_per_cycle > 0.0, "simulate_frame_reclaim: work_per_cycle must be positive");

  double wcet_work = 0.0;
  double actual_work = 0.0;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    validate(accepted[i]);
    require(actual_cycles[i] > 0 && actual_cycles[i] <= accepted[i].cycles,
            "simulate_frame_reclaim: actual cycles must be in [1, WCET]");
    wcet_work += work_per_cycle * static_cast<double>(accepted[i].cycles);
    actual_work += work_per_cycle * static_cast<double>(actual_cycles[i]);
  }
  const double window = curve.window();
  require(curve.feasible(wcet_work), "simulate_frame_reclaim: WCET load infeasible");

  ReclaimResult result;
  double now = 0.0;
  double energy = 0.0;

  if (accepted.empty()) {
    result.deadline_met = true;
    result.energy = curve.idle_cost(window);
    return result;
  }

  switch (policy) {
    case ReclaimPolicy::kStatic: {
      const double s = reclaim_speed_for(curve, wcet_work, window);
      result.initial_speed = s;
      result.final_speed = s;
      now = actual_work / s;
      energy = (actual_work / s) * curve.model().power(s);
      break;
    }
    case ReclaimPolicy::kClairvoyant: {
      const double s = reclaim_speed_for(curve, actual_work, window);
      result.initial_speed = s;
      result.final_speed = s;
      now = actual_work / s;
      energy = (actual_work / s) * curve.model().power(s);
      break;
    }
    case ReclaimPolicy::kGreedy: {
      double remaining_wcet = wcet_work;
      for (std::size_t i = 0; i < accepted.size(); ++i) {
        const double s = reclaim_speed_for(curve, remaining_wcet, window - now);
        if (i == 0) result.initial_speed = s;
        result.final_speed = s;
        const double work_i = work_per_cycle * static_cast<double>(actual_cycles[i]);
        const double dt = work_i / s;
        energy += dt * curve.model().power(s);
        now += dt;
        remaining_wcet -= work_per_cycle * static_cast<double>(accepted[i].cycles);
      }
      break;
    }
  }

  result.completion = now;
  result.deadline_met = leq_tol(now, window, 1e-6);
  result.energy = energy + curve.idle_cost(std::max(0.0, window - now));
  return result;
}

std::vector<Cycles> draw_actual_cycles(const std::vector<FrameTask>& accepted, double ratio_lo,
                                       double ratio_hi, Rng& rng) {
  require(ratio_lo > 0.0 && ratio_lo <= ratio_hi && ratio_hi <= 1.0,
          "draw_actual_cycles: ratios must satisfy 0 < lo <= hi <= 1");
  std::vector<Cycles> actual(accepted.size());
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    const double ratio = rng.uniform(ratio_lo, ratio_hi);
    actual[i] = std::max<Cycles>(
        1, static_cast<Cycles>(static_cast<double>(accepted[i].cycles) * ratio));
  }
  return actual;
}

}  // namespace retask
