// Stochastic execution-time engine for frame schedules.
//
// The offline rejection solvers size everything for worst-case cycles; at
// run time jobs usually finish early. This engine models that gap: per-job
// actual cycles are drawn from seeded distributions (replayable bit-for-bit
// through the deterministic Rng), and the accepted set is executed under a
// spectrum of speed-selection policies ordered by how aggressively they
// defer work to harvest future slack:
//
//  * kStatic           — the precomputed WCET speed; slack only lengthens
//                        the idle tail. Identical to reclaim's kStatic.
//  * kGreedy           — re-spread the REMAINING worst-case work evenly over
//                        the remaining window at every completion. Identical
//                        to reclaim's kGreedy.
//  * kCycleConserving  — CC-EDF style: realized slack funds the CURRENT task
//                        only, bounded by the static plan's per-task virtual
//                        deadlines F_i (the task must still finish by its
//                        static finish time, so feasibility is inherited
//                        from the static plan).
//  * kLookahead        — LA-EDF style: maximal deferral. The current task is
//                        stretched to the latest start that still lets every
//                        later task run at top speed; worst-case demand later
//                        forces top speed, early completions lock in the
//                        savings.
//  * kExpected         — stochastic speed selection: pace for the EXPECTED
//                        remaining work (expected_ratio * remaining WCET)
//                        instead of the worst case, floored at kLookahead's
//                        speed so worst-case feasibility is never bet away.
//                        expected_ratio == 1 reproduces kGreedy exactly.
//  * kClairvoyant      — knows actual cycles upfront; the per-trajectory
//                        lower bound wherever the reclaim floor is the true
//                        optimum (dormant-disable, or dormant-enable with
//                        zero switch overheads — a non-amortized sleep
//                        switch makes idle power effectively positive and
//                        the critical-speed floor no longer optimal).
//
// Speeds are either continuous (ideal model, matching sched/reclaim.hpp
// bit for bit for the three shared policies) or realized on a discrete
// FreqLadder by two-speed emulation: each task's planned interval splits
// between the two levels adjacent to the desired speed, LOW LEVEL FIRST, so
// an early completion truncates the expensive high-speed share while a
// worst-case run still finishes exactly on plan (ladder execution can never
// miss a deadline the continuous plan meets).
#ifndef RETASK_SCHED_STOCHASTIC_HPP
#define RETASK_SCHED_STOCHASTIC_HPP

#include <string>
#include <vector>

#include "retask/common/rng.hpp"
#include "retask/power/energy_curve.hpp"
#include "retask/power/freq_ladder.hpp"
#include "retask/task/task.hpp"

namespace retask {

/// Shape of the per-job actual-cycle distribution (as a fraction of WCET).
enum class CycleDistribution {
  kUniform,      ///< uniform on [ratio_lo, ratio_hi]
  kTruncNormal,  ///< normal(mean, stddev) truncated to [ratio_lo, ratio_hi]
  kBimodal,      ///< beta-like two-mode mix hugging both ends of the support
};

/// Distribution of actual cycles as a ratio of WCET, drawn per job.
struct TrajectoryDistribution {
  CycleDistribution kind = CycleDistribution::kUniform;
  double ratio_lo = 0.25;   ///< support lower bound, in (0, 1]
  double ratio_hi = 1.0;    ///< support upper bound, >= ratio_lo
  double mean = 0.5;        ///< kTruncNormal: location before truncation
  double stddev = 0.15;     ///< kTruncNormal: scale; 0 = point mass at mean
  double low_weight = 0.6;  ///< kBimodal: probability of the low mode
  double mode_width = 0.25; ///< kBimodal: mode width as a fraction of the support

  /// Expected ACET/WCET ratio (exact for kUniform/kBimodal, the analytic
  /// truncated-normal mean for kTruncNormal). Feed this to
  /// StochasticFrameConfig::expected_ratio for the kExpected policy.
  double mean_ratio() const;
};

/// Throws retask::Error when the distribution parameters are inconsistent.
void validate(const TrajectoryDistribution& dist);

/// Parses "KIND:LO,HI" (kind in {uniform, normal, bimodal}) into a
/// distribution with default shape parameters — the CLI/fuzz wire format.
TrajectoryDistribution parse_distribution(const std::string& text);
const char* to_string(CycleDistribution kind);

/// Draws one actual-cycle trajectory for `accepted` (one draw per task, in
/// order, through `rng`): each entry is in [1, WCET cycles].
std::vector<Cycles> draw_trajectory(const std::vector<FrameTask>& accepted,
                                    const TrajectoryDistribution& dist, Rng& rng);

/// Speed-selection policy of the stochastic engine (ordered by increasing
/// deferral; see the file comment).
enum class StochasticPolicy {
  kStatic,
  kGreedy,
  kCycleConserving,
  kLookahead,
  kExpected,
  kClairvoyant,
};

const char* to_string(StochasticPolicy policy);

/// All six policies in deferral order (the bench/test lineup).
std::vector<StochasticPolicy> all_stochastic_policies();

/// How one frame is executed.
struct StochasticFrameConfig {
  StochasticPolicy policy = StochasticPolicy::kStatic;
  /// Discrete execution ladder; null runs continuous (ideal) speeds. The
  /// ladder's top level is the engine's top speed (deferral and feasibility
  /// are computed against it), so a ladder slower than the model's smax
  /// tightens the schedule honestly.
  const FreqLadder* ladder = nullptr;
  /// kExpected only: expected ACET/WCET ratio used to pace speeds
  /// (typically TrajectoryDistribution::mean_ratio()); must be in (0, 1].
  double expected_ratio = 1.0;
};

/// Outcome of one frame executed with actual (possibly < WCET) cycles.
struct StochasticFrameResult {
  bool deadline_met = false;
  double completion = 0.0;  ///< when the last task finishes
  double energy = 0.0;      ///< busy energy + idle tail under the curve
  double initial_speed = 0.0;
  double final_speed = 0.0;
  /// Average execution speed of each task (desired speed on the continuous
  /// path; actual work / actual time under ladder emulation).
  std::vector<double> task_speeds;
};

/// Executes `accepted` tasks (in order) whose true demands are
/// `actual_cycles[i] <= accepted[i].cycles` under `config`. Requires a
/// continuous power model (the ladder supplies the discreteness), matching
/// sizes, positive actual cycles, and a WCET load feasible at the engine's
/// top speed. With config.ladder == nullptr the kStatic / kGreedy /
/// kClairvoyant results reproduce simulate_frame_reclaim bit for bit.
StochasticFrameResult simulate_frame_stochastic(const std::vector<FrameTask>& accepted,
                                                const std::vector<Cycles>& actual_cycles,
                                                double work_per_cycle, const EnergyCurve& curve,
                                                const StochasticFrameConfig& config);

}  // namespace retask

#endif  // RETASK_SCHED_STOCHASTIC_HPP
