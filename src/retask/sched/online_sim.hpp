// Online admission control for aperiodic jobs on one DVS processor.
//
// The offline rejection problem assumes the whole task set is known; real
// systems often must decide accept/reject at arrival time. This simulator
// implements the classic online machinery:
//
//  * Speed rule — Optimal Available (Yao/Demers/Shenker lineage): at any
//    instant the processor runs at the maximum "density" over pending
//    deadlines, s_OA = max over pending d of (remaining work with deadline
//    <= d) / (d - now), lifted to the critical speed on dormant-enable
//    processors. Densities only change at arrivals/completions, so the
//    schedule is piecewise-constant and exactly simulable.
//  * Admission rule — a job is admissible iff adding it keeps s_OA within
//    the top speed (then EDF at >= s_OA provably meets every deadline, so
//    the simulator's zero-miss count is a checked invariant, not an
//    assumption). On top of feasibility, the value-density rule admits only
//    jobs whose penalty covers a threshold multiple of their estimated
//    marginal energy — the online analogue of the offline density greedy.
//
// The objective mirrors the offline one: busy/idle energy over the horizon
// plus the penalties of every job not admitted.
#ifndef RETASK_SCHED_ONLINE_SIM_HPP
#define RETASK_SCHED_ONLINE_SIM_HPP

#include <cstdint>
#include <vector>

#include "retask/common/rng.hpp"
#include "retask/power/power_model.hpp"
#include "retask/power/sleep.hpp"
#include "retask/task/task.hpp"

namespace retask {

/// One aperiodic job.
struct AperiodicJob {
  int id = 0;
  double arrival = 0.0;
  Cycles cycles = 0;
  double deadline = 0.0;  ///< absolute; must exceed arrival
  double penalty = 0.0;   ///< cost of not admitting the job
};

/// Validates a job (positive cycles, deadline after arrival, non-negative
/// penalty); throws retask::Error.
void validate(const AperiodicJob& job);

/// How arrivals are admitted (always subject to the feasibility test).
enum class AdmissionRule {
  kFeasibleOnly,   ///< admit everything that can still meet its deadline
  kValueDensity,   ///< additionally require penalty >= threshold * est. energy
};

/// Online simulation inputs.
struct OnlineSimConfig {
  double work_per_cycle = 1.0;
  AdmissionRule rule = AdmissionRule::kFeasibleOnly;
  /// kValueDensity: admit iff penalty >= value_threshold * (job work *
  /// energy-per-work at the post-admission OA speed).
  double value_threshold = 1.0;
  /// Idle accounting: dormant-enable sleeps (paying `sleep` overheads per
  /// gap); dormant-disable leaks.
  bool dormant_enable = true;
  SleepParams sleep{};
  /// Horizon; 0 means "latest deadline".
  double horizon = 0.0;
};

/// Aggregate outcome of one online run.
struct OnlineSimResult {
  std::int64_t jobs = 0;
  std::int64_t admitted = 0;
  std::int64_t deadline_misses = 0;  ///< must be 0; checked invariant
  double busy_time = 0.0;
  double idle_time = 0.0;
  double energy = 0.0;
  double rejected_penalty = 0.0;
  double max_speed_used = 0.0;

  double objective() const { return energy + rejected_penalty; }
  double admission_ratio() const {
    return jobs == 0 ? 1.0 : static_cast<double>(admitted) / static_cast<double>(jobs);
  }
};

/// Simulates the job stream (any order; sorted internally by arrival).
OnlineSimResult simulate_online(std::vector<AperiodicJob> jobs, const OnlineSimConfig& config,
                                const PowerModel& model);

/// Synthetic aperiodic stream: Poisson-like arrivals at `arrival_rate` jobs
/// per time unit over `duration`, log-uniform sizes with mean work
/// `mean_work` (in work units), deadlines a uniform [2, 6] multiple of the
/// job's top-speed execution time, penalties `penalty_scale` times the job's
/// energy at the anchor speed.
struct AperiodicWorkloadConfig {
  double duration = 100.0;
  double arrival_rate = 1.0;
  double mean_work = 0.4;
  double resolution = 1000.0;  ///< cycles per work unit (use work_per_cycle = 1/resolution)
  double penalty_scale = 1.0;
  double energy_per_work_ref = 1.0;
};
std::vector<AperiodicJob> generate_aperiodic_jobs(const AperiodicWorkloadConfig& config,
                                                  double max_speed, Rng& rng);

}  // namespace retask

#endif  // RETASK_SCHED_ONLINE_SIM_HPP
