// Discrete-event EDF/DVS simulator for periodic task sets.
//
// Simulates earliest-deadline-first dispatching of the selected tasks on one
// processor running at a constant execution speed over one hyper-period,
// tracking deadline misses, busy/idle split, per-job response times, idle
// fragmentation and drawn energy (idle intervals are charged through the
// energy curve, so dormant-mode overheads are honoured per interval).
//
// Procrastination (the PROC lineage: delay execution to merge fragmented
// idle gaps into long, sleep-worthy intervals): with `procrastinate` set,
// whenever the processor goes idle it stays dormant past upcoming releases
// and wakes at the latest provably safe instant. Safety uses the
// demand-bound argument: future implicit-deadline releases inside a window
// of length Delta demand at most U * Delta work, so waking at
//
//     t_wake = min over pending jobs j of  d_j - B(<= d_j) / (s - U)
//
// (B = backlog with deadline at most d_j, s = execution speed, U = demanded
// rate of the selected tasks) leaves enough capacity for both the backlog
// and the worst-case future interference. The simulator still checks every
// deadline, so the guarantee is verified rather than assumed.
#ifndef RETASK_SCHED_EDF_SIM_HPP
#define RETASK_SCHED_EDF_SIM_HPP

#include <cstdint>
#include <vector>

#include "retask/power/energy_curve.hpp"
#include "retask/task/task_set.hpp"

namespace retask {

/// Aggregate outcome of one hyper-period of EDF execution.
struct EdfSimResult {
  std::int64_t jobs_released = 0;
  std::int64_t deadline_misses = 0;
  double busy_time = 0.0;
  double idle_time = 0.0;
  std::int64_t idle_intervals = 0;  ///< maximal idle gaps (fragmentation)
  double longest_idle = 0.0;        ///< longest single idle gap
  double energy = 0.0;              ///< busy * P(s) + per-gap idle cost
  double max_lateness = 0.0;        ///< max(finish - deadline, 0) over all jobs
  double max_response = 0.0;        ///< max(finish - release) over all jobs
};

/// Simulation inputs.
struct EdfSimConfig {
  /// Constant execution speed (work units per time unit); must be positive
  /// and, for validation of analytic claims, within the curve model's range.
  double speed = 1.0;
  /// Work units per task cycle (the problem's cycle scale).
  double work_per_cycle = 1.0;
  /// Horizon; 0 means one hyper-period of the full task set.
  double horizon = 0.0;
  /// Lazy wakeup: merge idle gaps by delaying execution to the latest
  /// provably safe instant (see file comment). Requires speed > demanded
  /// rate to defer at all; otherwise the processor wakes immediately.
  bool procrastinate = false;
};

/// Simulates EDF on the tasks with `selected[i]` true (empty = all).
/// Energy is accounted under `curve`'s idle discipline and sleep overheads,
/// with the processor executing at `config.speed` while busy.
EdfSimResult simulate_edf(const PeriodicTaskSet& tasks, const std::vector<bool>& selected,
                          const EdfSimConfig& config, const EnergyCurve& curve);

}  // namespace retask

#endif  // RETASK_SCHED_EDF_SIM_HPP
