#include "retask/sched/partition.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {
namespace {

/// Shared ordering step: identity, descending stable sort, or shuffle.
std::vector<std::size_t> make_order(const std::vector<double>& weights, PartitionPolicy policy,
                                    Rng* rng) {
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  switch (policy) {
    case PartitionPolicy::kLargestFirst:
    case PartitionPolicy::kFirstFitDecreasing:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) { return weights[a] > weights[b]; });
      break;
    case PartitionPolicy::kShuffled:
      require(rng != nullptr, "partition_items: kShuffled requires an rng");
      rng->shuffle(order);
      break;
    case PartitionPolicy::kInOrder:
    case PartitionPolicy::kFirstFit:
    case PartitionPolicy::kBestFit:
      break;
  }
  return order;
}

constexpr bool uses_capacity(PartitionPolicy policy) {
  return policy == PartitionPolicy::kFirstFit || policy == PartitionPolicy::kBestFit ||
         policy == PartitionPolicy::kFirstFitDecreasing;
}

/// 4-ary min-heap over (load, bin) pairs, ordered lexicographically. The
/// strict total order makes the root unique: the minimal load and, among
/// equal loads, the lowest bin index — exactly the element a left-to-right
/// std::min_element scan returns. Assignment order therefore matches the
/// linear scan item for item, and each bin accumulates its load in the same
/// sequence, so the resulting loads are bit-identical.
class LeastLoadedHeap {
 public:
  explicit LeastLoadedHeap(std::size_t bins) : entries_(bins) {
    // All loads zero with bins ascending by array index: every parent
    // precedes its children in bin order, so the heap property holds.
    for (std::size_t b = 0; b < bins; ++b) entries_[b] = Entry{0.0, static_cast<int>(b)};
  }

  /// Least-loaded bin (ties: lowest index); adds `w` to its load.
  int assign(double w) {
    Entry top = entries_[0];
    const int bin = top.bin;
    top.load += w;
    sift_down(top);
    return bin;
  }

 private:
  struct Entry {
    double load;
    int bin;
  };

  static bool less(const Entry& a, const Entry& b) {
    return a.load < b.load || (a.load == b.load && a.bin < b.bin);
  }

  /// Re-seats `e` starting from the root of the 4-ary heap.
  void sift_down(Entry e) {
    const std::size_t n = entries_.size();
    std::size_t pos = 0;
    for (;;) {
      const std::size_t first = 4 * pos + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (less(entries_[c], entries_[best])) best = c;
      }
      if (!less(entries_[best], e)) break;
      entries_[pos] = entries_[best];
      pos = best;
    }
    entries_[pos] = e;
  }

  std::vector<Entry> entries_;
};

/// Tournament (segment) tree over bin loads for first-fit: each node holds
/// the minimum load in its range, and `find_first` descends left-first to
/// the leftmost bin whose load passes the same leq_tol predicate the linear
/// scan applies. The predicate is downward closed in the load (a heavier bin
/// never fits when a lighter one does not), so "some bin in this subtree
/// fits" is equivalent to "the subtree's minimum load fits" and the descent
/// lands exactly where the scan's first hit is.
class FirstFitTree {
 public:
  explicit FirstFitTree(std::size_t bins) : bins_(bins) {
    leaves_ = 1;
    while (leaves_ < bins_) leaves_ *= 2;
    min_.assign(2 * leaves_, std::numeric_limits<double>::infinity());
    for (std::size_t b = 0; b < bins_; ++b) min_[leaves_ + b] = 0.0;
    for (std::size_t i = leaves_; i-- > 1;) min_[i] = std::min(min_[2 * i], min_[2 * i + 1]);
  }

  /// Leftmost bin with leq_tol(load + w, capacity), or -1 when none fits
  /// (padding leaves hold +inf and never qualify).
  int find_first(double w, double capacity) const {
    if (!fits(min_[1], w, capacity)) return -1;
    std::size_t i = 1;
    while (i < leaves_) {
      i *= 2;
      if (!fits(min_[i], w, capacity)) ++i;
    }
    return static_cast<int>(i - leaves_);
  }

  void add(std::size_t bin, double w) {
    std::size_t i = leaves_ + bin;
    min_[i] += w;
    for (i /= 2; i >= 1; i /= 2) min_[i] = std::min(min_[2 * i], min_[2 * i + 1]);
  }

  double load(std::size_t bin) const { return min_[leaves_ + bin]; }

 private:
  static bool fits(double load, double w, double capacity) {
    return leq_tol(load + w, capacity);
  }

  std::size_t bins_ = 0;
  std::size_t leaves_ = 1;
  std::vector<double> min_;
};

void validate_inputs(const std::vector<double>& weights, int bin_count, PartitionPolicy policy,
                     double capacity) {
  require(bin_count >= 1, "partition_items: bin_count must be at least 1");
  for (const double w : weights) require(w >= 0.0, "partition_items: negative weight");
  if (uses_capacity(policy)) {
    require(capacity > 0.0, "partition_items: capacity-based policies require a positive capacity");
  }
}

}  // namespace

double Partition::max_load() const {
  require(!loads.empty(), "Partition::max_load: no bins");
  return *std::max_element(loads.begin(), loads.end());
}

Partition partition_items(const std::vector<double>& weights, int bin_count,
                          PartitionPolicy policy, double capacity, Rng* rng) {
  validate_inputs(weights, bin_count, policy, capacity);
  if (policy == PartitionPolicy::kBestFit) {
    // Best fit needs the tightest qualifying bin, which a min-load tree
    // cannot answer; it stays on the linear reference scan.
    return partition_items_reference(weights, bin_count, policy, capacity, rng);
  }
  const std::vector<std::size_t> order = make_order(weights, policy, rng);

  Partition result;
  result.bin_of.assign(weights.size(), -1);
  result.loads.assign(static_cast<std::size_t>(bin_count), 0.0);

  if (uses_capacity(policy)) {
    FirstFitTree tree(result.loads.size());
    for (const std::size_t i : order) {
      const int b = tree.find_first(weights[i], capacity);
      if (b < 0) continue;  // fits nowhere: rejected (bin -1)
      result.bin_of[i] = b;
      tree.add(static_cast<std::size_t>(b), weights[i]);
    }
    for (std::size_t b = 0; b < result.loads.size(); ++b) result.loads[b] = tree.load(b);
    return result;
  }

  LeastLoadedHeap heap(result.loads.size());
  for (const std::size_t i : order) {
    const int b = heap.assign(weights[i]);
    result.bin_of[i] = b;
    result.loads[static_cast<std::size_t>(b)] += weights[i];
  }
  return result;
}

Partition partition_items_reference(const std::vector<double>& weights, int bin_count,
                                    PartitionPolicy policy, double capacity, Rng* rng) {
  validate_inputs(weights, bin_count, policy, capacity);
  const std::vector<std::size_t> order = make_order(weights, policy, rng);

  Partition result;
  result.bin_of.assign(weights.size(), -1);
  result.loads.assign(static_cast<std::size_t>(bin_count), 0.0);

  if (uses_capacity(policy)) {
    for (const std::size_t i : order) {
      std::size_t chosen = result.loads.size();
      for (std::size_t b = 0; b < result.loads.size(); ++b) {
        if (!leq_tol(result.loads[b] + weights[i], capacity)) continue;
        if (policy != PartitionPolicy::kBestFit) {
          chosen = b;
          break;
        }
        if (chosen == result.loads.size() || result.loads[b] > result.loads[chosen]) {
          chosen = b;  // best fit: tightest remaining space
        }
      }
      if (chosen < result.loads.size()) {
        result.bin_of[i] = static_cast<int>(chosen);
        result.loads[chosen] += weights[i];
      }
    }
    return result;
  }

  for (const std::size_t i : order) {
    const auto lightest = std::min_element(result.loads.begin(), result.loads.end());
    const auto b = static_cast<std::size_t>(lightest - result.loads.begin());
    result.bin_of[i] = static_cast<int>(b);
    result.loads[b] += weights[i];
  }
  return result;
}

}  // namespace retask
