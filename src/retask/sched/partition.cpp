#include "retask/sched/partition.hpp"

#include <algorithm>
#include <numeric>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {

double Partition::max_load() const {
  require(!loads.empty(), "Partition::max_load: no bins");
  return *std::max_element(loads.begin(), loads.end());
}

Partition partition_items(const std::vector<double>& weights, int bin_count,
                          PartitionPolicy policy, double capacity, Rng* rng) {
  require(bin_count >= 1, "partition_items: bin_count must be at least 1");
  for (const double w : weights) require(w >= 0.0, "partition_items: negative weight");

  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  switch (policy) {
    case PartitionPolicy::kLargestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) { return weights[a] > weights[b]; });
      break;
    case PartitionPolicy::kShuffled:
      require(rng != nullptr, "partition_items: kShuffled requires an rng");
      rng->shuffle(order);
      break;
    case PartitionPolicy::kInOrder:
    case PartitionPolicy::kFirstFit:
    case PartitionPolicy::kBestFit:
      break;
  }

  Partition result;
  result.bin_of.assign(weights.size(), -1);
  result.loads.assign(static_cast<std::size_t>(bin_count), 0.0);

  if (policy == PartitionPolicy::kFirstFit || policy == PartitionPolicy::kBestFit) {
    require(capacity > 0.0, "partition_items: capacity-based policies require a positive capacity");
    for (const std::size_t i : order) {
      std::size_t chosen = result.loads.size();
      for (std::size_t b = 0; b < result.loads.size(); ++b) {
        if (!leq_tol(result.loads[b] + weights[i], capacity)) continue;
        if (policy == PartitionPolicy::kFirstFit) {
          chosen = b;
          break;
        }
        if (chosen == result.loads.size() || result.loads[b] > result.loads[chosen]) {
          chosen = b;  // best fit: tightest remaining space
        }
      }
      if (chosen < result.loads.size()) {
        result.bin_of[i] = static_cast<int>(chosen);
        result.loads[chosen] += weights[i];
      }
    }
    return result;
  }

  for (const std::size_t i : order) {
    const auto lightest = std::min_element(result.loads.begin(), result.loads.end());
    const auto b = static_cast<std::size_t>(lightest - result.loads.begin());
    result.bin_of[i] = static_cast<int>(b);
    result.loads[b] += weights[i];
  }
  return result;
}

}  // namespace retask
