#include "retask/sched/stochastic.hpp"

#include <algorithm>
#include <cmath>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/sched/reclaim.hpp"

namespace retask {
namespace {

constexpr double kPi = 3.14159265358979323846;

double normal_pdf(double z) { return std::exp(-0.5 * z * z) / std::sqrt(2.0 * kPi); }
double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double draw_ratio(const TrajectoryDistribution& dist, Rng& rng) {
  switch (dist.kind) {
    case CycleDistribution::kUniform:
      return rng.uniform(dist.ratio_lo, dist.ratio_hi);
    case CycleDistribution::kTruncNormal: {
      if (dist.stddev == 0.0) return clamp(dist.mean, dist.ratio_lo, dist.ratio_hi);
      // Rejection sampling with a deterministic draw budget: the clamp
      // fallback keeps the function total when the support carries almost no
      // normal mass, without ever looping unboundedly.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const double draw = rng.normal(dist.mean, dist.stddev);
        if (draw >= dist.ratio_lo && draw <= dist.ratio_hi) return draw;
      }
      return clamp(dist.mean, dist.ratio_lo, dist.ratio_hi);
    }
    case CycleDistribution::kBimodal: {
      const double width = dist.mode_width * (dist.ratio_hi - dist.ratio_lo);
      if (rng.uniform() < dist.low_weight) {
        return rng.uniform(dist.ratio_lo, dist.ratio_lo + width);
      }
      return rng.uniform(dist.ratio_hi - width, dist.ratio_hi);
    }
  }
  throw Error("draw_ratio: unknown CycleDistribution");
}

}  // namespace

double TrajectoryDistribution::mean_ratio() const {
  switch (kind) {
    case CycleDistribution::kUniform:
      return 0.5 * (ratio_lo + ratio_hi);
    case CycleDistribution::kTruncNormal: {
      if (stddev == 0.0) return clamp(mean, ratio_lo, ratio_hi);
      const double a = (ratio_lo - mean) / stddev;
      const double b = (ratio_hi - mean) / stddev;
      const double mass = normal_cdf(b) - normal_cdf(a);
      if (mass < 1e-12) return clamp(mean, ratio_lo, ratio_hi);
      return mean + stddev * (normal_pdf(a) - normal_pdf(b)) / mass;
    }
    case CycleDistribution::kBimodal: {
      const double width = mode_width * (ratio_hi - ratio_lo);
      return low_weight * (ratio_lo + 0.5 * width) +
             (1.0 - low_weight) * (ratio_hi - 0.5 * width);
    }
  }
  throw Error("mean_ratio: unknown CycleDistribution");
}

void validate(const TrajectoryDistribution& dist) {
  require(dist.ratio_lo > 0.0 && dist.ratio_lo <= dist.ratio_hi && dist.ratio_hi <= 1.0,
          "TrajectoryDistribution: ratios must satisfy 0 < lo <= hi <= 1");
  if (dist.kind == CycleDistribution::kTruncNormal) {
    require(std::isfinite(dist.mean), "TrajectoryDistribution: mean must be finite");
    require(dist.stddev >= 0.0 && std::isfinite(dist.stddev),
            "TrajectoryDistribution: stddev must be finite and non-negative");
  }
  if (dist.kind == CycleDistribution::kBimodal) {
    require(dist.low_weight >= 0.0 && dist.low_weight <= 1.0,
            "TrajectoryDistribution: low_weight must be in [0, 1]");
    require(dist.mode_width > 0.0 && dist.mode_width <= 1.0,
            "TrajectoryDistribution: mode_width must be in (0, 1]");
  }
}

const char* to_string(CycleDistribution kind) {
  switch (kind) {
    case CycleDistribution::kUniform: return "uniform";
    case CycleDistribution::kTruncNormal: return "normal";
    case CycleDistribution::kBimodal: return "bimodal";
  }
  return "?";
}

TrajectoryDistribution parse_distribution(const std::string& text) {
  TrajectoryDistribution dist;
  const std::size_t colon = text.find(':');
  const std::string kind = text.substr(0, colon);
  if (kind == "uniform") {
    dist.kind = CycleDistribution::kUniform;
  } else if (kind == "normal") {
    dist.kind = CycleDistribution::kTruncNormal;
  } else if (kind == "bimodal") {
    dist.kind = CycleDistribution::kBimodal;
  } else {
    throw Error("parse_distribution: unknown kind '" + kind +
                "' (expected uniform | normal | bimodal)");
  }
  if (colon != std::string::npos) {
    const std::string range = text.substr(colon + 1);
    const std::size_t comma = range.find(',');
    require(comma != std::string::npos, "parse_distribution: expected KIND:LO,HI");
    try {
      dist.ratio_lo = std::stod(range.substr(0, comma));
      dist.ratio_hi = std::stod(range.substr(comma + 1));
    } catch (const std::exception&) {
      throw Error("parse_distribution: bad ratio bounds in '" + text + "'");
    }
    // Re-center the shape defaults on the requested support.
    dist.mean = 0.5 * (dist.ratio_lo + dist.ratio_hi);
    dist.stddev = 0.25 * (dist.ratio_hi - dist.ratio_lo);
  }
  validate(dist);
  return dist;
}

std::vector<Cycles> draw_trajectory(const std::vector<FrameTask>& accepted,
                                    const TrajectoryDistribution& dist, Rng& rng) {
  validate(dist);
  std::vector<Cycles> actual(accepted.size());
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    const double ratio = draw_ratio(dist, rng);
    actual[i] = std::max<Cycles>(
        1, static_cast<Cycles>(static_cast<double>(accepted[i].cycles) * ratio));
  }
  return actual;
}

const char* to_string(StochasticPolicy policy) {
  switch (policy) {
    case StochasticPolicy::kStatic: return "static";
    case StochasticPolicy::kGreedy: return "greedy";
    case StochasticPolicy::kCycleConserving: return "cc-edf";
    case StochasticPolicy::kLookahead: return "la-edf";
    case StochasticPolicy::kExpected: return "expected";
    case StochasticPolicy::kClairvoyant: return "clairvoyant";
  }
  return "?";
}

std::vector<StochasticPolicy> all_stochastic_policies() {
  return {StochasticPolicy::kStatic,         StochasticPolicy::kGreedy,
          StochasticPolicy::kCycleConserving, StochasticPolicy::kLookahead,
          StochasticPolicy::kExpected,        StochasticPolicy::kClairvoyant};
}

StochasticFrameResult simulate_frame_stochastic(const std::vector<FrameTask>& accepted,
                                                const std::vector<Cycles>& actual_cycles,
                                                double work_per_cycle, const EnergyCurve& curve,
                                                const StochasticFrameConfig& config) {
  require(curve.model().is_continuous(),
          "simulate_frame_stochastic: continuous (ideal) power models only "
          "(discreteness comes from the FreqLadder)");
  require(accepted.size() == actual_cycles.size(),
          "simulate_frame_stochastic: actual-cycle vector size mismatch");
  require(work_per_cycle > 0.0, "simulate_frame_stochastic: work_per_cycle must be positive");
  if (config.policy == StochasticPolicy::kExpected) {
    require(config.expected_ratio > 0.0 && config.expected_ratio <= 1.0,
            "simulate_frame_stochastic: expected_ratio must be in (0, 1]");
  }

  double wcet_work = 0.0;
  double actual_work = 0.0;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    validate(accepted[i]);
    require(actual_cycles[i] > 0 && actual_cycles[i] <= accepted[i].cycles,
            "simulate_frame_stochastic: actual cycles must be in [1, WCET]");
    wcet_work += work_per_cycle * static_cast<double>(accepted[i].cycles);
    actual_work += work_per_cycle * static_cast<double>(actual_cycles[i]);
  }
  const double window = curve.window();
  const FreqLadder* ladder = config.ladder;
  const double top = ladder ? ladder->max_speed() : curve.model().max_speed();
  if (ladder) {
    require(leq_tol(wcet_work / window, top),
            "simulate_frame_stochastic: WCET load infeasible at the ladder's top level");
  } else {
    require(curve.feasible(wcet_work), "simulate_frame_stochastic: WCET load infeasible");
  }

  StochasticFrameResult result;
  double now = 0.0;
  double energy = 0.0;

  if (accepted.empty()) {
    result.deadline_met = true;
    result.energy = curve.idle_cost(window);
    return result;
  }

  const std::size_t n = accepted.size();
  result.task_speeds.assign(n, 0.0);

  // Continuous constant-speed policies reproduce simulate_frame_reclaim bit
  // for bit: one division for the whole frame, not a per-task loop.
  if (ladder == nullptr && (config.policy == StochasticPolicy::kStatic ||
                            config.policy == StochasticPolicy::kClairvoyant)) {
    const double plan_work =
        config.policy == StochasticPolicy::kStatic ? wcet_work : actual_work;
    const double s = reclaim_speed_for(curve, plan_work, window);
    result.initial_speed = s;
    result.final_speed = s;
    std::fill(result.task_speeds.begin(), result.task_speeds.end(), s);
    now = actual_work / s;
    energy = (actual_work / s) * curve.model().power(s);
    result.completion = now;
    result.deadline_met = leq_tol(now, window, 1e-6);
    result.energy = energy + curve.idle_cost(std::max(0.0, window - now));
    return result;
  }

  const double floor = reclaim_speed_floor(curve);
  // reclaim_speed_for generalized to a ladder-capped top speed; with
  // top == smax the arithmetic (and therefore every bit) is identical.
  const auto capped_speed = [&](double work, double span) {
    require(span > 0.0, "simulate_frame_stochastic: no time left in the window");
    const double demanded = work / span;
    require(leq_tol(demanded, top),
            "simulate_frame_stochastic: remaining work no longer fits the window");
    return clamp(std::max(demanded, floor), std::max(top * 1e-12, 1e-300), top);
  };

  // Static-plan speed: kStatic's constant pace and the denominator of
  // kCycleConserving's virtual deadlines F_i = (static work through i) / s0.
  double s0 = 0.0;
  if (config.policy == StochasticPolicy::kStatic ||
      config.policy == StochasticPolicy::kCycleConserving) {
    s0 = capped_speed(wcet_work, window);
  }
  double s_clairvoyant = 0.0;
  if (config.policy == StochasticPolicy::kClairvoyant) {
    s_clairvoyant = capped_speed(actual_work, window);
  }

  double remaining_wcet = wcet_work;  // worst-case work from the current task on
  double plan_wcet = 0.0;             // static-plan work through the current task
  for (std::size_t i = 0; i < n; ++i) {
    const double w_i = work_per_cycle * static_cast<double>(accepted[i].cycles);
    const double a_i = work_per_cycle * static_cast<double>(actual_cycles[i]);
    const double rest_after = remaining_wcet - w_i;
    plan_wcet += w_i;

    double s = 0.0;        // desired average speed of this task
    double planned = w_i;  // work the execution interval is sized for
    switch (config.policy) {
      case StochasticPolicy::kStatic:
        s = s0;
        break;
      case StochasticPolicy::kGreedy:
        s = ladder ? capped_speed(remaining_wcet, window - now)
                   : reclaim_speed_for(curve, remaining_wcet, window - now);
        break;
      case StochasticPolicy::kCycleConserving:
        // Accrued slack funds the current task, bounded by its static-plan
        // finish time — the task never finishes later than the static plan,
        // so feasibility is inherited.
        s = capped_speed(w_i, plan_wcet / s0 - now);
        break;
      case StochasticPolicy::kLookahead:
        // Stretch to the latest completion that still lets every later task
        // run at top speed; worst-case arrivals force top speed later, early
        // completions lock in today's savings.
        s = capped_speed(w_i, (window - rest_after / top) - now);
        break;
      case StochasticPolicy::kExpected: {
        // Pace for the expected fraction of the remaining worst-case work.
        // The lookahead term is the feasibility safety net for pacing below
        // the full reclaim rate; at expected_ratio == 1 the paced speed IS
        // the greedy reclaimer's, and skipping the (mathematically
        // non-binding) safety max keeps the path bit-identical to kGreedy.
        require(window - now > 0.0, "simulate_frame_stochastic: no time left in the window");
        double demanded = (config.expected_ratio * remaining_wcet) / (window - now);
        if (config.expected_ratio < 1.0) {
          const double horizon = (window - rest_after / top) - now;
          require(horizon > 0.0, "simulate_frame_stochastic: no time left in the window");
          demanded = std::max(demanded, w_i / horizon);
        }
        require(leq_tol(demanded, top),
                "simulate_frame_stochastic: remaining work no longer fits the window");
        s = clamp(std::max(demanded, floor), std::max(top * 1e-12, 1e-300), top);
        break;
      }
      case StochasticPolicy::kClairvoyant:
        s = s_clairvoyant;
        planned = a_i;
        break;
    }

    double dt = 0.0;
    double drawn = 0.0;
    double avg_speed = s;
    if (ladder == nullptr) {
      dt = a_i / s;
      drawn = dt * curve.model().power(s);
    } else {
      // Realize `s` on the ladder over the planned interval, low level
      // first: an early completion truncates the expensive high-speed share,
      // a worst-case run finishes exactly on plan.
      const FreqLadder::Split split = ladder->two_speed_split(s, planned / s);
      const std::vector<LadderLevel>& levels = ladder->levels();
      const double low_work = split.t_lo * levels[split.lo].speed;
      if (a_i <= low_work) {
        dt = a_i / levels[split.lo].speed;
        drawn = dt * levels[split.lo].power;
      } else {
        const double high_time = (a_i - low_work) / levels[split.hi].speed;
        dt = split.t_lo + high_time;
        drawn = split.t_lo * levels[split.lo].power + high_time * levels[split.hi].power;
      }
      avg_speed = a_i / dt;
    }

    if (i == 0) result.initial_speed = avg_speed;
    result.final_speed = avg_speed;
    result.task_speeds[i] = avg_speed;
    energy += drawn;
    now += dt;
    remaining_wcet = rest_after;
  }

  result.completion = now;
  result.deadline_met = leq_tol(now, window, 1e-6);
  result.energy = energy + curve.idle_cost(std::max(0.0, window - now));
  return result;
}

}  // namespace retask
