#include "retask/sched/online_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/obs/trace.hpp"
#include "retask/power/critical_speed.hpp"

namespace retask {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Pending {
  double deadline = 0.0;
  double remaining = 0.0;  // work units
  double work = 0.0;       // work units at admission, for drift tolerance
  int id = 0;
};

/// Optimal-Available speed: the maximum density over pending deadlines.
double oa_speed(double now, std::vector<Pending>& pending) {
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) { return a.deadline < b.deadline; });
  double work = 0.0;
  double speed = 0.0;
  for (const Pending& job : pending) {
    work += job.remaining;
    const double slack = job.deadline - now;
    if (slack <= 0.0) return kInf;  // already doomed (callers drop or reject)
    speed = std::max(speed, work / slack);
  }
  return speed;
}

}  // namespace

void validate(const AperiodicJob& job) {
  require(job.cycles > 0, "AperiodicJob: cycles must be positive");
  require(job.deadline > job.arrival, "AperiodicJob: deadline must be after arrival");
  require(job.arrival >= 0.0, "AperiodicJob: arrival must be non-negative");
  require(job.penalty >= 0.0, "AperiodicJob: penalty must be non-negative");
}

OnlineSimResult simulate_online(std::vector<AperiodicJob> jobs, const OnlineSimConfig& config,
                                const PowerModel& model) {
  RETASK_SCOPED_TIMER("online_sim.simulate_ns");
  RETASK_TRACE_SCOPE("online_sim.simulate");
  require(config.work_per_cycle > 0.0, "simulate_online: work_per_cycle must be positive");
  require(config.value_threshold >= 0.0, "simulate_online: value_threshold must be >= 0");
  validate(config.sleep);
  for (const AperiodicJob& job : jobs) validate(job);
  std::stable_sort(jobs.begin(), jobs.end(), [](const AperiodicJob& a, const AperiodicJob& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  });

  const double smax = model.max_speed();
  const double s_floor = config.dormant_enable ? critical_speed(model) : model.min_speed();
  const double pind = model.static_power();
  const auto idle_energy = [&](double gap) {
    if (gap <= 0.0) return 0.0;
    return config.dormant_enable ? idle_interval_energy(pind, config.sleep, gap) : pind * gap;
  };

  OnlineSimResult result;
  result.jobs = static_cast<std::int64_t>(jobs.size());

  double horizon = config.horizon;
  for (const AperiodicJob& job : jobs) horizon = std::max(horizon, job.deadline);
  if (jobs.empty()) {
    if (horizon > 0.0) {
      result.idle_time = horizon;
      result.energy = idle_energy(horizon);
    }
    return result;
  }

  std::vector<Pending> pending;
  std::size_t next_job = 0;
  double now = 0.0;

  // Admission decision for one arriving job; updates pending and the
  // rejected-penalty tally.
  const auto arrive = [&](const AperiodicJob& job) {
    const double work = config.work_per_cycle * static_cast<double>(job.cycles);
    std::vector<Pending> tentative = pending;
    tentative.push_back({job.deadline, work, work, job.id});
    const double oa_with = oa_speed(now, tentative);
    bool admit = leq_tol(oa_with, smax);
    if (admit && config.rule == AdmissionRule::kValueDensity) {
      const double s_est = clamp(std::max(oa_with, s_floor), std::max(smax * 1e-12, 1e-300), smax);
      const double estimated_energy = work * model.energy_per_cycle(s_est);
      admit = job.penalty >= config.value_threshold * estimated_energy;
    }
    if (admit) {
      pending.push_back({job.deadline, work, work, job.id});
      ++result.admitted;
    } else {
      result.rejected_penalty += job.penalty;
    }
  };

  // The admission test is tolerant (leq_tol) while execution is clamped to
  // smax, so float drift can leave an admitted job with zero or negative
  // slack at a scheduling point. Such jobs are unsalvageable: drop them
  // instead of aborting the whole simulation. Drift-level residues (the
  // admission tolerance times the job's work) count as completed; anything
  // larger is a genuine deadline miss.
  const auto drop_doomed_jobs = [&]() {
    for (std::size_t k = pending.size(); k-- > 0;) {
      if (pending[k].deadline - now > 0.0) continue;
      if (pending[k].remaining > 1e-9 * std::max(1.0, pending[k].work)) {
        ++result.deadline_misses;
      }
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(k));
    }
  };

  while (!pending.empty() || next_job < jobs.size()) {
    if (pending.empty()) {
      const double arrival = jobs[next_job].arrival;
      const double gap = arrival - now;
      result.idle_time += std::max(0.0, gap);
      result.energy += idle_energy(gap);
      now = arrival;
      while (next_job < jobs.size() && jobs[next_job].arrival <= now) {
        arrive(jobs[next_job]);
        ++next_job;
      }
      continue;
    }

    drop_doomed_jobs();
    if (pending.empty()) continue;
    const double oa = oa_speed(now, pending);
    RETASK_ASSERT(oa < kInf);  // unreachable: doomed jobs were just dropped
    const double s_exec =
        clamp(std::max(oa, s_floor), std::max(smax * 1e-12, 1e-300), smax * (1.0 + 1e-12));
    result.max_speed_used = std::max(result.max_speed_used, s_exec);

    // EDF: the earliest-deadline job runs (pending is deadline-sorted after
    // oa_speed).
    Pending& job = pending.front();
    const double completion = now + job.remaining / s_exec;
    const double next_arrival = next_job < jobs.size() ? jobs[next_job].arrival : kInf;
    const double until = std::min(completion, next_arrival);
    const double dt = until - now;
    RETASK_ASSERT(dt >= 0.0);
    result.busy_time += dt;
    result.energy += dt * model.power(std::min(s_exec, smax));
    job.remaining -= dt * s_exec;
    now = until;

    if (job.remaining <= 1e-12 * std::max(1.0, job.remaining + 1.0) &&
        completion <= next_arrival) {
      if (now > job.deadline * (1.0 + 1e-9)) ++result.deadline_misses;
      pending.erase(pending.begin());
    }
    while (next_job < jobs.size() && jobs[next_job].arrival <= now) {
      arrive(jobs[next_job]);
      ++next_job;
    }
  }

  const double tail = horizon - now;
  if (tail > 0.0) {
    result.idle_time += tail;
    result.energy += idle_energy(tail);
  }
  RETASK_COUNT("online_sim.runs", 1);
  RETASK_COUNT("online_sim.jobs", result.jobs);
  RETASK_COUNT("online_sim.admitted", result.admitted);
  RETASK_COUNT("online_sim.rejected", result.jobs - result.admitted);
  RETASK_COUNT("online_sim.deadline_misses", result.deadline_misses);
  return result;
}

std::vector<AperiodicJob> generate_aperiodic_jobs(const AperiodicWorkloadConfig& config,
                                                  double max_speed, Rng& rng) {
  require(config.duration > 0.0, "generate_aperiodic_jobs: duration must be positive");
  require(config.arrival_rate > 0.0, "generate_aperiodic_jobs: arrival rate must be positive");
  require(config.mean_work > 0.0, "generate_aperiodic_jobs: mean work must be positive");
  require(config.resolution >= 1.0, "generate_aperiodic_jobs: resolution must be >= 1");
  require(max_speed > 0.0, "generate_aperiodic_jobs: max_speed must be positive");

  std::vector<AperiodicJob> jobs;
  double t = 0.0;
  int id = 0;
  while (true) {
    // Exponential inter-arrival gap.
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    t += -std::log(u) / config.arrival_rate;
    if (t >= config.duration) break;
    const double work = rng.log_uniform(config.mean_work / 3.0, config.mean_work * 3.0);
    const double exec_at_top = work / max_speed;
    AperiodicJob job;
    job.id = id++;
    job.arrival = t;
    job.cycles = std::max<Cycles>(1, static_cast<Cycles>(std::llround(work * config.resolution)));
    job.deadline = t + exec_at_top * rng.uniform(2.0, 6.0);
    job.penalty =
        config.penalty_scale * config.energy_per_work_ref * work * rng.uniform(0.5, 1.5);
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace retask
