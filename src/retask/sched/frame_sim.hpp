// Frame simulator: executes a set of accepted frame tasks back-to-back over
// a speed schedule and reports per-task finish times and drawn energy.
//
// The solvers' energy claims are analytic (EnergyCurve); this simulator
// re-derives completion and energy from the actual timeline so tests and
// benches can cross-check every solution instead of trusting the formulas.
#ifndef RETASK_SCHED_FRAME_SIM_HPP
#define RETASK_SCHED_FRAME_SIM_HPP

#include <vector>

#include "retask/power/energy_curve.hpp"
#include "retask/sched/speed_schedule.hpp"
#include "retask/task/task.hpp"

namespace retask {

/// Result of simulating one frame.
struct FrameSimResult {
  bool deadline_met = false;       ///< all accepted work done within the window
  double completion_time = 0.0;    ///< when the last accepted task finishes
  double energy = 0.0;             ///< energy drawn over the whole window
  std::vector<double> finish_times;  ///< per accepted task, in input order
};

/// Runs `accepted` tasks sequentially over `schedule` (work units =
/// work_per_cycle * cycles) and accounts energy under `curve`'s model and
/// idle discipline. The schedule must span the curve's window.
FrameSimResult simulate_frame(const std::vector<FrameTask>& accepted, double work_per_cycle,
                              const SpeedSchedule& schedule, const EnergyCurve& curve);

}  // namespace retask

#endif  // RETASK_SCHED_FRAME_SIM_HPP
