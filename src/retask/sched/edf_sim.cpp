#include "retask/sched/edf_sim.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/obs/trace.hpp"

namespace retask {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Job {
  double deadline = 0.0;
  double release = 0.0;
  double remaining = 0.0;  // work units
  int task_id = 0;
};

// EDF order: earliest deadline first; equal deadlines dispatch the earlier
// release first (FIFO), and simultaneous equal-deadline releases dispatch in
// task-id order. Every key is intrinsic to the task set — none depends on
// the position of a task in the input vector — so the dispatch order (and
// with it busy/idle fragmentation, responses and energy) is invariant under
// input permutation. (Greater-than for min-heap use.)
bool later(const Job& a, const Job& b) {
  if (a.deadline != b.deadline) return a.deadline > b.deadline;
  if (a.release != b.release) return a.release > b.release;
  return a.task_id > b.task_id;
}

}  // namespace

EdfSimResult simulate_edf(const PeriodicTaskSet& tasks, const std::vector<bool>& selected,
                          const EdfSimConfig& config, const EnergyCurve& curve) {
  RETASK_SCOPED_TIMER("edf_sim.simulate_ns");
  RETASK_TRACE_SCOPE("edf_sim.simulate");
  require(config.speed > 0.0, "simulate_edf: speed must be positive");
  require(config.work_per_cycle > 0.0, "simulate_edf: work_per_cycle must be positive");
  require(selected.empty() || selected.size() == tasks.size(),
          "simulate_edf: selection size mismatch");

  struct Source {
    double period = 0.0;
    double work = 0.0;  // per job, work units
    double next_release = 0.0;
    int task_id = 0;
  };
  std::vector<Source> sources;
  double demanded = 0.0;  // work units per time
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!selected.empty() && !selected[i]) continue;
    const PeriodicTask& task = tasks[i];
    const double work = config.work_per_cycle * static_cast<double>(task.cycles);
    sources.push_back({static_cast<double>(task.period), work, 0.0, task.id});
    demanded += work / static_cast<double>(task.period);
  }

  const double horizon =
      config.horizon > 0.0 ? config.horizon : static_cast<double>(tasks.hyper_period());
  require(horizon > 0.0, "simulate_edf: horizon must be positive");

  EdfSimResult result;
  const auto account_idle = [&](double gap) {
    if (gap <= 0.0) return;
    result.idle_time += gap;
    result.energy += curve.idle_cost(gap);
    result.longest_idle = std::max(result.longest_idle, gap);
    ++result.idle_intervals;
  };

  if (sources.empty()) {
    account_idle(horizon);
    return result;
  }

  std::vector<Job> ready;  // min-heap via `later`
  const auto push_job = [&](const Job& job) {
    ready.push_back(job);
    std::push_heap(ready.begin(), ready.end(), later);
  };
  const auto pop_job = [&]() {
    std::pop_heap(ready.begin(), ready.end(), later);
    const Job job = ready.back();
    ready.pop_back();
    return job;
  };

  const auto next_release_time = [&]() {
    double t = kInf;
    for (const Source& s : sources) {
      if (s.next_release < horizon) t = std::min(t, s.next_release);
    }
    return t;
  };
  const auto release_due = [&](double t) {
    for (Source& s : sources) {
      while (s.next_release < horizon && leq_tol(s.next_release, t)) {
        push_job({s.next_release + s.period, s.next_release, s.work, s.task_id});
        ++result.jobs_released;
        s.next_release += s.period;
      }
    }
  };

  // Latest provably safe wake time given the current backlog: for every
  // pending deadline d, backlog(<= d) must fit into (s - U) * (d - t_wake).
  const auto latest_safe_wake = [&](double now) {
    const double slack_rate = config.speed - demanded;
    if (slack_rate <= 1e-12) return now;  // no spare capacity: wake at once
    std::vector<Job> jobs = ready;
    std::sort(jobs.begin(), jobs.end(),
              [](const Job& a, const Job& b) { return a.deadline < b.deadline; });
    double backlog = 0.0;
    double wake = kInf;
    for (const Job& job : jobs) {
      backlog += job.remaining;
      wake = std::min(wake, job.deadline - backlog / slack_rate);
    }
    return std::max(now, std::min(wake, horizon));
  };

  double now = 0.0;
  release_due(now);
  RETASK_OBS_ONLY(std::uint64_t preemptions = 0;)
  while (!ready.empty() || next_release_time() < horizon) {
    if (ready.empty()) {
      const double idle_start = now;
      double t = next_release_time();
      RETASK_ASSERT(t < kInf);
      release_due(t);
      now = t;
      if (config.procrastinate) {
        // Stay dormant: absorb further releases until the latest safe wake.
        double wake = latest_safe_wake(now);
        double upcoming = next_release_time();
        while (upcoming < wake) {
          release_due(upcoming);
          now = upcoming;
          wake = latest_safe_wake(now);
          upcoming = next_release_time();
        }
        now = std::max(now, wake);
      }
      account_idle(now - idle_start);
      continue;
    }
    Job job = pop_job();
    const double completion = now + job.remaining / config.speed;
    const double upcoming = next_release_time();
    if (completion <= upcoming) {
      result.busy_time += completion - now;
      now = completion;
      const double lateness = now - job.deadline;
      if (lateness > 1e-9 * std::max(1.0, job.deadline)) ++result.deadline_misses;
      result.max_lateness = std::max(result.max_lateness, std::max(lateness, 0.0));
      result.max_response = std::max(result.max_response, now - job.release);
      release_due(now);
    } else {
      // Preempt (or merely pause) at the next release boundary.
      RETASK_OBS_ONLY(++preemptions;)
      job.remaining -= (upcoming - now) * config.speed;
      result.busy_time += upcoming - now;
      now = upcoming;
      push_job(job);
      release_due(now);
    }
  }

  // Idle tail inside the horizon (the busy interval can exceed the horizon
  // only when the selected set is overloaded).
  account_idle(horizon - now);

  result.energy += result.busy_time * curve.model().power(config.speed);
  RETASK_COUNT("edf_sim.runs", 1);
  RETASK_COUNT("edf_sim.jobs_released", result.jobs_released);
  RETASK_COUNT("edf_sim.deadline_misses", result.deadline_misses);
  RETASK_COUNT("edf_sim.idle_intervals", result.idle_intervals);
  RETASK_COUNT("edf_sim.preemptions", preemptions);
  return result;
}

}  // namespace retask
