// Run-time slack reclamation for frame schedules.
//
// Offline plans are sized for worst-case execution cycles; at run time tasks
// usually finish early. What the scheduler does with that slack decides how
// much of the WCET pessimism is paid in energy:
//
//  * kStatic      — keep the precomputed WCET speed; early completions only
//                   lengthen the idle tail.
//  * kGreedy      — after every completion, re-derive the speed for the
//                   REMAINING worst-case work over the remaining window
//                   (the classic greedy reclamation of the slack-reclaiming
//                   DVS line). Speeds only ever decrease, so the schedule
//                   stays feasible by construction — and the simulator
//                   checks the deadline anyway.
//  * kClairvoyant — knows actual cycles upfront; the energy lower bound.
//
// Continuous (ideal) models only: per-completion re-planning with two-speed
// emulation is out of scope here and documented as such.
#ifndef RETASK_SCHED_RECLAIM_HPP
#define RETASK_SCHED_RECLAIM_HPP

#include <vector>

#include "retask/common/rng.hpp"
#include "retask/power/energy_curve.hpp"
#include "retask/task/task.hpp"

namespace retask {

/// How run-time slack from early completions is used.
enum class ReclaimPolicy {
  kStatic,
  kGreedy,
  kClairvoyant,
};

/// Outcome of one frame executed with actual (possibly < WCET) cycles.
struct ReclaimResult {
  bool deadline_met = false;
  double completion = 0.0;    ///< when the last task finishes
  double energy = 0.0;        ///< busy energy + idle tail under the curve
  double initial_speed = 0.0;
  double final_speed = 0.0;   ///< speed of the last executed task
};

/// Executes `accepted` tasks (in order) whose true demands are
/// `actual_cycles[i] <= accepted[i].cycles`, under `policy`. Requires a
/// continuous power model, matching sizes, and positive actual cycles.
ReclaimResult simulate_frame_reclaim(const std::vector<FrameTask>& accepted,
                                     const std::vector<Cycles>& actual_cycles,
                                     double work_per_cycle, const EnergyCurve& curve,
                                     ReclaimPolicy policy);

/// Draws per-task actual cycles as `ratio_lo..ratio_hi` of WCET (uniform,
/// at least 1 cycle each).
std::vector<Cycles> draw_actual_cycles(const std::vector<FrameTask>& accepted, double ratio_lo,
                                       double ratio_hi, Rng& rng);

/// Execution-speed floor: critical speed on dormant-enable processors (free
/// sleep makes slower speeds wasteful), the model's minimum otherwise.
/// Shared with the stochastic engine (sched/stochastic.hpp) so both pick
/// identical speeds from identical state.
double reclaim_speed_floor(const EnergyCurve& curve);

/// Clamped speed for `work` remaining within `window` time:
/// max(work / window, floor) clamped into (0, smax]. Throws when the window
/// is exhausted or the demand exceeds the top speed (beyond tolerance).
double reclaim_speed_for(const EnergyCurve& curve, double work, double window);

}  // namespace retask

#endif  // RETASK_SCHED_RECLAIM_HPP
