// Schedulability tests.
//
// Frame-based tasks on one processor are schedulable iff their total work
// fits at top speed within the frame. Periodic implicit-deadline tasks under
// EDF at a constant speed s are schedulable iff the demanded rate does not
// exceed s (Liu & Layland, 1973) — EDF is optimal on one processor, which is
// why the library (like the source papers) runs EDF after partitioning.
#ifndef RETASK_SCHED_FEASIBILITY_HPP
#define RETASK_SCHED_FEASIBILITY_HPP

#include <vector>

#include "retask/power/energy_curve.hpp"
#include "retask/task/task_set.hpp"

namespace retask {

/// True when `work` (in work units = speed x time) fits the curve's window
/// at top speed.
bool frame_feasible(const EnergyCurve& curve, double work);

/// Total demanded rate (sum ci/pi, cycles per time unit) of the selected
/// periodic tasks; `selected` may be empty meaning "all".
double demanded_rate(const PeriodicTaskSet& tasks, const std::vector<bool>& selected);

/// EDF schedulability of the selected periodic tasks at constant speed
/// `speed` (tolerant comparison, to accept analytically tight speeds).
bool edf_feasible(const PeriodicTaskSet& tasks, const std::vector<bool>& selected, double speed);

}  // namespace retask

#endif  // RETASK_SCHED_FEASIBILITY_HPP
