#include "retask/sched/feasibility.hpp"

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {

bool frame_feasible(const EnergyCurve& curve, double work) { return curve.feasible(work); }

double demanded_rate(const PeriodicTaskSet& tasks, const std::vector<bool>& selected) {
  if (selected.empty()) return tasks.total_rate();
  require(selected.size() == tasks.size(), "demanded_rate: selection size mismatch");
  double rate = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (selected[i]) rate += tasks[i].rate();
  }
  return rate;
}

bool edf_feasible(const PeriodicTaskSet& tasks, const std::vector<bool>& selected, double speed) {
  require(speed >= 0.0, "edf_feasible: negative speed");
  return leq_tol(demanded_rate(tasks, selected), speed);
}

}  // namespace retask
