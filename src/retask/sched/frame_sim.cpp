#include "retask/sched/frame_sim.hpp"

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"

namespace retask {

FrameSimResult simulate_frame(const std::vector<FrameTask>& accepted, double work_per_cycle,
                              const SpeedSchedule& schedule, const EnergyCurve& curve) {
  require(work_per_cycle > 0.0, "simulate_frame: work_per_cycle must be positive");
  require(leq_tol(curve.window(), schedule.end_time()),
          "simulate_frame: schedule shorter than the frame window");

  FrameSimResult result;
  result.finish_times.reserve(accepted.size());

  double total_work = 0.0;
  for (const FrameTask& task : accepted) {
    validate(task);
    total_work += work_per_cycle * static_cast<double>(task.cycles);
  }
  require(leq_tol(total_work, schedule.total_cycles(), 1e-6),
          "simulate_frame: schedule does not execute enough work for the accepted tasks");

  double done = 0.0;
  double completion = 0.0;
  for (const FrameTask& task : accepted) {
    done += work_per_cycle * static_cast<double>(task.cycles);
    const double finish = schedule.time_to_cycles(std::min(done, schedule.total_cycles()));
    result.finish_times.push_back(finish);
    completion = finish;
  }
  result.completion_time = completion;
  result.deadline_met = leq_tol(completion, curve.window(), 1e-6);
  result.energy = schedule.energy(curve);
  return result;
}

}  // namespace retask
