#include "retask/exp/harness.hpp"

#include "retask/cache/sweep.hpp"
#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/common/parallel.hpp"
#include "retask/core/solution.hpp"

namespace retask {
namespace {

/// Scores one solved cell into its slot: revalidates the solution, guards
/// the reference, and feeds the per-cell accumulators. Shared by the grouped
/// and the per-point paths so they cannot drift.
void score_cell(const RejectionProblem& problem, const RejectionSolution& solution, double ref,
                AlgoStats& slot) {
  check_solution(problem, solution);
  const double obj = solution.objective();
  const double ratio = ref > 0.0 ? obj / ref : (obj > 0.0 ? 2.0 : 1.0);
  // Guard against a buggy "reference": no algorithm may beat an optimal
  // reference by more than numerical noise. Lower bounds are <= obj by
  // construction, so the same check applies.
  require(ratio >= 1.0 - 1e-6, "run_comparison: algorithm beat the reference objective");
  slot.ratio.add(ratio);
  slot.acceptance.add(solution.acceptance_ratio());
  slot.objective.add(obj);
}

}  // namespace

void AlgoStats::merge(const AlgoStats& other) {
  ratio.merge(other.ratio);
  acceptance.merge(other.acceptance);
  objective.merge(other.objective);
  metrics.merge(other.metrics);
}

std::vector<std::vector<AlgoStats>> run_comparison_batch(
    const std::vector<ProblemFactory>& factories,
    const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
    const ReferenceObjective& reference, int instances, std::uint64_t seed0, int jobs,
    const BatchOptions& options) {
  require(!factories.empty(), "run_comparison: at least one sweep point required");
  require(instances >= 1, "run_comparison: at least one instance required");
  require(!lineup.empty(), "run_comparison: empty algorithm lineup");

  const std::size_t points = factories.size();
  const std::size_t algos = lineup.size();
  const auto reps = static_cast<std::size_t>(instances);

  // One slot per point x instance x algorithm cell, written by exactly one
  // worker; reduced in index order below so the aggregates do not depend on
  // the parallel interleaving. The parallel unit is the instance GROUP (one
  // seed across every sweep point), which keeps all the state sweep-reuse
  // shares between points on a single thread.
  std::vector<AlgoStats> slots(points * reps * algos);
  const auto slot_at = [&](std::size_t point, std::size_t k, std::size_t a) -> AlgoStats& {
    return slots[((point * reps + k) * algos) + a];
  };

  parallel_for(reps, [&](std::size_t k) {
    std::vector<RejectionProblem> problems;
    problems.reserve(points);
    for (std::size_t point = 0; point < points; ++point) {
      problems.push_back(factories[point](seed0 + static_cast<std::uint64_t>(k)));
      if (options.shared_energy_memo != nullptr) {
        problems.back().attach_energy_memo(options.shared_energy_memo);
      } else if (options.cell_energy_memo) {
        problems.back().attach_energy_memo(std::make_shared<EnergyMemo>());
      }
    }
    std::vector<double> refs(points);
    for (std::size_t point = 0; point < points; ++point) {
      refs[point] = reference(problems[point]);
      require(refs[point] >= 0.0, "run_comparison: negative reference objective");
    }

    // Sweep-reuse grouping: points carrying one task set (a capacity /
    // work_per_cycle sweep) are handed to the solver as a batch so it can
    // share work across them (e.g. the exact DP's warm-started table).
    bool grouped = options.sweep_reuse && points > 1;
    for (std::size_t point = 1; point < points && grouped; ++point) {
      grouped = same_task_sets(problems[0].tasks(), problems[point].tasks());
    }

    for (std::size_t a = 0; a < algos; ++a) {
      if (grouped) {
        std::vector<const RejectionProblem*> group;
        group.reserve(points);
        for (const RejectionProblem& problem : problems) group.push_back(&problem);
        std::vector<RejectionSolution> solutions;
        {
          // Shared work has no per-point attribution, so the whole batch's
          // solver metrics land in the first point's slot (documented on
          // BatchOptions::sweep_reuse).
          obs::ActiveScope scope(slot_at(0, k, a).metrics);
          solutions = lineup[a]->solve_sweep(group);
        }
        RETASK_ASSERT(solutions.size() == points);
        for (std::size_t point = 0; point < points; ++point) {
          AlgoStats& slot = slot_at(point, k, a);
          {
            obs::ActiveScope scope(slot.metrics);
            RETASK_COUNT("harness.solves", 1);
            RETASK_COUNT("harness.tasks_total", problems[point].size());
            RETASK_COUNT("harness.tasks_rejected",
                         problems[point].size() - solutions[point].accepted_count());
          }
          score_cell(problems[point], solutions[point], refs[point], slot);
        }
      } else {
        for (std::size_t point = 0; point < points; ++point) {
          const RejectionProblem& problem = problems[point];
          AlgoStats& slot = slot_at(point, k, a);
          RejectionSolution solution;
          {
            // Attribute the solver's metrics to this point x instance x algo
            // cell. The whole cell runs on one thread, so the scoped registry
            // sees exactly this solve; on scope exit it also folds into the
            // thread's default registry, keeping process totals complete.
            obs::ActiveScope scope(slot.metrics);
            solution = lineup[a]->solve(problem);
            RETASK_COUNT("harness.solves", 1);
            RETASK_COUNT("harness.tasks_total", problem.size());
            RETASK_COUNT("harness.tasks_rejected", problem.size() - solution.accepted_count());
          }
          score_cell(problem, solution, refs[point], slot);
        }
      }
    }
  }, jobs);

  std::vector<std::vector<AlgoStats>> stats(points, std::vector<AlgoStats>(algos));
  for (std::size_t point = 0; point < points; ++point) {
    for (std::size_t a = 0; a < algos; ++a) stats[point][a].name = lineup[a]->name();
    for (std::size_t k = 0; k < reps; ++k) {
      for (std::size_t a = 0; a < algos; ++a) {
        stats[point][a].merge(slot_at(point, k, a));
      }
    }
  }
  return stats;
}

std::vector<AlgoStats> run_comparison(const ProblemFactory& factory,
                                      const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
                                      const ReferenceObjective& reference, int instances,
                                      std::uint64_t seed0, int jobs) {
  auto stats = run_comparison_batch({factory}, lineup, reference, instances, seed0, jobs);
  return std::move(stats.front());
}

}  // namespace retask
