#include "retask/exp/harness.hpp"

#include <algorithm>

#include "retask/batch/lockstep.hpp"
#include "retask/cache/sweep.hpp"
#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/common/parallel.hpp"
#include "retask/core/solution.hpp"

namespace retask {
namespace {

/// Scores one solved cell into its slot: revalidates the solution, guards
/// the reference, and feeds the per-cell accumulators. Shared by the grouped
/// and the per-point paths so they cannot drift.
void score_cell(const RejectionProblem& problem, const RejectionSolution& solution, double ref,
                AlgoStats& slot) {
  check_solution(problem, solution);
  const double obj = solution.objective();
  const double ratio = ref > 0.0 ? obj / ref : (obj > 0.0 ? 2.0 : 1.0);
  // Guard against a buggy "reference": no algorithm may beat an optimal
  // reference by more than numerical noise. Lower bounds are <= obj by
  // construction, so the same check applies.
  require(ratio >= 1.0 - 1e-6, "run_comparison: algorithm beat the reference objective");
  slot.ratio.add(ratio);
  slot.acceptance.add(solution.acceptance_ratio());
  slot.objective.add(obj);
}

}  // namespace

void AlgoStats::merge(const AlgoStats& other) {
  ratio.merge(other.ratio);
  acceptance.merge(other.acceptance);
  objective.merge(other.objective);
  metrics.merge(other.metrics);
}

std::vector<std::vector<AlgoStats>> run_comparison_batch(
    const std::vector<ProblemFactory>& factories,
    const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
    const ReferenceObjective& reference, int instances, std::uint64_t seed0, int jobs,
    const BatchOptions& options) {
  require(!factories.empty(), "run_comparison: at least one sweep point required");
  require(instances >= 1, "run_comparison: at least one instance required");
  require(!lineup.empty(), "run_comparison: empty algorithm lineup");

  const std::size_t points = factories.size();
  const std::size_t algos = lineup.size();
  const auto reps = static_cast<std::size_t>(instances);

  // One slot per point x instance x algorithm cell, written by exactly one
  // worker; reduced in index order below so the aggregates do not depend on
  // the parallel interleaving. The parallel unit is a BLOCK of instance
  // groups (lockstep_lanes() consecutive seeds, each spanning every sweep
  // point): blocks keep the state sweep-reuse shares between points on a
  // single thread, and instances of one block that skip the sweep path feed
  // the lockstep batch solver together. The block partition depends only on
  // the lane count, never on `jobs`, so aggregates and metric attribution
  // stay bit-identical at any job count.
  std::vector<AlgoStats> slots(points * reps * algos);
  const auto slot_at = [&](std::size_t point, std::size_t k, std::size_t a) -> AlgoStats& {
    return slots[((point * reps + k) * algos) + a];
  };

  const std::size_t lanes =
      options.lockstep ? static_cast<std::size_t>(std::max(1, lockstep_lanes())) : 1;
  const std::size_t blocks = (reps + lanes - 1) / lanes;

  parallel_for(blocks, [&](std::size_t b) {
    const std::size_t k_lo = b * lanes;
    const std::size_t block = std::min(reps, k_lo + lanes) - k_lo;

    // Instance state for the block, indexed j = k - k_lo.
    std::vector<std::vector<RejectionProblem>> problems(block);
    std::vector<std::vector<double>> refs(block, std::vector<double>(points));
    std::vector<char> grouped(block);
    // One energy memo per sweep point, shared by every instance of the
    // block whose platform matches the point's first instance. A sweep
    // point fixes (curve, work_per_cycle) across seeds in the canonical
    // grids, so instance 0's select-sweep evaluations serve the whole block
    // — the cross-instance sharing the lockstep select gets structurally.
    // same_platforms guards the memo sharing contract per cell
    // (cache/energy_memo.hpp); a factory whose platform varies with the
    // seed degrades to a private memo, never to a wrong energy.
    std::vector<std::shared_ptr<EnergyMemo>> point_memos(points);
    for (std::size_t j = 0; j < block; ++j) {
      problems[j].reserve(points);
      for (std::size_t point = 0; point < points; ++point) {
        problems[j].push_back(factories[point](seed0 + static_cast<std::uint64_t>(k_lo + j)));
        RejectionProblem& cell = problems[j].back();
        if (options.shared_energy_memo != nullptr) {
          cell.attach_energy_memo(options.shared_energy_memo);
        } else if (options.cell_energy_memo) {
          if (point_memos[point] != nullptr && !same_platforms(problems[0][point], cell)) {
            cell.attach_energy_memo(std::make_shared<EnergyMemo>());
          } else {
            if (point_memos[point] == nullptr) point_memos[point] = std::make_shared<EnergyMemo>();
            cell.attach_energy_memo(point_memos[point]);
          }
        }
      }
      for (std::size_t point = 0; point < points; ++point) {
        refs[j][point] = reference(problems[j][point]);
        require(refs[j][point] >= 0.0, "run_comparison: negative reference objective");
      }
      // Sweep-reuse grouping: points carrying one task set (a capacity /
      // work_per_cycle sweep) are handed to the solver as a batch so it can
      // share work across them (e.g. the exact DP's warm-started table).
      bool reuse = options.sweep_reuse && points > 1;
      for (std::size_t point = 1; point < points && reuse; ++point) {
        reuse = same_task_sets(problems[j][0].tasks(), problems[j][point].tasks());
      }
      grouped[j] = reuse ? 1 : 0;
    }

    // Fused sweeps need at least two grouped instances in the block and the
    // process-wide switch on; the condition depends only on options and the
    // block composition, never on `jobs`, so attribution stays stable.
    const bool fuse_sweeps = options.fused_sweep && lanes >= 2 && fused_sweep_enabled();

    for (std::size_t a = 0; a < algos; ++a) {
      std::vector<std::size_t> loose;  // block instances outside the sweep path
      std::vector<std::size_t> swept;  // block instances on the sweep path
      for (std::size_t j = 0; j < block; ++j) {
        (grouped[j] ? swept : loose).push_back(j);
      }

      // Per-cell harness accounting + scoring, shared by every sweep route.
      const auto score_sweep = [&](std::size_t j, const std::vector<RejectionSolution>& solutions) {
        RETASK_ASSERT(solutions.size() == points);
        const std::size_t k = k_lo + j;
        for (std::size_t point = 0; point < points; ++point) {
          AlgoStats& slot = slot_at(point, k, a);
          {
            obs::ActiveScope scope(slot.metrics);
            RETASK_COUNT("harness.solves", 1);
            RETASK_COUNT("harness.tasks_total", problems[j][point].size());
            RETASK_COUNT("harness.tasks_rejected",
                         problems[j][point].size() - solutions[point].accepted_count());
          }
          score_cell(problems[j][point], solutions[point], refs[j][point], slot);
        }
      };

      if (fuse_sweeps && swept.size() >= 2) {
        // Cross-instance fusion: the block's grouped instances share one
        // lane-major fill and one fused select per point. Shared work has
        // no per-cell attribution, so the whole fused batch's solver
        // metrics land in the first participating instance's first point
        // slot (documented on BatchOptions::fused_sweep).
        const BatchRejectionSolver batched(*lineup[a], BatchConfig{static_cast<int>(lanes)});
        std::vector<std::vector<const RejectionProblem*>> grids(swept.size());
        for (std::size_t idx = 0; idx < swept.size(); ++idx) {
          grids[idx].reserve(points);
          for (const RejectionProblem& problem : problems[swept[idx]]) {
            grids[idx].push_back(&problem);
          }
        }
        std::vector<std::vector<RejectionSolution>> solved;
        {
          obs::ActiveScope scope(slot_at(0, k_lo + swept.front(), a).metrics);
          solved = batched.solve_sweep_batch(grids);
        }
        RETASK_ASSERT(solved.size() == swept.size());
        for (std::size_t idx = 0; idx < swept.size(); ++idx) {
          score_sweep(swept[idx], solved[idx]);
        }
      } else {
        for (const std::size_t j : swept) {
          const std::size_t k = k_lo + j;
          std::vector<const RejectionProblem*> group;
          group.reserve(points);
          for (const RejectionProblem& problem : problems[j]) group.push_back(&problem);
          std::vector<RejectionSolution> solutions;
          {
            // Shared work has no per-point attribution, so the whole batch's
            // solver metrics land in the first point's slot (documented on
            // BatchOptions::sweep_reuse).
            obs::ActiveScope scope(slot_at(0, k, a).metrics);
            solutions = lineup[a]->solve_sweep(group);
          }
          score_sweep(j, solutions);
        }
      }

      if (lanes >= 2 && loose.size() >= 2) {
        // Lockstep across the block's remaining instances, one fleet per
        // point. solve_batch returns per-lane bit-identical solutions (and
        // falls back to per-instance solves for odd shapes), so only metric
        // attribution differs: the batched work lands in the first
        // participating instance's cell (documented on
        // BatchOptions::lockstep).
        const BatchRejectionSolver batched(*lineup[a], BatchConfig{static_cast<int>(lanes)});
        for (std::size_t point = 0; point < points; ++point) {
          std::vector<const RejectionProblem*> fleet;
          fleet.reserve(loose.size());
          for (const std::size_t j : loose) fleet.push_back(&problems[j][point]);
          std::vector<RejectionSolution> solutions;
          {
            obs::ActiveScope scope(slot_at(point, k_lo + loose.front(), a).metrics);
            solutions = batched.solve_batch(fleet);
          }
          RETASK_ASSERT(solutions.size() == loose.size());
          for (std::size_t idx = 0; idx < loose.size(); ++idx) {
            const std::size_t j = loose[idx];
            const RejectionProblem& problem = problems[j][point];
            AlgoStats& slot = slot_at(point, k_lo + j, a);
            {
              obs::ActiveScope scope(slot.metrics);
              RETASK_COUNT("harness.solves", 1);
              RETASK_COUNT("harness.tasks_total", problem.size());
              RETASK_COUNT("harness.tasks_rejected",
                           problem.size() - solutions[idx].accepted_count());
            }
            score_cell(problem, solutions[idx], refs[j][point], slot);
          }
        }
      } else {
        for (const std::size_t j : loose) {
          for (std::size_t point = 0; point < points; ++point) {
            const RejectionProblem& problem = problems[j][point];
            AlgoStats& slot = slot_at(point, k_lo + j, a);
            RejectionSolution solution;
            {
              // Attribute the solver's metrics to this point x instance x algo
              // cell. The whole cell runs on one thread, so the scoped registry
              // sees exactly this solve; on scope exit it also folds into the
              // thread's default registry, keeping process totals complete.
              obs::ActiveScope scope(slot.metrics);
              solution = lineup[a]->solve(problem);
              RETASK_COUNT("harness.solves", 1);
              RETASK_COUNT("harness.tasks_total", problem.size());
              RETASK_COUNT("harness.tasks_rejected", problem.size() - solution.accepted_count());
            }
            score_cell(problem, solution, refs[j][point], slot);
          }
        }
      }
    }
  }, jobs);

  std::vector<std::vector<AlgoStats>> stats(points, std::vector<AlgoStats>(algos));
  for (std::size_t point = 0; point < points; ++point) {
    for (std::size_t a = 0; a < algos; ++a) stats[point][a].name = lineup[a]->name();
    for (std::size_t k = 0; k < reps; ++k) {
      for (std::size_t a = 0; a < algos; ++a) {
        stats[point][a].merge(slot_at(point, k, a));
      }
    }
  }
  return stats;
}

std::vector<AlgoStats> run_comparison(const ProblemFactory& factory,
                                      const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
                                      const ReferenceObjective& reference, int instances,
                                      std::uint64_t seed0, int jobs) {
  auto stats = run_comparison_batch({factory}, lineup, reference, instances, seed0, jobs);
  return std::move(stats.front());
}

}  // namespace retask
