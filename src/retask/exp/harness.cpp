#include "retask/exp/harness.hpp"

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/core/solution.hpp"

namespace retask {

std::vector<AlgoStats> run_comparison(const ProblemFactory& factory,
                                      const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
                                      const ReferenceObjective& reference, int instances,
                                      std::uint64_t seed0) {
  require(instances >= 1, "run_comparison: at least one instance required");
  require(!lineup.empty(), "run_comparison: empty algorithm lineup");

  std::vector<AlgoStats> stats(lineup.size());
  for (std::size_t a = 0; a < lineup.size(); ++a) stats[a].name = lineup[a]->name();

  for (int k = 0; k < instances; ++k) {
    const RejectionProblem problem = factory(seed0 + static_cast<std::uint64_t>(k));
    const double ref = reference(problem);
    require(ref >= 0.0, "run_comparison: negative reference objective");
    for (std::size_t a = 0; a < lineup.size(); ++a) {
      const RejectionSolution solution = lineup[a]->solve(problem);
      check_solution(problem, solution);
      const double obj = solution.objective();
      const double ratio = ref > 0.0 ? obj / ref : (obj > 0.0 ? 2.0 : 1.0);
      // Guard against a buggy "reference": no algorithm may beat an optimal
      // reference by more than numerical noise. Lower bounds are <= obj by
      // construction, so the same check applies.
      require(ratio >= 1.0 - 1e-6, "run_comparison: algorithm beat the reference objective");
      stats[a].ratio.add(ratio);
      stats[a].acceptance.add(solution.acceptance_ratio());
      stats[a].objective.add(obj);
    }
  }
  return stats;
}

}  // namespace retask
