#include "retask/exp/harness.hpp"

#include "retask/common/error.hpp"
#include "retask/common/math.hpp"
#include "retask/common/parallel.hpp"
#include "retask/core/solution.hpp"

namespace retask {

void AlgoStats::merge(const AlgoStats& other) {
  ratio.merge(other.ratio);
  acceptance.merge(other.acceptance);
  objective.merge(other.objective);
  metrics.merge(other.metrics);
}

std::vector<std::vector<AlgoStats>> run_comparison_batch(
    const std::vector<ProblemFactory>& factories,
    const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
    const ReferenceObjective& reference, int instances, std::uint64_t seed0, int jobs) {
  require(!factories.empty(), "run_comparison: at least one sweep point required");
  require(instances >= 1, "run_comparison: at least one instance required");
  require(!lineup.empty(), "run_comparison: empty algorithm lineup");

  const std::size_t points = factories.size();
  const std::size_t algos = lineup.size();
  const auto reps = static_cast<std::size_t>(instances);

  // One slot per point x instance x algorithm cell, written by exactly one
  // worker; reduced in index order below so the aggregates do not depend on
  // the parallel interleaving.
  std::vector<AlgoStats> slots(points * reps * algos);

  parallel_for(points * reps, [&](std::size_t cell) {
    const std::size_t point = cell / reps;
    const std::size_t k = cell % reps;
    const RejectionProblem problem = factories[point](seed0 + static_cast<std::uint64_t>(k));
    const double ref = reference(problem);
    require(ref >= 0.0, "run_comparison: negative reference objective");
    for (std::size_t a = 0; a < algos; ++a) {
      AlgoStats& slot = slots[(cell * algos) + a];
      RejectionSolution solution;
      {
        // Attribute the solver's metrics to this point x instance x algo
        // cell. The whole cell runs on one thread, so the scoped registry
        // sees exactly this solve; on scope exit it also folds into the
        // thread's default registry, keeping process totals complete.
        obs::ActiveScope scope(slot.metrics);
        solution = lineup[a]->solve(problem);
        RETASK_COUNT("harness.solves", 1);
        RETASK_COUNT("harness.tasks_total", problem.size());
        RETASK_COUNT("harness.tasks_rejected", problem.size() - solution.accepted_count());
      }
      check_solution(problem, solution);
      const double obj = solution.objective();
      const double ratio = ref > 0.0 ? obj / ref : (obj > 0.0 ? 2.0 : 1.0);
      // Guard against a buggy "reference": no algorithm may beat an optimal
      // reference by more than numerical noise. Lower bounds are <= obj by
      // construction, so the same check applies.
      require(ratio >= 1.0 - 1e-6, "run_comparison: algorithm beat the reference objective");
      slot.ratio.add(ratio);
      slot.acceptance.add(solution.acceptance_ratio());
      slot.objective.add(obj);
    }
  }, jobs);

  std::vector<std::vector<AlgoStats>> stats(points, std::vector<AlgoStats>(algos));
  for (std::size_t point = 0; point < points; ++point) {
    for (std::size_t a = 0; a < algos; ++a) stats[point][a].name = lineup[a]->name();
    for (std::size_t k = 0; k < reps; ++k) {
      for (std::size_t a = 0; a < algos; ++a) {
        stats[point][a].merge(slots[((point * reps + k) * algos) + a]);
      }
    }
  }
  return stats;
}

std::vector<AlgoStats> run_comparison(const ProblemFactory& factory,
                                      const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
                                      const ReferenceObjective& reference, int instances,
                                      std::uint64_t seed0, int jobs) {
  auto stats = run_comparison_batch({factory}, lineup, reference, instances, seed0, jobs);
  return std::move(stats.front());
}

}  // namespace retask
