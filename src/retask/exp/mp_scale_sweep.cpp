#include "retask/exp/mp_scale_sweep.hpp"

#include <chrono>
#include <memory>

#include "retask/common/error.hpp"
#include "retask/common/parallel.hpp"
#include "retask/core/algorithm_registry.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/core/solution.hpp"

namespace retask {
namespace {

/// Per-instance slot, filled by the sharded construction pass and reduced
/// in instance order.
struct InstanceSlot {
  std::unique_ptr<RejectionProblem> problem;
  double bound = 0.0;
};

}  // namespace

MpScaleSweepResult run_mp_scale_sweep(const MpScaleSweepConfig& config, const PowerModel& model,
                                      int jobs) {
  require(config.instances >= 1, "run_mp_scale_sweep: at least one instance required");
  require(!config.solvers.empty(), "run_mp_scale_sweep: empty solver lineup");
  require(config.scenario.processor_count >= 1,
          "run_mp_scale_sweep: processor_count must be >= 1");

  const auto instances = static_cast<std::size_t>(config.instances);
  std::vector<InstanceSlot> slots(instances);
  parallel_for(
      instances,
      [&](std::size_t k) {
        ScenarioConfig scenario = config.scenario;
        scenario.seed = config.seed0 + k;
        slots[k].problem = std::make_unique<RejectionProblem>(make_scenario(scenario, model));
        if (config.record_bound_gap) {
          slots[k].bound = multiproc_lower_bound(*slots[k].problem);
        }
      },
      jobs);

  MpScaleSweepResult result;
  if (config.record_bound_gap) {
    for (const InstanceSlot& slot : slots) result.bound.add(slot.bound);
  }

  // The timed loops run serially, one solver over all instances: the solver
  // under test owns the whole pool during its solve, so the throughput
  // numbers measure each solver at full width.
  for (const std::string& name : config.solvers) {
    MpScaleSolverStats stats;
    stats.solver = name;
    const std::unique_ptr<RejectionSolver> solver = make_solver(name);
    const auto start = std::chrono::steady_clock::now();
    std::vector<RejectionSolution> solutions;
    solutions.reserve(instances);
    for (const InstanceSlot& slot : slots) solutions.push_back(solver->solve(*slot.problem));
    stats.solve_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    stats.instances_per_sec =
        stats.solve_seconds > 0.0 ? static_cast<double>(instances) / stats.solve_seconds : 0.0;

    for (std::size_t k = 0; k < instances; ++k) {
      const RejectionSolution& solution = solutions[k];
      if (config.validate) check_solution(*slots[k].problem, solution);
      const double objective = solution.objective();
      stats.objective.add(objective);
      stats.acceptance.add(solution.acceptance_ratio());
      if (config.record_bound_gap) {
        const double bound = slots[k].bound;
        // Same convention as run_comparison: a zero reference with a zero
        // objective is a perfect ratio, a nonzero objective is pinned at 2.
        const double ratio = bound > 0.0 ? objective / bound : (objective > 0.0 ? 2.0 : 1.0);
        require(ratio >= 1.0 - 1e-6, "run_mp_scale_sweep: solver beat the Lagrangian bound");
        stats.bound_ratio.add(ratio);
        stats.gaps.push_back(ratio - 1.0);
      }
    }
    result.solvers.push_back(std::move(stats));
  }
  return result;
}

}  // namespace retask
