#include "retask/exp/workload.hpp"

#include <algorithm>

#include "retask/common/error.hpp"
#include "retask/power/critical_speed.hpp"
#include "retask/power/energy_curve.hpp"

namespace retask {

double penalty_anchor(const PowerModel& model) {
  const double anchor_speed =
      std::max(critical_speed(model), 0.7 * model.max_speed());
  if (!model.is_continuous()) {
    // Snap to the nearest available speed at or above the anchor.
    for (const double s : model.available_speeds()) {
      if (s >= anchor_speed) return model.energy_per_cycle(s);
    }
    return model.energy_per_cycle(model.max_speed());
  }
  return model.energy_per_cycle(anchor_speed);
}

RejectionProblem make_scenario(const ScenarioConfig& config, const PowerModel& model) {
  require(config.processor_count >= 1, "make_scenario: processor_count must be at least 1");

  FrameWorkloadConfig gen;
  gen.task_count = config.task_count;
  gen.target_load = config.load;
  gen.frame = config.frame;
  gen.max_speed = model.max_speed();
  gen.resolution = config.resolution;
  gen.penalty_model = config.penalty_model;
  gen.penalty_scale = config.penalty_scale;
  gen.energy_per_cycle_ref = penalty_anchor(model);

  Rng rng(config.seed);
  FrameTaskSet tasks = generate_frame_tasks(gen, rng);

  EnergyCurve curve(model, config.frame, config.idle);
  const double work_per_cycle = model.max_speed() * config.frame / config.resolution;
  return RejectionProblem(std::move(tasks), std::move(curve), work_per_cycle,
                          config.processor_count);
}

}  // namespace retask
