// Many-core scale-up sweep: the experiment-harness entry point of the
// MultiProcScaleSolver benchmark (core/mp_scale.hpp).
//
// One sweep point draws `instances` multiprocessor scenario instances
// (seeds seed0 + k) and runs every solver of the lineup over all of them,
// reporting the venue-standard quality aggregates (objective, acceptance,
// ratio to the multiprocessor Lagrangian bound) next to the throughput
// (instances solved per second) the scale-up story is about.
//
// Sharding: instance construction and the per-instance lower bounds run
// through parallel_for into per-instance slots (instance k is fully
// determined by seed0 + k, never by the worker that built it). The timed
// solves then run serially in instance order — the solvers own the pool
// during their solve (mp-scale's lockstep phase shards its lane chunks
// across parallel_for), so timing them one at a time measures each solver
// at full width instead of m solvers fighting for the same workers. All
// quality aggregates are bit-identical at any job count; only the wall
// times are machine-dependent.
#ifndef RETASK_EXP_MP_SCALE_SWEEP_HPP
#define RETASK_EXP_MP_SCALE_SWEEP_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "retask/common/stats.hpp"
#include "retask/exp/workload.hpp"

namespace retask {

/// Knobs of one many-core sweep point.
struct MpScaleSweepConfig {
  /// Scenario family (task count, per-system load, resolution, penalties,
  /// processor count); scenario.seed is ignored — instance k uses seed0 + k.
  ScenarioConfig scenario;
  /// Solver lineup by registry name (core/algorithm_registry.hpp). The
  /// default pairs the scale solver against the toy-scale global greedy.
  std::vector<std::string> solvers = {"mp-scale", "mp-greedy"};
  int instances = 8;
  std::uint64_t seed0 = 1;
  /// Compute the multiprocessor Lagrangian bound per instance and fill the
  /// bound_ratio / gap aggregates. One O(n log n) pass per instance,
  /// sharded with the construction.
  bool record_bound_gap = true;
  /// Revalidate every solution (check_solution, O(n)); disable only inside
  /// timing-sensitive micro-studies.
  bool validate = true;
};

/// Aggregates of one solver over the instance family.
struct MpScaleSolverStats {
  std::string solver;          ///< registry name
  OnlineStats objective;       ///< raw objective values
  OnlineStats acceptance;      ///< fraction of tasks accepted
  OnlineStats bound_ratio;     ///< objective / Lagrangian bound (>= 1);
                               ///< empty unless record_bound_gap
  /// Per-instance relative gaps (objective - bound) / bound, in instance
  /// order, for quantile reporting; empty unless record_bound_gap.
  std::vector<double> gaps;
  /// Wall-clock throughput of the serial timed loop. Machine-dependent —
  /// everything else in this struct is bit-identical at any job count.
  double solve_seconds = 0.0;
  double instances_per_sec = 0.0;
};

/// Outcome of one sweep point.
struct MpScaleSweepResult {
  OnlineStats bound;                        ///< Lagrangian bound values
  std::vector<MpScaleSolverStats> solvers;  ///< config.solvers order
};

/// Runs the sweep point on `model`. `jobs` = 0 uses default_jobs(); the
/// job count shards construction and feeds the solvers' internal
/// parallelism, and every non-timing aggregate is bit-identical across it.
MpScaleSweepResult run_mp_scale_sweep(const MpScaleSweepConfig& config, const PowerModel& model,
                                      int jobs = 0);

}  // namespace retask

#endif  // RETASK_EXP_MP_SCALE_SWEEP_HPP
