// Scenario builders shared by the reconstructed evaluation.
//
// Every figure/table sweeps the same kind of synthetic instance: a power
// model, an idle discipline, a frame, a system load, and a penalty scale.
// This module turns those knobs into ready RejectionProblem instances with
// the penalty magnitudes anchored to the model's energy scale, so that the
// penalty_scale parameter sweeps the energy-vs-penalty crossover the same
// way for every model.
#ifndef RETASK_EXP_WORKLOAD_HPP
#define RETASK_EXP_WORKLOAD_HPP

#include <cstdint>
#include <memory>

#include "retask/core/problem.hpp"
#include "retask/power/power_model.hpp"
#include "retask/task/generator.hpp"

namespace retask {

/// Knobs of one synthetic scenario.
struct ScenarioConfig {
  int task_count = 12;
  /// System load: total work divided by ONE processor's capacity
  /// (smax * frame). For multiprocessor scenarios pass the per-system load
  /// times processor_count if a fully loaded system is intended.
  double load = 1.0;
  double frame = 1.0;
  double resolution = 2000.0;  ///< cycles representing load 1
  PenaltyModel penalty_model = PenaltyModel::kUniform;
  double penalty_scale = 1.0;
  IdleDiscipline idle = IdleDiscipline::kDormantEnable;
  int processor_count = 1;
  std::uint64_t seed = 1;
};

/// Reference energy-per-work used to anchor penalties for `model`: the
/// energy per cycle at max(critical speed, 0.7 * smax), i.e. a typical
/// marginal execution cost at moderate load.
double penalty_anchor(const PowerModel& model);

/// Builds a scenario instance on `model`.
RejectionProblem make_scenario(const ScenarioConfig& config, const PowerModel& model);

}  // namespace retask

#endif  // RETASK_EXP_WORKLOAD_HPP
