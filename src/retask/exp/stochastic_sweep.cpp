#include "retask/exp/stochastic_sweep.hpp"

#include <algorithm>
#include <memory>

#include "retask/common/error.hpp"
#include "retask/common/parallel.hpp"
#include "retask/core/algorithm_registry.hpp"
#include "retask/core/solution.hpp"

namespace retask {
namespace {

/// Per-instance accumulator slot, reduced in instance order.
struct InstanceSlot {
  OnlineStats rejection_rate;
  OnlineStats acceptance;
  std::vector<StochasticPolicyStats> policies;
};

void merge_policy(StochasticPolicyStats& into, const StochasticPolicyStats& from) {
  into.energy.merge(from.energy);
  into.ratio_to_clairvoyant.merge(from.ratio_to_clairvoyant);
  into.completion.merge(from.completion);
  into.deadline_misses += from.deadline_misses;
  into.trajectories += from.trajectories;
}

}  // namespace

StochasticSweepResult run_stochastic_sweep(const StochasticSweepConfig& config,
                                           const PowerModel& model, int jobs) {
  require(model.is_continuous(), "run_stochastic_sweep: continuous models only");
  require(config.instances >= 1, "run_stochastic_sweep: at least one instance required");
  require(config.trajectories >= 1, "run_stochastic_sweep: at least one trajectory required");
  require(!config.policies.empty(), "run_stochastic_sweep: empty policy lineup");
  require(config.ladder_levels >= 0, "run_stochastic_sweep: ladder_levels must be >= 0");
  require(config.scenario.processor_count == 1,
          "run_stochastic_sweep: single-processor scenarios only");
  validate(config.distribution);

  const FreqLadder ladder = config.ladder_levels > 0
                                ? FreqLadder::from_model(model, config.ladder_levels)
                                : FreqLadder::from_model(model, 1);
  const FreqLadder* ladder_ptr = config.ladder_levels > 0 ? &ladder : nullptr;
  const double expected_ratio = config.distribution.mean_ratio();

  const auto instances = static_cast<std::size_t>(config.instances);
  std::vector<InstanceSlot> slots(instances);

  parallel_for(
      instances,
      [&](std::size_t k) {
        InstanceSlot& slot = slots[k];
        slot.policies.resize(config.policies.size());
        for (std::size_t p = 0; p < config.policies.size(); ++p) {
          slot.policies[p].policy = config.policies[p];
        }

        ScenarioConfig scenario = config.scenario;
        scenario.seed = config.seed0 + k;
        const RejectionProblem problem = make_scenario(scenario, model);
        const std::unique_ptr<RejectionSolver> solver = make_solver(config.solver);
        const RejectionSolution solution = solver->solve(problem);

        std::vector<FrameTask> accepted;
        accepted.reserve(problem.size());
        for (std::size_t i = 0; i < problem.size(); ++i) {
          if (solution.accepted[i]) accepted.push_back(problem.tasks()[i]);
        }
        const double n = static_cast<double>(problem.size());
        const double acc = n > 0.0 ? static_cast<double>(accepted.size()) / n : 1.0;
        slot.acceptance.add(acc);
        slot.rejection_rate.add(1.0 - acc);

        Rng trajectory_rng(Rng::stream_seed(config.trajectory_seed, k));
        StochasticFrameConfig frame;
        frame.ladder = ladder_ptr;
        frame.expected_ratio = expected_ratio;

        for (int r = 0; r < config.trajectories; ++r) {
          const std::vector<Cycles> actual =
              draw_trajectory(accepted, config.distribution, trajectory_rng);

          // The CONTINUOUS clairvoyant optimum normalizes every policy of
          // this trajectory: ladder levels lie on the model curve, so it is
          // the lower bound for both backends (clairvoyant executed on a
          // ladder is not — low-first emulation of a slow speed can cost
          // more than running outright at the ladder's critical level).
          frame.ladder = nullptr;
          frame.policy = StochasticPolicy::kClairvoyant;
          const StochasticFrameResult bound = simulate_frame_stochastic(
              accepted, actual, problem.work_per_cycle(), problem.curve(), frame);
          frame.ladder = ladder_ptr;

          for (std::size_t p = 0; p < config.policies.size(); ++p) {
            frame.policy = config.policies[p];
            const StochasticFrameResult run =
                frame.policy == StochasticPolicy::kClairvoyant && ladder_ptr == nullptr
                    ? bound
                    : simulate_frame_stochastic(accepted, actual, problem.work_per_cycle(),
                                                problem.curve(), frame);
            StochasticPolicyStats& stats = slot.policies[p];
            stats.energy.add(run.energy);
            stats.ratio_to_clairvoyant.add(
                bound.energy > 0.0 ? run.energy / bound.energy : 1.0);
            stats.completion.add(run.completion);
            if (!run.deadline_met) ++stats.deadline_misses;
            ++stats.trajectories;
          }
        }
      },
      jobs);

  StochasticSweepResult result;
  result.policies.resize(config.policies.size());
  for (std::size_t p = 0; p < config.policies.size(); ++p) {
    result.policies[p].policy = config.policies[p];
  }
  for (const InstanceSlot& slot : slots) {
    result.rejection_rate.merge(slot.rejection_rate);
    result.acceptance.merge(slot.acceptance);
    for (std::size_t p = 0; p < result.policies.size(); ++p) {
      merge_policy(result.policies[p], slot.policies[p]);
    }
  }
  return result;
}

}  // namespace retask
