// Experiment harness: runs an algorithm lineup over a family of random
// instances and aggregates the venue-standard metrics (mean/max objective
// ratio against a reference, acceptance ratio).
//
// Instances are solved concurrently (see common/parallel.hpp) into
// per-instance slots and reduced in instance order, so every aggregate is
// bit-identical regardless of the job count: per-instance seeding
// (seed0 + k) makes the inputs deterministic, and the ordered reduction
// makes the floating-point accumulation order deterministic too.
#ifndef RETASK_EXP_HARNESS_HPP
#define RETASK_EXP_HARNESS_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "retask/cache/energy_memo.hpp"
#include "retask/common/stats.hpp"
#include "retask/core/solver.hpp"
#include "retask/obs/metrics.hpp"

namespace retask {

/// Builds the instance for a given replication seed.
using ProblemFactory = std::function<RejectionProblem(std::uint64_t seed)>;

/// Reference objective (optimal or lower bound) for normalization.
using ReferenceObjective = std::function<double(const RejectionProblem&)>;

/// Aggregated outcome of one algorithm over the instance family.
struct AlgoStats {
  std::string name;
  OnlineStats ratio;       ///< objective / reference objective
  OnlineStats acceptance;  ///< fraction of tasks accepted
  OnlineStats objective;   ///< raw objective values
  /// Solver metrics collected while this algorithm ran on this point's
  /// instances (obs::ActiveScope per cell). Counters and histograms merge
  /// commutatively, so the merged registry is bit-identical at any job
  /// count; empty in RETASK_OBS=OFF builds.
  obs::Registry metrics;

  /// Ordered reduce: folds `other`'s accumulators into this one's (the
  /// name is kept). Folding single-instance slots in instance order yields
  /// the same bits as the sequential harness.
  void merge(const AlgoStats& other);
};

/// Runs every solver on `instances` instances (seeds seed0, seed0+1, ...),
/// normalizing by `reference`. Solver outputs are revalidated; a reference
/// of 0 with a 0 objective counts as ratio 1. `jobs` = 0 uses
/// default_jobs() (RETASK_JOBS / hardware); any job count produces
/// bit-identical aggregates, and jobs = 1 runs strictly sequentially.
std::vector<AlgoStats> run_comparison(const ProblemFactory& factory,
                                      const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
                                      const ReferenceObjective& reference, int instances,
                                      std::uint64_t seed0 = 1, int jobs = 0);

/// Solve-reuse knobs of run_comparison_batch. The defaults are always
/// sound: they only enable reuse the harness can prove safe by itself.
struct BatchOptions {
  /// Group the sweep points of one instance (same seed) and solve them
  /// through RejectionSolver::solve_sweep when every point carries an
  /// identical task set (capacity/work_per_cycle sweeps). Solutions are
  /// bit-identical either way (the solve_sweep contract); the only
  /// observable difference is metric attribution — a grouped algorithm's
  /// solver metrics land in the FIRST point's AlgoStats instead of being
  /// split per point (the per-point split does not exist for shared work).
  bool sweep_reuse = true;
  /// Attach an EnergyMemo per sweep point, shared across every instance of
  /// a parallel block whose platform (curve, work_per_cycle) matches that
  /// point's first instance — cells are solved on one thread per block, so
  /// one instance's cycles -> energy evaluations serve the rest. All lineup
  /// algorithms solving a cell share its memo by reference. A factory whose
  /// platform varies with the seed fails the same_platforms guard and gets
  /// a private per-cell memo instead (bit-identical either way).
  bool cell_energy_memo = true;
  /// Caller-supplied memo attached to EVERY problem of the grid instead of
  /// per-cell memos. The caller asserts all factories produce problems with
  /// one identical (EnergyCurve, work_per_cycle) pair — see
  /// RejectionProblem::attach_energy_memo. Leave null to use per-cell memos.
  std::shared_ptr<EnergyMemo> shared_energy_memo;
  /// Solve instances that do NOT take the sweep-reuse path through the
  /// lockstep batch solver (batch/lockstep.hpp): the replication axis is
  /// split into blocks of lockstep_lanes() instances, and each block's
  /// same-shape instances run through one BatchRejectionSolver per point.
  /// Solutions are bit-identical either way (the lockstep contract); like
  /// sweep_reuse, the only observable difference is metric attribution — a
  /// batched chunk's solver metrics land in the FIRST participating
  /// instance's AlgoStats for that point. RETASK_BATCH=off (lanes 0/1)
  /// disables batching even when this flag is set.
  bool lockstep = true;
  /// Fuse the sweep-reuse path ACROSS a block's instances through
  /// BatchRejectionSolver::solve_sweep_batch: instead of one warm
  /// solve_sweep per instance, the block's grouped instances share one
  /// lane-major fill and one fused select per sweep point, so they get the
  /// warm start and the cross-instance energy batching simultaneously.
  /// Solutions are bit-identical either way (the solve_sweep_batch
  /// contract); the whole fused batch's solver metrics land in the first
  /// participating instance's FIRST point slot. Inert unless sweep_reuse
  /// also holds; RETASK_FUSED_SWEEP=off or RETASK_BATCH=off disables it.
  bool fused_sweep = true;
};

/// Batch form used by the sweep drivers: one factory per sweep point, all
/// instances solved in a single parallel region (seeds
/// seed0 ... seed0 + instances - 1 within every point, matching a
/// run_comparison call per point). Returns one AlgoStats vector per factory.
/// Solutions and aggregates are bit-identical to calling run_comparison
/// point by point at any job count; see BatchOptions for the metric
/// attribution caveat under sweep_reuse.
std::vector<std::vector<AlgoStats>> run_comparison_batch(
    const std::vector<ProblemFactory>& factories,
    const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
    const ReferenceObjective& reference, int instances, std::uint64_t seed0 = 1, int jobs = 0,
    const BatchOptions& options = {});

}  // namespace retask

#endif  // RETASK_EXP_HARNESS_HPP
