// Experiment harness: runs an algorithm lineup over a family of random
// instances and aggregates the venue-standard metrics (mean/max objective
// ratio against a reference, acceptance ratio).
#ifndef RETASK_EXP_HARNESS_HPP
#define RETASK_EXP_HARNESS_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "retask/common/stats.hpp"
#include "retask/core/solver.hpp"

namespace retask {

/// Builds the instance for a given replication seed.
using ProblemFactory = std::function<RejectionProblem(std::uint64_t seed)>;

/// Reference objective (optimal or lower bound) for normalization.
using ReferenceObjective = std::function<double(const RejectionProblem&)>;

/// Aggregated outcome of one algorithm over the instance family.
struct AlgoStats {
  std::string name;
  OnlineStats ratio;       ///< objective / reference objective
  OnlineStats acceptance;  ///< fraction of tasks accepted
  OnlineStats objective;   ///< raw objective values
};

/// Runs every solver on `instances` instances (seeds seed0, seed0+1, ...),
/// normalizing by `reference`. Solver outputs are revalidated; a reference
/// of 0 with a 0 objective counts as ratio 1.
std::vector<AlgoStats> run_comparison(const ProblemFactory& factory,
                                      const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
                                      const ReferenceObjective& reference, int instances,
                                      std::uint64_t seed0 = 1);

}  // namespace retask

#endif  // RETASK_EXP_HARNESS_HPP
