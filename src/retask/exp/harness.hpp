// Experiment harness: runs an algorithm lineup over a family of random
// instances and aggregates the venue-standard metrics (mean/max objective
// ratio against a reference, acceptance ratio).
//
// Instances are solved concurrently (see common/parallel.hpp) into
// per-instance slots and reduced in instance order, so every aggregate is
// bit-identical regardless of the job count: per-instance seeding
// (seed0 + k) makes the inputs deterministic, and the ordered reduction
// makes the floating-point accumulation order deterministic too.
#ifndef RETASK_EXP_HARNESS_HPP
#define RETASK_EXP_HARNESS_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "retask/common/stats.hpp"
#include "retask/core/solver.hpp"
#include "retask/obs/metrics.hpp"

namespace retask {

/// Builds the instance for a given replication seed.
using ProblemFactory = std::function<RejectionProblem(std::uint64_t seed)>;

/// Reference objective (optimal or lower bound) for normalization.
using ReferenceObjective = std::function<double(const RejectionProblem&)>;

/// Aggregated outcome of one algorithm over the instance family.
struct AlgoStats {
  std::string name;
  OnlineStats ratio;       ///< objective / reference objective
  OnlineStats acceptance;  ///< fraction of tasks accepted
  OnlineStats objective;   ///< raw objective values
  /// Solver metrics collected while this algorithm ran on this point's
  /// instances (obs::ActiveScope per cell). Counters and histograms merge
  /// commutatively, so the merged registry is bit-identical at any job
  /// count; empty in RETASK_OBS=OFF builds.
  obs::Registry metrics;

  /// Ordered reduce: folds `other`'s accumulators into this one's (the
  /// name is kept). Folding single-instance slots in instance order yields
  /// the same bits as the sequential harness.
  void merge(const AlgoStats& other);
};

/// Runs every solver on `instances` instances (seeds seed0, seed0+1, ...),
/// normalizing by `reference`. Solver outputs are revalidated; a reference
/// of 0 with a 0 objective counts as ratio 1. `jobs` = 0 uses
/// default_jobs() (RETASK_JOBS / hardware); any job count produces
/// bit-identical aggregates, and jobs = 1 runs strictly sequentially.
std::vector<AlgoStats> run_comparison(const ProblemFactory& factory,
                                      const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
                                      const ReferenceObjective& reference, int instances,
                                      std::uint64_t seed0 = 1, int jobs = 0);

/// Batch form used by the sweep drivers: one factory per sweep point, all
/// point x instance cells solved in a single parallel region (seeds
/// seed0 ... seed0 + instances - 1 within every point, matching a
/// run_comparison call per point). Returns one AlgoStats vector per factory,
/// bit-identical to calling run_comparison point by point.
std::vector<std::vector<AlgoStats>> run_comparison_batch(
    const std::vector<ProblemFactory>& factories,
    const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
    const ReferenceObjective& reference, int instances, std::uint64_t seed0 = 1, int jobs = 0);

}  // namespace retask

#endif  // RETASK_EXP_HARNESS_HPP
