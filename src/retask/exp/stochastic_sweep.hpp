// Stochastic-execution sweep: the experiment-harness entry point of the
// stochastic engine (sched/stochastic.hpp).
//
// One sweep point draws `instances` scenario instances (seeds seed0 + k),
// solves each with an admission solver to fix the accepted set and the
// rejection rate, then replays `trajectories` seeded actual-cycle
// trajectories per instance through every requested policy — the SAME
// trajectory for every policy, so per-policy energies are matched-pair
// comparable. Instance k's trajectory stream is seeded with
// Rng::stream_seed(trajectory_seed, k): the derivation depends only on the
// instance index, never on the worker that runs it, and slots are reduced
// in instance order, so every aggregate is bit-identical at any RETASK_JOBS
// (the same guarantee exp/harness.hpp gives the deterministic sweeps).
#ifndef RETASK_EXP_STOCHASTIC_SWEEP_HPP
#define RETASK_EXP_STOCHASTIC_SWEEP_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "retask/common/stats.hpp"
#include "retask/exp/workload.hpp"
#include "retask/sched/stochastic.hpp"

namespace retask {

/// Knobs of one stochastic sweep point.
struct StochasticSweepConfig {
  /// Scenario family (task count, load, frame, penalties, idle discipline);
  /// scenario.seed is ignored — instance k uses seed0 + k.
  ScenarioConfig scenario;
  /// Admission solver fixing the accepted set (core/algorithm_registry.hpp
  /// name; the density greedy is the fast paper heuristic).
  std::string solver = "greedy";
  TrajectoryDistribution distribution;
  std::vector<StochasticPolicy> policies = all_stochastic_policies();
  /// 0 = continuous speeds; N >= 1 executes on FreqLadder::from_model(N).
  int ladder_levels = 0;
  int instances = 20;
  int trajectories = 16;        ///< per instance
  std::uint64_t seed0 = 1;      ///< scenario seeds seed0 + k
  std::uint64_t trajectory_seed = 1;  ///< stream base for Rng::stream_seed
};

/// Aggregates of one policy over every (instance, trajectory) pair.
struct StochasticPolicyStats {
  StochasticPolicy policy = StochasticPolicy::kStatic;
  OnlineStats energy;                 ///< frame energy per trajectory
  OnlineStats ratio_to_clairvoyant;   ///< energy / CONTINUOUS clairvoyant lower bound
                                      ///< (>= 1 on any backend; 1 when both idle)
  OnlineStats completion;             ///< last-task completion time
  std::int64_t deadline_misses = 0;
  std::int64_t trajectories = 0;
};

/// Outcome of one sweep point.
struct StochasticSweepResult {
  OnlineStats rejection_rate;  ///< rejected task fraction per instance
  OnlineStats acceptance;      ///< accepted task fraction per instance
  std::vector<StochasticPolicyStats> policies;  ///< config.policies order
};

/// Runs the sweep point on `model` (continuous models only). `jobs` = 0 uses
/// default_jobs(); any job count produces bit-identical aggregates.
StochasticSweepResult run_stochastic_sweep(const StochasticSweepConfig& config,
                                           const PowerModel& model, int jobs = 0);

}  // namespace retask

#endif  // RETASK_EXP_STOCHASTIC_SWEEP_HPP
