// Example: periodic sensing node under an admission-control budget.
//
// A battery-powered sensor node runs periodic tasks (sampling, filtering,
// telemetry, compression, diagnostics...). A firmware update added features
// until the demanded rate exceeds what the DVS core can deliver even at top
// speed — classic overload. Each task has a mission penalty for being shed.
// The node reduces the periodic set to the frame problem over the
// hyper-period, admits the optimal subset, picks the EDF speed, and proves
// the admitted set schedulable by simulating every job of a hyper-period.
//
//   build/examples/sensor_periodic
#include <cstdio>

#include "retask/retask.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel core = PolynomialPowerModel::xscale();

  // Periods in milliseconds; cycles such that the total demanded rate is
  // ~1.26 of the core's top speed.
  const PeriodicTaskSet tasks({
      {0, 20, 100, 500.0},   // watchdog        rate 0.20, effectively mandatory
      {1, 30, 100, 150.0},   // sampling        rate 0.30
      {2, 36, 200, 90.0},    // filtering       rate 0.18
      {3, 50, 400, 80.0},    // telemetry       rate 0.125
      {4, 60, 400, 30.0},    // compression     rate 0.15
      {5, 40, 200, 25.0},    // health stats    rate 0.20
      {6, 20, 200, 8.0},     // debug trace     rate 0.10
  });
  std::printf("demanded rate : %.3f (top speed 1.0 -> overload)\n", tasks.total_rate());

  const PeriodicRejectionAdapter adapter(tasks, core, IdleDiscipline::kDormantEnable);
  const RejectionSolution plan = ExactDpSolver().solve(adapter.frame_problem());

  const char* names[] = {"watchdog", "sampling", "filtering", "telemetry",
                         "compression", "health", "trace"};
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::printf("  %-11s rate %.3f penalty %5.1f : %s\n", names[i], tasks[i].rate(),
                tasks[i].penalty, plan.accepted[i] ? "ADMIT" : "shed");
  }

  const double rate = adapter.demanded_rate_on(plan, 0);
  const double speed = adapter.execution_speed_on(plan, 0);
  std::printf("admitted rate : %.3f -> EDF speed %.3f (critical speed %.3f)\n", rate, speed,
              critical_speed(core));
  std::printf("objective     : %.3f (energy %.3f + shed penalty %.3f) per hyper-period %.0f ms\n",
              plan.objective(), plan.energy, plan.penalty, adapter.hyper_period());

  // Prove it: execute one hyper-period of EDF, job by job.
  EdfSimConfig sim;
  sim.speed = speed;
  const EdfSimResult run = simulate_edf(tasks, plan.accepted, sim, adapter.frame_problem().curve());
  std::printf("EDF check     : %lld jobs, %lld deadline misses, busy %.1f ms, "
              "energy %.3f (analytic %.3f)\n",
              static_cast<long long>(run.jobs_released),
              static_cast<long long>(run.deadline_misses), run.busy_time, run.energy,
              plan.energy);
  return run.deadline_misses == 0 ? 0 : 1;
}
