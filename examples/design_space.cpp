// Example: design-space exploration for a system architect.
//
// Three questions a platform designer asks before committing silicon:
//  1. How much solution quality does each scheduler tier buy (RAND -> greedy
//     -> local search -> FPTAS -> exact), and at what runtime?
//  2. How many discrete speed levels does the voltage regulator need before
//     the non-ideal processor is "close enough" to ideal?
//  3. How many cores until nothing worth keeping is rejected?
//
//   build/examples/design_space
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "retask/retask.hpp"

int main() {
  using namespace retask;
  using Clock = std::chrono::steady_clock;

  const PolynomialPowerModel ideal = PolynomialPowerModel::xscale();
  const int instances = 10;

  // --- Question 1: scheduler tiers ---------------------------------------
  std::printf("Q1: scheduler tiers (n=60, load 1.8, %d instances)\n", instances);
  std::printf("    %-12s %-12s %-10s\n", "algorithm", "mean ratio", "mean ms");
  {
    const ExactDpSolver reference;
    std::vector<std::unique_ptr<RejectionSolver>> tiers;
    tiers.push_back(std::make_unique<RandomRejectSolver>());
    tiers.push_back(std::make_unique<DensityGreedySolver>());
    tiers.push_back(std::make_unique<MarginalGreedySolver>());
    tiers.push_back(std::make_unique<FptasSolver>(0.05));
    tiers.push_back(std::make_unique<ExactDpSolver>());

    const auto factory = [&ideal](std::uint64_t seed) {
      ScenarioConfig config;
      config.task_count = 60;
      config.load = 1.8;
      config.resolution = 6000.0;
      config.seed = seed;
      return make_scenario(config, ideal);
    };
    for (const auto& tier : tiers) {
      OnlineStats ratio;
      OnlineStats ms;
      for (int k = 1; k <= instances; ++k) {
        const RejectionProblem p = factory(static_cast<std::uint64_t>(k));
        const double opt = reference.solve(p).objective();
        const auto t0 = Clock::now();
        const double obj = tier->solve(p).objective();
        const auto t1 = Clock::now();
        ratio.add(opt > 0.0 ? obj / opt : 1.0);
        ms.add(std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
      std::printf("    %-12s %-12.4f %-10.3f\n", tier->name().c_str(), ratio.mean(), ms.mean());
    }
  }

  // --- Question 2: regulator levels ---------------------------------------
  std::printf("\nQ2: speed levels needed (optimal objective vs ideal, load 1.4)\n");
  std::printf("    %-8s %-12s\n", "levels", "mean ratio");
  {
    const ExactDpSolver dp;
    const auto base = [&ideal](std::uint64_t seed) {
      ScenarioConfig config;
      config.task_count = 12;
      config.load = 1.4;
      config.resolution = 1200.0;
      config.seed = seed;
      return make_scenario(config, ideal);
    };
    for (const int levels : {2, 3, 4, 6, 8, 12}) {
      const TablePowerModel table = TablePowerModel::sampled(0.08, 1.52, 3.0, 0.15, 1.0, levels);
      OnlineStats ratio;
      for (int k = 1; k <= instances; ++k) {
        const RejectionProblem p0 = base(static_cast<std::uint64_t>(k));
        const RejectionProblem pk(p0.tasks(),
                                  EnergyCurve(table, p0.curve().window(), p0.curve().idle()),
                                  p0.work_per_cycle(), 1);
        const double a = dp.solve(p0).objective();
        const double b = dp.solve(pk).objective();
        ratio.add(a > 0.0 ? b / a : 1.0);
      }
      std::printf("    %-8d %-12.4f\n", levels, ratio.mean());
    }
  }

  // --- Question 3: core count ---------------------------------------------
  std::printf("\nQ3: cores until nothing worth keeping is rejected (system load 2.4)\n");
  std::printf("    %-6s %-12s %-12s\n", "cores", "acceptance", "objective");
  {
    const MultiProcGreedySolver solver;
    for (const int m : {1, 2, 3, 4, 6}) {
      OnlineStats acceptance;
      OnlineStats objective;
      for (int k = 1; k <= instances; ++k) {
        ScenarioConfig config;
        config.task_count = 24;
        config.load = 2.4;  // fixed system demand, spread over m cores
        config.resolution = 1200.0;
        config.processor_count = m;
        config.seed = static_cast<std::uint64_t>(k);
        const RejectionProblem p = make_scenario(config, ideal);
        const RejectionSolution s = solver.solve(p);
        acceptance.add(s.acceptance_ratio());
        objective.add(s.objective());
      }
      std::printf("    %-6d %-12.4f %-12.4f\n", m, acceptance.mean(), objective.mean());
    }
  }
  return 0;
}
