// Example: online admission control at a request-serving edge node.
//
// Requests (transcoding jobs, inference calls...) arrive unpredictably, each
// with a deadline and a business value; the node cannot see the future and
// must accept or decline at arrival. This example runs the same request
// trace through three admission policies on an OA-speed DVS core and shows
// why "admit everything that fits" is the wrong instinct once the node
// saturates: the combined cost (energy burned + value declined) is governed
// by WHICH work you take, not how much.
//
//   build/examples/admission_control
#include <cstdio>

#include "retask/retask.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel core = PolynomialPowerModel::xscale();

  // A bursty afternoon: 2.2x more work offered than the core can serve.
  AperiodicWorkloadConfig trace;
  trace.duration = 200.0;
  trace.mean_work = 0.5;
  trace.arrival_rate = 2.2 / trace.mean_work;
  trace.penalty_scale = 0.8;
  trace.energy_per_work_ref = penalty_anchor(core);
  Rng rng(4242);
  const std::vector<AperiodicJob> jobs = generate_aperiodic_jobs(trace, core.max_speed(), rng);
  std::printf("trace: %zu requests over %.0f time units (offered load ~2.2)\n\n", jobs.size(),
              trace.duration);

  OnlineSimConfig config;
  config.work_per_cycle = 1.0 / trace.resolution;
  config.horizon = trace.duration + 20.0;

  struct PolicyRow {
    const char* label;
    AdmissionRule rule;
    double threshold;
  };
  const PolicyRow policies[] = {
      {"admit-all-feasible", AdmissionRule::kFeasibleOnly, 0.0},
      {"value >= 0.5x energy", AdmissionRule::kValueDensity, 0.5},
      {"value >= 1.0x energy", AdmissionRule::kValueDensity, 1.0},
      {"value >= 2.0x energy", AdmissionRule::kValueDensity, 2.0},
  };

  std::printf("%-22s %9s %9s %11s %11s %9s\n", "policy", "admitted", "misses", "energy",
              "declined", "objective");
  for (const PolicyRow& policy : policies) {
    config.rule = policy.rule;
    config.value_threshold = policy.threshold;
    const OnlineSimResult r = simulate_online(jobs, config, core);
    std::printf("%-22s %8.1f%% %9lld %11.2f %11.2f %9.2f\n", policy.label,
                100.0 * r.admission_ratio(), static_cast<long long>(r.deadline_misses),
                r.energy, r.rejected_penalty, r.objective());
  }

  std::printf("\n(The OA speed rule guarantees zero misses for admitted requests; the\n"
              "threshold trades declined value against energy burned on marginal work.)\n");
  return 0;
}
