// Example: soft real-time video decoding with frame dropping.
//
// A media pipeline decodes a group of pictures per 40 ms display frame on a
// battery-powered device. Enhancement-layer blocks can be dropped (that is
// the rejection penalty: perceptual quality loss); base-layer blocks carry
// penalties so large they are effectively mandatory. When a complex scene
// overloads the frame, the scheduler decides which enhancement blocks to
// drop and how fast to run, minimizing energy + quality loss.
//
// The example decodes a 40-frame synthetic clip whose complexity ramps up
// and reports, per scene segment, the drop rate and energy, comparing the
// optimal scheduler against the naive keep-everything policy.
//
//   build/examples/video_frames
#include <algorithm>
#include <cstdio>
#include <vector>

#include "retask/retask.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel processor = PolynomialPowerModel::xscale();
  const double frame_seconds = 0.040;
  EnergyCurve curve(processor, frame_seconds, IdleDiscipline::kDormantEnable);

  // 2000 cycle units = one full-speed frame.
  const double work_per_cycle = processor.max_speed() * frame_seconds / 2000.0;

  Rng rng(2024);
  const ExactDpSolver opt;
  const AllAcceptSolver naive;

  double opt_energy = 0.0;
  double opt_quality_loss = 0.0;
  double naive_energy = 0.0;
  double naive_quality_loss = 0.0;
  int opt_drops = 0;
  int naive_drops = 0;
  int blocks_total = 0;

  std::printf("frame | load | kept (opt) | dropped | objective opt | objective naive\n");
  std::printf("------+------+------------+---------+---------------+----------------\n");

  for (int frame = 0; frame < 40; ++frame) {
    // Scene complexity ramps from 60%% to 180%% of the frame budget.
    const double complexity = 0.6 + 1.2 * static_cast<double>(frame) / 39.0;

    // One base-layer block (mandatory) + 8 enhancement blocks.
    std::vector<FrameTask> blocks;
    const auto base_cycles =
        static_cast<Cycles>(600.0 * complexity / 1.8 + rng.uniform(-30.0, 30.0));
    blocks.push_back({0, std::max<Cycles>(base_cycles, 50), 1e6});  // never dropped
    double remaining = 2000.0 * complexity - static_cast<double>(blocks[0].cycles);
    for (int b = 1; b <= 8; ++b) {
      const double share = remaining / static_cast<double>(9 - b) * rng.uniform(0.6, 1.4);
      const auto cycles = static_cast<Cycles>(std::max(20.0, share));
      remaining -= static_cast<double>(cycles);
      // Enhancement value falls with layer index: late layers are cheap to
      // drop (in units comparable to millijoules of frame energy).
      const double quality_penalty = 0.030 / (1.0 + 0.7 * b) * rng.uniform(0.8, 1.2);
      blocks.push_back({b, cycles, quality_penalty});
    }
    blocks_total += static_cast<int>(blocks.size());

    const RejectionProblem problem(FrameTaskSet(blocks), curve, work_per_cycle);
    const RejectionSolution best = opt.solve(problem);
    const RejectionSolution keep = naive.solve(problem);

    opt_energy += best.energy;
    opt_quality_loss += best.penalty;
    naive_energy += keep.energy;
    naive_quality_loss += keep.penalty;
    const auto dropped_opt = static_cast<int>(problem.size() - best.accepted_count());
    const auto dropped_naive = static_cast<int>(problem.size() - keep.accepted_count());
    opt_drops += dropped_opt;
    naive_drops += dropped_naive;

    if (frame % 5 == 0) {
      std::printf("%5d | %.2f | %10zu | %7d | %13.5f | %15.5f\n", frame, complexity,
                  best.accepted_count(), dropped_opt, best.objective(), keep.objective());
    }
  }

  std::printf("\nclip totals over 40 frames (%d blocks):\n", blocks_total);
  std::printf("  optimal : energy %.4f J, quality loss %.4f, drops %d\n", opt_energy,
              opt_quality_loss, opt_drops);
  std::printf("  naive   : energy %.4f J, quality loss %.4f, drops %d\n", naive_energy,
              naive_quality_loss, naive_drops);
  const double opt_obj = opt_energy + opt_quality_loss;
  const double naive_obj = naive_energy + naive_quality_loss;
  std::printf("  objective improvement: %.1f%%\n", 100.0 * (naive_obj - opt_obj) / naive_obj);
  return 0;
}
