// Quickstart: the smallest end-to-end use of the retask public API.
//
// Five frame-based tasks on one XScale-normalized DVS processor whose frame
// is too small for all of them — the scheduler must reject something. We
// solve with the exact DP, print the decision, and verify the schedule by
// actually executing it in the frame simulator.
//
//   build/examples/quickstart
#include <cstdio>

#include "retask/retask.hpp"

int main() {
  using namespace retask;

  // 1. A DVS processor: P(s) = 0.08 + 1.52 s^3 W, speeds in (0, 1], able to
  //    sleep when idle.
  const PolynomialPowerModel processor = PolynomialPowerModel::xscale();
  const double frame = 1.0;  // common deadline D = 1 s
  EnergyCurve curve(processor, frame, IdleDiscipline::kDormantEnable);

  // 2. Five tasks: cycles (at 100 cycles == one full-speed frame) and the
  //    penalty paid if the task is rejected.
  const FrameTaskSet tasks({
      {0, 40, 0.30},  // big but modest value
      {1, 35, 0.60},  // big and valuable
      {2, 25, 0.25},
      {3, 20, 0.35},
      {4, 15, 0.02},  // small and nearly worthless
  });  // 135 cycles demanded, 100 fit at top speed -> someone must go

  const RejectionProblem problem(tasks, curve, /*work_per_cycle=*/0.01);

  // 3. Solve optimally (pseudo-polynomial DP).
  const RejectionSolution solution = ExactDpSolver().solve(problem);

  std::printf("objective      : %.4f J (energy %.4f + penalty %.4f)\n", solution.objective(),
              solution.energy, solution.penalty);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::printf("  task %zu (%3lld cycles, penalty %.2f): %s\n", i,
                static_cast<long long>(tasks[i].cycles), tasks[i].penalty,
                solution.accepted[i] ? "ACCEPT" : "reject");
  }

  // 4. Trust nothing: execute the accepted set in the frame simulator.
  std::vector<FrameTask> accepted;
  double work = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (solution.accepted[i]) {
      accepted.push_back(tasks[i]);
      work += problem.work_of(i);
    }
  }
  const SpeedSchedule schedule = SpeedSchedule::from_plan(curve.plan(work));
  const FrameSimResult sim = simulate_frame(accepted, problem.work_per_cycle(), schedule, curve);
  std::printf("simulated      : deadline %s, completion %.4f s, energy %.4f J\n",
              sim.deadline_met ? "MET" : "MISSED", sim.completion_time, sim.energy);
  return sim.deadline_met ? 0 : 1;
}
