// Example: capacity planning — how many processors, and which kind?
//
// A platform architect has a fixed per-frame energy envelope (battery/
// thermal) and a workload that must all run. Two questions:
//   1. On ONE processor type: how many parts does each energy envelope cost,
//      and how much does load balancing (RS-LEUF-style) save over naive
//      first-fit?
//   2. Given a CATALOGUE of processor types (cheap/slow ... fast/hungry):
//      which mix minimizes the bill of materials at each envelope?
//
//   build/examples/capacity_planning
#include <cstdio>

#include "retask/retask.hpp"

int main() {
  using namespace retask;

  // ---------------------------------------------------------------- Q1
  std::printf("Q1: single type — processors needed per energy envelope\n");
  std::printf("    %-10s %-10s %-10s %-12s\n", "envelope", "first-fit", "balanced", "LB procs");
  {
    const PolynomialPowerModel cpu = PolynomialPowerModel::xscale();
    FrameWorkloadConfig gen;
    gen.task_count = 18;
    gen.target_load = 3.4;  // 3.4 processors' worth of work at top speed
    gen.resolution = 1700.0;
    Rng rng(77);
    AllocationProblem problem{generate_frame_tasks(gen, rng),
                              EnergyCurve(cpu, 1.0, IdleDiscipline::kDormantEnable),
                              1.0 / 1700.0, 1.0, 1.0};
    double e_min = 0.0;
    for (const FrameTask& task : problem.tasks.tasks()) {
      e_min += problem.curve.energy(problem.work_per_cycle * static_cast<double>(task.cycles));
    }
    for (const double factor : {1.05, 1.3, 1.8, 3.0}) {
      problem.energy_budget = e_min * factor;
      const AllocationResult ff = allocate_first_fit(problem);
      const AllocationResult bal = allocate_balanced(problem);
      std::printf("    %-10.2f %-10d %-10d %-12d\n", factor, ff.processors, bal.processors,
                  allocation_lower_bound(problem));
    }
  }

  // ---------------------------------------------------------------- Q2
  std::printf("\nQ2: heterogeneous catalogue — cheapest mix per envelope\n");
  {
    HetAllocationProblem problem;
    problem.window = 100.0;
    problem.types = {
        {"eco", 1.0, TablePowerModel({{0.2, 0.03}, {0.4, 0.18}}, 0.0)},
        {"mid", 2.0, TablePowerModel({{0.35, 0.1}, {0.7, 0.6}}, 0.0)},
        {"turbo", 4.0, TablePowerModel({{0.5, 0.25}, {1.0, 1.7}}, 0.0)},
    };
    Rng rng(99);
    for (int i = 0; i < 16; ++i) {
      const Cycles base = rng.uniform_int(8, 34);
      HetTask task;
      task.id = i;
      for (std::size_t j = 0; j < problem.types.size(); ++j) {
        task.cycles_per_type.push_back(std::max<Cycles>(
            1, static_cast<Cycles>(static_cast<double>(base) * rng.uniform(0.85, 1.1))));
      }
      problem.tasks.push_back(std::move(task));
    }
    // Energy range across single-task options.
    double e_min = 0.0;
    problem.energy_budget = 1.0;
    for (std::size_t i = 0; i < problem.tasks.size(); ++i) {
      double lo = 1e300;
      for (std::size_t j = 0; j < problem.types.size(); ++j) {
        for (std::size_t l = 0; l < problem.types[j].model.available_speeds().size(); ++l) {
          if (het_utilization(problem, i, j, l) <= 1.0) {
            lo = std::min(lo, het_energy(problem, i, j, l));
          }
        }
      }
      e_min += lo;
    }
    std::printf("    %-10s %-8s %-22s %-8s\n", "envelope", "cost", "mix (eco/mid/turbo)", "LB");
    for (const double factor : {1.05, 1.5, 3.0, 10.0}) {
      problem.energy_budget = e_min * factor;
      const HetAllocationResult plan = allocate_het_lagrangian(problem);
      check_het_allocation(problem, plan);
      std::printf("    %-10.2f %-8.1f %d / %d / %-14d %-8.2f\n", factor, plan.cost,
                  plan.processors_per_type[0], plan.processors_per_type[1],
                  plan.processors_per_type[2], het_cost_lower_bound(problem));
    }
  }
  std::printf("\n(Loose envelopes buy cheap slow parts; tight ones force the efficient\n"
              "operating points wherever they live in the catalogue.)\n");
  return 0;
}
