// Boundary and degenerate-input tests across the stack: exact capacity
// fits, single-task instances, extreme penalty ranges, zero-capacity
// processors, and numerical extremes the sweeps do not reach.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "retask/retask.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

TEST(EdgeCases, TaskExactlyFillsTheProcessor) {
  // One task of exactly capacity cycles: acceptance runs at smax for the
  // whole window.
  const FrameTaskSet tasks({{0, 100, 10.0}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem p(tasks, std::move(curve), 0.01, 1);
  EXPECT_EQ(p.cycle_capacity(), 100);
  const RejectionSolution s = ExactDpSolver().solve(p);
  EXPECT_EQ(s.accepted_count(), 1u);
  EXPECT_NEAR(s.energy, 0.08 + 1.52, 1e-6);  // P(1) for one time unit
}

TEST(EdgeCases, TaskOneCycleOverCapacityMustBeRejected) {
  const FrameTaskSet tasks({{0, 101, 1e9}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem p(tasks, std::move(curve), 0.01, 1);
  const RejectionSolution s = ExactDpSolver().solve(p);
  EXPECT_EQ(s.accepted_count(), 0u);
  EXPECT_DOUBLE_EQ(s.penalty, 1e9);
}

TEST(EdgeCases, SingleTaskInstanceAcrossSolvers) {
  const FrameTaskSet tasks({{0, 60, 0.3}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem p(tasks, std::move(curve), 0.01, 1);
  const double expected = std::min(0.3, p.energy_of_cycles(60));
  for (const auto& solver : standard_uniproc_lineup()) {
    if (solver->name() == "RAND" || solver->name() == "ALL-ACCEPT") continue;
    EXPECT_NEAR(solver->solve(p).objective(), expected, 1e-9) << solver->name();
  }
}

TEST(EdgeCases, ExtremePenaltyMagnitudeSpread) {
  // Penalties spanning 12 orders of magnitude: the FPTAS scaling must not
  // lose the small ones or overflow on the big ones.
  std::vector<FrameTask> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back({i, 20 + 3 * i, std::pow(10.0, i - 6)});  // 1e-6 .. 1e1
  }
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem p(FrameTaskSet(std::move(tasks)), std::move(curve), 0.01, 1);
  const double opt = ExactDpSolver().solve(p).objective();
  const double approx = FptasSolver(0.1).solve(p).objective();
  EXPECT_LE(approx, opt * 1.1 + 1e-12);
  EXPECT_GE(approx, opt - 1e-12);
}

TEST(EdgeCases, AllTasksIdenticalTiesAreStable) {
  std::vector<FrameTask> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back({i, 25, 0.2});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem p(FrameTaskSet(std::move(tasks)), std::move(curve), 0.01, 1);
  const RejectionSolution a = ExactDpSolver().solve(p);
  const RejectionSolution b = ExactDpSolver().solve(p);
  EXPECT_EQ(a.accepted, b.accepted);  // deterministic tie-breaking
  EXPECT_NEAR(a.objective(), ExhaustiveSolver().solve(p).objective(), 1e-9);
}

TEST(EdgeCases, TinyWindowHugeResolution) {
  // Millisecond-scale frames with fine cycle resolution: no precision cliff.
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  EnergyCurve curve(model, 1e-3, IdleDiscipline::kDormantEnable);
  const double kappa = 1e-3 / 1e6;  // one million cycles per frame at smax
  std::vector<FrameTask> tasks;
  for (int i = 0; i < 6; ++i) tasks.push_back({i, 300000 + 1000 * i, 1e-4});
  const RejectionProblem p(FrameTaskSet(std::move(tasks)), std::move(curve), kappa, 1);
  const RejectionSolution greedy = DensityGreedySolver().solve(p);
  check_solution(p, greedy);
  EXPECT_LE(p.accepted_cycles(greedy.accepted), p.cycle_capacity());
}

TEST(EdgeCases, ZeroPenaltyTasksNeverHurtTheObjective) {
  // Mixing zero-penalty tasks in cannot raise the optimal objective.
  const RejectionProblem base = test::small_instance(3, 8, 1.2);
  std::vector<FrameTask> tasks = base.tasks().tasks();
  const double before = ExactDpSolver().solve(base).objective();
  tasks.push_back({100, 50, 0.0});
  tasks.push_back({101, 70, 0.0});
  const RejectionProblem bigger(FrameTaskSet(std::move(tasks)), base.curve(),
                                base.work_per_cycle(), 1);
  const double after = ExactDpSolver().solve(bigger).objective();
  EXPECT_NEAR(after, before, 1e-9);
}

TEST(EdgeCases, ManyProcessorsFewTasks) {
  // More processors than tasks: every accepted task can run alone; the
  // multiprocessor optimum equals the sum of per-task accept/reject calls.
  const FrameTaskSet tasks({{0, 60, 0.3}, {1, 80, 0.1}, {2, 40, 5.0}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem p(tasks, std::move(curve), 0.01, 8);
  double expected = 0.0;
  for (const FrameTask& task : tasks.tasks()) {
    expected += std::min(task.penalty, p.energy_of_cycles(task.cycles));
  }
  EXPECT_NEAR(MultiProcExhaustiveSolver().solve(p).objective(), expected, 1e-9);
  EXPECT_NEAR(MultiProcGreedySolver().solve(p).objective(), expected, 1e-9);
}

TEST(EdgeCases, PeriodicSingleJobHyperPeriod) {
  // All periods equal: the hyper-period is one period, one job per task.
  // Penalties above the hyper-period energy (~60 J total) so both stay.
  const PeriodicTaskSet tasks({{0, 30, 100, 50.0}, {1, 40, 100, 50.0}});
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const PeriodicRejectionAdapter adapter(tasks, model, IdleDiscipline::kDormantEnable);
  EXPECT_DOUBLE_EQ(adapter.hyper_period(), 100.0);
  EXPECT_EQ(adapter.frame_problem().tasks()[0].cycles, 30);
  const RejectionSolution s = ExactDpSolver().solve(adapter.frame_problem());
  EXPECT_EQ(s.accepted_count(), 2u);  // U = 0.7, E ~ 60 < 100 penalty
}

TEST(EdgeCases, CurveAtMinSpeedBoundary) {
  // min_speed > 0 with workload demanding less than min speed: the
  // processor runs at min speed and idles; energy must use min speed.
  const PolynomialPowerModel model(0.0, 1.0, 3.0, 0.5, 1.0);
  const EnergyCurve disable(model, 1.0, IdleDiscipline::kDormantDisable);
  // W = 0.1: busy = 0.1/0.5 = 0.2 at P(0.5) = 0.125; idle 0.8 at Pind 0.
  EXPECT_NEAR(disable.energy(0.1), 0.2 * 0.125, 1e-9);
}

TEST(EdgeCases, OnlineJobArrivingAtItsDeadlineHorizon) {
  // A job arriving with minimal slack exactly equal to its top-speed
  // execution time: admissible, runs flat out.
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  OnlineSimConfig config;
  config.work_per_cycle = 0.001;
  const std::vector<AperiodicJob> jobs{{0, 1.0, 500, 1.5, 3.0}};  // density exactly 1.0
  const OnlineSimResult r = simulate_online(jobs, config, model);
  EXPECT_EQ(r.admitted, 1);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_NEAR(r.max_speed_used, 1.0, 1e-9);
}

TEST(EdgeCases, BudgetedExactlyAtAcceptAllEnergy) {
  const FrameTaskSet tasks({{0, 30, 1.0}, {1, 40, 2.0}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem base(tasks, curve, 0.01, 1);
  const double e_all = base.energy_of_cycles(70);
  const BudgetedProblem p{tasks, curve, 0.01, e_all * (1.0 + 1e-9)};
  EXPECT_NEAR(solve_budgeted_dp(p).value, 3.0, 1e-12);  // everything fits
}

}  // namespace
}  // namespace retask
