// Tests for the thread-local scratch arenas (cache/scratch.hpp): repeated
// solves on one thread must reuse the high-water-mark buffers without
// reallocating, interleaving solver families must stay safe, and arena
// reuse must never leak state from one solve into the next.
#include "retask/cache/scratch.hpp"

#include <gtest/gtest.h>

#include "retask/core/exact_dp.hpp"
#include "retask/core/fptas.hpp"
#include "retask/core/greedy.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

TEST(ScratchArena, ExactDpReusesBuffersAcrossSolves) {
  const RejectionProblem problem = test::small_instance(11, 12, 1.6);
  const ExactDpSolver solver;
  const RejectionSolution first = solver.solve(problem);

  DpScratch& scratch = exact_dp_scratch();
  const double* value_data = scratch.value.data();
  const std::size_t value_capacity = scratch.value.capacity();
  ASSERT_GT(value_capacity, 0u);

  // A same-size solve must not touch the allocator: the value row is
  // assign()ed in place and BitMatrix::reset reuses its word storage.
  const RejectionSolution second = solver.solve(problem);
  EXPECT_EQ(scratch.value.data(), value_data);
  EXPECT_EQ(scratch.value.capacity(), value_capacity);
  EXPECT_EQ(second.accepted, first.accepted);
  EXPECT_EQ(second.objective(), first.objective());
}

TEST(ScratchArena, FptasReusesBuffersAndGrowsMonotonically) {
  const FptasSolver solver(0.1);
  const RejectionSolution small_first = solver.solve(test::small_instance(3, 8, 1.4));
  FptasScratch& scratch = fptas_scratch();
  const std::size_t small_capacity = scratch.rej.capacity();
  ASSERT_GT(small_capacity, 0u);

  // A larger instance grows the arena; returning to the small instance then
  // reuses the grown buffers without reallocating.
  solver.solve(test::small_instance(4, 16, 1.8));
  const std::size_t grown_capacity = scratch.rej.capacity();
  EXPECT_GE(grown_capacity, small_capacity);
  const std::int64_t* rej_data = scratch.rej.data();

  const RejectionSolution small_again = solver.solve(test::small_instance(3, 8, 1.4));
  EXPECT_EQ(scratch.rej.data(), rej_data);
  EXPECT_EQ(scratch.rej.capacity(), grown_capacity);
  // Arena reuse (including the round-local energy memo, which must be
  // cleared per solve) leaves the answer bit-identical.
  EXPECT_EQ(small_again.accepted, small_first.accepted);
  EXPECT_EQ(small_again.objective(), small_first.objective());
}

TEST(ScratchArena, GreedyReusesDeltaRow) {
  const RejectionProblem problem = test::small_instance(7, 14, 1.7);
  const MarginalGreedySolver solver;
  const RejectionSolution first = solver.solve(problem);
  GreedyScratch& scratch = greedy_scratch();
  const double* delta_data = scratch.delta.data();
  ASSERT_GT(scratch.delta.capacity(), 0u);

  const RejectionSolution second = solver.solve(problem);
  EXPECT_EQ(scratch.delta.data(), delta_data);
  EXPECT_EQ(second.accepted, first.accepted);
  EXPECT_EQ(second.objective(), first.objective());
}

TEST(ScratchArena, InterleavedSolverFamiliesStayIndependent) {
  // Each family owns a distinct arena, so alternating solvers on one thread
  // must reproduce the isolated runs bit for bit.
  const RejectionProblem a = test::small_instance(21, 10, 1.5);
  const RejectionProblem b = test::small_instance(22, 12, 1.9);
  const ExactDpSolver exact;
  const FptasSolver fptas(0.2);
  const MarginalGreedySolver greedy;

  const double exact_a = exact.solve(a).objective();
  const double fptas_b = fptas.solve(b).objective();
  const double greedy_a = greedy.solve(a).objective();

  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(exact.solve(a).objective(), exact_a);
    EXPECT_EQ(fptas.solve(b).objective(), fptas_b);
    EXPECT_EQ(greedy.solve(a).objective(), greedy_a);
  }
}

}  // namespace
}  // namespace retask
