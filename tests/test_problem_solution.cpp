// Tests for the problem container and the solution validator.
#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/core/problem.hpp"
#include "retask/core/solution.hpp"
#include "retask/power/polynomial_power.hpp"

namespace retask {
namespace {

RejectionProblem small_problem(int processors = 1) {
  // Capacity: smax * D / kappa = 1 * 1 / 0.01 = 100 cycles per processor.
  const FrameTaskSet tasks({{0, 40, 1.0}, {1, 50, 2.0}, {2, 30, 0.5}});
  EnergyCurve curve(PolynomialPowerModel::cubic(), 1.0, IdleDiscipline::kDormantEnable);
  return RejectionProblem(tasks, std::move(curve), 0.01, processors);
}

TEST(Problem, BasicAccessors) {
  const RejectionProblem p = small_problem();
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.cycle_capacity(), 100);
  EXPECT_DOUBLE_EQ(p.work_of(0), 0.4);
  EXPECT_DOUBLE_EQ(p.total_work(), 1.2);
  EXPECT_THROW(p.work_of(5), Error);
}

TEST(Problem, RejectedPenaltyAndAcceptedCycles) {
  const RejectionProblem p = small_problem();
  EXPECT_DOUBLE_EQ(p.rejected_penalty({true, true, true}), 0.0);
  EXPECT_DOUBLE_EQ(p.rejected_penalty({false, true, false}), 1.5);
  EXPECT_EQ(p.accepted_cycles({true, false, true}), 70);
  EXPECT_THROW(p.rejected_penalty({true}), Error);
}

TEST(Problem, SingleProcessorFeasibilityAndObjective) {
  const RejectionProblem p = small_problem();
  EXPECT_FALSE(p.feasible_on_one({true, true, true}));   // 120 > 100
  EXPECT_TRUE(p.feasible_on_one({true, true, false}));   // 90 <= 100
  // Objective: E(0.9 work) + penalty(0.5) = 0.9^3 + 0.5.
  EXPECT_NEAR(p.objective_on_one({true, true, false}), 0.9 * 0.9 * 0.9 + 0.5, 1e-6);
  EXPECT_THROW(p.objective_on_one({true, true, true}), Error);
}

TEST(Problem, EnergyOfCyclesMatchesCurve) {
  const RejectionProblem p = small_problem();
  EXPECT_NEAR(p.energy_of_cycles(100), 1.0, 1e-6);  // full load at speed 1
  EXPECT_NEAR(p.energy_of_cycles(0), 0.0, 1e-12);
  EXPECT_THROW(p.energy_of_cycles(-1), Error);
}

TEST(Problem, MultiProcHelpersGuarded) {
  const RejectionProblem p = small_problem(2);
  EXPECT_THROW(p.feasible_on_one({true, true, true}), Error);
  EXPECT_THROW(p.objective_on_one({true, true, true}), Error);
}

TEST(Problem, RejectsBadConstruction) {
  const FrameTaskSet tasks({{0, 10, 1.0}});
  EnergyCurve curve(PolynomialPowerModel::cubic(), 1.0, IdleDiscipline::kDormantEnable);
  EXPECT_THROW(RejectionProblem(tasks, curve, 0.0, 1), Error);
  EXPECT_THROW(RejectionProblem(tasks, curve, 0.01, 0), Error);
}

TEST(Solution, MakeSolutionComputesEnergyAndPenalty) {
  const RejectionProblem p = small_problem();
  const RejectionSolution s = make_solution_on_one(p, {true, false, true});
  EXPECT_NEAR(s.penalty, 2.0, 1e-12);
  EXPECT_NEAR(s.energy, 0.7 * 0.7 * 0.7, 1e-6);
  EXPECT_NEAR(s.objective(), s.energy + s.penalty, 1e-12);
  EXPECT_EQ(s.accepted_count(), 2u);
  EXPECT_NEAR(s.acceptance_ratio(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(s.processor_of[1], -1);
}

TEST(Solution, MakeSolutionRejectsOverload) {
  const RejectionProblem p = small_problem();
  EXPECT_THROW(make_solution_on_one(p, {true, true, true}), Error);
}

TEST(Solution, MakeSolutionRejectsInconsistentBinding) {
  const RejectionProblem p = small_problem();
  // Rejected task bound to a processor.
  EXPECT_THROW(make_solution(p, {false, true, false}, {0, 0, -1}), Error);
  // Accepted task without processor.
  EXPECT_THROW(make_solution(p, {true, false, false}, {-1, -1, -1}), Error);
  // Processor index out of range.
  EXPECT_THROW(make_solution(p, {true, false, false}, {3, -1, -1}), Error);
  // Size mismatches.
  EXPECT_THROW(make_solution(p, {true, false}, {0, -1, -1}), Error);
}

TEST(Solution, MultiProcessorLoadsAndEnergy) {
  const RejectionProblem p = small_problem(2);
  const RejectionSolution s = make_solution(p, {true, true, true}, {0, 1, 0});
  const auto loads = processor_loads(p, s);
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0], 70);
  EXPECT_EQ(loads[1], 50);
  EXPECT_NEAR(s.energy, 0.7 * 0.7 * 0.7 + 0.5 * 0.5 * 0.5, 1e-6);
}

TEST(Solution, CheckSolutionDetectsTampering) {
  const RejectionProblem p = small_problem();
  RejectionSolution s = make_solution_on_one(p, {true, false, true});
  EXPECT_NO_THROW(check_solution(p, s));
  s.energy *= 2.0;
  EXPECT_THROW(check_solution(p, s), Error);
}

TEST(Solution, EmptyInstanceAcceptanceRatioIsOne) {
  const RejectionSolution s;
  EXPECT_DOUBLE_EQ(s.acceptance_ratio(), 1.0);
}

}  // namespace
}  // namespace retask
