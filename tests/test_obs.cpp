// Observability layer: metric registries (determinism across job counts,
// merge algebra, scoped attribution), trace ring + Chrome JSON export, and
// the bundled JSON parser. The determinism tests are the contract the
// ROADMAP's "bit-identical at any job count" claim extends to metrics.
#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "retask/batch/lockstep.hpp"
#include "retask/cache/sweep.hpp"
#include "retask/common/error.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/fptas.hpp"
#include "retask/core/greedy.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/exp/harness.hpp"
#include "retask/obs/json.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/obs/trace.hpp"
#include "retask/serve/delta_solver.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

using obs::MetricKind;
using obs::MetricRow;
using obs::Registry;

TEST(Metrics, InterningIsStableAndPerKind) {
  const obs::MetricId a = obs::intern_metric(MetricKind::kCounter, "test_obs.alpha");
  const obs::MetricId a2 = obs::intern_metric(MetricKind::kCounter, "test_obs.alpha");
  EXPECT_EQ(a, a2);
  // The same name under another kind is a distinct metric space.
  const obs::MetricId g = obs::intern_metric(MetricKind::kGauge, "test_obs.alpha");
  const std::vector<std::string> counters = obs::metric_names(MetricKind::kCounter);
  const std::vector<std::string> gauges = obs::metric_names(MetricKind::kGauge);
  ASSERT_LT(a, counters.size());
  ASSERT_LT(g, gauges.size());
  EXPECT_EQ(counters[a], "test_obs.alpha");
  EXPECT_EQ(gauges[g], "test_obs.alpha");
}

TEST(Metrics, RegistryMergeIsCommutativeAndAssociative) {
  const obs::MetricId c = obs::intern_metric(MetricKind::kCounter, "test_obs.merge_c");
  const obs::MetricId g = obs::intern_metric(MetricKind::kGauge, "test_obs.merge_g");
  const obs::MetricId h = obs::intern_metric(MetricKind::kHistogram, "test_obs.merge_h");

  Registry a, b, c3;
  a.add(c, 3);
  a.gauge_max(g, 2.5);
  a.record(h, 1.0);
  b.add(c, 5);
  b.gauge_max(g, 7.25);
  b.record(h, 100.0);
  c3.record(h, 0.25);

  // (a + b) + c  vs  c + (b + a): same multiset, any order.
  Registry left = a;
  left.merge(b);
  left.merge(c3);
  Registry right = c3;
  Registry ba = b;
  ba.merge(a);
  right.merge(ba);

  const auto rows_of = [](const Registry& r) {
    std::ostringstream os;
    for (const MetricRow& row : obs::report_rows(r)) os << row.name << "=" << row.value << ";";
    return os.str();
  };
  EXPECT_EQ(rows_of(left), rows_of(right));
  EXPECT_EQ(left.counter(c), 8u);
  EXPECT_EQ(left.gauge(g), 7.25);
  ASSERT_NE(left.histogram(h), nullptr);
  EXPECT_EQ(left.histogram(h)->count, 3u);
  EXPECT_EQ(left.histogram(h)->min, 0.25);
  EXPECT_EQ(left.histogram(h)->max, 100.0);
}

TEST(Metrics, MergeDoesNotInventValuesFromEmptyRegistries) {
  Registry empty, target;
  target.merge(empty);
  EXPECT_TRUE(target.empty());
  const obs::MetricId c = obs::intern_metric(MetricKind::kCounter, "test_obs.empty_c");
  target.add(c, 1);
  Registry copy = target;
  copy.merge(empty);
  EXPECT_EQ(obs::report_rows(copy).size(), obs::report_rows(target).size());
}

TEST(Metrics, ClearEmptiesTheRegistry) {
  Registry r;
  r.add(obs::intern_metric(MetricKind::kCounter, "test_obs.clear_c"), 4);
  r.record(obs::intern_metric(MetricKind::kHistogram, "test_obs.clear_h"), 2.0);
  EXPECT_FALSE(r.empty());
  r.clear();
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(obs::report_rows(r).empty());
}

TEST(Metrics, ReportRowsAreSortedAndExpandHistograms) {
  Registry r;
  r.record(obs::intern_metric(MetricKind::kHistogram, "test_obs.zz_hist"), 4.0);
  r.add(obs::intern_metric(MetricKind::kCounter, "test_obs.aa_count"), 1);
  r.record_time(obs::intern_metric(MetricKind::kTimer, "test_obs.bb_ns"), 123.0);

  const std::vector<MetricRow> with_timers = obs::report_rows(r, /*include_timers=*/true);
  const std::vector<MetricRow> without = obs::report_rows(r, /*include_timers=*/false);
  ASSERT_GT(with_timers.size(), without.size());
  for (std::size_t i = 1; i < with_timers.size(); ++i) {
    EXPECT_LT(with_timers[i - 1].name, with_timers[i].name);
  }
  // Histogram expands to .count/.min/.max; the timer is gone without timers.
  std::vector<std::string> names;
  for (const MetricRow& row : without) names.push_back(row.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "test_obs.zz_hist.count"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "test_obs.zz_hist.min"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "test_obs.zz_hist.max"), names.end());
  for (const std::string& name : names) {
    EXPECT_EQ(name.find("test_obs.bb_ns"), std::string::npos) << name;
  }
}

TEST(Metrics, ActiveScopeAttributesAndFoldsIntoParent) {
  const obs::MetricId c = obs::intern_metric(MetricKind::kCounter, "test_obs.scope_c");
  Registry outer;
  obs::ActiveScope outer_scope(outer);
  Registry inner;
  {
    obs::ActiveScope scope(inner);
    obs::active().add(c, 2);
  }
  EXPECT_EQ(inner.counter(c), 2u);
  EXPECT_EQ(outer.counter(c), 2u);  // folded on scope exit

  Registry isolated;
  {
    obs::ActiveScope scope(isolated, /*fold_into_parent=*/false);
    obs::active().add(c, 5);
  }
  EXPECT_EQ(isolated.counter(c), 5u);
  EXPECT_EQ(outer.counter(c), 2u);  // unchanged
}

#if RETASK_OBS_ENABLED

// The harness's metrics registries must be bit-identical at any job count:
// same multiset of per-cell registries, merged in instance order.
TEST(Metrics, HarnessMetricsAreBitIdenticalAcrossJobCounts) {
  const auto run_with_jobs = [](int jobs) {
    const ProblemFactory factory = [](std::uint64_t seed) {
      return test::small_instance(seed, 10, 1.4);
    };
    std::vector<std::unique_ptr<RejectionSolver>> lineup;
    lineup.push_back(std::make_unique<DensityGreedySolver>());
    lineup.push_back(std::make_unique<MarginalGreedySolver>());
    lineup.push_back(std::make_unique<FptasSolver>(0.1));
    lineup.push_back(std::make_unique<ExactDpSolver>());
    const std::vector<AlgoStats> stats = run_comparison(
        factory, lineup, [](const RejectionProblem& p) { return fractional_lower_bound(p); },
        /*instances=*/12, /*seed0=*/1, jobs);
    std::ostringstream os;
    for (const AlgoStats& s : stats) {
      os << s.name << "\n";
      for (const MetricRow& row : obs::report_rows(s.metrics, /*include_timers=*/false)) {
        os << "  " << row.name << "=" << row.value << "\n";
      }
    }
    return os.str();
  };

  const std::string sequential = run_with_jobs(1);
  const std::string parallel = run_with_jobs(8);
  EXPECT_FALSE(sequential.empty());
  // The report must actually contain solver metrics, not just be
  // vacuously equal.
  EXPECT_NE(sequential.find("exact_dp.cells_touched"), std::string::npos);
  EXPECT_NE(sequential.find("fptas.guess_rounds"), std::string::npos);
  EXPECT_NE(sequential.find("harness.tasks_rejected"), std::string::npos);
  EXPECT_EQ(sequential, parallel);
}

TEST(Metrics, SolverRunPopulatesScopedRegistry) {
  const RejectionProblem problem = test::small_instance(3, 8, 1.5);
  Registry metrics;
  {
    obs::ActiveScope scope(metrics);
    ExactDpSolver().solve(problem);
  }
  const obs::MetricId solves = obs::intern_metric(MetricKind::kCounter, "exact_dp.solves");
  const obs::MetricId touched =
      obs::intern_metric(MetricKind::kCounter, "exact_dp.cells_touched");
  EXPECT_EQ(metrics.counter(solves), 1u);
  EXPECT_GT(metrics.counter(touched), 0u);
}

// Fused-sweep counter parity: the fused cross-instance path must report the
// same fill/warm-start work as the per-instance warm sweeps it replaces
// (exact_dp.solves, dp.warm_starts), adding only its own batch.* counters;
// with the knob off the fused counters stay at zero and every instance is a
// counted fallback.
TEST(Metrics, FusedSweepCountersMirrorWarmSweepsAndVanishWhenOff) {
  const std::vector<double> factors{0.5, 0.8, 1.0};
  std::vector<RejectionProblem> fleet;
  std::vector<std::vector<RejectionProblem>> sweeps;
  std::vector<std::vector<const RejectionProblem*>> grids;
  for (std::uint64_t seed = 41; seed < 45; ++seed) {
    fleet.push_back(test::small_instance(seed, 10, 1.5));
  }
  for (const RejectionProblem& instance : fleet) {
    sweeps.push_back(make_capacity_sweep(instance, factors));
    grids.emplace_back();
    for (const RejectionProblem& point : sweeps.back()) grids.back().push_back(&point);
  }
  const obs::MetricId solves = obs::intern_metric(MetricKind::kCounter, "exact_dp.solves");
  const obs::MetricId warm_starts = obs::intern_metric(MetricKind::kCounter, "dp.warm_starts");
  const obs::MetricId fused_points =
      obs::intern_metric(MetricKind::kCounter, "batch.fused_sweep_points");
  const obs::MetricId scan_words =
      obs::intern_metric(MetricKind::kCounter, "batch.select_scan_words");
  const obs::MetricId fallbacks = obs::intern_metric(MetricKind::kCounter, "batch.sweep_fallbacks");

  const ExactDpSolver exact;
  Registry solo;
  {
    obs::ActiveScope scope(solo);
    for (const auto& grid : grids) exact.solve_sweep(grid);
  }
  EXPECT_EQ(solo.counter(solves), fleet.size());
  EXPECT_EQ(solo.counter(warm_starts), fleet.size() * (factors.size() - 1));
  EXPECT_EQ(solo.counter(fused_points), 0u);

  const bool knob = fused_sweep_enabled();
  const BatchRejectionSolver batched(exact, BatchConfig{4});
  Registry fused;
  set_fused_sweep_enabled(true);
  {
    obs::ActiveScope scope(fused);
    batched.solve_sweep_batch(grids);
  }
  // Same fill work as the warm sweeps, plus the fused-path accounting.
  EXPECT_EQ(fused.counter(solves), solo.counter(solves));
  EXPECT_EQ(fused.counter(warm_starts), solo.counter(warm_starts));
  EXPECT_EQ(fused.counter(fused_points), fleet.size() * factors.size());
  EXPECT_GT(fused.counter(scan_words), 0u);
  EXPECT_EQ(fused.counter(fallbacks), 0u);

  Registry off;
  set_fused_sweep_enabled(false);
  {
    obs::ActiveScope scope(off);
    batched.solve_sweep_batch(grids);
  }
  set_fused_sweep_enabled(knob);
  EXPECT_EQ(off.counter(fused_points), 0u);
  EXPECT_EQ(off.counter(scan_words), 0u);
  EXPECT_EQ(off.counter(fallbacks), fleet.size());
  // The fallback is exactly the warm per-instance path.
  EXPECT_EQ(off.counter(solves), solo.counter(solves));
  EXPECT_EQ(off.counter(warm_starts), solo.counter(warm_starts));
}

// Table handoff: a lockstep capture adopted into a DeltaSolver counts one
// delta.table_adoptions (and a delta hit), not a cold fall.
TEST(Metrics, TableAdoptionIsCounted) {
  std::vector<RejectionProblem> fleet;
  for (std::uint64_t seed = 61; seed < 65; ++seed) {
    fleet.push_back(test::small_instance(seed, 10, 1.5));
  }
  std::vector<const RejectionProblem*> ptrs;
  for (const RejectionProblem& p : fleet) ptrs.push_back(&p);
  const ExactDpSolver exact;
  LockstepTables tables;
  BatchRejectionSolver(exact, BatchConfig{4}).solve_batch(ptrs, &tables);
  ASSERT_FALSE(tables.exports[0].value.empty());
  std::vector<FrameTask> tasks;
  for (std::size_t i = 0; i < fleet[0].size(); ++i) tasks.push_back(fleet[0].tasks()[i]);

  const obs::MetricId adoptions =
      obs::intern_metric(MetricKind::kCounter, "delta.table_adoptions");
  const obs::MetricId cold_falls = obs::intern_metric(MetricKind::kCounter, "serve.cold_falls");
  Registry metrics;
  {
    obs::ActiveScope scope(metrics);
    DeltaSolver delta(fleet[0].curve(), fleet[0].work_per_cycle());
    delta.adopt_table(tasks, std::move(tables.exports[0]));
  }
  EXPECT_EQ(metrics.counter(adoptions), 1u);
  EXPECT_EQ(metrics.counter(cold_falls), 0u);
}

#else  // !RETASK_OBS_ENABLED

// With RETASK_OBS=OFF the macros vanish: running a solver under a scoped
// registry must record nothing at all.
TEST(Metrics, DisabledBuildRecordsNothing) {
  const RejectionProblem problem = test::small_instance(3, 8, 1.5);
  Registry metrics;
  {
    obs::ActiveScope scope(metrics);
    ExactDpSolver().solve(problem);
    DensityGreedySolver().solve(problem);
  }
  EXPECT_TRUE(metrics.empty());
  EXPECT_TRUE(obs::report_rows(metrics).empty());
}

#endif  // RETASK_OBS_ENABLED

TEST(Trace, DisabledEmitIsDropped) {
  obs::set_trace_enabled(false);
  obs::clear_trace();
  obs::emit_trace("test_obs.dropped", 0, 1);
  { obs::ScopedTrace scope("test_obs.dropped_scope"); }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Trace, ScopedEventsRoundTripThroughChromeJson) {
  obs::set_trace_enabled(true);
  obs::clear_trace();
  {
    obs::ScopedTrace outer("test_obs.outer");
    obs::ScopedTrace inner("test_obs.inner");
  }
  obs::emit_trace("test_obs.manual", 10, 20);
  obs::set_trace_enabled(false);

  ASSERT_EQ(obs::trace_event_count(), 3u);
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const obs::JsonValue doc = obs::parse_json(os.str());
  ASSERT_EQ(doc.type, obs::JsonValue::Type::kObject);
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 3u);
  for (const obs::JsonValue& event : events->as_array()) {
    ASSERT_EQ(event.type, obs::JsonValue::Type::kObject);
    EXPECT_EQ(event.find("ph")->as_string(), "X");
    EXPECT_GE(event.find("dur")->as_number(), 0.0);
    const std::string& name = event.find("name")->as_string();
    EXPECT_TRUE(name == "test_obs.outer" || name == "test_obs.inner" ||
                name == "test_obs.manual")
        << name;
  }
  // Events are sorted by timestamp.
  double last_ts = -1.0;
  for (const obs::JsonValue& event : events->as_array()) {
    EXPECT_GE(event.find("ts")->as_number(), last_ts);
    last_ts = event.find("ts")->as_number();
  }
  obs::clear_trace();
}

TEST(Trace, RingOverwritesOldestWhenFull) {
  obs::set_trace_enabled(true);
  obs::clear_trace();
  obs::set_trace_capacity(4);
  for (std::uint64_t i = 0; i < 10; ++i) obs::emit_trace("test_obs.ring", i, 1);
  EXPECT_EQ(obs::trace_event_count(), 4u);
  const std::vector<obs::TraceEvent> events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The newest 4 of the 10 events survive, in timestamp order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, 6 + i);
  }
  obs::set_trace_capacity(65536);
  obs::set_trace_enabled(false);
  obs::clear_trace();
}

TEST(Json, ParsesTheSubsetTheRepoEmits) {
  const obs::JsonValue doc = obs::parse_json(
      R"({"s":"a\"bé","n":-12.5e1,"t":true,"f":false,"z":null,"arr":[1,2,3],"o":{"k":1}})");
  EXPECT_EQ(doc.find("s")->as_string(), "a\"b\xc3\xa9");
  EXPECT_EQ(doc.find("n")->as_number(), -125.0);
  EXPECT_TRUE(doc.find("t")->as_bool());
  EXPECT_FALSE(doc.find("f")->as_bool());
  EXPECT_TRUE(doc.find("z")->is_null());
  EXPECT_EQ(doc.find("arr")->as_array().size(), 3u);
  EXPECT_EQ(doc.find("o")->find("k")->as_number(), 1.0);
  EXPECT_EQ(doc.find("missing"), nullptr);
  // \uXXXX escapes decode to UTF-8.
  EXPECT_EQ(obs::parse_json("\"\\u00e9A\"").as_string(),
            "\xc3\xa9"
            "A");
}

TEST(Json, DecodesSurrogatePairsToNonBmpCodePoints) {
  // U+1F600 (GRINNING FACE) as its UTF-16 escape pair, per RFC 8259 §7.
  EXPECT_EQ(obs::parse_json("\"\\ud83d\\ude00\"").as_string(), "\xF0\x9F\x98\x80");
  EXPECT_EQ(obs::parse_json("\"a\\uD83D\\uDE00b\"").as_string(),
            "a\xF0\x9F\x98\x80"
            "b");
  // Supplementary-plane boundaries: U+10000 and U+10FFFF.
  EXPECT_EQ(obs::parse_json("\"\\ud800\\udc00\"").as_string(), "\xF0\x90\x80\x80");
  EXPECT_EQ(obs::parse_json("\"\\udbff\\udfff\"").as_string(), "\xF4\x8F\xBF\xBF");
}

TEST(Json, RejectsLoneAndMalformedSurrogates) {
  EXPECT_THROW(obs::parse_json("\"\\ud83d\""), Error);         // lone high at end of string
  EXPECT_THROW(obs::parse_json("\"\\ud83dxx\""), Error);       // high followed by raw text
  EXPECT_THROW(obs::parse_json("\"\\ud83d\\n\""), Error);      // high followed by another escape
  EXPECT_THROW(obs::parse_json("\"\\ud83d\\ud83d\""), Error);  // high followed by high
  EXPECT_THROW(obs::parse_json("\"\\ude00\""), Error);         // lone low
}

TEST(Trace, NonBmpEventNamesRoundTripThroughChromeJson) {
  obs::set_trace_enabled(true);
  obs::clear_trace();
  const std::string name = "test_obs.\xF0\x9F\x98\x80.kernel";  // U+1F600 in the name
  obs::emit_trace(name.c_str(), 5, 9);
  obs::set_trace_enabled(false);
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const obs::JsonValue doc = obs::parse_json(os.str());
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 1u);
  EXPECT_EQ(events->as_array()[0].find("name")->as_string(), name);
  obs::clear_trace();
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(obs::parse_json(""), Error);
  EXPECT_THROW(obs::parse_json("{"), Error);
  EXPECT_THROW(obs::parse_json("{} trailing"), Error);
  EXPECT_THROW(obs::parse_json("[1,2,]"), Error);
  EXPECT_THROW(obs::parse_json(R"({"a" 1})"), Error);
  EXPECT_THROW(obs::parse_json(R"("\x")"), Error);
  EXPECT_THROW(obs::parse_json("01"), Error);
  EXPECT_THROW(obs::parse_json("nul"), Error);
}

TEST(Json, EscapeProducesParseableStrings) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 done";
  const std::string doc = "{\"k\":\"" + obs::json_escape(nasty) + "\"}";
  EXPECT_EQ(obs::parse_json(doc).find("k")->as_string(), nasty);
}

}  // namespace
}  // namespace retask
