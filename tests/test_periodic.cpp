// Tests for the periodic adapter: correctness of the frame reduction and
// job-level verification of solver outputs through the EDF simulator.
#include "retask/core/periodic.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/power/critical_speed.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/sched/edf_sim.hpp"
#include "retask/task/generator.hpp"

namespace retask {
namespace {

PeriodicTaskSet demo_tasks() {
  return PeriodicTaskSet({{0, 30, 100, 0.5},    // rate 0.30
                          {1, 40, 200, 0.8},    // rate 0.20
                          {2, 100, 400, 0.3},   // rate 0.25
                          {3, 120, 200, 0.9}}); // rate 0.60 -> total 1.35
}

TEST(PeriodicAdapter, FrameReductionUsesHyperPeriodWork) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const PeriodicRejectionAdapter adapter(demo_tasks(), model, IdleDiscipline::kDormantEnable);
  EXPECT_DOUBLE_EQ(adapter.hyper_period(), 400.0);
  const RejectionProblem& p = adapter.frame_problem();
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.tasks()[0].cycles, 30 * 4);
  EXPECT_EQ(p.tasks()[1].cycles, 40 * 2);
  EXPECT_EQ(p.tasks()[2].cycles, 100 * 1);
  EXPECT_EQ(p.tasks()[3].cycles, 120 * 2);
  // Penalties pass through unchanged.
  EXPECT_DOUBLE_EQ(p.tasks()[3].penalty, 0.9);
  // Capacity: smax * L = 400 work units = 400 cycles (kappa = 1).
  EXPECT_EQ(p.cycle_capacity(), 400);
}

TEST(PeriodicAdapter, OverloadedSetForcesRejection) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const PeriodicRejectionAdapter adapter(demo_tasks(), model, IdleDiscipline::kDormantEnable);
  // Total rate 1.35 > smax = 1: accepting everything is infeasible.
  const RejectionSolution s = ExactDpSolver().solve(adapter.frame_problem());
  EXPECT_LT(s.accepted_count(), 4u);
  EXPECT_LE(adapter.demanded_rate_on(s, 0), 1.0 + 1e-9);
}

TEST(PeriodicAdapter, DemandedRateMatchesSelection) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const PeriodicRejectionAdapter adapter(demo_tasks(), model, IdleDiscipline::kDormantEnable);
  RejectionSolution s = make_solution_on_one(adapter.frame_problem(),
                                             {true, false, true, false});
  EXPECT_NEAR(adapter.demanded_rate_on(s, 0), 0.30 + 0.25, 1e-12);
  EXPECT_NEAR(adapter.demanded_rate_on(s, 1), 0.0, 1e-12);
}

TEST(PeriodicAdapter, ExecutionSpeedAtLeastDemandAndAtLeastCritical) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const PeriodicRejectionAdapter adapter(demo_tasks(), model, IdleDiscipline::kDormantEnable);
  const RejectionSolution s = make_solution_on_one(adapter.frame_problem(),
                                                   {true, false, false, false});
  const double rate = adapter.demanded_rate_on(s, 0);  // 0.30
  const double speed = adapter.execution_speed_on(s, 0);
  EXPECT_GE(speed, rate - 1e-9);
  EXPECT_GE(speed, critical_speed(model) - 1e-6);  // never below critical
}

TEST(PeriodicAdapter, EmptyProcessorHasZeroSpeed) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const PeriodicRejectionAdapter adapter(demo_tasks(), model, IdleDiscipline::kDormantEnable);
  const RejectionSolution s = make_solution_on_one(adapter.frame_problem(),
                                                   {false, false, false, false});
  EXPECT_DOUBLE_EQ(adapter.execution_speed_on(s, 0), 0.0);
}

TEST(PeriodicAdapter, RejectsEmptyTaskSets) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  EXPECT_THROW(PeriodicRejectionAdapter(PeriodicTaskSet{}, model,
                                        IdleDiscipline::kDormantEnable),
               Error);
}

TEST(PeriodicPipeline, SolverOutputPassesEdfSimulation) {
  // End-to-end: generate, reduce, solve, then re-execute with the EDF
  // simulator at the adapter's execution speed. No deadline may be missed
  // and the busy-time energy must match the analytic claim.
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    PeriodicWorkloadConfig config;
    config.task_count = 8;
    config.total_rate = 1.5;  // overloaded: rejections required
    config.penalty_scale = 0.5;
    config.energy_per_cycle_ref = model.energy_per_cycle(1.0);
    Rng rng(seed);
    const PeriodicTaskSet tasks = generate_periodic_tasks(config, rng);

    const PeriodicRejectionAdapter adapter(tasks, model, IdleDiscipline::kDormantEnable);
    const RejectionSolution s = ExactDpSolver().solve(adapter.frame_problem());

    const double speed = adapter.execution_speed_on(s, 0);
    if (speed == 0.0) continue;  // everything rejected: trivially schedulable
    EdfSimConfig sim;
    sim.speed = speed;
    sim.work_per_cycle = 1.0;
    const EdfSimResult r = simulate_edf(tasks, s.accepted, sim,
                                        adapter.frame_problem().curve());
    EXPECT_EQ(r.deadline_misses, 0) << "seed " << seed;
    // The simulator's energy can only match the analytic curve when the
    // chosen speed is the curve's optimum; it must never be lower.
    EXPECT_GE(r.energy, s.energy - 1e-6 * std::max(1.0, s.energy)) << "seed " << seed;
  }
}

TEST(PeriodicPipeline, AnalyticEnergyMatchesSimulatorAtCurveSpeed) {
  // Single accepted task at a rate above critical speed: the curve runs at
  // exactly the demanded rate and the simulator must reproduce the energy.
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  // Rate 0.6 > s_crit; penalty above the hyper-period energy (~40.8) so the
  // optimum accepts.
  const PeriodicTaskSet tasks({{0, 60, 100, 100.0}});
  const PeriodicRejectionAdapter adapter(tasks, model, IdleDiscipline::kDormantEnable);
  const RejectionSolution s = ExactDpSolver().solve(adapter.frame_problem());
  ASSERT_EQ(s.accepted_count(), 1u);
  const double speed = adapter.execution_speed_on(s, 0);
  EXPECT_NEAR(speed, 0.6, 1e-6);
  const EdfSimResult r =
      simulate_edf(tasks, s.accepted, {speed, 1.0, 0.0}, adapter.frame_problem().curve());
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_NEAR(r.energy, s.energy, 1e-6 * s.energy);
}

}  // namespace
}  // namespace retask
