// Tests for the multiprocessor solvers: validity, optimality gap against the
// exhaustive optimum on small instances, dominance over the RAND baseline on
// average, and the lower-bound sandwich.
#include "retask/core/multiproc.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/core/exhaustive.hpp"
#include "retask/core/lower_bound.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

TEST(MultiProcLtf, ProducesValidSolutions) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 12, 2.6, 1.0, 3);
    const RejectionSolution s = MultiProcLtfRejectSolver().solve(p);
    check_solution(p, s);
    for (const Cycles load : processor_loads(p, s)) {
      EXPECT_LE(load, p.cycle_capacity());
    }
  }
}

TEST(MultiProcLtf, UsesAllProcessorsUnderLoad) {
  const RejectionProblem p = test::small_instance(3, 12, 2.4, 2.0, 3);
  const RejectionSolution s = MultiProcLtfRejectSolver().solve(p);
  const auto loads = processor_loads(p, s);
  for (const Cycles load : loads) EXPECT_GT(load, 0);
}

TEST(MultiProcGreedy, ProducesValidSolutions) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 12, 2.6, 1.0, 3);
    check_solution(p, MultiProcGreedySolver().solve(p));
  }
}

TEST(MultiProcRand, FeasibleEvenUnderHeavyOverload) {
  const RejectionProblem p = test::small_instance(5, 16, 5.0, 1.0, 2);
  const RejectionSolution s = MultiProcRandSolver().solve(p);
  check_solution(p, s);
  EXPECT_LT(s.accepted_count(), p.size());
}

TEST(MultiProcExhaustive, MatchesUniprocessorExhaustiveWhenMIsOne) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 9, 1.6);
    const double a = MultiProcExhaustiveSolver().solve(p).objective();
    const double b = ExhaustiveSolver().solve(p).objective();
    EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, b)) << "seed " << seed;
  }
}

TEST(MultiProcHeuristics, SandwichedBetweenBoundAndBaseline) {
  // LB <= OPT <= heuristics on every instance; heuristics <= RAND on sums.
  const MultiProcExhaustiveSolver opt;
  const MultiProcLtfRejectSolver ltf;
  const MultiProcGreedySolver greedy;
  const MultiProcRandSolver rnd;
  double sum_ltf = 0.0;
  double sum_greedy = 0.0;
  double sum_rand = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 8, 1.8, 1.0, 2);
    const double lb = fractional_lower_bound(p);
    const double o = opt.solve(p).objective();
    const double l = ltf.solve(p).objective();
    const double g = greedy.solve(p).objective();
    const double r = rnd.solve(p).objective();
    EXPECT_LE(lb, o + 1e-6 * std::max(1.0, o)) << "seed " << seed;
    EXPECT_GE(l, o - 1e-9) << "seed " << seed;
    EXPECT_GE(g, o - 1e-9) << "seed " << seed;
    sum_ltf += l;
    sum_greedy += g;
    sum_rand += r;
  }
  EXPECT_LE(sum_ltf, sum_rand + 1e-9);
  EXPECT_LE(sum_greedy, sum_rand + 1e-9);
}

TEST(MultiProcLtf, CloseToOptimalOnSmallInstances) {
  // The venue-style check: LTF+DP stays within a modest factor of optimal.
  const MultiProcExhaustiveSolver opt;
  const MultiProcLtfRejectSolver ltf;
  double worst_ratio = 1.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 8, 2.0, 1.0, 2);
    const double o = opt.solve(p).objective();
    const double l = ltf.solve(p).objective();
    if (o > 0.0) worst_ratio = std::max(worst_ratio, l / o);
  }
  EXPECT_LE(worst_ratio, 1.5);
}

TEST(MultiProcLtf, LargeProcessorCountStaysValidAndBalanced) {
  // m = 48 exercises the heap-based least-loaded partitioner well past the
  // linear-scan comfort zone; every solution must stay feasible and no PE
  // may exceed its cycle capacity.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 60, 30.0, 1.0, 48);
    const RejectionSolution s = MultiProcLtfRejectSolver().solve(p);
    check_solution(p, s);
    for (const Cycles load : processor_loads(p, s)) {
      EXPECT_LE(load, p.cycle_capacity());
    }
  }
}

TEST(MultiProcLtf, MoreProcessorsThanTasksLeavesEmptyPes) {
  // m > n: the heap hands each task its own bin and the surplus PEs stay
  // empty — a dormant-enable platform accepts everything for free.
  const RejectionProblem p = test::small_instance(2, 5, 0.8, 5.0, 16);
  const RejectionSolution s = MultiProcLtfRejectSolver().solve(p);
  check_solution(p, s);
  EXPECT_EQ(s.accepted_count(), p.size());
  const auto loads = processor_loads(p, s);
  int empty = 0;
  for (const Cycles load : loads) empty += load == 0 ? 1 : 0;
  EXPECT_GE(empty, 11);
}

TEST(MultiProcGreedy, SharedMemoKeepsSolutionsIdentical) {
  // The probe memo is an observability/speed change only: solutions must be
  // byte-identical with what the solver produced before (pinned via a twin
  // solve — the memo is per-solve state, so two runs must agree bitwise).
  const RejectionProblem p = test::small_instance(7, 14, 2.8, 1.0, 3);
  const RejectionSolution a = MultiProcGreedySolver().solve(p);
  const RejectionSolution b = MultiProcGreedySolver().solve(p);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.processor_of, b.processor_of);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.penalty, b.penalty);
}

TEST(MultiProcExhaustive, GuardsHugeInstances) {
  const RejectionProblem p = test::small_instance(1, 20, 1.0, 1.0, 4);
  EXPECT_THROW(MultiProcExhaustiveSolver().solve(p), Error);
}

TEST(MultiProc, MoreProcessorsNeverHurtOnAverage) {
  // With dormant-enable idle processors cost nothing, so added capacity can
  // only reduce the optimal objective.
  double sum1 = 0.0;
  double sum2 = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RejectionProblem p1 = test::small_instance(seed, 8, 2.0, 1.0, 1);
    const RejectionProblem p2 = test::small_instance(seed, 8, 2.0, 1.0, 2);
    sum1 += ExhaustiveSolver().solve(p1).objective();
    sum2 += MultiProcExhaustiveSolver().solve(p2).objective();
  }
  EXPECT_LE(sum2, sum1 + 1e-9);
}

}  // namespace
}  // namespace retask
