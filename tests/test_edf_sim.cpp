// Tests for the discrete-event EDF/DVS simulator: Liu-Layland agreement,
// deadline-miss detection, preemption behaviour, busy/idle accounting and
// energy.
#include "retask/sched/edf_sim.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/task/generator.hpp"

namespace retask {
namespace {

EnergyCurve xscale_curve(double window, IdleDiscipline idle) {
  return EnergyCurve(PolynomialPowerModel::xscale(), window, idle);
}

TEST(EdfSim, FullUtilizationAtSpeedOneJustFits) {
  const PeriodicTaskSet tasks({{0, 50, 100, 0.0}, {1, 100, 200, 0.0}});  // U = 1.0
  const EdfSimConfig config{1.0, 1.0, 0.0};
  const EdfSimResult r = simulate_edf(tasks, {}, config, xscale_curve(200.0, IdleDiscipline::kDormantEnable));
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_EQ(r.jobs_released, 2 + 1);
  EXPECT_NEAR(r.busy_time, 200.0, 1e-9);
  EXPECT_NEAR(r.idle_time, 0.0, 1e-9);
}

TEST(EdfSim, UnderSpeedMissesDeadlines) {
  const PeriodicTaskSet tasks({{0, 50, 100, 0.0}, {1, 100, 200, 0.0}});  // U = 1.0
  const EdfSimConfig config{0.8, 1.0, 0.0};
  const EdfSimResult r = simulate_edf(tasks, {}, config, xscale_curve(200.0, IdleDiscipline::kDormantEnable));
  EXPECT_GT(r.deadline_misses, 0);
  EXPECT_GT(r.max_lateness, 0.0);
}

TEST(EdfSim, SubsetSelectionDropsLoad) {
  const PeriodicTaskSet tasks({{0, 80, 100, 0.0}, {1, 80, 100, 0.0}});  // U = 1.6 together
  const EdfSimConfig config{1.0, 1.0, 0.0};
  const EdfSimResult r =
      simulate_edf(tasks, {true, false}, config, xscale_curve(100.0, IdleDiscipline::kDormantEnable));
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_NEAR(r.busy_time, 80.0, 1e-9);
  EXPECT_NEAR(r.idle_time, 20.0, 1e-9);
}

TEST(EdfSim, PreemptionKeepsEdfOrder) {
  // Task 0: tight period; task 1: long job that must be preempted.
  const PeriodicTaskSet tasks({{0, 2, 10, 0.0}, {1, 30, 60, 0.0}});  // U = 0.2 + 0.5
  const EdfSimConfig config{1.0, 1.0, 0.0};
  const EdfSimResult r = simulate_edf(tasks, {}, config, xscale_curve(60.0, IdleDiscipline::kDormantEnable));
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_EQ(r.jobs_released, 6 + 1);
  EXPECT_NEAR(r.busy_time, 6 * 2.0 + 30.0, 1e-9);
}

TEST(EdfSim, EnergySplitsBusyAndIdle) {
  const PeriodicTaskSet tasks({{0, 50, 100, 0.0}});  // U = 0.5
  const EdfSimConfig config{1.0, 1.0, 0.0};
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();

  const EdfSimResult enable =
      simulate_edf(tasks, {}, config, EnergyCurve(m, 100.0, IdleDiscipline::kDormantEnable));
  EXPECT_NEAR(enable.energy, 50.0 * m.power(1.0), 1e-9);

  const EdfSimResult disable =
      simulate_edf(tasks, {}, config, EnergyCurve(m, 100.0, IdleDiscipline::kDormantDisable));
  EXPECT_NEAR(disable.energy, 50.0 * m.power(1.0) + 50.0 * m.static_power(), 1e-9);
}

TEST(EdfSim, SlowerSpeedSavesEnergyWhileFeasible) {
  const PeriodicTaskSet tasks({{0, 50, 100, 0.0}});  // U = 0.5
  const EnergyCurve curve = xscale_curve(100.0, IdleDiscipline::kDormantEnable);
  const EdfSimResult fast = simulate_edf(tasks, {}, {1.0, 1.0, 0.0}, curve);
  const EdfSimResult slow = simulate_edf(tasks, {}, {0.5, 1.0, 0.0}, curve);
  EXPECT_EQ(slow.deadline_misses, 0);
  EXPECT_LT(slow.energy, fast.energy);
}

TEST(EdfSim, EmptySelectionIdlesWholeHorizon) {
  const PeriodicTaskSet tasks({{0, 50, 100, 0.0}});
  const EdfSimConfig config{1.0, 1.0, 0.0};
  const EdfSimResult r =
      simulate_edf(tasks, {false}, config, xscale_curve(100.0, IdleDiscipline::kDormantDisable));
  EXPECT_EQ(r.jobs_released, 0);
  EXPECT_NEAR(r.idle_time, 100.0, 1e-12);
  EXPECT_NEAR(r.energy, 100.0 * 0.08, 1e-9);
}

TEST(EdfSim, WorkPerCycleScalesExecutionTime) {
  const PeriodicTaskSet tasks({{0, 50, 100, 0.0}});
  const EdfSimResult r = simulate_edf(tasks, {}, {1.0, 0.5, 0.0},
                                      xscale_curve(100.0, IdleDiscipline::kDormantEnable));
  EXPECT_NEAR(r.busy_time, 25.0, 1e-9);
}

TEST(EdfSim, ExplicitHorizonOverridesHyperPeriod) {
  const PeriodicTaskSet tasks({{0, 10, 100, 0.0}});
  const EdfSimResult r = simulate_edf(tasks, {}, {1.0, 1.0, 300.0},
                                      xscale_curve(300.0, IdleDiscipline::kDormantEnable));
  EXPECT_EQ(r.jobs_released, 3);
  EXPECT_NEAR(r.busy_time, 30.0, 1e-9);
}

TEST(EdfSim, RejectsBadConfig) {
  const PeriodicTaskSet tasks({{0, 10, 100, 0.0}});
  const EnergyCurve curve = xscale_curve(100.0, IdleDiscipline::kDormantEnable);
  EXPECT_THROW(simulate_edf(tasks, {}, {0.0, 1.0, 0.0}, curve), Error);
  EXPECT_THROW(simulate_edf(tasks, {}, {1.0, 0.0, 0.0}, curve), Error);
  EXPECT_THROW(simulate_edf(tasks, {true, false}, {1.0, 1.0, 0.0}, curve), Error);
}

TEST(EdfSim, ResponseTimeTracksWorstJob) {
  const PeriodicTaskSet tasks({{0, 50, 100, 0.0}});
  const EdfSimResult r =
      simulate_edf(tasks, {}, {0.5, 1.0, 0.0}, xscale_curve(100.0, IdleDiscipline::kDormantEnable));
  EXPECT_NEAR(r.max_response, 100.0, 1e-9);  // exactly fills its deadline
  EXPECT_EQ(r.deadline_misses, 0);
}

TEST(EdfSim, IdleFragmentationIsTracked) {
  // U = 0.25 at speed 1: four busy bursts per hyper-period, four gaps.
  const PeriodicTaskSet tasks({{0, 25, 100, 0.0}});
  const EdfSimConfig config{1.0, 1.0, 400.0, false};
  const EdfSimResult r = simulate_edf(tasks, {}, config,
                                      xscale_curve(400.0, IdleDiscipline::kDormantEnable));
  EXPECT_EQ(r.idle_intervals, 4);
  EXPECT_NEAR(r.longest_idle, 75.0, 1e-9);
  EXPECT_NEAR(r.idle_time, 300.0, 1e-9);
}

TEST(EdfSim, ProcrastinationMergesIdleAndMeetsDeadlines) {
  // Three tasks, U = 0.45 at speed 1. Eager execution fragments the idle
  // time; procrastination must merge gaps (fewer, longer intervals) without
  // missing a single deadline.
  const PeriodicTaskSet tasks({{0, 20, 100, 0.0}, {1, 30, 200, 0.0}, {2, 40, 400, 0.0}});
  const EnergyCurve curve = xscale_curve(400.0, IdleDiscipline::kDormantEnable);
  EdfSimConfig eager{1.0, 1.0, 0.0, false};
  EdfSimConfig lazy{1.0, 1.0, 0.0, true};
  const EdfSimResult e = simulate_edf(tasks, {}, eager, curve);
  const EdfSimResult l = simulate_edf(tasks, {}, lazy, curve);
  EXPECT_EQ(e.deadline_misses, 0);
  EXPECT_EQ(l.deadline_misses, 0);
  EXPECT_NEAR(e.idle_time, l.idle_time, 1e-9);  // same total idle
  EXPECT_LT(l.idle_intervals, e.idle_intervals);
  EXPECT_GE(l.longest_idle, e.longest_idle);  // merging can only lengthen gaps
  EXPECT_GT(l.max_response, e.max_response);  // the price of laziness
}

TEST(EdfSim, ProcrastinationSavesEnergyWithSleepOverheads) {
  // With a sleep-transition cost, fragmented gaps each pay Esw (or leak);
  // merged gaps pay it once. Procrastination must therefore save energy.
  const PeriodicTaskSet tasks({{0, 20, 100, 0.0}, {1, 30, 200, 0.0}});
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const EnergyCurve curve(m, 400.0, IdleDiscipline::kDormantEnable, SleepParams{5.0, 2.0});
  const EdfSimResult e = simulate_edf(tasks, {}, {1.0, 1.0, 0.0, false}, curve);
  const EdfSimResult l = simulate_edf(tasks, {}, {1.0, 1.0, 0.0, true}, curve);
  EXPECT_EQ(l.deadline_misses, 0);
  EXPECT_LT(l.energy, e.energy);
}

TEST(EdfSim, ProcrastinationStressNoMissesAcrossRandomSets) {
  // Randomized guard on the safety argument: many task sets, utilizations up
  // to 0.9 of the speed, zero misses required.
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    PeriodicWorkloadConfig config;
    config.task_count = 6;
    config.total_rate = 0.5 + 0.4 * static_cast<double>(seed) / 20.0;
    Rng rng(seed);
    const PeriodicTaskSet tasks = generate_periodic_tasks(config, rng);
    const EnergyCurve curve(m, static_cast<double>(tasks.hyper_period()),
                            IdleDiscipline::kDormantEnable, SleepParams{1.0, 0.5});
    const EdfSimResult r = simulate_edf(tasks, {}, {1.0, 1.0, 0.0, true}, curve);
    EXPECT_EQ(r.deadline_misses, 0) << "seed " << seed << " rate " << config.total_rate;
  }
}

TEST(EdfSim, DeadlineTieBreakIsPermutationInvariant) {
  // At t=50 task 0 (released at 0, 20 work units left after preemption) ties
  // on deadline 100 with task 1's second job (released at 50). The tie must
  // resolve FIFO by release — never by the position of the task in the input
  // vector, which an earlier comparator used and which made the schedule
  // (here: max_response 70 vs 80) depend on input permutation.
  const PeriodicTaskSet forward({{0, 60, 100, 0.0}, {1, 10, 50, 0.0}});
  const PeriodicTaskSet reversed({{1, 10, 50, 0.0}, {0, 60, 100, 0.0}});
  const EdfSimConfig config{1.0, 1.0, 100.0};
  const EnergyCurve curve = xscale_curve(100.0, IdleDiscipline::kDormantEnable);
  const EdfSimResult f = simulate_edf(forward, {}, config, curve);
  const EdfSimResult r = simulate_edf(reversed, {}, config, curve);
  EXPECT_EQ(f.deadline_misses, 0);
  EXPECT_NEAR(f.max_response, 70.0, 1e-9);  // FIFO: the t=0 job finishes first
  // The permuted input must reproduce the schedule exactly, not just nearly.
  EXPECT_EQ(f.deadline_misses, r.deadline_misses);
  EXPECT_EQ(f.jobs_released, r.jobs_released);
  EXPECT_EQ(f.busy_time, r.busy_time);
  EXPECT_EQ(f.idle_time, r.idle_time);
  EXPECT_EQ(f.idle_intervals, r.idle_intervals);
  EXPECT_EQ(f.max_response, r.max_response);
  EXPECT_EQ(f.max_lateness, r.max_lateness);
  EXPECT_EQ(f.energy, r.energy);
}

TEST(EdfSim, SimultaneousEqualDeadlineReleasesDispatchInIdOrder) {
  // Overloaded: both jobs release at 0 with deadline 100 but only 30 work
  // units fit before it. Dispatching task 0 (10 units) first finishes it on
  // time — one miss; the opposite order would miss both. The id tie-break
  // must pick task 0 regardless of input order.
  const PeriodicTaskSet forward({{0, 10, 100, 0.0}, {1, 50, 100, 0.0}});
  const PeriodicTaskSet reversed({{1, 50, 100, 0.0}, {0, 10, 100, 0.0}});
  const EdfSimConfig config{0.3, 1.0, 100.0};
  const EnergyCurve curve = xscale_curve(100.0, IdleDiscipline::kDormantEnable);
  const EdfSimResult f = simulate_edf(forward, {}, config, curve);
  const EdfSimResult r = simulate_edf(reversed, {}, config, curve);
  EXPECT_EQ(f.deadline_misses, 1);
  EXPECT_EQ(r.deadline_misses, 1);
  EXPECT_EQ(f.max_response, r.max_response);
  EXPECT_EQ(f.max_lateness, r.max_lateness);
  EXPECT_EQ(f.busy_time, r.busy_time);
  EXPECT_EQ(f.energy, r.energy);
}

TEST(EdfSim, ProcrastinationDegradesGracefullyWithoutSlack) {
  // U == speed: no spare capacity, the wake rule must fire immediately and
  // the schedule must still be the eager one (no misses, same busy time).
  const PeriodicTaskSet tasks({{0, 100, 100, 0.0}});
  const EnergyCurve curve = xscale_curve(100.0, IdleDiscipline::kDormantEnable);
  const EdfSimResult r = simulate_edf(tasks, {}, {1.0, 1.0, 0.0, true}, curve);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_NEAR(r.busy_time, 100.0, 1e-9);
}

}  // namespace
}  // namespace retask
