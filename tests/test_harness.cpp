// Tests for the experiment harness and the scenario builders.
#include "retask/exp/harness.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/core/algorithm_registry.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/exp/workload.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/power/table_power.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

TEST(Workload, ScenarioRespectsConfig) {
  ScenarioConfig config;
  config.task_count = 14;
  config.load = 1.3;
  config.resolution = 1000.0;
  config.processor_count = 2;
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const RejectionProblem p = make_scenario(config, model);
  EXPECT_EQ(p.size(), 14u);
  EXPECT_EQ(p.processor_count(), 2);
  EXPECT_EQ(p.cycle_capacity(), 1000);  // resolution cycles = one processor
  EXPECT_NEAR(static_cast<double>(p.tasks().total_cycles()) / 1000.0, 1.3, 0.05);
}

TEST(Workload, PenaltyAnchorIsMarginalEnergyScale) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const double anchor = penalty_anchor(model);
  // For XScale the anchor speed is 0.7 (critical speed ~0.3 is lower).
  EXPECT_NEAR(anchor, model.energy_per_cycle(0.7), 1e-9);
  // Table models snap to an available speed.
  const TablePowerModel table = TablePowerModel::xscale5();
  EXPECT_NEAR(penalty_anchor(table), table.energy_per_cycle(0.8), 1e-9);
}

TEST(Workload, SeedsChangeInstances) {
  ScenarioConfig a;
  a.seed = 1;
  ScenarioConfig b;
  b.seed = 2;
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const RejectionProblem pa = make_scenario(a, model);
  const RejectionProblem pb = make_scenario(b, model);
  // Totals are normalized to the load budget by construction; the per-task
  // split must differ across seeds.
  ASSERT_EQ(pa.size(), pb.size());
  bool any_different = false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    any_different = any_different || pa.tasks()[i].cycles != pb.tasks()[i].cycles;
  }
  EXPECT_TRUE(any_different);
}

TEST(Harness, NormalizesAgainstReference) {
  const auto factory = [](std::uint64_t seed) { return test::small_instance(seed, 8, 1.5); };
  const auto reference = [](const RejectionProblem& p) {
    return ExactDpSolver().solve(p).objective();
  };
  auto lineup = standard_uniproc_lineup();
  const auto stats = run_comparison(factory, lineup, reference, 5, 100);
  ASSERT_EQ(stats.size(), lineup.size());
  for (const AlgoStats& s : stats) {
    EXPECT_EQ(s.ratio.count(), 5u);
    EXPECT_GE(s.ratio.min(), 1.0 - 1e-9) << s.name;
    EXPECT_GE(s.acceptance.min(), 0.0);
    EXPECT_LE(s.acceptance.max(), 1.0);
  }
  // The exact DP normalizes to exactly 1 against itself.
  EXPECT_NEAR(stats[0].ratio.mean(), 1.0, 1e-9);
  EXPECT_EQ(stats[0].name, "OPT-DP");
}

TEST(Harness, RejectsBadArguments) {
  const auto factory = [](std::uint64_t seed) { return test::small_instance(seed); };
  const auto reference = [](const RejectionProblem&) { return 1.0; };
  std::vector<std::unique_ptr<RejectionSolver>> empty;
  EXPECT_THROW(run_comparison(factory, empty, reference, 5), Error);
  auto lineup = standard_uniproc_lineup();
  EXPECT_THROW(run_comparison(factory, lineup, reference, 0), Error);
}

TEST(Harness, DetectsBogusReference) {
  // A "reference" far above the heuristics' objective triggers the
  // beat-the-optimum guard... by not triggering; a reference far below keeps
  // ratios > 1 and passes. The guard fires when an algorithm beats a
  // supposedly optimal reference, which we simulate with an inflated
  // reference: ratio < 1 -> throw.
  const auto factory = [](std::uint64_t seed) { return test::small_instance(seed, 8, 1.5); };
  const auto inflated = [](const RejectionProblem& p) {
    return ExactDpSolver().solve(p).objective() * 10.0;
  };
  auto lineup = standard_uniproc_lineup();
  EXPECT_THROW(run_comparison(factory, lineup, inflated, 3), Error);
}

}  // namespace
}  // namespace retask
