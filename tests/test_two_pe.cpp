// Tests for the heterogeneous two-PE rejection system: problem semantics,
// solution validation, solver ordering against the exhaustive optimum, and
// generator behaviour.
#include "retask/core/two_pe.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/task/generator.hpp"

namespace retask {
namespace {

TwoPeProblem make_problem(std::vector<TwoPeTask> tasks,
                          Pe2EnergyModel model = Pe2EnergyModel::kWorkloadIndependent,
                          double pe2_power = 0.2) {
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  return TwoPeProblem(std::move(tasks), std::move(curve), 0.01, pe2_power, model);
}

TwoPeProblem random_problem(std::uint64_t seed, Pe2Relation relation, double u2_total,
                            Pe2EnergyModel model, int n = 10) {
  TwoPeWorkloadConfig config;
  config.task_count = n;
  config.dvs_load = 1.3;
  config.resolution = 400.0;
  config.u2_total = u2_total;
  config.relation = relation;
  config.penalty_scale = 1.5;
  Rng rng(seed);
  std::vector<TwoPeTask> tasks = generate_two_pe_tasks(config, rng);
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  return TwoPeProblem(std::move(tasks), std::move(curve), 1.0 / 400.0, 0.3, model);
}

TEST(TwoPeProblem, EnergyModels) {
  const TwoPeProblem independent =
      make_problem({{0, 50, 0.4, 1.0}}, Pe2EnergyModel::kWorkloadIndependent, 0.5);
  EXPECT_DOUBLE_EQ(independent.pe2_energy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(independent.pe2_energy(0.3), 0.5);  // all-or-nothing
  EXPECT_DOUBLE_EQ(independent.pe2_energy(1.0), 0.5);

  const TwoPeProblem dependent =
      make_problem({{0, 50, 0.4, 1.0}}, Pe2EnergyModel::kWorkloadDependent, 0.5);
  EXPECT_DOUBLE_EQ(dependent.pe2_energy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dependent.pe2_energy(0.3), 0.15);
  EXPECT_DOUBLE_EQ(dependent.pe2_energy(1.0), 0.5);
  EXPECT_THROW(dependent.pe2_energy(1.5), Error);
}

TEST(TwoPeProblem, ValidatesTasksAndParameters) {
  EXPECT_THROW(make_problem({{0, 0, 0.4, 1.0}}), Error);    // zero cycles
  EXPECT_THROW(make_problem({{0, 50, 0.0, 1.0}}), Error);   // zero utilization
  EXPECT_THROW(make_problem({{0, 50, 1.5, 1.0}}), Error);   // utilization > 1
  EXPECT_THROW(make_problem({{0, 50, 0.4, -1.0}}), Error);  // negative penalty
}

TEST(TwoPeSolution, MakeSolutionValidatesCapacities) {
  const TwoPeProblem p = make_problem({{0, 80, 0.6, 1.0}, {1, 60, 0.6, 1.0}});
  // Both on DVS: 140 > 100 capacity.
  EXPECT_THROW(
      make_two_pe_solution(p, {TwoPePlacement::kDvs, TwoPePlacement::kDvs}), Error);
  // Both on PE2: 1.2 > 1.
  EXPECT_THROW(
      make_two_pe_solution(p, {TwoPePlacement::kNonDvs, TwoPePlacement::kNonDvs}), Error);
  // Split: fine.
  const TwoPeSolution s =
      make_two_pe_solution(p, {TwoPePlacement::kDvs, TwoPePlacement::kNonDvs});
  EXPECT_EQ(s.count(TwoPePlacement::kDvs), 1u);
  EXPECT_EQ(s.count(TwoPePlacement::kNonDvs), 1u);
  EXPECT_NEAR(s.dvs_energy, p.dvs_energy(80), 1e-12);
  EXPECT_NEAR(s.pe2_energy, 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(s.penalty, 0.0);
}

TEST(TwoPeSolution, RejectionPaysPenalty) {
  const TwoPeProblem p = make_problem({{0, 80, 0.6, 2.5}});
  const TwoPeSolution s = make_two_pe_solution(p, {TwoPePlacement::kRejected});
  EXPECT_DOUBLE_EQ(s.penalty, 2.5);
  EXPECT_DOUBLE_EQ(s.dvs_energy + s.pe2_energy, p.dvs_energy(0));
}

TEST(TwoPeGreedy, OffloadsHighReliefTasks) {
  // One task dominates the DVS budget but is cheap on the PE2: the classic
  // "good candidate" from the source papers.
  const TwoPeProblem p = make_problem(
      {{0, 90, 0.1, 10.0}, {1, 40, 0.8, 10.0}, {2, 30, 0.8, 10.0}},
      Pe2EnergyModel::kWorkloadIndependent, 0.05);
  const TwoPeSolution s = TwoPeGreedySolver().solve(p);
  EXPECT_EQ(s.placement[0], TwoPePlacement::kNonDvs);
  // Everything is too valuable to reject, and the instance is small enough
  // that greedy must land on the exhaustive optimum.
  EXPECT_EQ(s.count(TwoPePlacement::kRejected), 0u);
  EXPECT_NEAR(s.objective(), TwoPeExhaustiveSolver().solve(p).objective(), 1e-9);
}

TEST(TwoPeGreedy, PowersDownWorthlessIndependentPe2) {
  // The only PE2 candidate is worth less than powering the PE at all.
  const TwoPeProblem p = make_problem({{0, 90, 0.1, 0.01}, {1, 50, 0.9, 5.0}},
                                      Pe2EnergyModel::kWorkloadIndependent, 0.5);
  const TwoPeSolution s = TwoPeGreedySolver().solve(p);
  EXPECT_EQ(s.pe2_energy, 0.0);
  EXPECT_EQ(s.count(TwoPePlacement::kNonDvs), 0u);
}

TEST(TwoPeGreedy, PrunesUnderpricedDependentPe2Tasks) {
  // Workload-dependent PE2 at high power: a task whose penalty is below its
  // utilization share must be rejected, not hosted.
  const TwoPeProblem p = make_problem({{0, 90, 0.8, 0.1}, {1, 50, 0.2, 5.0}},
                                      Pe2EnergyModel::kWorkloadDependent, 1.0);
  const TwoPeSolution s = TwoPeGreedySolver().solve(p);
  EXPECT_NE(s.placement[0], TwoPePlacement::kNonDvs);
}

TEST(TwoPeSolvers, SandwichAgainstExhaustive) {
  for (const Pe2EnergyModel model :
       {Pe2EnergyModel::kWorkloadIndependent, Pe2EnergyModel::kWorkloadDependent}) {
    for (const Pe2Relation relation :
         {Pe2Relation::kProportional, Pe2Relation::kInverse, Pe2Relation::kIndependent}) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const TwoPeProblem p = random_problem(seed, relation, 1.6, model);
        const double opt = TwoPeExhaustiveSolver().solve(p).objective();
        const double greedy = TwoPeGreedySolver().solve(p).objective();
        const double e_greedy = TwoPeEGreedySolver().solve(p).objective();
        const double ls = TwoPeLocalSearchSolver().solve(p).objective();
        const double dp = TwoPeOffloadDpSolver(0.05).solve(p).objective();
        const double dvs_only = TwoPeDvsOnlySolver().solve(p).objective();
        EXPECT_GE(greedy, opt - 1e-9);
        EXPECT_GE(e_greedy, opt - 1e-9);
        EXPECT_GE(dp, opt - 1e-9);
        EXPECT_GE(ls, opt - 1e-9);
        EXPECT_LE(ls, greedy + 1e-9);        // LS is seeded by greedy
        EXPECT_GE(dvs_only, opt - 1e-9);     // ignoring the PE2 cannot win
      }
    }
  }
}

TEST(TwoPeOffloadDp, FineDeltaTracksExhaustiveClosely) {
  // With a fine grid the offload DP's candidate set covers the optimal
  // offload volume; the quick-rank + finalize pipeline should land within a
  // few percent of the exhaustive optimum on every instance.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TwoPeProblem p = random_problem(seed, Pe2Relation::kIndependent, 1.4,
                                          Pe2EnergyModel::kWorkloadDependent);
    const double opt = TwoPeExhaustiveSolver().solve(p).objective();
    const double fine = TwoPeOffloadDpSolver(0.01).solve(p).objective();
    EXPECT_LE(fine, 1.08 * opt + 1e-9) << "seed " << seed;
  }
}

TEST(TwoPeOffloadDp, CoarserDeltaNeverBeatsOptimal) {
  const TwoPeProblem p = random_problem(2, Pe2Relation::kProportional, 1.8,
                                        Pe2EnergyModel::kWorkloadIndependent);
  const double opt = TwoPeExhaustiveSolver().solve(p).objective();
  for (const double delta : {1.0, 0.3, 0.1, 0.02}) {
    EXPECT_GE(TwoPeOffloadDpSolver(delta).solve(p).objective(), opt - 1e-9)
        << "delta " << delta;
  }
  EXPECT_THROW(TwoPeOffloadDpSolver(0.0), Error);
}

TEST(TwoPeEGreedy, BeatsPlainGreedyOnAverage) {
  // The eviction scan explores every prefix, so it cannot be worse than the
  // single-pass greedy's offload choice by much; on average over instances
  // it should win or tie.
  double greedy_total = 0.0;
  double e_greedy_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const TwoPeProblem p = random_problem(seed, Pe2Relation::kProportional, 2.0,
                                          Pe2EnergyModel::kWorkloadIndependent);
    greedy_total += TwoPeGreedySolver().solve(p).objective();
    e_greedy_total += TwoPeEGreedySolver().solve(p).objective();
  }
  EXPECT_LE(e_greedy_total, greedy_total * 1.02);
}

TEST(TwoPeSolvers, SecondPeBuysRealImprovement) {
  // With a cheap PE2 and an overloaded DVS, using the PE2 must beat DVS-only
  // on average.
  double with_pe2 = 0.0;
  double without = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TwoPeProblem p = random_problem(seed, Pe2Relation::kInverse, 1.2,
                                          Pe2EnergyModel::kWorkloadDependent);
    with_pe2 += TwoPeLocalSearchSolver().solve(p).objective();
    without += TwoPeDvsOnlySolver().solve(p).objective();
  }
  EXPECT_LT(with_pe2, without);
}

TEST(TwoPeExhaustive, GuardsHugeInstances) {
  const TwoPeProblem p = random_problem(1, Pe2Relation::kIndependent, 1.0,
                                        Pe2EnergyModel::kWorkloadIndependent, 20);
  EXPECT_THROW(TwoPeExhaustiveSolver().solve(p), Error);
}

TEST(TwoPeGenerator, RelationShapesUtilizations) {
  TwoPeWorkloadConfig config;
  config.task_count = 30;
  config.cycle_spread = 32.0;
  config.u2_total = 2.0;

  Rng rng1(5);
  config.relation = Pe2Relation::kProportional;
  const auto prop = generate_two_pe_tasks(config, rng1);
  Rng rng2(5);
  config.relation = Pe2Relation::kInverse;
  const auto inv = generate_two_pe_tasks(config, rng2);

  // Correlation sign check via big-vs-small halves.
  const auto mean_u_of_biggest = [](const std::vector<TwoPeTask>& tasks, bool biggest) {
    std::vector<TwoPeTask> sorted = tasks;
    std::sort(sorted.begin(), sorted.end(),
              [](const TwoPeTask& a, const TwoPeTask& b) { return a.cycles < b.cycles; });
    double sum = 0.0;
    const std::size_t half = sorted.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      sum += sorted[biggest ? sorted.size() - 1 - i : i].pe2_utilization;
    }
    return sum / static_cast<double>(half);
  };
  EXPECT_GT(mean_u_of_biggest(prop, true), mean_u_of_biggest(prop, false));
  EXPECT_LT(mean_u_of_biggest(inv, true), mean_u_of_biggest(inv, false));

  double total = 0.0;
  for (const TwoPeTask& t : prop) {
    EXPECT_GT(t.pe2_utilization, 0.0);
    EXPECT_LE(t.pe2_utilization, 1.0);
    total += t.pe2_utilization;
  }
  EXPECT_NEAR(total, 2.0, 0.2);  // clamping may shave a little
}

}  // namespace
}  // namespace retask
